#!/usr/bin/env python
"""Quickstart: couple a producer and a consumer in situ with LowFive.

Two "executables" (tasks) run on a simulated MPI machine. The producer
writes an HDF5-style file; the consumer reads it. Neither task's I/O
code knows about LowFive -- swapping the VOL connector switches the
transport from physical files to in situ MPI messaging, which is the
paper's headline usability claim.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro.h5 as h5
from repro.h5.native import NativeVOL
from repro.lowfive import DistMetadataVOL
from repro.pfs import PFSStore
from repro.workflow import Workflow

GRID = (16, 16)  # global dataset shape


def producer(ctx):
    """Simulation task: 4 ranks, each writes 4 rows of the grid."""
    def make_vol():
        vol = DistMetadataVOL(comm=ctx.comm, under=NativeVOL(PFSStore()))
        vol.set_memory("output.h5")                       # keep in memory
        vol.serve_on_close("output.h5", ctx.intercomm("analysis"))
        return vol

    vol = ctx.singleton("vol", make_vol)

    # Ordinary h5 API calls from here on -- nothing LowFive-specific.
    f = h5.File("output.h5", "w", comm=ctx.comm, vol=vol)
    dset = f.create_dataset("fields/temperature", shape=GRID,
                            dtype=h5.FLOAT64)
    rows = GRID[0] // ctx.size
    start = ctx.rank * rows
    local = 100.0 * ctx.rank + np.arange(rows * GRID[1]).reshape(rows, GRID[1])
    dset.write(local, file_select=h5.hyperslab((start, 0), (rows, GRID[1])))
    f.attrs["time_step"] = 42
    f.close()  # <- triggers index + serve to the consumer
    print(f"[producer {ctx.rank}] wrote rows {start}..{start + rows}")


def analysis(ctx):
    """Analysis task: 2 ranks, each reads a column block (different
    decomposition than the producer wrote -- LowFive redistributes)."""
    def make_vol():
        vol = DistMetadataVOL(comm=ctx.comm, under=NativeVOL(PFSStore()))
        vol.set_memory("output.h5")
        vol.set_consumer("output.h5", ctx.intercomm("simulation"))
        return vol

    vol = ctx.singleton("vol", make_vol)

    f = h5.File("output.h5", "r", comm=ctx.comm, vol=vol)
    dset = f["fields/temperature"]
    cols = GRID[1] // ctx.size
    c0 = ctx.rank * cols
    block = dset.read(h5.hyperslab((0, c0), (GRID[0], cols)))
    mean = float(np.mean(block))
    step = f.attrs["time_step"]
    f.close()
    print(f"[analysis {ctx.rank}] columns {c0}..{c0 + cols}: "
          f"mean={mean:.2f} (step {step})")
    return mean


def build_workflow():
    """The quickstart workflow graph (used by ``main`` and by
    ``python -m repro.tools critpath --example examples/quickstart.py``)."""
    wf = Workflow()
    wf.add_task("simulation", nprocs=4, main=producer)
    wf.add_task("analysis", nprocs=2, main=analysis)
    wf.add_link("simulation", "analysis")
    return wf


def main():
    result = build_workflow().run()

    means = result.returns["analysis"]
    print(f"\ncompleted in {result.vtime * 1e3:.2f} simulated ms, "
          f"{result.messages} messages, {result.bytes_sent} bytes")
    print(f"analysis means: {[round(m, 2) for m in means]}")
    assert all(m > 0 for m in means)


if __name__ == "__main__":
    main()
