#!/usr/bin/env python
"""Streaming pipeline demo: epochs, backpressure, wire reduction.

A simulation task publishes a series of timestep *epochs* through the
LowFive VOL while an analysis task subscribes and lags behind. The
producer keeps at most ``max_lag`` epochs live: when the consumer
falls further behind, the producer blocks in a backpressure gate --
serving the laggard's queries -- until a release shrinks the window.
The run shows:

1. a consumer made 6x slower by a deterministic `ComputeSlowRule`
   fault, driving the producer into backpressure (visible in the
   causal report, attributed to the lagging consumer);
2. the live-epoch window staying bounded by ``max_lag`` throughout;
3. wire-side data reduction: re-running the same stream at increasing
   `CostConfig.reduction_level` shrinks bytes-on-wire monotonically
   (level 0 is bit-exact full fidelity).

Run:  python examples/streaming_pipeline.py
"""

import numpy as np

import repro.h5 as h5
from repro.faults import ComputeSlowRule, FaultPlan
from repro.h5.native import NativeVOL
from repro.lowfive import DistMetadataVOL, StreamConfig
from repro.lowfive.config import CostConfig
from repro.pfs import PFSStore
from repro.workflow import Workflow

GRID = (64, 48)
NSTEPS = 8
MAX_LAG = 2


def build(level=0):
    costs = CostConfig(reduction_level=level)

    def make_vol(ctx):
        return ctx.singleton("vol", lambda: DistMetadataVOL(
            comm=ctx.comm, under=NativeVOL(PFSStore()), costs=costs))

    def simulation(ctx):
        vol = make_vol(ctx)
        cfg = StreamConfig(max_lag=MAX_LAG)
        with ctx.stream_producer("analysis", "sim", vol, cfg) as prod:
            for step in range(NSTEPS):
                ctx.comm.compute(0.01)  # one timestep of simulation
                with prod.epoch() as f:
                    d = f.create_dataset("field", shape=GRID,
                                         dtype=h5.UINT64)
                    d.write(np.full(GRID, step, dtype=np.uint64)
                            .ravel())
        return True

    def analysis(ctx):
        vol = make_vol(ctx)
        totals = []
        with ctx.stream_consumer("simulation", "sim", vol) as cons:
            for ep in cons.epochs():
                with ep:
                    vals = np.asarray(ep.file["field"][...])
                    totals.append((ep.id, int(vals.sum())))
                ctx.comm.compute(0.02)  # per-epoch analysis work
        return totals

    wf = Workflow()
    wf.add_task("simulation", 2, simulation)
    wf.add_task("analysis", 1, analysis)
    wf.add_link("simulation", "analysis")
    return wf


def main():
    # -- 1. a lagging consumer hits the backpressure gate ------------------
    plan = FaultPlan(7, slowdowns=(ComputeSlowRule(2, 6.0),))
    res = build().run(timeout=120.0, faults=plan)
    epochs = res.returns["analysis"][0]
    assert [e for e, _ in epochs] == list(range(NSTEPS))
    print(f"analysis consumed all {NSTEPS} epochs in order "
          f"(makespan {res.vtime * 1e3:.1f} simulated ms)")

    rep = res.causal_report()
    bp = rep.wait_by_category().get("backpressure", 0.0)
    causes = {w.cause_rank for w in rep.waits
              if w.category == "backpressure"}
    print(f"producer spent {bp * 1e3:.1f} ms gated on backpressure, "
          f"caused by lagging consumer rank(s) {sorted(causes)}")

    depth = res.obs.stream.max_depth("sim")
    print(f"live-epoch window stayed bounded: max depth {depth} "
          f"<= max_lag {MAX_LAG}")

    # -- 2. wire-side reduction: same stream, fewer bytes ------------------
    print("\nreduction sweep (same stream, increasing level):")
    for level in (0, 1, 2):
        r = build(level).run(timeout=120.0)
        tag = "full fidelity" if level == 0 else \
            f"stride {2 ** level} subsample + compression"
        print(f"  level {level}: {r.bytes_sent:9d} bytes on wire "
              f"({tag})")


if __name__ == "__main__":
    main()
