#!/usr/bin/env python
"""Reproduce every table and figure of the paper in one command.

Prints Table I, Figures 5-9 and 11 (as tables + ASCII log-log plots),
and Table II from the analytic models at the paper's full scales --
seconds of laptop time instead of supercomputer allocations. For the
executed (data-moving, validated) versions of the same experiments, run
``pytest benchmarks/ --benchmark-only``.

Run:  python examples/reproduce_paper.py
"""

from repro.bench import ascii_loglog, format_series_table, format_table
from repro.perfmodel import (
    CORI_HASWELL,
    THETA_KNL,
    bredala_times,
    dataspaces_time,
    lowfive_file_time,
    lowfive_memory_time,
    pure_hdf5_time,
    pure_mpi_time,
)
from repro.perfmodel.nyx_reeber import table2_rows
from repro.synth import SyntheticWorkload

SCALES = [4, 16, 64, 256, 1024, 4096, 16384]
WL = SyntheticWorkload()


def series(fn, scales, machine, wl=WL, **kw):
    out = []
    for P in scales:
        nprod, ncons = wl.split_procs(P)
        out.append(fn(nprod, ncons, wl, machine, **kw))
    return out


def main():
    # -- Table I ---------------------------------------------------------
    rows = []
    for P in SCALES:
        nprod, ncons = WL.split_procs(P)
        rows.append([P, nprod, ncons, f"{WL.total_grid_points(nprod):.1e}",
                     f"{WL.total_particles(nprod):.1e}",
                     round(WL.total_bytes(nprod) / 2**30, 2)])
    print(format_table(
        ["total", "producers", "consumers", "grid points", "particles",
         "GiB"], rows, title="Table I: weak-scaling configuration"))

    # -- Figure 5 ----------------------------------------------------------
    mem = series(lowfive_memory_time, SCALES, THETA_KNL)
    fil = [lowfive_file_time(*WL.split_procs(P), WL, THETA_KNL)
           if P <= 1024 else None for P in SCALES]
    print(ascii_loglog(SCALES, {"LowFive File Mode": fil,
                                "LowFive Memory Mode": mem},
                       title="Figure 5: file vs memory mode (Theta)"))

    # -- Figure 6 ------------------------------------------------------------
    s6 = [P for P in SCALES if P <= 1024]
    lf6 = series(lowfive_file_time, s6, THETA_KNL)
    h56 = series(pure_hdf5_time, s6, THETA_KNL)
    print(format_series_table(
        s6, {"LowFive File Mode": lf6, "Pure HDF5": h56},
        title="Figure 6: LowFive file mode vs pure HDF5 (Theta)"))

    # -- Figure 7 --------------------------------------------------------------
    mpi = series(pure_mpi_time, SCALES, THETA_KNL)
    print(ascii_loglog(SCALES, {"LowFive Memory Mode": mem,
                                "Pure MPI": mpi},
                       title="Figure 7: LowFive vs hand-written MPI "
                             "(Theta)"))

    # -- Figure 8 ----------------------------------------------------------------
    s8 = [P for P in SCALES if P <= 4096]
    lf8 = series(lowfive_memory_time, s8, CORI_HASWELL)
    ds8 = series(dataspaces_time, s8, CORI_HASWELL)
    print(format_series_table(
        s8, {"LowFive Memory Mode": lf8, "DataSpaces": ds8},
        title="Figure 8: LowFive vs DataSpaces (Cori Haswell, "
              "+4 staging ranks)"))

    # -- Figure 9 ------------------------------------------------------------------
    br = [bredala_times(*WL.split_procs(P), WL, THETA_KNL) for P in s8]
    lf9 = series(lowfive_memory_time, s8, THETA_KNL)
    print(ascii_loglog(
        s8,
        {
            "LowFive Memory Mode": lf9,
            "Bredala total": [b["total"] for b in br],
            "Bredala grid": [b["grid"] for b in br],
            "Bredala particles": [b["particles"] for b in br],
        },
        title="Figure 9: LowFive vs Bredala (Theta)"))

    # -- Figure 11 ---------------------------------------------------------------------
    wl10 = SyntheticWorkload(grid_points_per_proc=10**7,
                             particles_per_proc=10**7)
    lf11 = series(lowfive_memory_time, s8, CORI_HASWELL, wl=wl10)
    ds11 = series(dataspaces_time, s8, CORI_HASWELL, wl=wl10)
    mp11 = series(pure_mpi_time, s8, CORI_HASWELL, wl=wl10)
    print(format_series_table(
        s8, {"LowFive": lf11, "DataSpaces": ds11, "MPI": mp11},
        title="Figure 11: 10x data (0.55 TiB at 4K), Cori Haswell"))

    # -- Table II -------------------------------------------------------------------------
    print(format_table(
        ["grid", "LowFive write", "LowFive read", "HDF5 write",
         "HDF5 read", "plotfiles write", "vs HDF5", "vs plotfiles"],
        [[f"{r['grid']}^3", r["lowfive_write"], r["lowfive_read"],
          r["hdf5_write"], r["hdf5_read"], r["plotfile_write"],
          r["speedup_vs_hdf5"], r["speedup_vs_plotfiles"]]
         for r in table2_rows()],
        title="Table II: Nyx-Reeber use case (4096+1024 ranks, "
              "2 snapshots; x = DNF in 1.5h)"))


if __name__ == "__main__":
    main()
