#!/usr/bin/env python
"""Checkpoint/restart alongside in situ analysis.

A simulation streams its field to an analysis task in situ *and*
periodically checkpoints to the (simulated) parallel file system through
the same unchanged h5 calls -- LowFive's combined memory+passthru mode.
The job then "crashes"; a second job restarts from the checkpoint file
(plain native HDF5-style read), continues, and the analysis picks up
where it left off. Finally the checkpoint is exported to a real
directory and inspected with the bundled h5dump tool.

Run:  python examples/checkpoint_restart.py
"""

import os
import tempfile

import numpy as np

import repro.h5 as h5
from repro.h5.native import NativeVOL
from repro.lowfive import DistMetadataVOL
from repro.pfs import PFSStore
from repro.tools import export_store, h5dump
from repro.workflow import Workflow

GRID = (12, 12)
STORE = PFSStore()  # survives across "jobs"
CHECKPOINT_EVERY = 2


def make_sim_vol(ctx):
    def factory():
        vol = DistMetadataVOL(comm=ctx.comm, under=NativeVOL(STORE))
        vol.set_memory("step_*.h5")           # stream steps in situ
        vol.set_passthru("checkpoint.h5")     # checkpoints to the PFS
        vol.serve_on_close("step_*.h5", ctx.intercomm("analysis"))
        return vol

    return ctx.singleton("vol", factory)


def make_ana_vol(ctx):
    def factory():
        vol = DistMetadataVOL(comm=ctx.comm, under=NativeVOL(STORE))
        vol.set_memory("step_*.h5")
        vol.set_consumer("step_*.h5", ctx.intercomm("simulation"))
        return vol

    return ctx.singleton("vol", factory)


def evolve(field, steps):
    for _ in range(steps):
        field = 0.9 * field + 0.1 * np.roll(field, 1, axis=0) + 0.05
    return field


def simulation(first_step, last_step):
    def run(ctx):
        vol = make_sim_vol(ctx)
        rows = GRID[0] // ctx.size
        r0 = ctx.rank * rows
        if first_step == 0:
            field = np.zeros((rows, GRID[1]))
        else:  # restart: read my slab back from the checkpoint
            with h5.File("checkpoint.h5", "r", comm=ctx.comm,
                         vol=vol) as f:
                field = np.asarray(
                    f["field"].read(h5.hyperslab((r0, 0), (rows, GRID[1])))
                )
                assert f.attrs["step"] == first_step
        for step in range(first_step, last_step):
            field = evolve(field, 1)
            fname = f"step_{step}.h5"
            f = h5.File(fname, "w", comm=ctx.comm, vol=vol)
            d = f.create_dataset("field", shape=GRID, dtype=h5.FLOAT64)
            d.write(field, file_select=h5.hyperslab((r0, 0),
                                                    (rows, GRID[1])))
            f.close()
            if (step + 1) % CHECKPOINT_EVERY == 0:
                f = h5.File("checkpoint.h5", "w", comm=ctx.comm, vol=vol)
                d = f.create_dataset("field", shape=GRID, dtype=h5.FLOAT64)
                d.write(field, file_select=h5.hyperslab((r0, 0),
                                                        (rows, GRID[1])))
                f.attrs["step"] = step + 1
                f.close()
        return float(field.sum())

    return run


def analysis(first_step, last_step):
    def run(ctx):
        vol = make_ana_vol(ctx)
        means = []
        for step in range(first_step, last_step):
            f = h5.File(f"step_{step}.h5", "r", comm=ctx.comm, vol=vol)
            vals = f["field"].read()
            means.append(float(np.mean(vals)))
            f.close()
        return means

    return run


def run_job(first_step, last_step):
    wf = Workflow()
    wf.add_task("simulation", 3, simulation(first_step, last_step))
    wf.add_task("analysis", 1, analysis(first_step, last_step))
    wf.add_link("simulation", "analysis")
    return wf.run(timeout=120.0)


def main():
    res1 = run_job(0, 4)
    print(f"job 1: steps 0-3 done, analysis means "
          f"{[round(m, 4) for m in res1.returns['analysis'][0]]}")
    print("-- simulating a crash; restarting from checkpoint.h5 --")

    res2 = run_job(4, 6)
    print(f"job 2: steps 4-5 done, analysis means "
          f"{[round(m, 4) for m in res2.returns['analysis'][0]]}")

    # The restarted run must continue the trajectory monotonically.
    means = res1.returns["analysis"][0] + res2.returns["analysis"][0]
    assert all(b > a for a, b in zip(means, means[1:]))

    with tempfile.TemporaryDirectory() as tmp:
        export_store(STORE, tmp)
        path = os.path.join(tmp, "checkpoint.h5")
        with open(path, "rb") as fh:
            print("\ncheckpoint.h5 contents (via repro.tools.h5dump):")
            print(h5dump(fh.read(), "checkpoint.h5"))


if __name__ == "__main__":
    main()
