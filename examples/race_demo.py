"""A minimal wildcard-receive race, for the schedule analyzer.

Three ranks in one task: ranks 1 and 2 each send one message to rank
0, which collects both with ``recv(source=ANY_SOURCE)`` while it is
busy computing -- so both messages are queued when the first wildcard
match happens. Rank 1 posts *earlier* than rank 2 (1 ms vs 2 ms of
compute before the send).

Clean run: arrivals follow post order, the match is stable, and

    python -m repro.tools analyze --example examples/race_demo.py

reports no findings. Delay rank 1's message past rank 2's arrival and
the earlier-posted message arrives *later* -- the wildcard winner is
now decided purely by modeled transfer times, which is exactly what
the race detector flags:

    python -m repro.tools analyze --example examples/race_demo.py \\
        --delay 0.01 --delay-src 1 --delay-dst 0

deterministically reports one wildcard-race finding naming both
candidates.
"""

from repro.simmpi import ANY_SOURCE
from repro.workflow import Workflow


def peer(ctx):
    comm = ctx.comm
    if comm.rank == 0:
        comm.barrier()
        comm.compute(50e-3)  # busy while both messages arrive
        first = comm.recv(source=ANY_SOURCE, tag=0)[0]
        second = comm.recv(source=ANY_SOURCE, tag=0)[0]
        print(f"[rank 0] received from rank {first}, then rank {second}")
        return (first, second)
    comm.compute(comm.rank * 1e-3)  # rank 1 posts before rank 2
    comm.send(comm.rank, dest=0, tag=0)
    comm.barrier()
    return comm.rank


def build_workflow():
    """Used by ``python -m repro.tools analyze --example <this file>``."""
    wf = Workflow()
    wf.add_task("peer", nprocs=3, main=peer)
    return wf


def main():
    result = build_workflow().run()
    first, second = result.returns["peer"][0]
    assert (first, second) == (1, 2), "clean run follows post order"


if __name__ == "__main__":
    main()
