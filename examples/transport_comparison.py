#!/usr/bin/env python
"""Compare every transport on the paper's synthetic workload (a
miniature of the evaluation section, executed for real).

Runs LowFive memory mode, LowFive file mode, pure HDF5 files, pure MPI,
DataSpaces-like staging, and Bredala-like redistribution on the same
grid+particles workload, validates every one, and prints the simulated
completion times next to the analytic model's prediction.

Run:  python examples/transport_comparison.py [--procs 8] [--elems 100000]
"""

import argparse

from repro.bench import (
    format_table,
    run_bredala,
    run_dataspaces,
    run_lowfive_file,
    run_lowfive_memory,
    run_pure_hdf5,
    run_pure_mpi,
)
from repro.perfmodel import (
    THETA_KNL,
    bredala_times,
    dataspaces_time,
    lowfive_file_time,
    lowfive_memory_time,
    pure_hdf5_time,
    pure_mpi_time,
)
from repro.synth import SyntheticWorkload


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--procs", type=int, default=8,
                    help="total processes (3:1 producer:consumer split)")
    ap.add_argument("--elems", type=int, default=100_000,
                    help="grid points and particles per producer process")
    args = ap.parse_args()

    wl = SyntheticWorkload(grid_points_per_proc=args.elems,
                           particles_per_proc=args.elems)
    nprod, ncons = wl.split_procs(args.procs)
    print(f"{nprod} producers -> {ncons} consumers, "
          f"{args.elems} grid points + {args.elems} particles per "
          f"producer ({wl.total_bytes(nprod) / 2**20:.1f} MiB total)\n")

    runs = [
        ("LowFive memory mode", run_lowfive_memory,
         lambda: lowfive_memory_time(nprod, ncons, wl)),
        ("Pure MPI (hand-written)", run_pure_mpi,
         lambda: pure_mpi_time(nprod, ncons, wl)),
        ("DataSpaces (2 staging ranks)", run_dataspaces,
         lambda: dataspaces_time(nprod, ncons, wl, THETA_KNL, nservers=2)),
        ("Bredala", run_bredala,
         lambda: bredala_times(nprod, ncons, wl)["total"]),
        ("LowFive file mode", run_lowfive_file,
         lambda: lowfive_file_time(nprod, ncons, wl)),
        ("Pure HDF5 file", run_pure_hdf5,
         lambda: pure_hdf5_time(nprod, ncons, wl)),
    ]
    rows = []
    for name, driver, model in runs:
        res = driver(nprod, ncons, wl)
        rows.append([name, res.vtime, model(), res.messages,
                     "yes" if res.validated else "NO"])
        print(f"  ran {name}: {res.vtime:.3f}s")

    print()
    print(format_table(
        ["transport", "executed (s)", "modeled (s)", "messages",
         "validated"],
        rows,
        title=f"Executed transport comparison at {args.procs} processes "
              "(simulated Theta KNL)",
    ))


if __name__ == "__main__":
    main()
