#!/usr/bin/env python
"""Chaos demo: a seeded fault plan shaking the index-serve-query run.

The same producer/consumer exchange is executed three times:

1. fault-free, as the baseline;
2. under a `FaultPlan` injecting message delays, duplicates, a slow
   wire, lost RPCs and a degraded OST -- the results must still be
   byte-identical to the baseline (that is the transport's recovery
   story), only the virtual timeline stretches;
3. with the *same seed* again, to show the chaos itself is
   deterministic: identical injected-fault counts, identical payloads
   (with several concurrent consumers the serving *order* -- and hence
   the exact clock -- can vary; single-consumer runs replay exactly,
   see tests/faults/test_chaos_properties.py).

Every injected fault is visible in the run's observability record --
as `faults.injected` counters and as instants in the exported
Chrome/Perfetto trace.

Run:  python examples/chaos_run.py
"""

import numpy as np

import repro.h5 as h5
from repro.faults import FaultPlan, MessageFaultRule, OstSlowRule, RpcFaultRule
from repro.h5.native import NativeVOL
from repro.lowfive import DistMetadataVOL
from repro.pfs import PFSStore
from repro.synth import (
    consumer_grid_selection,
    grid_values,
    producer_grid_selection,
)
from repro.workflow import Workflow

GRID = (16, 12, 8)
NPROD, NCONS = 4, 2
SEED = 1234


def make_plan():
    """One shake of every recoverable fault class (fresh state)."""
    return FaultPlan(
        SEED,
        messages=[
            # Producer 0's outbound wire is 3x slow; everything else
            # sees random delays and occasional duplicate delivery.
            MessageFaultRule(src=0, wire_factor=3.0,
                             p_delay=0.3, max_delay=2e-3),
            MessageFaultRule(p_delay=0.3, max_delay=2e-3,
                             p_duplicate=0.2),
        ],
        rpcs=[
            # The first two read RPCs vanish; retries absorb them.
            RpcFaultRule(fn="read", lose_first=2),
        ],
        osts=[OstSlowRule(ost=1, factor=0.25)],
    )


def run(faults=None, trace=False):
    def make_vol(ctx, role, peer):
        def factory():
            vol = DistMetadataVOL(comm=ctx.comm, under=NativeVOL(PFSStore()))
            vol.set_memory("o.h5")
            if role == "producer":
                vol.serve_on_close("o.h5", ctx.intercomm(peer))
            else:
                vol.set_consumer("o.h5", ctx.intercomm(peer))
            return vol

        return ctx.singleton("vol", factory)

    def producer(ctx):
        vol = make_vol(ctx, "producer", "consumer")
        f = h5.File("o.h5", "w", comm=ctx.comm, vol=vol)
        d = f.create_dataset("grid", shape=GRID, dtype=h5.UINT64)
        sel = producer_grid_selection(GRID, ctx.rank, ctx.size)
        d.write(grid_values(sel, GRID), file_select=sel)
        f.close()
        return True

    def consumer(ctx):
        vol = make_vol(ctx, "consumer", "producer")
        f = h5.File("o.h5", "r", comm=ctx.comm, vol=vol)
        sel = consumer_grid_selection(GRID, ctx.rank, ctx.size)
        vals = f["grid"].read(sel, reshape=False)
        f.close()
        return np.asarray(vals).tobytes()

    wf = Workflow()
    wf.add_task("producer", NPROD, producer)
    wf.add_task("consumer", NCONS, consumer)
    wf.add_link("producer", "consumer")
    return wf.run(faults=faults, trace=trace)


def injected(res):
    """Injected-fault counters from the run's metrics, by kind."""
    out = {}
    for (kind, key), v in res.obs.metrics.snapshot().data.items():
        if kind == "counter" and key[0] == "faults.injected":
            labels = dict(key[1])
            out[labels["kind"]] = out.get(labels["kind"], 0) + v.total
    return out


def main():
    clean = run()
    print(f"fault-free baseline: {clean.vtime * 1e3:9.3f} simulated ms")

    chaotic = run(faults=make_plan(), trace=True)
    print(f"under the plan:      {chaotic.vtime * 1e3:9.3f} simulated ms")
    assert chaotic.returns["consumer"] == clean.returns["consumer"], \
        "recoverable faults must not change the data"
    print("consumer payloads are byte-identical to the baseline")

    print("\ninjected faults (from faults.injected counters):")
    for kind, n in sorted(injected(chaotic).items()):
        print(f"  {kind:<14} {int(n):4d}")

    replay = run(faults=make_plan())
    assert injected(replay) == injected(chaotic), \
        "same seed must inject the same faults"
    assert replay.returns == {k: list(v)
                              for k, v in chaotic.returns.items()}
    print(f"\nsame-seed replay:    {replay.vtime * 1e3:9.3f} simulated ms "
          "(identical injections, identical payloads)")

    # A degraded OST is a *model* fault: apply it to a Lustre config to
    # see the straggler drag the stripe's aggregate bandwidth.
    from repro.pfs.lustre import LustreModel

    base = LustreModel()
    slow = make_plan().lustre_model(base)
    print(f"\nOST 1 at 25% speed: stripe peak "
          f"{base.stripe_peak() / 1e9:.1f} -> "
          f"{slow.stripe_peak() / 1e9:.1f} GB/s")

    out = "chaos_run_trace.json"
    chaotic.obs.write_chrome_trace(out, chaotic.trace)
    print(f"\nChrome trace written to {out} -- fault.* instants mark "
          "every injection (open at https://ui.perfetto.dev)")


if __name__ == "__main__":
    main()
