#!/usr/bin/env python
"""Fan-out with combined transport modes: one producer feeds two
consumer tasks in situ while *also* checkpointing to physical storage.

Demonstrates three LowFive features from the paper at once:

- fan-out in the task graph (two consumer tasks, one producer),
- combining memory mode and file mode for the same file (in situ
  transport + physical checkpoint),
- zero-copy (shallow) dataset ownership for the large dataset.

Run:  python examples/fan_out_checkpoint.py
"""

import numpy as np

import repro.h5 as h5
from repro.h5.native import NativeVOL
from repro.lowfive import DistMetadataVOL
from repro.pfs import PFSStore
from repro.workflow import Workflow

GRID = (24, 24)
STORE = PFSStore()


def producer(ctx):
    def make_vol():
        vol = DistMetadataVOL(comm=ctx.comm, under=NativeVOL(STORE))
        vol.set_memory("state.h5")     # in situ to both consumers ...
        vol.set_passthru("state.h5")   # ... and checkpointed to the PFS
        vol.set_zero_copy("state.h5", "/field")  # shallow reference
        vol.serve_on_close("state.h5", ctx.intercomm("stats"))
        vol.serve_on_close("state.h5", ctx.intercomm("viz"))
        return vol

    vol = ctx.singleton("vol", make_vol)
    f = h5.File("state.h5", "w", comm=ctx.comm, vol=vol)
    d = f.create_dataset("field", shape=GRID, dtype=h5.FLOAT64)
    rows = GRID[0] // ctx.size
    r0 = ctx.rank * rows
    # Note: with zero-copy the buffer must stay valid until close.
    buf = np.sin(np.arange(r0 * GRID[1], (r0 + rows) * GRID[1]) / 7.0)
    d.write(buf, file_select=h5.hyperslab((r0, 0), (rows, GRID[1])))
    f.close()  # serves both consumer tasks, then returns


def make_consumer(name, peer="producer"):
    def consumer(ctx):
        def make_vol():
            vol = DistMetadataVOL(comm=ctx.comm, under=NativeVOL(STORE))
            vol.set_memory("state.h5")
            vol.set_consumer("state.h5", ctx.intercomm(peer))
            return vol

        vol = ctx.singleton("vol", make_vol)
        f = h5.File("state.h5", "r", comm=ctx.comm, vol=vol)
        d = f["field"]
        cols = GRID[1] // ctx.size
        c0 = ctx.rank * cols
        block = d.read(h5.hyperslab((0, c0), (GRID[0], cols)))
        f.close()
        if name == "stats":
            return float(np.mean(block)), float(np.std(block))
        return float(np.min(block)), float(np.max(block))

    return consumer


def main():
    wf = Workflow()
    wf.add_task("producer", 3, producer)
    wf.add_task("stats", 2, make_consumer("stats"))
    wf.add_task("viz", 1, make_consumer("viz"))
    wf.add_link("producer", "stats")
    wf.add_link("producer", "viz")
    result = wf.run(timeout=120.0)

    print("stats task (mean, std) per rank: ",
          [(round(a, 3), round(b, 3)) for a, b in result.returns["stats"]])
    print("viz task (min, max):             ",
          [(round(a, 3), round(b, 3)) for a, b in result.returns["viz"]])
    print(f"checkpoint on PFS: {STORE.listdir()} "
          f"({STORE.size('state.h5')} bytes)")
    print(f"simulated time: {result.vtime:.3f}s")

    # The checkpoint is independently readable by a plain native VOL.
    with h5.File("state.h5", "r", vol=NativeVOL(STORE)) as f:
        full = f["field"].read()
    assert full.shape == GRID


if __name__ == "__main__":
    main()
