#!/usr/bin/env python
"""Fine-grained phase profiling of LowFive's transport, via repro.obs.

The paper's future work: "We are working on profiling our communication
at finer grain in order to see where the remaining bottlenecks are."
This example runs the synthetic benchmark twice -- with the paper's
index-serve-query protocol and with the producer-push extension -- and
prints the per-phase breakdown from the run's observability record
(``WorkflowResult.obs``): every LowFive phase is a span, so the
breakdown, the timeline, and a Chrome/Perfetto trace all come from the
same telemetry.

Run:  python examples/profiling_breakdown.py
"""

import numpy as np

import repro.h5 as h5
from repro.h5.native import NativeVOL
from repro.lowfive import DistMetadataVOL
from repro.pfs import PFSStore
from repro.synth import (
    SyntheticWorkload,
    consumer_grid_selection,
    grid_values,
    producer_grid_selection,
    validate_grid,
)
from repro.workflow import Workflow

WL = SyntheticWorkload(grid_points_per_proc=200_000,
                       particles_per_proc=200_000)
NPROD, NCONS = 6, 2
SHAPE = WL.grid_shape(NPROD)
RANKS = {"producer": range(NPROD), "consumer": range(NPROD, NPROD + NCONS)}


def run(push: bool, trace: bool = False):
    def make_vol(ctx, role, peer):
        def factory():
            vol = DistMetadataVOL(comm=ctx.comm, under=NativeVOL(PFSStore()))
            vol.set_memory("o.h5")
            if push:
                vol.enable_push("o.h5")
            if role == "producer":
                vol.serve_on_close("o.h5", ctx.intercomm(peer))
            else:
                vol.set_consumer("o.h5", ctx.intercomm(peer))
            return vol

        return ctx.singleton("vol", factory)

    def producer(ctx):
        vol = make_vol(ctx, "producer", "consumer")
        f = h5.File("o.h5", "w", comm=ctx.comm, vol=vol)
        d = f.create_dataset("grid", shape=SHAPE, dtype=h5.UINT64)
        sel = producer_grid_selection(SHAPE, ctx.rank, ctx.size)
        d.write(grid_values(sel, SHAPE), file_select=sel)
        f.close()
        return True

    def consumer(ctx):
        vol = make_vol(ctx, "consumer", "producer")
        f = h5.File("o.h5", "r", comm=ctx.comm, vol=vol)
        sel = consumer_grid_selection(SHAPE, ctx.rank, ctx.size)
        vals = f["grid"].read(sel, reshape=False)
        assert validate_grid(sel, SHAPE, vals)
        f.close()
        return True

    wf = Workflow()
    wf.add_task("producer", NPROD, producer)
    wf.add_task("consumer", NCONS, consumer)
    wf.add_link("producer", "consumer")
    return wf.run(trace=trace)


def show(label, res):
    print(f"\n=== {label}: completion {res.vtime:.3f} simulated s ===")
    spans = res.obs.spans
    for side, ranks in RANKS.items():
        # Per-rank total of each lowfive phase, averaged over the task.
        phases = {}
        for r in ranks:
            for s in spans.spans(cat="lowfive", rank=r):
                phases.setdefault(s.labels["phase"], {}) \
                    .setdefault(r, 0.0)
                phases[s.labels["phase"]][r] += s.duration
        print(f"  {side}:")
        for k in sorted(phases):
            vals = list(phases[k].values())
            print(f"    {k:<14} mean {np.mean(vals) * 1e3:8.2f} ms   "
                  f"max {np.max(vals) * 1e3:8.2f} ms")


def main():
    res_q = run(push=False, trace=True)
    show("index-serve-query (paper protocol)", res_q)
    res_p = run(push=True)
    show("producer push (extension)", res_p)
    print(f"\npush saves {(res_q.vtime - res_p.vtime) * 1e3:.2f} "
          f"simulated ms "
          f"({100 * (1 - res_p.vtime / res_q.vtime):.1f}%) on this shape")

    # The same telemetry renders as an ASCII timeline (spans paint
    # their extents; point events draw on top) ...
    from repro.tools import (
        communication_matrix,
        render_matrix,
        render_timeline,
    )

    nprocs = NPROD + NCONS
    events = res_q.obs.spans.spans(cat="lowfive") + res_q.trace
    print()
    print(render_timeline(events, nprocs, width=64,
                          title="Transport timeline (query protocol)"))
    m = communication_matrix(res_q.trace, nprocs)
    print(render_matrix(m, title="Bytes sent rank-to-rank "
                                 f"(ranks 0-{NPROD - 1} produce, "
                                 f"{NPROD}-{nprocs - 1} consume)"))

    # ... and as a Chrome/Perfetto trace for interactive digging.
    out = "profiling_breakdown_trace.json"
    res_q.obs.write_chrome_trace(out, res_q.trace)
    print(f"Chrome trace written to {out} "
          "(open at https://ui.perfetto.dev)")


if __name__ == "__main__":
    main()
