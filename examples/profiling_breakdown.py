#!/usr/bin/env python
"""Fine-grained phase profiling of LowFive's transport.

The paper's future work: "We are working on profiling our communication
at finer grain in order to see where the remaining bottlenecks are."
This example runs the synthetic benchmark twice -- with the paper's
index-serve-query protocol and with the producer-push extension -- and
prints the per-phase breakdown each rank's VOL recorded, making the
protocol's synchronization costs visible.

Run:  python examples/profiling_breakdown.py
"""

import numpy as np

import repro.h5 as h5
from repro.h5.native import NativeVOL
from repro.lowfive import DistMetadataVOL
from repro.pfs import PFSStore
from repro.synth import (
    SyntheticWorkload,
    consumer_grid_selection,
    grid_values,
    producer_grid_selection,
    validate_grid,
)
from repro.workflow import Workflow

WL = SyntheticWorkload(grid_points_per_proc=200_000,
                       particles_per_proc=200_000)
NPROD, NCONS = 6, 2
SHAPE = WL.grid_shape(NPROD)


def run(push: bool, trace: bool = False):
    stats = {"producer": [], "consumer": []}

    def make_vol(ctx, role, peer):
        def factory():
            vol = DistMetadataVOL(comm=ctx.comm, under=NativeVOL(PFSStore()))
            vol.set_memory("o.h5")
            if push:
                vol.enable_push("o.h5")
            if role == "producer":
                vol.serve_on_close("o.h5", ctx.intercomm(peer))
            else:
                vol.set_consumer("o.h5", ctx.intercomm(peer))
            return vol

        return ctx.singleton("vol", factory)

    def producer(ctx):
        vol = make_vol(ctx, "producer", "consumer")
        f = h5.File("o.h5", "w", comm=ctx.comm, vol=vol)
        d = f.create_dataset("grid", shape=SHAPE, dtype=h5.UINT64)
        sel = producer_grid_selection(SHAPE, ctx.rank, ctx.size)
        d.write(grid_values(sel, SHAPE), file_select=sel)
        f.close()
        return dict(vol.phase_stats(ctx.comm).seconds)

    def consumer(ctx):
        vol = make_vol(ctx, "consumer", "producer")
        f = h5.File("o.h5", "r", comm=ctx.comm, vol=vol)
        sel = consumer_grid_selection(SHAPE, ctx.rank, ctx.size)
        vals = f["grid"].read(sel, reshape=False)
        assert validate_grid(sel, SHAPE, vals)
        f.close()
        return dict(vol.phase_stats(ctx.comm).seconds)

    wf = Workflow()
    wf.add_task("producer", NPROD, producer)
    wf.add_task("consumer", NCONS, consumer)
    wf.add_link("producer", "consumer")
    res = wf.run(trace=trace)
    return res, res.returns["producer"], res.returns["consumer"]


def show(label, res, prod_stats, cons_stats):
    print(f"\n=== {label}: completion {res.vtime:.3f} simulated s ===")
    for side, stats in (("producer", prod_stats), ("consumer", cons_stats)):
        # Average each phase across the task's ranks.
        phases = {}
        for s in stats:
            for k, v in s.items():
                phases.setdefault(k, []).append(v)
        print(f"  {side}:")
        for k in sorted(phases):
            vals = phases[k]
            print(f"    {k:<14} mean {np.mean(vals) * 1e3:8.2f} ms   "
                  f"max {np.max(vals) * 1e3:8.2f} ms")


def main():
    res_q, pq, cq = run(push=False, trace=True)
    show("index-serve-query (paper protocol)", res_q, pq, cq)
    res_p, pp, cp = run(push=True)
    show("producer push (extension)", res_p, pp, cp)
    print(f"\npush saves {(res_q.vtime - res_p.vtime) * 1e3:.2f} "
          f"simulated ms "
          f"({100 * (1 - res_p.vtime / res_q.vtime):.1f}%) on this shape")

    # The traced run also yields a communication picture (repro.tools).
    from repro.tools import (
        communication_matrix,
        render_matrix,
        render_timeline,
    )

    nprocs = NPROD + NCONS
    print()
    print(render_timeline(res_q.trace, nprocs, width=64,
                          title="Communication timeline (query protocol)"))
    m = communication_matrix(res_q.trace, nprocs)
    print(render_matrix(m, title="Bytes sent rank-to-rank "
                                 f"(ranks 0-{NPROD - 1} produce, "
                                 f"{NPROD}-{nprocs - 1} consume)"))


if __name__ == "__main__":
    main()
