#!/usr/bin/env python
"""Cosmology pipeline: a Nyx-like simulation coupled in situ to a
Reeber-like halo finder (the paper's Sec. IV-C use case).

The simulation evolves particles on an AMReX-style box array and writes
baryon-density snapshots through unmodified h5 calls; the analysis task
reads each snapshot in situ and reports the halos it finds. Compare the
same pipeline through physical files by passing ``--file-mode``.

Run:  python examples/cosmology_pipeline.py [--file-mode]
"""

import argparse

import numpy as np

import repro.h5 as h5
from repro.cosmo import NyxProxy, find_halos_distributed, write_snapshot_h5
from repro.cosmo.nyx import DENSITY_PATH
from repro.diy import Bounds, RegularDecomposer
from repro.h5.native import NativeVOL
from repro.lowfive import DistMetadataVOL
from repro.pfs import PFSStore
from repro.workflow import Workflow

GRID_SIZE = 32
STEPS = 2
THRESHOLD = 2.5
STORE = PFSStore()  # the simulated parallel file system (shared)


def make_vol(ctx, role, peer, file_mode):
    def factory():
        vol = DistMetadataVOL(comm=ctx.comm, under=NativeVOL(STORE))
        if file_mode:
            vol.set_passthru("snap_*.h5")  # transport via the PFS
        else:
            vol.set_memory("snap_*.h5")    # transport in situ
        if role == "producer":
            vol.serve_on_close("snap_*.h5", ctx.intercomm(peer))
        else:
            vol.set_consumer("snap_*.h5", ctx.intercomm(peer))
        return vol

    return ctx.singleton("vol", factory)


def nyx_task(file_mode):
    def run(ctx):
        vol = make_vol(ctx, "producer", "reeber", file_mode)
        sim = NyxProxy(GRID_SIZE, ctx.comm, seed=7, max_grid_size=8)
        for step in range(STEPS):
            density = sim.advance()
            write_snapshot_h5(f"snap_{step}.h5", density, ctx.comm, vol,
                              step=step)
            if ctx.rank == 0:
                print(f"[nyx] snapshot {step} written "
                      f"({'file' if file_mode else 'in situ'})")
    return run


def reeber_task(file_mode):
    def run(ctx):
        vol = make_vol(ctx, "consumer", "nyx", file_mode)
        halo_counts = []
        for step in range(STEPS):
            f = h5.File(f"snap_{step}.h5", "r", comm=ctx.comm, vol=vol)
            dset = f[DENSITY_PATH]
            dec = RegularDecomposer(dset.shape, ctx.size)
            if ctx.rank < dec.ngrid_blocks:
                b = dec.block_bounds(ctx.rank)
            else:
                b = Bounds([0] * 3, [0] * 3)
            block = np.asarray(dset.read(b.to_selection(dset.shape)))
            f.close()
            halos = find_halos_distributed(ctx.comm, block, b, dset.shape,
                                           THRESHOLD)
            halo_counts.append(len(halos))
            if ctx.rank == 0:
                top = halos[:3]
                print(f"[reeber] step {step}: {len(halos)} halos; top by "
                      f"mass: "
                      + ", ".join(f"m={h_.mass:.0f}@{h_.peak_cell}"
                                  for h_ in top))
        return halo_counts
    return run


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--file-mode", action="store_true",
                    help="transport snapshots via the (simulated) PFS "
                         "instead of in situ")
    args = ap.parse_args()

    wf = Workflow()
    wf.add_task("nyx", nprocs=6, main=nyx_task(args.file_mode))
    wf.add_task("reeber", nprocs=3, main=reeber_task(args.file_mode))
    wf.add_link("nyx", "reeber")
    result = wf.run(timeout=180.0)

    counts = result.returns["reeber"][0]
    print(f"\nmode: {'file' if args.file_mode else 'in situ'}; "
          f"simulated time {result.vtime:.3f}s; "
          f"halos per step: {counts}")
    if args.file_mode:
        print(f"files on the PFS: {STORE.listdir()}")
    # Every Reeber rank agrees on the global halo list.
    for other in result.returns["reeber"][1:]:
        assert other == counts


if __name__ == "__main__":
    main()
