"""Legacy setuptools shim (no `wheel` package available offline)."""

from setuptools import setup

setup()
