"""Grid and particle workload generators with position-encoded values."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro.h5 as h5
from repro.diy import RegularDecomposer
from repro.h5.selection import HyperslabSelection, Selection

#: Grid scalars: 64-bit unsigned integers (8 bytes each; paper Sec. IV-B).
GRID_DTYPE = h5.UINT64
#: Particles: 3-d vectors of 32-bit floats (12 bytes each).
PARTICLE_DTYPE = h5.FLOAT32

#: float32 has a 24-bit significand; particle ids wrap at this modulus so
#: the encoded position is exactly representable.
_PARTICLE_MOD = 1 << 23


def grid_shape_for(points_per_proc: int, nprod: int) -> tuple[int, int, int]:
    """A 3-d grid with ~``points_per_proc`` points per producer.

    Producers decompose the grid along the first axis (row slabs, as in
    paper Fig. 3's producer side), so the shape is
    ``(nprod * nx, ny, nz)`` with ``nx*ny*nz ~= points_per_proc`` chosen
    near-cubic.
    """
    side = max(1, round(points_per_proc ** (1.0 / 3.0)))
    nx = side
    ny = side
    nz = max(1, points_per_proc // (nx * ny))
    return (nprod * nx, ny, nz)


def producer_grid_selection(shape, rank: int, nprod: int) -> Selection:
    """Row-slab written by producer ``rank`` (first-axis decomposition)."""
    nx_total = shape[0]
    base, rem = divmod(nx_total, nprod)
    start = rank * base + min(rank, rem)
    count = base + (1 if rank < rem else 0)
    starts = (start,) + (0,) * (len(shape) - 1)
    counts = (count,) + tuple(shape[1:])
    return HyperslabSelection(shape, starts, counts)


def consumer_grid_selection(shape, rank: int, ncons: int) -> Selection:
    """Block read by consumer ``rank``: a *different* decomposition (the
    regular block grid), exercising genuine n-to-m redistribution."""
    dec = RegularDecomposer(shape, ncons)
    if rank >= dec.ngrid_blocks:
        from repro.h5.selection import NoneSelection

        return NoneSelection(tuple(shape))
    return dec.block_bounds(rank).to_selection(shape)


def producer_particle_selection(n_total: int, rank: int, nprod: int) -> Selection:
    """Contiguous particle range written by producer ``rank``."""
    base, rem = divmod(n_total, nprod)
    start = rank * base + min(rank, rem)
    count = base + (1 if rank < rem else 0)
    return HyperslabSelection((n_total, 3), (start, 0), (count, 3))


def consumer_particle_selection(n_total: int, rank: int, ncons: int) -> Selection:
    """Contiguous particle range read by consumer ``rank``."""
    return producer_particle_selection(n_total, rank, ncons)


def grid_values(selection: Selection, shape) -> np.ndarray:
    """Values for ``selection``: each point's global row-major index."""
    coords = selection.coords()
    if coords.shape[0] == 0:
        return np.empty(0, dtype=GRID_DTYPE.np)
    return np.ravel_multi_index(
        tuple(coords.T), tuple(shape)
    ).astype(GRID_DTYPE.np)


def validate_grid(selection: Selection, shape, values: np.ndarray) -> bool:
    """Check that redistributed grid values encode their position."""
    expected = grid_values(selection, shape)
    return np.array_equal(np.asarray(values).reshape(-1), expected)


def particle_values(selection: Selection) -> np.ndarray:
    """Values for a particle-range selection over the (N, 3) dataset.

    Particle ``i`` is the vector ``(e, e+1/4, e+1/2)`` with
    ``e = i mod 2**23`` (exactly representable in float32).
    """
    coords = selection.coords()
    if coords.shape[0] == 0:
        return np.empty(0, dtype=PARTICLE_DTYPE.np)
    ids = coords[:, 0] % _PARTICLE_MOD
    comp = coords[:, 1].astype(np.float32) * 0.25
    return (ids.astype(np.float32) + comp).astype(PARTICLE_DTYPE.np)


def validate_particles(selection: Selection, values: np.ndarray) -> bool:
    """Check that redistributed particle values encode their position."""
    expected = particle_values(selection)
    return np.array_equal(np.asarray(values).reshape(-1), expected)


@dataclass(frozen=True)
class SyntheticWorkload:
    """The paper's weak-scaling workload (Table I).

    Per producer process: ``grid_points_per_proc`` grid scalars (8 B
    each) and ``particles_per_proc`` particles (12 B each) -- 19 MiB at
    the paper's 1e6/1e6. Three quarters of the job's processes produce,
    one quarter consumes.

    ``scale`` shrinks the per-process element counts for executed runs
    while :meth:`virtual_bytes` still reports the full-size volume for
    cost accounting and table generation.
    """

    grid_points_per_proc: int = 10**6
    particles_per_proc: int = 10**6

    def grid_shape(self, nprod: int) -> tuple[int, int, int]:
        """Global 3-d grid shape for ``nprod`` producers."""
        return grid_shape_for(self.grid_points_per_proc, nprod)

    def total_particles(self, nprod: int) -> int:
        """Global particle count for ``nprod`` producers."""
        return self.particles_per_proc * nprod

    def total_grid_points(self, nprod: int) -> int:
        """Global grid points for ``nprod`` producers."""
        s = self.grid_shape(nprod)
        return int(np.prod(s))

    def total_bytes(self, nprod: int) -> int:
        """Global data volume (grid + particles), in bytes."""
        return (self.total_grid_points(nprod) * GRID_DTYPE.itemsize
                + self.total_particles(nprod) * 3 * PARTICLE_DTYPE.itemsize)

    @staticmethod
    def split_procs(total: int) -> tuple[int, int]:
        """Paper Table I: 3/4 of processes produce, 1/4 consume."""
        ncons = max(1, total // 4)
        nprod = total - ncons
        return nprod, ncons
