"""Synthetic benchmark workloads (paper Sec. IV-B).

Two datasets: a regular grid of 64-bit unsigned integer scalars and a
list of particles (3-d float32 vectors). "The values of the grid points
and particles encode their global position in the grid and in the global
vector of particles, so that the consumer can validate that data have
been correctly redistributed." The generators and validators here
implement exactly that.
"""

from repro.synth.workloads import (
    GRID_DTYPE,
    PARTICLE_DTYPE,
    SyntheticWorkload,
    consumer_grid_selection,
    consumer_particle_selection,
    grid_shape_for,
    grid_values,
    particle_values,
    producer_grid_selection,
    producer_particle_selection,
    validate_grid,
    validate_particles,
)

__all__ = [
    "GRID_DTYPE",
    "PARTICLE_DTYPE",
    "SyntheticWorkload",
    "consumer_grid_selection",
    "consumer_particle_selection",
    "grid_shape_for",
    "grid_values",
    "particle_values",
    "producer_grid_selection",
    "producer_particle_selection",
    "validate_grid",
    "validate_particles",
]
