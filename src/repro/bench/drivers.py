"""Executed (simmpi) drivers for the paper's synthetic benchmark.

Every driver couples one producer task with one consumer task (paper
Sec. IV-B), generates the grid + particles workload with
position-encoded values, transports it with one of the evaluated
mechanisms, validates the redistribution, and returns the simulated
completion time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro.h5 as h5
from repro.baselines import (
    Container,
    DataSpaces,
    Field,
    REDIST_BBOX,
    REDIST_CONTIGUOUS,
    dataspaces_server_main,
    pure_mpi_consumer,
    pure_mpi_producer,
    redistribute_consumer,
    redistribute_producer,
)
from repro.h5.native import NativeVOL
from repro.lowfive import DistMetadataVOL
from repro.obs import metrics_dump
from repro.pfs import PFSStore
from repro.perfmodel.transports import Machine, THETA_KNL
from repro.synth import (
    SyntheticWorkload,
    consumer_grid_selection,
    consumer_particle_selection,
    grid_values,
    particle_values,
    producer_grid_selection,
    producer_particle_selection,
    validate_grid,
    validate_particles,
)
from repro.workflow import Workflow


@dataclass
class ExecutedResult:
    """One executed benchmark point.

    ``metrics`` is the run's plain-dict obs metrics dump (counters,
    gauges, histograms from every instrumented layer); ``None`` only
    for hand-built results. ``attribution`` is the causal summary
    (:meth:`repro.obs.critpath.CausalReport.summary`): critical-path
    category/phase shares, wait-state totals, conservation status.
    """

    nprod: int
    ncons: int
    vtime: float
    validated: bool
    messages: int
    bytes_sent: int
    metrics: dict | None = None
    attribution: dict | None = None


def _check(returns) -> bool:
    return all(bool(r) for r in returns)


def _run(wf: Workflow, machine: Machine, consumer_name: str = "consumer",
         timeout: float = 120.0) -> tuple:
    res = wf.run(model=machine.net, timeout=timeout)
    return res, _check(res.returns[consumer_name])


def _finish(nprod, ncons, res, ok) -> ExecutedResult:
    if not ok:
        raise AssertionError("consumer-side validation failed")
    metrics = metrics_dump(res.obs.metrics) if res.obs is not None else None
    attribution = None
    if res.obs is not None and res.clocks:
        attribution = res.causal_report().summary()
    return ExecutedResult(nprod, ncons, res.vtime, ok,
                          res.messages, res.bytes_sent, metrics,
                          attribution)


# -- LowFive ----------------------------------------------------------------


def _lowfive_wf(nprod: int, ncons: int, wl: SyntheticWorkload,
                machine: Machine, mode: str, store: PFSStore):
    shape = wl.grid_shape(nprod)
    npart = wl.total_particles(nprod)

    def make_vol(ctx, role, peer):
        def factory():
            vol = DistMetadataVOL(
                comm=ctx.comm, under=NativeVOL(store, machine.lustre),
                costs=machine.lf,
            )
            if mode in ("memory", "both"):
                vol.set_memory("out.h5")
            if mode in ("file", "both"):
                vol.set_passthru("out.h5")
            if role == "producer":
                vol.serve_on_close("out.h5", ctx.intercomm(peer))
            else:
                vol.set_consumer("out.h5", ctx.intercomm(peer))
            return vol

        return ctx.singleton("vol", factory)

    def producer(ctx):
        vol = make_vol(ctx, "producer", "consumer")
        f = h5.File("out.h5", "w", comm=ctx.comm, vol=vol)
        grid = f.create_dataset("group1/grid", shape=shape, dtype=h5.UINT64)
        gsel = producer_grid_selection(shape, ctx.rank, ctx.size)
        grid.write(grid_values(gsel, shape), file_select=gsel)
        parts = f.create_dataset("group2/particles", shape=(npart, 3),
                                 dtype=h5.FLOAT32)
        psel = producer_particle_selection(npart, ctx.rank, ctx.size)
        parts.write(particle_values(psel), file_select=psel)
        f.close()
        return True

    def consumer(ctx):
        vol = make_vol(ctx, "consumer", "producer")
        f = h5.File("out.h5", "r", comm=ctx.comm, vol=vol)
        gsel = consumer_grid_selection(shape, ctx.rank, ctx.size)
        gv = f["group1/grid"].read(gsel, reshape=False)
        psel = consumer_particle_selection(npart, ctx.rank, ctx.size)
        pv = f["group2/particles"].read(psel, reshape=False)
        f.close()
        return (validate_grid(gsel, shape, gv)
                and validate_particles(psel, pv))

    wf = Workflow()
    wf.add_task("producer", nprod, producer)
    wf.add_task("consumer", ncons, consumer)
    wf.add_link("producer", "consumer")
    return wf


def run_lowfive_memory(nprod: int, ncons: int,
                       wl: SyntheticWorkload | None = None,
                       machine: Machine = THETA_KNL) -> ExecutedResult:
    """LowFive memory mode (in situ over MPI)."""
    wl = wl or SyntheticWorkload()
    wf = _lowfive_wf(nprod, ncons, wl, machine, "memory", PFSStore())
    res, ok = _run(wf, machine)
    return _finish(nprod, ncons, res, ok)


def run_lowfive_file(nprod: int, ncons: int,
                     wl: SyntheticWorkload | None = None,
                     machine: Machine = THETA_KNL) -> ExecutedResult:
    """LowFive file mode (transport via the parallel file system)."""
    wl = wl or SyntheticWorkload()
    wf = _lowfive_wf(nprod, ncons, wl, machine, "file", PFSStore())
    res, ok = _run(wf, machine, timeout=240.0)
    return _finish(nprod, ncons, res, ok)


# -- pure HDF5 (no LowFive) ------------------------------------------------------


def run_pure_hdf5(nprod: int, ncons: int,
                  wl: SyntheticWorkload | None = None,
                  machine: Machine = THETA_KNL) -> ExecutedResult:
    """Producer writes an HDF5 file, consumer reads it, no VOL plugin.

    The consumer polls the store for the finished file (the paper runs
    them as separate jobs; in situ ordering is not available here).
    """
    wl = wl or SyntheticWorkload()
    store = PFSStore()
    shape = wl.grid_shape(nprod)
    npart = wl.total_particles(nprod)

    def producer(ctx):
        vol = ctx.singleton("vol", lambda: NativeVOL(store, machine.lustre))
        f = h5.File("out.h5", "w", comm=ctx.comm, vol=vol)
        grid = f.create_dataset("group1/grid", shape=shape, dtype=h5.UINT64)
        gsel = producer_grid_selection(shape, ctx.rank, ctx.size)
        grid.write(grid_values(gsel, shape), file_select=gsel)
        parts = f.create_dataset("group2/particles", shape=(npart, 3),
                                 dtype=h5.FLOAT32)
        psel = producer_particle_selection(npart, ctx.rank, ctx.size)
        parts.write(particle_values(psel), file_select=psel)
        f.close()
        ctx.intercomm("consumer").send(b"done", dest=0) \
            if ctx.rank == 0 else None
        return True

    def consumer(ctx):
        if ctx.rank == 0:
            ctx.intercomm("producer").recv()  # wait for the file
        ctx.comm.barrier()
        vol = ctx.singleton("vol", lambda: NativeVOL(store, machine.lustre))
        f = h5.File("out.h5", "r", comm=ctx.comm, vol=vol)
        gsel = consumer_grid_selection(shape, ctx.rank, ctx.size)
        gv = f["group1/grid"].read(gsel, reshape=False)
        psel = consumer_particle_selection(npart, ctx.rank, ctx.size)
        pv = f["group2/particles"].read(psel, reshape=False)
        f.close()
        return (validate_grid(gsel, shape, gv)
                and validate_particles(psel, pv))

    wf = Workflow()
    wf.add_task("producer", nprod, producer)
    wf.add_task("consumer", ncons, consumer)
    wf.add_link("producer", "consumer")
    res, ok = _run(wf, machine, timeout=240.0)
    return _finish(nprod, ncons, res, ok)


# -- hand-written MPI ---------------------------------------------------------------


def _pure_mpi_wf(nprod: int, ncons: int, wl: SyntheticWorkload,
                 machine: Machine):
    shape = wl.grid_shape(nprod)
    npart = wl.total_particles(nprod)

    def producer(ctx):
        inter = ctx.intercomm("consumer")
        gsel = producer_grid_selection(shape, ctx.rank, ctx.size)
        pure_mpi_producer(inter, gsel, grid_values(gsel, shape), [
            consumer_grid_selection(shape, r, ncons) for r in range(ncons)
        ], tag=901, epoch_start=True)
        psel = producer_particle_selection(npart, ctx.rank, ctx.size)
        pure_mpi_producer(inter, psel, particle_values(psel), [
            consumer_particle_selection(npart, r, ncons)
            for r in range(ncons)
        ], tag=902, epoch_start=False)
        return True

    def consumer(ctx):
        inter = ctx.intercomm("producer")
        gsel = consumer_grid_selection(shape, ctx.rank, ctx.size)
        gv = pure_mpi_consumer(inter, gsel, np.uint64, tag=901,
                                   epoch_end=False)
        psel = consumer_particle_selection(npart, ctx.rank, ctx.size)
        pv = pure_mpi_consumer(inter, psel, np.float32, tag=902,
                                   epoch_end=True)
        return (validate_grid(gsel, shape, gv)
                and validate_particles(psel, pv))

    wf = Workflow()
    wf.add_task("producer", nprod, producer)
    wf.add_task("consumer", ncons, consumer)
    wf.add_link("producer", "consumer")
    return wf


def run_pure_mpi(nprod: int, ncons: int,
                 wl: SyntheticWorkload | None = None,
                 machine: Machine = THETA_KNL) -> ExecutedResult:
    """The paper's hand-written MPI redistribution."""
    wl = wl or SyntheticWorkload()
    wf = _pure_mpi_wf(nprod, ncons, wl, machine)
    res, ok = _run(wf, machine)
    return _finish(nprod, ncons, res, ok)


# -- DataSpaces ------------------------------------------------------------------------


def run_dataspaces(nprod: int, ncons: int,
                   wl: SyntheticWorkload | None = None,
                   machine: Machine = THETA_KNL,
                   nservers: int = 2) -> ExecutedResult:
    """DataSpaces-like staging (requires ``nservers`` extra ranks)."""
    wl = wl or SyntheticWorkload()
    shape = wl.grid_shape(nprod)
    npart = wl.total_particles(nprod)
    ds = DataSpaces(nservers, machine.ds)

    def producer(ctx):
        inter = ctx.intercomm("server")
        gsel = producer_grid_selection(shape, ctx.rank, ctx.size)
        ds.put_local(inter, ctx.comm, "grid", 0, gsel,
                     grid_values(gsel, shape))
        psel = producer_particle_selection(npart, ctx.rank, ctx.size)
        ds.put_local(inter, ctx.comm, "particles", 0, psel,
                     particle_values(psel))
        ds.finalize(inter, ctx.comm)
        return True

    def consumer(ctx):
        inter = ctx.intercomm("server")
        gsel = consumer_grid_selection(shape, ctx.rank, ctx.size)
        gv = ds.get(inter, ctx.comm, "grid", 0, gsel, np.uint64)
        psel = consumer_particle_selection(npart, ctx.rank, ctx.size)
        pv = ds.get(inter, ctx.comm, "particles", 0, psel, np.float32)
        ds.finalize(inter, ctx.comm)
        return (validate_grid(gsel, shape, gv)
                and validate_particles(psel, pv))

    def server(ctx):
        dataspaces_server_main(
            ds, [ctx.intercomm("producer"), ctx.intercomm("consumer")]
        )
        return True

    wf = Workflow()
    wf.add_task("producer", nprod, producer)
    wf.add_task("consumer", ncons, consumer)
    wf.add_task("server", nservers, server)
    wf.add_link("producer", "server")
    wf.add_link("consumer", "server")
    res, ok = _run(wf, machine)
    return _finish(nprod, ncons, res, ok)


# -- Bredala --------------------------------------------------------------------------------


def run_bredala(nprod: int, ncons: int,
                wl: SyntheticWorkload | None = None,
                machine: Machine = THETA_KNL) -> ExecutedResult:
    """Bredala-like transport: grid via bbox, particles contiguous."""
    wl = wl or SyntheticWorkload()
    shape = wl.grid_shape(nprod)
    npart = wl.total_particles(nprod)

    def producer(ctx):
        inter = ctx.intercomm("consumer")
        gsel = producer_grid_selection(shape, ctx.rank, ctx.size)
        coords = gsel.coords()
        gvals = grid_values(gsel, shape)
        psel = producer_particle_selection(npart, ctx.rank, ctx.size)
        # Particle items are rows (id, id+.25, id+.5): reshape flat vals.
        pvals = particle_values(psel).reshape(-1, 3)
        c = Container()
        c.append(Field("particles", REDIST_CONTIGUOUS, np.float32,
                       item_shape=(3,), data=pvals, global_count=npart))
        c.append(Field("grid", REDIST_BBOX, np.uint64, data=gvals,
                       coords=coords, domain=shape))
        redistribute_producer(inter, ctx.comm, c, machine.br)
        return True

    def consumer(ctx):
        inter = ctx.intercomm("producer")
        c = Container()
        c.append(Field("particles", REDIST_CONTIGUOUS, np.float32,
                       item_shape=(3,), global_count=npart))
        c.append(Field("grid", REDIST_BBOX, np.uint64, domain=shape))
        out = redistribute_consumer(inter, ctx.comm, c, machine.br)
        start, parts = out["particles"]
        ids = (np.arange(start, start + len(parts)) % (1 << 23)
               ).astype(np.float32)
        ok_parts = (
            np.array_equal(parts[:, 0], ids)
            and np.array_equal(parts[:, 1], ids + 0.25)
            and np.array_equal(parts[:, 2], ids + 0.5)
        )
        blk, grid = out["grid"]
        if grid.size:
            sel = blk.to_selection(shape)
            ok_grid = np.array_equal(
                grid.reshape(-1), grid_values(sel, shape)
            )
        else:
            ok_grid = True
        return ok_parts and ok_grid

    wf = Workflow()
    wf.add_task("producer", nprod, producer)
    wf.add_task("consumer", ncons, consumer)
    wf.add_link("producer", "consumer")
    res, ok = _run(wf, machine, timeout=240.0)
    return _finish(nprod, ncons, res, ok)
