"""Dependency-free ASCII plots for the regenerated figures.

The paper's figures are log-log weak-scaling plots; this renders the
regenerated series in the same shape so eyeballing the reproduction
needs no plotting stack. Output style::

    1e+03 |                          AA
    1e+02 |                    A A
    1e+01 |              A
    1e+00 | B  B   B  B  B  B  B
          +---------------------------
            4  16  64 256  1K  4K 16K
"""

from __future__ import annotations

import math


def _fmt_procs(p: int) -> str:
    if p >= 1024:
        return f"{p // 1024}K"
    return str(p)


def ascii_loglog(procs: list[int], series: dict[str, list],
                 height: int = 12, title: str = "") -> str:
    """Render series (name -> values, None = missing) on log-log axes.

    Each series is drawn with its own letter (A, B, C ... in insertion
    order); a legend maps letters to names.
    """
    vals = [
        v for vs in series.values() for v in vs
        if v is not None and v > 0
    ]
    if not vals:
        raise ValueError("nothing to plot")
    lo = math.floor(math.log10(min(vals)))
    hi = math.ceil(math.log10(max(vals)))
    if hi == lo:
        hi = lo + 1
    col_w = 5
    ncols = len(procs)
    width = ncols * col_w

    def row_of(v: float) -> int:
        frac = (math.log10(v) - lo) / (hi - lo)
        return min(height - 1, max(0, int(round(frac * (height - 1)))))

    grid = [[" "] * width for _ in range(height)]
    letters = {}
    for idx, (name, vs) in enumerate(series.items()):
        letter = chr(ord("A") + idx)
        letters[letter] = name
        for c, v in enumerate(vs):
            if v is None or v <= 0:
                continue
            r = row_of(v)
            x = c * col_w + col_w // 2
            cell = grid[r][x]
            grid[r][x] = "*" if cell not in (" ", letter) else letter

    lines = []
    if title:
        lines.append(title)
    for r in range(height - 1, -1, -1):
        frac = r / (height - 1)
        decade = lo + frac * (hi - lo)
        label = f"1e{decade:+03.0f}" if abs(decade - round(decade)) < 0.02 \
            else "     "
        lines.append(f"{label:>6} |" + "".join(grid[r]))
    lines.append("       +" + "-" * width)
    axis = "".join(_fmt_procs(p).center(col_w) for p in procs)
    lines.append("        " + axis + "  (#procs)")
    for letter, name in letters.items():
        lines.append(f"        {letter} = {name}")
    lines.append("        * = overlapping points")
    return "\n".join(lines) + "\n"
