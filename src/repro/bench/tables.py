"""ASCII table / series formatting and results output for benchmarks."""

from __future__ import annotations

import os


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Plain fixed-width table (the style of the paper's tables)."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    out = []
    if title:
        out.append(title)
    out.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    out.append("  ".join("-" * w for w in widths))
    for r in cells:
        out.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(out) + "\n"


def format_series_table(procs: list[int], series: dict[str, list],
                        title: str = "", unit: str = "s") -> str:
    """One row per process count, one column per series (figure data)."""
    headers = ["#procs"] + [f"{name} ({unit})" for name in series]
    rows = []
    for i, p in enumerate(procs):
        rows.append([p] + [series[name][i] for name in series])
    return format_table(headers, rows, title)


def _fmt(v) -> str:
    if v is None:
        return "x"
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 100:
            return f"{v:.0f}"
        if abs(v) >= 1:
            return f"{v:.2f}"
        return f"{v:.3f}"
    return str(v)


def results_dir() -> str:
    """Directory collecting regenerated tables/figure data."""
    d = os.environ.get("REPRO_RESULTS_DIR", "results")
    os.makedirs(d, exist_ok=True)
    return d


def write_result(name: str, text: str, echo: bool = True) -> str:
    """Store a regenerated table under ``results/`` and echo it."""
    path = os.path.join(results_dir(), name)
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)
    if echo:
        print("\n" + text)
    return path
