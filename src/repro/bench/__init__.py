"""Benchmark harness: executed drivers + table/series formatting.

The ``benchmarks/`` suite regenerates every table and figure of the
paper's evaluation (see DESIGN.md's experiment index). Each experiment
combines:

- **modeled** points from :mod:`repro.perfmodel` at the paper's full
  scales (4 ... 16384 ranks, 1e6 elements/process), and
- **executed** points from real simmpi runs (threads) at small scales
  with a reduced per-process workload, which validate the model and
  validate data correctness (position-encoded values).
"""

from repro.bench.drivers import (
    ExecutedResult,
    run_bredala,
    run_dataspaces,
    run_lowfive_file,
    run_lowfive_memory,
    run_pure_hdf5,
    run_pure_mpi,
)
from repro.bench.plot import ascii_loglog
from repro.bench.tables import format_series_table, format_table, write_result

__all__ = [
    "ExecutedResult",
    "run_lowfive_memory",
    "run_lowfive_file",
    "run_pure_hdf5",
    "run_pure_mpi",
    "run_dataspaces",
    "run_bredala",
    "ascii_loglog",
    "format_table",
    "format_series_table",
    "write_result",
]
