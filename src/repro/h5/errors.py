"""Exception types for the h5 data model."""


class H5Error(Exception):
    """Base class for all h5 data-model errors."""


class NotFoundError(H5Error, KeyError):
    """A link (group/dataset/attribute path) does not exist."""


class ExistsError(H5Error):
    """Attempt to create an object over an existing link."""


class SelectionError(H5Error, ValueError):
    """A selection is malformed or falls outside the dataspace extent."""


class ClosedError(H5Error):
    """Operation on a closed file or object handle."""


class ModeError(H5Error):
    """Operation not permitted by the file's open mode."""
