"""User-facing h5py-flavoured API over the VOL dispatch layer.

Handles (:class:`File`, :class:`Group`, :class:`Dataset`,
:class:`Attribute`) hold a VOL connector plus an opaque token; every
operation routes through the connector, so swapping the connector (e.g.
for LowFive) changes transport without touching user code -- the paper's
central usability claim.
"""

from __future__ import annotations

import numpy as np

from repro.h5.datatype import Datatype, as_datatype
from repro.h5.dataspace import Dataspace
from repro.h5.errors import ClosedError, H5Error, SelectionError
from repro.h5.objects import split_path
from repro.h5.plist import DEFAULT_DXPL, DatasetCreateProps, TransferProps
from repro.h5.selection import (
    AllSelection,
    HyperslabSelection,
    Selection,
    bind_selection,
)
from repro.h5.vol import VOLBase


class Attribute:
    """Handle to one attribute."""

    def __init__(self, vol: VOLBase, token, name: str):
        self._vol = vol
        self._token = token
        self.name = name

    def write(self, value) -> None:
        """Write the attribute's value."""
        self._vol.attr_write(self._token, value)

    def read(self):
        """Read the attribute's value."""
        return self._vol.attr_read(self._token)


class AttributeManager:
    """Dict-like ``.attrs`` facade on files, groups and datasets."""

    def __init__(self, vol: VOLBase, token):
        self._vol = vol
        self._token = token

    def __setitem__(self, name: str, value) -> None:
        arr = np.asarray(value)
        space = Dataspace(() if arr.ndim == 0 else arr.shape)
        token = self._vol.attr_create(
            self._token, name, Datatype(arr.dtype), space
        )
        self._vol.attr_write(token, arr)

    def __getitem__(self, name: str):
        token = self._vol.attr_open(self._token, name)
        value = self._vol.attr_read(token)
        if getattr(value, "ndim", None) == 0:
            return value[()]
        return value

    def __contains__(self, name: str) -> bool:
        return name in self._vol.attr_list(self._token)

    def keys(self):
        """Attribute names on this object."""
        return list(self._vol.attr_list(self._token))

    def __iter__(self):
        return iter(self.keys())

    def __len__(self):
        return len(self.keys())


class _Container:
    """Shared group-like behaviour of :class:`File` and :class:`Group`."""

    def __init__(self, vol: VOLBase, token, name: str):
        self._vol = vol
        self._token = token
        self.name = name

    @property
    def attrs(self) -> AttributeManager:
        """Attributes attached to this object."""
        return AttributeManager(self._vol, self._token)

    # -- groups ------------------------------------------------------------

    def create_group(self, path: str) -> "Group":
        """Create a group (and intermediate groups) at ``path``."""
        token = self._token
        for part in split_path(path):
            token = self._vol.group_create(token, part)
        return Group(self._vol, token, path)

    def require_group(self, path: str) -> "Group":
        """Open ``path`` as a group, creating it if absent."""
        if self._vol.link_exists(self._token, path):
            kind, token = self._vol.object_open(self._token, path)
            if kind != "group":
                raise H5Error(f"{path!r} exists and is not a group")
            return Group(self._vol, token, path)
        return self.create_group(path)

    # -- datasets -----------------------------------------------------------

    def create_dataset(self, path: str, shape=None, dtype=None, data=None,
                       maxshape=None, chunks=None,
                       dcpl: DatasetCreateProps | None = None) -> "Dataset":
        """Create a dataset; optionally write ``data`` into all of it.

        ``maxshape`` permits later :meth:`Dataset.resize` up to the given
        per-dimension limits (:data:`repro.h5.dataspace.UNLIMITED` for no
        limit). ``chunks`` selects a chunked storage layout.
        """
        if chunks is not None:
            dcpl = DatasetCreateProps(
                fill_value=dcpl.fill_value if dcpl else None,
                track_order=dcpl.track_order if dcpl else False,
                chunks=tuple(chunks),
            )
        if data is not None:
            data = np.asarray(data)
            if shape is None:
                shape = data.shape
            if dtype is None:
                dtype = data.dtype
        if shape is None or dtype is None:
            raise H5Error("create_dataset needs shape+dtype or data")
        parts = split_path(path)
        if not parts:
            raise H5Error("empty dataset path")
        token = self._token
        for part in parts[:-1]:
            token = self._vol.group_create(token, part)
        dtoken = self._vol.dataset_create(
            token, parts[-1], as_datatype(dtype),
            Dataspace(shape, maxshape), dcpl
        )
        dset = Dataset(self._vol, dtoken, path)
        if data is not None:
            dset.write(data)
        return dset

    # -- navigation ---------------------------------------------------------------

    def require_dataset(self, path: str, shape, dtype) -> "Dataset":
        """Open ``path`` as a dataset with the given shape/dtype,
        creating it if absent (h5py semantics)."""
        if self._vol.link_exists(self._token, path):
            kind, token = self._vol.object_open(self._token, path)
            if kind != "dataset":
                raise H5Error(f"{path!r} exists and is not a dataset")
            dset = Dataset(self._vol, token, path)
            if dset.shape != tuple(shape) or dset.dtype != as_datatype(dtype):
                raise H5Error(
                    f"{path!r} exists with different shape/dtype"
                )
            return dset
        return self.create_dataset(path, shape=shape, dtype=dtype)

    # -- navigation ---------------------------------------------------------------

    def __getitem__(self, path: str):
        kind, token = self._vol.object_open(self._token, path)
        if kind == "dataset":
            return Dataset(self._vol, token, path)
        return Group(self._vol, token, path)

    def __delitem__(self, name: str) -> None:
        """Unlink a direct child (group or dataset)."""
        self._vol.link_delete(self._token, name)

    def __contains__(self, path: str) -> bool:
        return bool(self._vol.link_exists(self._token, path))

    def keys(self) -> list[str]:
        """Names of direct children."""
        return [name for name, _ in self._vol.links(self._token)]

    def items(self):
        return [(name, self[name]) for name in self.keys()]

    def __iter__(self):
        return iter(self.keys())

    def visit(self, fn):
        """Call ``fn(path)`` for every descendant, depth first (h5py's
        ``visit``); stop early when ``fn`` returns non-None and return
        that value."""
        def walk(container, prefix):
            for name, kind in self._vol.links(container._token):
                path = f"{prefix}{name}"
                out = fn(path)
                if out is not None:
                    return out
                if kind == "group":
                    out = walk(container[name], f"{path}/")
                    if out is not None:
                        return out
            return None

        return walk(self, "")


class Group(_Container):
    """Handle to a group."""

    def __repr__(self):
        return f"<Group {self.name!r}>"


class File(_Container):
    """Handle to a file; the root group of its hierarchy.

    Parameters
    ----------
    name:
        File name (a key in the PFS namespace, or a transport-matched
        pattern for LowFive).
    mode:
        ``"w"`` create/truncate, ``"x"`` create-exclusive, ``"r"`` read,
        ``"a"`` read-write.
    comm:
        Simulated communicator of this task; file operations are
        collective over it. ``None`` for serial use.
    vol:
        VOL connector; defaults to a fresh private
        :class:`~repro.h5.native.NativeVOL` (serial convenience).
    """

    def __init__(self, name: str, mode: str = "r", comm=None,
                 vol: VOLBase | None = None, fapl=None):
        if vol is None:
            from repro.h5.native import NativeVOL

            vol = NativeVOL()
        if mode in ("w", "x"):
            token = vol.file_create(name, mode, fapl, comm)
        elif mode in ("r", "a"):
            token = vol.file_open(name, mode, fapl, comm)
        else:
            raise H5Error(f"unknown file mode {mode!r}")
        super().__init__(vol, token, name)
        self.mode = mode
        self._open = True

    @property
    def vol(self) -> VOLBase:
        """The VOL connector serving this file."""
        return self._vol

    def flush(self) -> None:
        """Flush pending state through the VOL."""
        self._check_open()
        self._vol.file_flush(self._token)

    def close(self) -> None:
        """Close the file (collective; triggers transport on LowFive)."""
        self._check_open()
        self._vol.file_close(self._token)
        self._open = False

    def _check_open(self):
        if not self._open:
            raise ClosedError(f"file {self.name!r} is closed")

    def __enter__(self) -> "File":
        return self

    def __exit__(self, *exc) -> None:
        if self._open:
            self.close()

    def __repr__(self):
        state = "open" if self._open else "closed"
        return f"<File {self.name!r} mode={self.mode!r} ({state})>"


class Dataset:
    """Handle to a dataset."""

    def __init__(self, vol: VOLBase, token, name: str):
        self._vol = vol
        self._token = token
        self.name = name

    @property
    def attrs(self) -> AttributeManager:
        """Attributes attached to this dataset."""
        return AttributeManager(self._vol, self._token)

    @property
    def dtype(self) -> Datatype:
        """The dataset's datatype."""
        return self._vol.dataset_meta(self._token)[0]

    @property
    def space(self) -> Dataspace:
        """The dataset's dataspace."""
        return self._vol.dataset_meta(self._token)[1]

    @property
    def shape(self) -> tuple:
        """Current extent of the dataset."""
        return self.space.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    # -- I/O --------------------------------------------------------------------

    def write(self, data, file_select=None,
              dxpl: TransferProps | None = None) -> None:
        """Write ``data`` into ``file_select`` (default: the whole set).

        ``data`` may be shaped like the selected box or flat in selection
        order; it is flattened row-major either way, matching HDF5's
        element ordering.
        """
        sel = bind_selection(file_select, self.shape)
        arr = np.asarray(data, dtype=self.dtype.np).reshape(-1)
        if arr.size != sel.npoints:
            raise SelectionError(
                f"data has {arr.size} elements, selection {sel.npoints}"
            )
        self._vol.dataset_write(self._token, sel, arr, dxpl or DEFAULT_DXPL)

    def read(self, file_select=None, dxpl: TransferProps | None = None,
             reshape: bool = True) -> np.ndarray:
        """Read ``file_select`` (default: everything).

        With ``reshape=True`` the result is shaped as the full dataspace
        (all-selection) or the selection's box when it is one; otherwise
        a flat array in selection order.
        """
        sel = bind_selection(file_select, self.shape)
        flat = self._vol.dataset_read(self._token, sel, dxpl or DEFAULT_DXPL)
        flat = np.asarray(flat, dtype=self.dtype.np)
        if not reshape:
            return flat
        if isinstance(sel, AllSelection):
            return flat.reshape(self.shape)
        if sel.is_separable:
            box = tuple(len(i) for i in sel.per_dim_indices())
            if int(np.prod(box)) == sel.npoints:
                return flat.reshape(box)
        return flat

    # -- numpy-ish sugar -------------------------------------------------------------

    def _key_to_selection(self, key) -> Selection:
        if key is Ellipsis or key == ():
            return AllSelection(self.shape)
        if not isinstance(key, tuple):
            key = (key,)
        if Ellipsis in key:
            i = key.index(Ellipsis)
            fill = self.ndim - (len(key) - 1)
            key = key[:i] + (slice(None),) * fill + key[i + 1:]
        elif len(key) < self.ndim:
            key = key + (slice(None),) * (self.ndim - len(key))
        if len(key) != self.ndim:
            raise SelectionError(
                f"need {self.ndim} indices, got {len(key)}"
            )
        start, count = [], []
        for dim, (k, extent) in enumerate(zip(key, self.shape)):
            if isinstance(k, (int, np.integer)):
                idx = int(k) + (extent if k < 0 else 0)
                start.append(idx)
                count.append(1)
            elif isinstance(k, slice):
                lo, hi, step = k.indices(extent)
                if step != 1:
                    raise SelectionError("strided slicing not supported here")
                start.append(lo)
                count.append(max(0, hi - lo))
            else:
                raise SelectionError(f"bad index in dim {dim}: {k!r}")
        return HyperslabSelection(self.shape, start, count)

    def __getitem__(self, key) -> np.ndarray:
        sel = self._key_to_selection(key)
        out = self.read(sel)
        if isinstance(key, tuple):
            squeeze = tuple(
                d for d, k in enumerate(key) if isinstance(k, (int, np.integer))
            )
            if squeeze:
                out = out.squeeze(axis=squeeze)
        elif isinstance(key, (int, np.integer)):
            out = out.squeeze(axis=0)
        return out

    def __setitem__(self, key, value) -> None:
        self.write(np.asarray(value), self._key_to_selection(key))

    def resize(self, new_shape) -> None:
        """Change the extent within ``maxshape`` (HDF5 semantics:
        growing keeps data, shrinking discards what falls outside)."""
        self._vol.dataset_resize(self._token, new_shape)

    @property
    def maxshape(self) -> tuple:
        """Per-dimension resize limits."""
        return self.space.maxshape

    def close(self) -> None:
        """Close this dataset handle."""
        self._vol.dataset_close(self._token)

    def __repr__(self):
        return f"<Dataset {self.name!r} shape={self.shape}>"
