"""Datatypes: numpy-backed atomic and compound types.

The paper relies on HDF5's "internal facilities" for datatype
manipulation and serialization; our equivalent internal facility is
numpy's dtype system, which supports atomic types and nested compound
(structured) types. :class:`Datatype` is a thin value wrapper adding the
HDF5 notions (type class, serialization for the file format).
"""

from __future__ import annotations

import numpy as np

from repro.h5.errors import H5Error

#: HDF5-like type classes.
CLASS_INTEGER = "integer"
CLASS_FLOAT = "float"
CLASS_STRING = "string"
CLASS_COMPOUND = "compound"


class Datatype:
    """An immutable datatype backed by a numpy dtype.

    Parameters
    ----------
    np_dtype:
        Anything :func:`numpy.dtype` accepts: ``"u8"``, ``np.float32``,
        a structured dtype for compounds, etc.
    """

    __slots__ = ("np",)

    def __init__(self, np_dtype):
        object.__setattr__(self, "np", np.dtype(np_dtype))

    def __setattr__(self, *a):  # immutability
        raise AttributeError("Datatype is immutable")

    # -- classification -----------------------------------------------------

    @property
    def type_class(self) -> str:
        """The HDF5-like type class of this datatype."""
        k = self.np.kind
        if self.np.names:
            return CLASS_COMPOUND
        if k in "iu":
            return CLASS_INTEGER
        if k == "f":
            return CLASS_FLOAT
        if k in "SU":
            return CLASS_STRING
        raise H5Error(f"unsupported numpy kind {k!r}")

    @property
    def itemsize(self) -> int:
        """Size of one element in bytes."""
        return self.np.itemsize

    @property
    def is_compound(self) -> bool:
        """True for compound (structured) types."""
        return self.np.names is not None

    @property
    def fields(self):
        """Mapping of field name -> (Datatype, offset) for compounds."""
        if not self.is_compound:
            raise H5Error("not a compound type")
        return {
            name: (Datatype(self.np.fields[name][0]), self.np.fields[name][1])
            for name in self.np.names
        }

    # -- serialization --------------------------------------------------------

    def encode(self) -> bytes:
        """Portable byte encoding (used by the native file format)."""
        descr = np.lib.format.dtype_to_descr(self.np)
        return repr(descr).encode("utf-8")

    @classmethod
    def decode(cls, blob: bytes) -> "Datatype":
        """Inverse of :meth:`encode`."""
        import ast

        descr = ast.literal_eval(blob.decode("utf-8"))
        return cls(np.lib.format.descr_to_dtype(descr))

    # -- value semantics -----------------------------------------------------

    def __eq__(self, other) -> bool:
        if isinstance(other, Datatype):
            return self.np == other.np
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.np)

    def __repr__(self) -> str:
        return f"Datatype({self.np!r})"


def compound(fields) -> Datatype:
    """Build a compound datatype from ``[(name, dtype-like), ...]``."""
    return Datatype(np.dtype([(n, np.dtype(getattr(d, "np", d))) for n, d in fields]))


def string_(length: int) -> Datatype:
    """Fixed-length byte-string type of ``length`` characters."""
    if length < 1:
        raise ValueError("string length must be >= 1")
    return Datatype(f"S{length}")


INT8 = Datatype(np.int8)
INT16 = Datatype(np.int16)
INT32 = Datatype(np.int32)
INT64 = Datatype(np.int64)
UINT8 = Datatype(np.uint8)
UINT16 = Datatype(np.uint16)
UINT32 = Datatype(np.uint32)
UINT64 = Datatype(np.uint64)
FLOAT32 = Datatype(np.float32)
FLOAT64 = Datatype(np.float64)


def as_datatype(dtype_like) -> Datatype:
    """Coerce a Datatype, numpy dtype, or dtype string to :class:`Datatype`."""
    if isinstance(dtype_like, Datatype):
        return dtype_like
    return Datatype(dtype_like)
