"""Native VOL connector: stores the tree in a real file on the PFS.

Semantics follow parallel HDF5:

- file create/open/close and object creates are collective over the
  file's communicator (every rank makes the same calls; the shared
  in-core image is built once and reference-shared),
- dataset writes go into the shared in-core image and are charged to the
  Lustre cost model (collective two-phase by default),
- on close, rank 0 serializes the image through :mod:`repro.h5.format`
  into the :class:`~repro.pfs.store.PFSStore`.

Readers decode the stored bytes into a private tree per open and pay
open/read costs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.h5 import format as h5format
from repro.h5.datatype import as_datatype
from repro.h5.errors import (
    ClosedError,
    ExistsError,
    ModeError,
    NotFoundError,
)
from repro.h5.objects import (
    DatasetNode,
    FileNode,
    GroupNode,
    Node,
    OWN_DEEP,
)
from repro.h5.plist import DEFAULT_DCPL, DEFAULT_DXPL
from repro.h5.vol import VOLBase
from repro.obs import obs_of, span
from repro.pfs.lustre import LustreModel
from repro.pfs.store import PFSStore


class _FileState:
    """Shared state of one open (for writing) native file."""

    __slots__ = ("name", "root", "lock", "mode", "comm", "nprocs",
                 "refcount", "closed")

    def __init__(self, name: str, root: FileNode, mode: str, comm, nprocs: int):
        self.name = name
        self.root = root
        self.lock = threading.RLock()
        self.mode = mode
        self.comm = comm
        self.nprocs = nprocs
        self.refcount = 0
        self.closed = False


@dataclass
class _Token:
    """Native VOL object token: a tree node plus its file state."""

    state: _FileState
    node: Node
    closed: bool = False

    @property
    def comm(self):
        return self.state.comm


class NativeVOL(VOLBase):
    """The terminal VOL connector writing real bytes to the PFS.

    One ``NativeVOL`` instance is shared by all ranks of a task (they
    cooperate on the shared in-core image). Different tasks may use
    different instances as long as they share the :class:`PFSStore`.
    """

    name = "native"

    def __init__(self, store: PFSStore | None = None,
                 lustre: LustreModel | None = None):
        self.store = store if store is not None else PFSStore()
        self.lustre = lustre if lustre is not None else LustreModel()
        self._images: dict[str, _FileState] = {}
        self._lock = threading.Lock()

    # -- cost charging -------------------------------------------------------

    @staticmethod
    def _nprocs(comm) -> int:
        return 1 if comm is None else comm.size

    @staticmethod
    def _charge(comm, seconds: float) -> None:
        if comm is not None:
            comm.compute(seconds)

    def _count_ost_bytes(self, comm, name: str, nbytes: int,
                         fname: str) -> None:
        """Account transferred bytes, spread across the file's OSTs."""
        obs = obs_of(comm)
        if obs is None or nbytes <= 0:
            return
        rank = comm.world_rank(comm.rank)
        obs.metrics.inc(name, nbytes, rank=rank, file=fname)
        # Longitudinal view: bytes hitting the PFS over virtual time.
        obs.series.record(name, comm.vtime, nbytes, rank=rank)
        # Striped files spread large transfers evenly over the OSTs.
        nost = self.lustre.stripe_count
        per_ost = nbytes / nost
        for ost in range(nost):
            obs.metrics.inc(f"{name}.ost", per_ost, ost=ost)

    # -- files -----------------------------------------------------------------

    def file_create(self, fname, mode, fapl, comm):
        if mode not in ("w", "x"):
            raise ModeError(f"file_create mode must be w/x, got {mode!r}")
        nprocs = self._nprocs(comm)
        with self._lock:
            state = self._images.get(fname)
            if state is None or state.closed:
                if mode == "x" and self.store.exists(fname):
                    raise ExistsError(f"file exists: {fname}")
                state = _FileState(fname, FileNode(fname), "w", comm, nprocs)
                self._images[fname] = state
            state.refcount += 1
        with span(comm, "pfs.open", cat="pfs", file=fname, mode=mode):
            self._charge(comm, self.lustre.open_time(nprocs))
        return _Token(state, state.root)

    def file_open(self, fname, mode, fapl, comm):
        if mode not in ("r", "a"):
            raise ModeError(f"file_open mode must be r/a, got {mode!r}")
        nprocs = self._nprocs(comm)
        if mode == "a":
            with self._lock:
                state = self._images.get(fname)
                if state is not None and not state.closed:
                    state.refcount += 1
                    with span(comm, "pfs.open", cat="pfs", file=fname,
                              mode=mode):
                        self._charge(comm, self.lustre.open_time(nprocs))
                    return _Token(state, state.root)
        if not self.store.exists(fname):
            raise NotFoundError(f"no such file: {fname}")
        # Readers decode a private tree; metadata is small, data pieces
        # are materialized (cost charged at dataset_read).
        handle = self.store.open(fname)
        buf = handle.pread(0, handle.size)
        root = h5format.decode_file(buf, fname)
        state = _FileState(fname, root, mode, comm, nprocs)
        state.refcount = 1
        with span(comm, "pfs.open", cat="pfs", file=fname, mode=mode):
            self._charge(comm, self.lustre.open_time(nprocs))
        return _Token(state, root)

    def file_close(self, ftoken):
        state = ftoken.state
        if getattr(ftoken, "closed", False):
            raise ClosedError(f"file already closed: {state.name}")
        ftoken.closed = True
        comm = state.comm
        with span(comm, "pfs.close", cat="pfs", file=state.name):
            self._file_close_impl(ftoken, state)

    def _file_close_impl(self, ftoken, state):
        comm = state.comm
        nprocs = state.nprocs
        writeback = state.mode in ("w", "a")
        if comm is not None and writeback:
            # All writes land in the shared image before serialization.
            comm.barrier()
        with state.lock:
            state.refcount -= 1
            if state.refcount <= 0:
                state.closed = True
        if writeback and (comm is None or comm.rank == 0):
            blob = h5format.encode_file(state.root)
            self.store.create(state.name).pwrite(0, blob)
        if writeback:
            with self._lock:
                if state.closed and self._images.get(state.name) is state:
                    del self._images[state.name]
        self._charge(comm, self.lustre.close_time(nprocs))
        if comm is not None and writeback:
            comm.barrier()

    # -- groups ---------------------------------------------------------------

    def group_create(self, parent, name):
        state = parent.state
        with state.lock:
            node = parent.node
            assert isinstance(node, GroupNode)
            child = node.children.get(name)
            if child is None:
                child = node.add_child(GroupNode(name))
            elif not isinstance(child, GroupNode):
                raise ExistsError(f"{name!r} exists and is not a group")
        self._charge(state.comm, self.lustre.metadata_op_time())
        return _Token(state, child)

    def group_open(self, parent, name):
        node = parent.node.lookup(name)
        if not isinstance(node, GroupNode):
            raise NotFoundError(f"{name!r} is not a group")
        return _Token(parent.state, node)

    # -- datasets ------------------------------------------------------------------

    def dataset_create(self, parent, name, dtype, space, dcpl):
        state = parent.state
        dtype = as_datatype(dtype)
        dcpl = dcpl or DEFAULT_DCPL
        with state.lock:
            node = parent.node
            assert isinstance(node, GroupNode)
            child = node.children.get(name)
            if child is None:
                child = node.add_child(
                    DatasetNode(name, dtype, space,
                                fill_value=dcpl.fill_value,
                                chunks=dcpl.chunks)
                )
            elif isinstance(child, DatasetNode):
                # Collective create: later ranks must agree on the shape.
                if child.dtype != dtype or child.space != space:
                    raise ExistsError(
                        f"dataset {name!r} exists with different type/space"
                    )
            else:
                raise ExistsError(f"{name!r} exists and is not a dataset")
        self._charge(state.comm, self.lustre.metadata_op_time())
        return _Token(state, child)

    def dataset_open(self, parent, name):
        node = parent.node.lookup(name)
        if not isinstance(node, DatasetNode):
            raise NotFoundError(f"{name!r} is not a dataset")
        return _Token(parent.state, node)

    def dataset_meta(self, dtoken):
        node = dtoken.node
        return node.dtype, node.space

    def dataset_resize(self, dtoken, new_shape):
        state = dtoken.state
        if state.mode == "r":
            raise ModeError("file opened read-only")
        with state.lock:
            dtoken.node.resize(new_shape)
        self._charge(state.comm, self.lustre.metadata_op_time())

    def dataset_write(self, dtoken, selection, data, dxpl):
        state = dtoken.state
        if state.mode == "r":
            raise ModeError("file opened read-only")
        dxpl = dxpl or DEFAULT_DXPL
        node = dtoken.node
        with state.lock:
            piece = node.write(selection, data, OWN_DEEP)
        comm = state.comm
        local = piece.nbytes
        with span(comm, "pfs.write", cat="pfs", file=state.name,
                  dataset=node.path, nbytes=local,
                  collective=dxpl.collective):
            if comm is not None and dxpl.collective:
                total = comm.allreduce(local)
                self._charge(
                    comm, self.lustre.write_time(total, state.nprocs, True)
                )
            else:
                self._charge(
                    comm, self.lustre.write_time(local, state.nprocs, False)
                )
            if node.chunks is not None:
                # Chunked layout: per-chunk lock/index work replaces the
                # shared-extent locking; also pay a read-modify-write pass
                # on chunks the selection only partially covers.
                from repro.h5.selection import chunks_touched

                nchunks = chunks_touched(selection, node.chunks)
                import numpy as _np

                chunk_cells = int(_np.prod(node.chunks))
                full = selection.npoints // chunk_cells
                partial = max(0, nchunks - full)
                self._charge(comm, self.lustre.metadata_op_time(nchunks))
                if partial:
                    rmw_bytes = partial * chunk_cells * node.dtype.itemsize
                    self._charge(
                        comm,
                        self.lustre.read_time(rmw_bytes, state.nprocs,
                                              dxpl.collective),
                    )
        self._count_ost_bytes(comm, "pfs.bytes_written", local, state.name)

    def dataset_read(self, dtoken, selection, dxpl):
        state = dtoken.state
        dxpl = dxpl or DEFAULT_DXPL
        node = dtoken.node
        values = node.read(selection)
        comm = state.comm
        local = int(values.nbytes)
        with span(comm, "pfs.read", cat="pfs", file=state.name,
                  dataset=node.path, nbytes=local,
                  collective=dxpl.collective):
            if comm is not None and dxpl.collective:
                total = comm.allreduce(local)
                self._charge(
                    comm, self.lustre.read_time(total, state.nprocs, True)
                )
            else:
                self._charge(
                    comm, self.lustre.read_time(local, state.nprocs, False)
                )
        self._count_ost_bytes(comm, "pfs.bytes_read", local, state.name)
        return values

    # -- attributes ---------------------------------------------------------------

    def attr_create(self, obj, name, dtype, space):
        # Overwrite semantics (h5py-like), which also makes collective
        # attribute creation by every rank idempotent.
        state = obj.state
        dtype = as_datatype(dtype)
        with state.lock:
            existing = obj.node.attributes.get(name)
            if existing is not None and (existing.dtype != dtype
                                         or existing.space != space):
                del obj.node.attributes[name]
                existing = None
            attr = existing if existing is not None else \
                obj.node.create_attribute(name, dtype, space)
        self._charge(state.comm, self.lustre.metadata_op_time())
        return _Token(state, attr)

    def attr_open(self, obj, name):
        return _Token(obj.state, obj.node.get_attribute(name))

    def attr_write(self, atoken, value):
        with atoken.state.lock:
            atoken.node.write(value)
        self._charge(atoken.state.comm, self.lustre.metadata_op_time())

    def attr_read(self, atoken):
        return atoken.node.read()

    def attr_list(self, obj):
        return sorted(obj.node.attributes)

    # -- links ----------------------------------------------------------------------

    def link_exists(self, parent, path):
        node = parent.node
        return isinstance(node, GroupNode) and node.exists(path)

    def links(self, parent):
        node = parent.node
        out = []
        for name in sorted(node.children):
            child = node.children[name]
            kind = "dataset" if isinstance(child, DatasetNode) else "group"
            out.append((name, kind))
        return out

    def object_open(self, parent, path):
        node = parent.node.lookup(path)
        if isinstance(node, DatasetNode):
            return "dataset", _Token(parent.state, node)
        if isinstance(node, GroupNode):
            return "group", _Token(parent.state, node)
        raise NotFoundError(f"cannot open object at {path!r}")

    def link_delete(self, parent, name):
        state = parent.state
        if state.mode == "r":
            raise ModeError("file opened read-only")
        with state.lock:
            node = parent.node
            if not isinstance(node, GroupNode):
                raise NotFoundError(f"{node.path} is not a group")
            node.remove_child(name)
        self._charge(state.comm, self.lustre.metadata_op_time())
