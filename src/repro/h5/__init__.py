"""HDF5-like hierarchical data model with a Virtual Object Layer (VOL).

This package implements, from scratch, the parts of the HDF5 data model
that LowFive's design depends on (paper Sec. III):

- rich **datatypes** (atomic and compound, numpy-backed),
- N-dimensional **dataspaces** with hyperslab and point **selections**,
- a hierarchical tree of **files, groups, datasets and attributes**,
- a **VOL** dispatch layer: every API call routes through a pluggable
  connector, exactly like HDF5 1.12's Virtual Object Layer, so a plugin
  (e.g. :mod:`repro.lowfive`) can intercept all operations,
- a **native VOL** connector that serializes the tree to a real binary
  file format on a (simulated) parallel file system.

User code looks like h5py/HDF5::

    import repro.h5 as h5

    f = h5.File("step1.h5", "w", comm=comm, vol=vol)
    g = f.create_group("group1")
    d = g.create_dataset("grid", shape=(64, 64, 64), dtype=h5.UINT64)
    d.write(local_block, file_select=h5.hyperslab(start, count))
    f.close()
"""

from repro.h5.errors import H5Error, NotFoundError, ExistsError, SelectionError
from repro.h5.datatype import (
    Datatype,
    compound,
    string_,
    INT8,
    INT16,
    INT32,
    INT64,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
    FLOAT32,
    FLOAT64,
)
from repro.h5.selection import (
    Selection,
    AllSelection,
    NoneSelection,
    HyperslabSelection,
    IndexSetSelection,
    PointSelection,
    hyperslab,
    points,
    select_all,
)
from repro.h5.dataspace import Dataspace, UNLIMITED
from repro.h5.plist import FileAccessProps, DatasetCreateProps, TransferProps
from repro.h5.vol import VOLBase, PassthroughVOL
from repro.h5.native import NativeVOL
from repro.h5.api import File, Group, Dataset, Attribute

__all__ = [
    "H5Error",
    "NotFoundError",
    "ExistsError",
    "SelectionError",
    "Datatype",
    "compound",
    "string_",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "UINT8",
    "UINT16",
    "UINT32",
    "UINT64",
    "FLOAT32",
    "FLOAT64",
    "Selection",
    "AllSelection",
    "NoneSelection",
    "HyperslabSelection",
    "IndexSetSelection",
    "PointSelection",
    "hyperslab",
    "points",
    "select_all",
    "Dataspace",
    "UNLIMITED",
    "FileAccessProps",
    "DatasetCreateProps",
    "TransferProps",
    "VOLBase",
    "PassthroughVOL",
    "NativeVOL",
    "File",
    "Group",
    "Dataset",
    "Attribute",
]
