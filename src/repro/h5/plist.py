"""Property lists: knobs passed to create/open/transfer calls.

These mirror HDF5's fapl/dcpl/dxpl property lists at the granularity our
transports need.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class FileAccessProps:
    """File-access properties (HDF5 ``fapl``).

    Attributes
    ----------
    collective_metadata:
        Whether metadata operations (create/open/close) are collective
        over the file's communicator.
    """

    collective_metadata: bool = True


@dataclass
class DatasetCreateProps:
    """Dataset-creation properties (HDF5 ``dcpl``).

    ``chunks`` selects a chunked storage layout: the file stores the
    dataset as independent fixed-shape tiles, which bounds lock
    contention to the chunks a write touches (and is what makes
    strided/partial parallel writes viable on Lustre).
    """

    fill_value: object | None = None
    track_order: bool = False
    chunks: tuple | None = None


@dataclass
class TransferProps:
    """Data-transfer properties (HDF5 ``dxpl``).

    Attributes
    ----------
    collective:
        Use collective (two-phase, MPI-IO-like) I/O for file storage.
        The paper's synthetic benchmarks "write collectively to a single
        HDF5 file ... using MPI-IO".
    """

    collective: bool = True


#: Defaults used when a call does not pass an explicit property list.
DEFAULT_FAPL = FileAccessProps()
DEFAULT_DCPL = DatasetCreateProps()
DEFAULT_DXPL = TransferProps()
