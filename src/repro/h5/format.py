"""Binary on-disk file format for the native VOL.

Layout::

    +--------------------------------------------------------------+
    | magic "REPROH5\\0" | version u32 | meta_off u64 | meta_len u64 |
    +--------------------------------------------------------------+
    | data section: piece and attribute payloads, back to back      |
    +--------------------------------------------------------------+
    | metadata section: encoded object tree (TLV, see below)        |
    +--------------------------------------------------------------+

The metadata section is a little tag-length-value encoding of the
:mod:`repro.h5.objects` tree. Dataset data is *not* embedded in the
metadata; each written piece records the offset/length of its payload in
the data section, so readers can fetch data lazily with positional
reads.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.h5.datatype import Datatype
from repro.h5.dataspace import Dataspace
from repro.h5.errors import H5Error
from repro.h5.objects import (
    DataPiece,
    DatasetNode,
    FileNode,
    GroupNode,
    Node,
)
from repro.h5.selection import (
    AllSelection,
    HyperslabSelection,
    IndexSetSelection,
    NoneSelection,
    PointSelection,
    Selection,
)

MAGIC = b"REPROH5\x00"
VERSION = 1
HEADER = struct.Struct("<8sIQQ")

_KIND_GROUP = 1
_KIND_DATASET = 2

_SEL_ALL = 1
_SEL_HYPERSLAB = 2
_SEL_INDEXSET = 3
_SEL_POINTS = 4
_SEL_NONE = 5


class Writer:
    """Append-only binary writer with small typed helpers."""

    def __init__(self):
        self._chunks: list[bytes] = []
        self._len = 0

    def u8(self, v):
        """Append an unsigned byte."""
        self.raw(struct.pack("<B", v))

    def u32(self, v):
        """Append an unsigned 32-bit integer."""
        self.raw(struct.pack("<I", v))

    def u64(self, v):
        """Append an unsigned 64-bit integer."""
        self.raw(struct.pack("<Q", v))

    def i64(self, v):
        """Append a signed 64-bit integer."""
        self.raw(struct.pack("<q", v))

    def blob(self, b: bytes):
        """Append a length-prefixed byte string."""
        self.u64(len(b))
        self.raw(b)

    def text(self, s: str):
        """Append a length-prefixed UTF-8 string."""
        self.blob(s.encode("utf-8"))

    def raw(self, b: bytes):
        """Append raw bytes verbatim."""
        self._chunks.append(b)
        self._len += len(b)

    @property
    def nbytes(self) -> int:
        """Number of bytes written so far."""
        return self._len

    def getvalue(self) -> bytes:
        """The bytes written so far."""
        return b"".join(self._chunks)


class Reader:
    """Positional binary reader over a bytes buffer."""

    def __init__(self, buf: bytes):
        self.buf = buf
        self.pos = 0

    def _take(self, n: int) -> bytes:
        if self.pos + n > len(self.buf):
            raise H5Error("truncated metadata block")
        out = self.buf[self.pos:self.pos + n]
        self.pos += n
        return out

    def u8(self):
        """Read an unsigned byte."""
        return struct.unpack("<B", self._take(1))[0]

    def u32(self):
        """Read an unsigned 32-bit integer."""
        return struct.unpack("<I", self._take(4))[0]

    def u64(self):
        """Read an unsigned 64-bit integer."""
        return struct.unpack("<Q", self._take(8))[0]

    def i64(self):
        """Read a signed 64-bit integer."""
        return struct.unpack("<q", self._take(8))[0]

    def blob(self) -> bytes:
        """Read a length-prefixed byte string."""
        return self._take(self.u64())

    def text(self) -> str:
        """Read a length-prefixed UTF-8 string."""
        return self.blob().decode("utf-8")


# -- selection codec ---------------------------------------------------------


def _enc_idx(w: Writer, arr: np.ndarray):
    a = np.ascontiguousarray(arr, dtype=np.int64)
    w.u64(a.size)
    w.raw(a.tobytes())


def _dec_idx(r: Reader) -> np.ndarray:
    n = r.u64()
    return np.frombuffer(r._take(8 * n), dtype=np.int64).copy()


def encode_selection(w: Writer, sel: Selection) -> None:
    """Append a selection's encoding to ``w``."""
    w.u8(len(sel.shape))
    for s in sel.shape:
        w.u64(s)
    if isinstance(sel, AllSelection):
        w.u8(_SEL_ALL)
    elif isinstance(sel, HyperslabSelection):
        w.u8(_SEL_HYPERSLAB)
        for field in (sel.start, sel.count, sel.stride, sel.block):
            for v in field:
                w.u64(v)
    elif isinstance(sel, IndexSetSelection):
        w.u8(_SEL_INDEXSET)
        for idx in sel.per_dim_indices():
            _enc_idx(w, idx)
    elif isinstance(sel, PointSelection):
        w.u8(_SEL_POINTS)
        _enc_idx(w, sel.coords().reshape(-1))
    elif isinstance(sel, NoneSelection):
        w.u8(_SEL_NONE)
    else:
        raise H5Error(f"cannot encode selection {type(sel).__name__}")


def decode_selection(r: Reader) -> Selection:
    """Inverse of :func:`encode_selection`."""
    ndim = r.u8()
    shape = tuple(r.u64() for _ in range(ndim))
    tag = r.u8()
    if tag == _SEL_ALL:
        return AllSelection(shape)
    if tag == _SEL_HYPERSLAB:
        fields = []
        for _ in range(4):
            fields.append(tuple(r.u64() for _ in range(ndim)))
        start, count, stride, block = fields
        return HyperslabSelection(shape, start, count, stride, block)
    if tag == _SEL_INDEXSET:
        return IndexSetSelection(shape, [_dec_idx(r) for _ in range(ndim)])
    if tag == _SEL_POINTS:
        flat = _dec_idx(r)
        return PointSelection(shape, flat.reshape(-1, ndim))
    if tag == _SEL_NONE:
        return NoneSelection(shape)
    raise H5Error(f"unknown selection tag {tag}")


# -- tree codec ------------------------------------------------------------------


def _encode_attrs(w: Writer, node: Node):
    w.u32(len(node.attributes))
    for name in sorted(node.attributes):
        attr = node.attributes[name]
        w.text(name)
        w.blob(attr.dtype.encode())
        w.blob(attr.space.encode())
        if attr.value is None:
            w.u8(0)
        else:
            w.u8(1)
            w.blob(np.ascontiguousarray(attr.value).tobytes())


def _decode_attrs(r: Reader, node: Node):
    for _ in range(r.u32()):
        name = r.text()
        dtype = Datatype.decode(r.blob())
        space = Dataspace.decode(r.blob())
        attr = node.create_attribute(name, dtype, space)
        if r.u8():
            raw = r.blob()
            val = np.frombuffer(raw, dtype=dtype.np)
            attr.write(val.reshape(space.shape))


def _encode_node(w: Writer, node: Node, data: Writer):
    if isinstance(node, DatasetNode):
        w.u8(_KIND_DATASET)
        w.text(node.name)
        _encode_attrs(w, node)
        w.blob(node.dtype.encode())
        w.blob(node.space.encode())
        w.u8(0 if node.fill_value is None else 1)
        if node.fill_value is not None:
            w.blob(
                np.asarray(node.fill_value, dtype=node.dtype.np).tobytes()
            )
        if node.chunks is None:
            w.u8(0)
        else:
            w.u8(len(node.chunks))
            for c in node.chunks:
                w.u64(c)
        w.u32(len(node.pieces))
        for piece in node.pieces:
            encode_selection(w, piece.selection)
            payload = np.ascontiguousarray(piece.data).tobytes()
            w.u64(data.nbytes)  # offset within the data section
            w.u64(len(payload))
            data.raw(payload)
    elif isinstance(node, GroupNode):
        w.u8(_KIND_GROUP)
        w.text(node.name)
        _encode_attrs(w, node)
        w.u32(len(node.children))
        for name in sorted(node.children):
            _encode_node(w, node.children[name], data)
    else:  # pragma: no cover - tree invariant
        raise H5Error(f"cannot encode node {type(node).__name__}")


def _decode_node(r: Reader, parent: GroupNode | None, data_section: bytes,
                 lazy_data) -> Node:
    kind = r.u8()
    name = r.text()
    if kind == _KIND_DATASET:
        node = DatasetNode.__new__(DatasetNode)
        Node.__init__(node, name, parent)
        _decode_attrs(r, node)
        node.dtype = Datatype.decode(r.blob())
        node.space = Dataspace.decode(r.blob())
        node.fill_value = None
        if r.u8():
            raw = r.blob()
            node.fill_value = np.frombuffer(raw, dtype=node.dtype.np)[0]
        nchunk_dims = r.u8()
        node.chunks = tuple(r.u64() for _ in range(nchunk_dims)) \
            if nchunk_dims else None
        node.pieces = []
        for _ in range(r.u32()):
            sel = decode_selection(r)
            off = r.u64()
            length = r.u64()
            raw = lazy_data(off, length) if lazy_data else \
                data_section[off:off + length]
            arr = np.frombuffer(raw, dtype=node.dtype.np).copy()
            node.pieces.append(DataPiece(sel, arr))
        if parent is not None:
            parent.children[name] = node
        return node
    if kind == _KIND_GROUP:
        node = GroupNode(name, None)
        if parent is not None:
            parent.children[name] = node
            node.parent = parent
        _decode_attrs(r, node)
        for _ in range(r.u32()):
            _decode_node(r, node, data_section, lazy_data)
        return node
    raise H5Error(f"unknown node kind {kind}")


# -- whole-file codec ---------------------------------------------------------------


def encode_file(root: FileNode) -> bytes:
    """Serialize a file tree to the on-disk byte layout."""
    meta = Writer()
    data = Writer()
    meta.u32(len(root.children))
    _encode_attrs_root = Writer()  # root attrs go first in the meta block
    _encode_attrs(_encode_attrs_root, root)
    for name in sorted(root.children):
        _encode_node(meta, root.children[name], data)
    data_bytes = data.getvalue()
    meta_bytes = _encode_attrs_root.getvalue() + meta.getvalue()
    header = HEADER.pack(
        MAGIC, VERSION, HEADER.size + len(data_bytes), len(meta_bytes)
    )
    return header + data_bytes + meta_bytes


def decode_file(buf: bytes, name: str = "") -> FileNode:
    """Parse the byte layout back into a file tree."""
    if len(buf) < HEADER.size:
        raise H5Error("file too small for header")
    magic, version, meta_off, meta_len = HEADER.unpack_from(buf, 0)
    if magic != MAGIC:
        raise H5Error("bad magic: not a repro-h5 file")
    if version != VERSION:
        raise H5Error(f"unsupported format version {version}")
    data_section = buf[HEADER.size:meta_off]
    r = Reader(buf[meta_off:meta_off + meta_len])
    root = FileNode(name, None)
    _decode_attrs(r, root)
    for _ in range(r.u32()):
        _decode_node(r, root, data_section, None)
    return root
