"""Dataspaces: the N-dimensional extent of a dataset or attribute."""

from __future__ import annotations

import numpy as np

from repro.h5.errors import SelectionError
from repro.h5.selection import (
    AllSelection,
    HyperslabSelection,
    PointSelection,
    Selection,
)


#: Marker for an unlimited dimension in ``maxshape`` (HDF5's H5S_UNLIMITED).
UNLIMITED = -1


class Dataspace:
    """A simple N-dimensional extent (scalar when ``shape == ()``).

    Dataspaces are value objects; selections are created from them but do
    not mutate them (unlike the HDF5 C API's stateful selected dataspace,
    our API passes selections explicitly, which is equivalent and safer).

    ``maxshape`` bounds future resizes: each entry is an upper limit or
    :data:`UNLIMITED`. Omitted -> fixed extent (``maxshape == shape``).
    """

    __slots__ = ("shape", "maxshape")

    def __init__(self, shape, maxshape=None):
        if np.isscalar(shape):
            shape = (shape,)
        self.shape = tuple(int(s) for s in shape)
        if any(s < 0 for s in self.shape):
            raise SelectionError(f"negative extent: {self.shape}")
        if maxshape is None:
            self.maxshape = self.shape
        else:
            if np.isscalar(maxshape):
                maxshape = (maxshape,)
            self.maxshape = tuple(int(m) for m in maxshape)
            if len(self.maxshape) != len(self.shape):
                raise SelectionError("maxshape rank differs from shape")
            for s, m in zip(self.shape, self.maxshape):
                if m != UNLIMITED and m < s:
                    raise SelectionError(
                        f"maxshape {self.maxshape} below shape {self.shape}"
                    )

    def resized(self, new_shape) -> "Dataspace":
        """A copy with a new extent, validated against ``maxshape``."""
        new_shape = tuple(int(s) for s in new_shape)
        if len(new_shape) != len(self.shape):
            raise SelectionError("resize cannot change rank")
        for s, m in zip(new_shape, self.maxshape):
            if s < 0 or (m != UNLIMITED and s > m):
                raise SelectionError(
                    f"new shape {new_shape} exceeds maxshape {self.maxshape}"
                )
        return Dataspace(new_shape, self.maxshape)

    @property
    def resizable(self) -> bool:
        """True when the extent may still grow."""
        return self.maxshape != self.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def npoints(self) -> int:
        """Total number of elements in the extent."""
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def is_scalar(self) -> bool:
        """True for the scalar (rank-0) dataspace."""
        return self.shape == ()

    # -- selection factories -------------------------------------------------

    def select_all(self) -> Selection:
        """Selection covering the whole extent."""
        return AllSelection(self.shape)

    def select_hyperslab(self, start, count, stride=None, block=None) -> Selection:
        """Hyperslab selection over this extent."""
        return HyperslabSelection(self.shape, start, count, stride, block)

    def select_points(self, coords) -> Selection:
        """Point selection over this extent."""
        return PointSelection(self.shape, coords)

    # -- serialization ---------------------------------------------------------

    def encode(self) -> bytes:
        """Portable byte encoding for the file format."""
        return repr((self.shape, self.maxshape)).encode("ascii")

    @classmethod
    def decode(cls, blob: bytes) -> "Dataspace":
        """Inverse of :meth:`encode`."""
        import ast

        obj = ast.literal_eval(blob.decode("ascii"))
        if (isinstance(obj, tuple) and len(obj) == 2
                and isinstance(obj[0], tuple)
                and all(isinstance(v, int) for v in obj[0])
                and isinstance(obj[1], tuple)):
            return cls(obj[0], obj[1])
        return cls(obj)  # legacy: plain shape tuple

    # -- value semantics --------------------------------------------------------

    def __eq__(self, other):
        if isinstance(other, Dataspace):
            return (self.shape == other.shape
                    and self.maxshape == other.maxshape)
        return NotImplemented

    def __hash__(self):
        return hash((self.shape, self.maxshape))

    def __repr__(self):
        if self.resizable:
            return (f"Dataspace(shape={self.shape}, "
                    f"maxshape={self.maxshape})")
        return f"Dataspace(shape={self.shape})"
