"""Virtual Object Layer: the pluggable connector interface.

Every call made through :mod:`repro.h5.api` dispatches to a VOL
connector, mirroring HDF5 1.12's VOL. A connector receives opaque
*tokens* it minted itself (its own object representations), so stacking
works exactly like HDF5 VOL stacking: LowFive's metadata VOL sits on top
of (and optionally passes through to) the native VOL.

:class:`VOLBase` defines the callback surface; :class:`PassthroughVOL`
forwards everything to an underlying connector and is the base class for
LowFive's layered design (paper Sec. III-A: base VOL -> metadata VOL ->
distributed metadata VOL).
"""

from __future__ import annotations

from abc import ABC, abstractmethod


class VOLBase(ABC):
    """Abstract VOL connector.

    Tokens are connector-defined handles. ``comm`` is the simulated
    communicator of the task performing the operation (``None`` for
    serial use).
    """

    name = "abstract"

    # -- files ------------------------------------------------------------

    @abstractmethod
    def file_create(self, fname, mode, fapl, comm):
        """Create (``mode`` in ``{"w", "x"}``) a file; return a token."""

    @abstractmethod
    def file_open(self, fname, mode, fapl, comm):
        """Open an existing file (``mode`` in ``{"r", "a"}``)."""

    @abstractmethod
    def file_close(self, ftoken):
        """Close the file: flush, release, and (for transports) signal."""

    def file_flush(self, ftoken):
        """Flush pending state (default: no-op)."""

    # -- groups ------------------------------------------------------------

    @abstractmethod
    def group_create(self, parent, name):
        """Create a group under ``parent`` token; return a group token."""

    @abstractmethod
    def group_open(self, parent, name):
        """Open an existing group."""

    # -- datasets ------------------------------------------------------------

    @abstractmethod
    def dataset_create(self, parent, name, dtype, space, dcpl):
        """Create a dataset; return a dataset token."""

    @abstractmethod
    def dataset_open(self, parent, name):
        """Open an existing dataset."""

    @abstractmethod
    def dataset_meta(self, dtoken):
        """Return ``(Datatype, Dataspace)`` of an open dataset."""

    @abstractmethod
    def dataset_write(self, dtoken, selection, data, dxpl):
        """Write flat ``data`` (selection order) into ``selection``."""

    @abstractmethod
    def dataset_read(self, dtoken, selection, dxpl):
        """Read ``selection``; return flat values in selection order."""

    def dataset_close(self, dtoken):
        """Close a dataset handle (default: no-op)."""

    def dataset_resize(self, dtoken, new_shape):
        """Change a dataset's extent within its maxshape."""
        raise NotImplementedError(f"{self.name} does not support resize")

    # -- attributes ---------------------------------------------------------

    @abstractmethod
    def attr_create(self, obj, name, dtype, space):
        """Create an attribute on an object token."""

    @abstractmethod
    def attr_write(self, atoken, value):
        """Write an attribute's value."""

    @abstractmethod
    def attr_open(self, obj, name):
        """Open an attribute by name."""

    @abstractmethod
    def attr_read(self, atoken):
        """Read an attribute's value."""

    @abstractmethod
    def attr_list(self, obj):
        """List attribute names on an object."""

    # -- links / introspection ---------------------------------------------

    @abstractmethod
    def link_exists(self, parent, path):
        """True when ``path`` resolves under ``parent``."""

    @abstractmethod
    def links(self, parent):
        """List of ``(name, kind)`` under a group token; kind in
        ``{"group", "dataset"}``."""

    @abstractmethod
    def object_open(self, parent, path):
        """Open ``path``; return ``(kind, token)``."""

    def link_delete(self, parent, name):
        """Remove the link ``name`` under a group token."""
        raise NotImplementedError(f"{self.name} does not support deletion")


class PassthroughVOL(VOLBase):
    """Forwards every callback to an ``under`` connector.

    This is the paper's *base VOL*: "any HDF5 functions that are not
    redefined in the subsequent layers are caught at this base layer and
    pass through to native HDF5 file I/O". Layered connectors subclass
    this and override what they intercept.
    """

    name = "passthrough"

    def __init__(self, under: VOLBase | None):
        self.under = under

    def _require_under(self):
        if self.under is None:
            raise RuntimeError(
                f"{type(self).__name__} has no underlying VOL to pass "
                "through to (operation not intercepted)"
            )
        return self.under

    def file_create(self, fname, mode, fapl, comm):
        return self._require_under().file_create(fname, mode, fapl, comm)

    def file_open(self, fname, mode, fapl, comm):
        return self._require_under().file_open(fname, mode, fapl, comm)

    def file_close(self, ftoken):
        return self._require_under().file_close(ftoken)

    def file_flush(self, ftoken):
        return self._require_under().file_flush(ftoken)

    def group_create(self, parent, name):
        return self._require_under().group_create(parent, name)

    def group_open(self, parent, name):
        return self._require_under().group_open(parent, name)

    def dataset_create(self, parent, name, dtype, space, dcpl):
        return self._require_under().dataset_create(
            parent, name, dtype, space, dcpl
        )

    def dataset_open(self, parent, name):
        return self._require_under().dataset_open(parent, name)

    def dataset_meta(self, dtoken):
        return self._require_under().dataset_meta(dtoken)

    def dataset_write(self, dtoken, selection, data, dxpl):
        return self._require_under().dataset_write(dtoken, selection, data, dxpl)

    def dataset_read(self, dtoken, selection, dxpl):
        return self._require_under().dataset_read(dtoken, selection, dxpl)

    def dataset_close(self, dtoken):
        return self._require_under().dataset_close(dtoken)

    def dataset_resize(self, dtoken, new_shape):
        return self._require_under().dataset_resize(dtoken, new_shape)

    def attr_create(self, obj, name, dtype, space):
        return self._require_under().attr_create(obj, name, dtype, space)

    def attr_write(self, atoken, value):
        return self._require_under().attr_write(atoken, value)

    def attr_open(self, obj, name):
        return self._require_under().attr_open(obj, name)

    def attr_read(self, atoken):
        return self._require_under().attr_read(atoken)

    def attr_list(self, obj):
        return self._require_under().attr_list(obj)

    def link_exists(self, parent, path):
        return self._require_under().link_exists(parent, path)

    def links(self, parent):
        return self._require_under().links(parent)

    def object_open(self, parent, path):
        return self._require_under().object_open(parent, path)

    def link_delete(self, parent, name):
        return self._require_under().link_delete(parent, name)
