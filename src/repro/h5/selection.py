"""Dataspace selection algebra.

HDF5 dataspaces support selecting sub-regions of an N-dimensional extent
via hyperslabs (start/stride/count/block per dimension) and point lists.
LowFive's redistribution intersects the producer's written selections
with the consumer's requested selections, so the core operation here is
:meth:`Selection.intersect`.

All hyperslab-like selections are *separable*: cartesian products of
per-dimension index sets. The intersection of two separable selections
is separable (intersect per dimension), which keeps intersection exact
and vectorized for the full stride/block generality. Point selections
are handled by coordinate masking.

Selection order is row-major over the selected coordinates (HDF5's
ordering for hyperslabs); point selections preserve their given order.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.h5.errors import SelectionError


def _as_tuple(x, ndim: int, name: str) -> tuple[int, ...]:
    if np.isscalar(x):
        x = (int(x),) * ndim
    t = tuple(int(v) for v in x)
    if len(t) != ndim:
        raise SelectionError(f"{name} must have {ndim} entries, got {len(t)}")
    return t


class Selection(ABC):
    """A set of selected coordinates within an N-d extent ``shape``."""

    __slots__ = ("shape",)

    def __init__(self, shape):
        self.shape = tuple(int(s) for s in shape)

    @property
    def ndim(self) -> int:
        """Number of dimensions of the extent."""
        return len(self.shape)

    @property
    @abstractmethod
    def npoints(self) -> int:
        """Number of selected elements."""

    @abstractmethod
    def coords(self) -> np.ndarray:
        """(npoints, ndim) coordinate array in selection order."""

    @abstractmethod
    def extract(self, arr: np.ndarray) -> np.ndarray:
        """Gather selected elements of ``arr`` (shaped ``shape``) into a
        flat array in selection order."""

    @abstractmethod
    def scatter(self, values: np.ndarray, arr: np.ndarray) -> None:
        """Inverse of :meth:`extract`: place ``values`` into ``arr``."""

    @abstractmethod
    def intersect(self, other: "Selection") -> "Selection":
        """Selection of coordinates present in both (same extent)."""

    @property
    def is_separable(self) -> bool:
        """True when the selection is a cartesian product of per-dim sets."""
        return False

    def per_dim_indices(self) -> list[np.ndarray]:
        """Per-dimension sorted index arrays (separable selections only)."""
        raise SelectionError(f"{type(self).__name__} is not separable")

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Bounding box as (inclusive mins, exclusive maxs); empty -> zeros."""
        if self.npoints == 0:
            z = np.zeros(self.ndim, dtype=np.int64)
            return z, z.copy()
        c = self.coords()
        return c.min(axis=0), c.max(axis=0) + 1

    def translate(self, offset, new_shape=None) -> "Selection":
        """Shift every coordinate by ``-offset`` into a space ``new_shape``.

        Used to map file-space coordinates into a locally stored block
        whose origin sits at ``offset`` in the file space.
        """
        off = np.asarray(offset, dtype=np.int64)
        shape = self.shape if new_shape is None else tuple(new_shape)
        c = self.coords() - off
        if c.size and (c.min() < 0 or (c >= np.asarray(shape)).any()):
            raise SelectionError("translated selection exits the new extent")
        return PointSelection(shape, c)

    def same_elements(self, other: "Selection") -> bool:
        """True when both select the same coordinate set (order ignored).

        Vectorized: separable selections compare their per-dimension
        index arrays directly (each is sorted and duplicate-free, so
        the cartesian products are equal iff the factors are); anything
        else compares row-sorted coordinate arrays -- no Python-level
        sets of coordinate tuples are built.
        """
        if self.shape != other.shape or self.npoints != other.npoints:
            return False
        if self.npoints == 0:
            return True
        if self.is_separable and other.is_separable:
            return all(
                np.array_equal(a, b)
                for a, b in zip(self.per_dim_indices(),
                                other.per_dim_indices())
            )
        a = self.coords()
        b = other.coords()
        # Coordinate rows may repeat only if a producer passed duplicate
        # points; lexicographic row sort makes the comparison orderless.
        a = a[np.lexsort(a.T[::-1])]
        b = b[np.lexsort(b.T[::-1])]
        return bool(np.array_equal(a, b))

    def _check_extent(self, other: "Selection") -> None:
        if self.shape != other.shape:
            raise SelectionError(
                f"extent mismatch: {self.shape} vs {other.shape}"
            )


class _SeparableSelection(Selection):
    """Common machinery for cartesian-product selections."""

    __slots__ = ()

    is_separable = True

    @property
    def npoints(self) -> int:
        """Product of per-dimension set sizes."""
        n = 1
        for idx in self.per_dim_indices():
            n *= len(idx)
        return n

    def coords(self) -> np.ndarray:
        idx = self.per_dim_indices()
        if any(len(i) == 0 for i in idx):
            return np.empty((0, self.ndim), dtype=np.int64)
        grids = np.meshgrid(*idx, indexing="ij")
        return np.stack([g.ravel() for g in grids], axis=1).astype(np.int64)

    def _slices(self):
        """Per-dim slices when every dim is a contiguous run, else None."""
        out = []
        for idx in self.per_dim_indices():
            if len(idx) == 0:
                return None
            lo, hi = int(idx[0]), int(idx[-1])
            if hi - lo + 1 != len(idx):
                return None
            out.append(slice(lo, hi + 1))
        return tuple(out)

    def extract(self, arr: np.ndarray) -> np.ndarray:
        if tuple(arr.shape) != self.shape:
            raise SelectionError(
                f"array shape {arr.shape} != extent {self.shape}"
            )
        sl = self._slices()
        if sl is not None:
            return np.ascontiguousarray(arr[sl]).reshape(-1)
        return arr[np.ix_(*self.per_dim_indices())].reshape(-1)

    def scatter(self, values: np.ndarray, arr: np.ndarray) -> None:
        if tuple(arr.shape) != self.shape:
            raise SelectionError(
                f"array shape {arr.shape} != extent {self.shape}"
            )
        values = np.asarray(values).reshape(-1)
        if values.size != self.npoints:
            raise SelectionError(
                f"value count {values.size} != selection size {self.npoints}"
            )
        idx = self.per_dim_indices()
        sl = self._slices()
        box = tuple(len(i) for i in idx)
        if sl is not None:
            arr[sl] = values.reshape(box)
        else:
            arr[np.ix_(*idx)] = values.reshape(box)

    def intersect(self, other: Selection) -> Selection:
        self._check_extent(other)
        if isinstance(other, NoneSelection):
            return other
        if other.is_separable:
            mine = self.per_dim_indices()
            theirs = other.per_dim_indices()
            idx = [
                np.intersect1d(a, b, assume_unique=True)
                for a, b in zip(mine, theirs)
            ]
            if any(len(i) == 0 for i in idx):
                return NoneSelection(self.shape)
            return IndexSetSelection(self.shape, idx).simplify()
        # point selection (or anything coordinate-based): mask its points
        return other.intersect(self)

    def translate(self, offset, new_shape=None) -> Selection:
        """Separable translate stays separable (and vectorized)."""
        off = np.asarray(offset, dtype=np.int64)
        shape = self.shape if new_shape is None else tuple(new_shape)
        idx = [a - off[d] for d, a in enumerate(self.per_dim_indices())]
        for d, a in enumerate(idx):
            if a.size and (a[0] < 0 or a[-1] >= shape[d]):
                raise SelectionError("translated selection exits the new extent")
        return IndexSetSelection(shape, idx).simplify()

    def simplify(self) -> "Selection":
        """Return an equivalent, more specific selection when possible."""
        return self


class AllSelection(_SeparableSelection):
    """The entire extent."""

    __slots__ = ("_idx",)

    def __init__(self, shape):
        super().__init__(shape)
        self._idx = [np.arange(s, dtype=np.int64) for s in self.shape]

    def per_dim_indices(self):
        return self._idx

    def extract(self, arr):
        if tuple(arr.shape) != self.shape:
            raise SelectionError(
                f"array shape {arr.shape} != extent {self.shape}"
            )
        return np.ascontiguousarray(arr).reshape(-1)

    def __repr__(self):
        return f"AllSelection(shape={self.shape})"


class NoneSelection(Selection):
    """The empty selection."""

    __slots__ = ()

    @property
    def npoints(self) -> int:
        """Always 0."""
        return 0

    def coords(self):
        return np.empty((0, self.ndim), dtype=np.int64)

    def extract(self, arr):
        return np.empty(0, dtype=arr.dtype)

    def scatter(self, values, arr):
        if np.asarray(values).size:
            raise SelectionError("cannot scatter into an empty selection")

    def intersect(self, other):
        self._check_extent(other)
        return self

    def __repr__(self):
        return f"NoneSelection(shape={self.shape})"


class HyperslabSelection(_SeparableSelection):
    """HDF5 hyperslab: per dim, ``count`` blocks of ``block`` elements
    spaced ``stride`` apart starting at ``start``."""

    __slots__ = ("start", "count", "stride", "block", "_idx")

    def __init__(self, shape, start, count, stride=None, block=None):
        super().__init__(shape)
        nd = self.ndim
        self.start = _as_tuple(start, nd, "start")
        self.count = _as_tuple(count, nd, "count")
        self.stride = _as_tuple(1 if stride is None else stride, nd, "stride")
        self.block = _as_tuple(1 if block is None else block, nd, "block")
        idx = []
        for d in range(nd):
            s, c, st, b = self.start[d], self.count[d], self.stride[d], self.block[d]
            if s < 0 or c < 0 or st < 1 or b < 1:
                raise SelectionError(
                    f"invalid hyperslab in dim {d}: start={s} count={c} "
                    f"stride={st} block={b}"
                )
            if b > st:
                raise SelectionError(
                    f"block {b} may not exceed stride {st} (dim {d})"
                )
            if c > 0:
                last = s + (c - 1) * st + b
                if last > self.shape[d]:
                    raise SelectionError(
                        f"hyperslab exceeds extent in dim {d}: "
                        f"reaches {last} > {self.shape[d]}"
                    )
            block_starts = s + st * np.arange(c, dtype=np.int64)
            idx.append(
                (block_starts[:, None] + np.arange(b, dtype=np.int64)).reshape(-1)
            )
        self._idx = idx

    def per_dim_indices(self):
        return self._idx

    @property
    def is_contiguous(self) -> bool:
        """True when the selection is one solid box."""
        return all(
            c <= 1 or st == b
            for c, st, b in zip(self.count, self.stride, self.block)
        )

    def box(self) -> tuple[np.ndarray, np.ndarray]:
        """(start, extent) of the bounding box."""
        return self.bounds()

    def __repr__(self):
        return (
            f"HyperslabSelection(shape={self.shape}, start={self.start}, "
            f"count={self.count}, stride={self.stride}, block={self.block})"
        )


class IndexSetSelection(_SeparableSelection):
    """Cartesian product of explicit per-dimension index sets.

    Closed under intersection with any separable selection; produced by
    :meth:`Selection.intersect`.
    """

    __slots__ = ("_idx",)

    def __init__(self, shape, per_dim):
        super().__init__(shape)
        if len(per_dim) != self.ndim:
            raise SelectionError("need one index array per dimension")
        idx = []
        for d, a in enumerate(per_dim):
            a = np.asarray(a, dtype=np.int64).reshape(-1)
            if a.size and (a.min() < 0 or a.max() >= self.shape[d]):
                raise SelectionError(f"indices out of range in dim {d}")
            if a.size > 1 and not (np.diff(a) > 0).all():
                a = np.unique(a)
            idx.append(a)
        self._idx = idx

    def per_dim_indices(self):
        return self._idx

    def simplify(self) -> Selection:
        """Collapse to a hyperslab when every dim is a contiguous run."""
        starts, counts = [], []
        for d, a in enumerate(self._idx):
            if len(a) == 0:
                return NoneSelection(self.shape)
            lo, hi = int(a[0]), int(a[-1])
            if hi - lo + 1 != len(a):
                return self
            starts.append(lo)
            counts.append(len(a))
        return HyperslabSelection(self.shape, starts, counts)

    def __repr__(self):
        sizes = tuple(len(a) for a in self._idx)
        return f"IndexSetSelection(shape={self.shape}, sizes={sizes})"


class PointSelection(Selection):
    """An explicit, ordered list of coordinates."""

    __slots__ = ("_coords",)

    def __init__(self, shape, coords):
        super().__init__(shape)
        c = np.asarray(coords, dtype=np.int64)
        if c.size == 0:
            c = c.reshape(0, self.ndim)
        if c.ndim == 1 and self.ndim == 1:
            c = c[:, None]
        if c.ndim != 2 or c.shape[1] != self.ndim:
            raise SelectionError(
                f"coords must be (k, {self.ndim}), got {c.shape}"
            )
        if c.size and (
            (c < 0).any() or (c >= np.asarray(self.shape, dtype=np.int64)).any()
        ):
            raise SelectionError("point coordinates out of extent")
        self._coords = c

    @property
    def npoints(self) -> int:
        """Number of selected points."""
        return self._coords.shape[0]

    def coords(self) -> np.ndarray:
        return self._coords

    def extract(self, arr):
        if tuple(arr.shape) != self.shape:
            raise SelectionError(
                f"array shape {arr.shape} != extent {self.shape}"
            )
        if self.npoints == 0:
            return np.empty(0, dtype=arr.dtype)
        return arr[tuple(self._coords.T)]

    def scatter(self, values, arr):
        if tuple(arr.shape) != self.shape:
            raise SelectionError(
                f"array shape {arr.shape} != extent {self.shape}"
            )
        values = np.asarray(values).reshape(-1)
        if values.size != self.npoints:
            raise SelectionError("value count != selection size")
        if self.npoints:
            arr[tuple(self._coords.T)] = values

    def intersect(self, other: Selection) -> Selection:
        self._check_extent(other)
        if isinstance(other, NoneSelection) or self.npoints == 0:
            return NoneSelection(self.shape)
        if other.is_separable:
            mask = np.ones(self.npoints, dtype=bool)
            for d, idx in enumerate(other.per_dim_indices()):
                mask &= np.isin(self._coords[:, d], idx)
            kept = self._coords[mask]
        else:
            theirs = {tuple(c) for c in other.coords()}
            keep = [i for i, c in enumerate(self._coords)
                    if tuple(c) in theirs]
            kept = self._coords[keep]
        if kept.shape[0] == 0:
            return NoneSelection(self.shape)
        return PointSelection(self.shape, kept)

    def __repr__(self):
        return f"PointSelection(shape={self.shape}, npoints={self.npoints})"


# -- unbound selection specs (bound to a dataspace by the API layer) -------


class SelectionSpec:
    """A selection description not yet bound to an extent."""

    def bind(self, shape) -> Selection:  # pragma: no cover - interface
        """Materialize onto a concrete extent."""
        raise NotImplementedError


class _HyperslabSpec(SelectionSpec):
    def __init__(self, start, count, stride=None, block=None):
        self.start, self.count = start, count
        self.stride, self.block = stride, block

    def bind(self, shape) -> Selection:
        return HyperslabSelection(
            shape, self.start, self.count, self.stride, self.block
        )


class _PointsSpec(SelectionSpec):
    def __init__(self, coords):
        self.coords = coords

    def bind(self, shape) -> Selection:
        return PointSelection(shape, self.coords)


class _AllSpec(SelectionSpec):
    def bind(self, shape) -> Selection:
        return AllSelection(shape)


def hyperslab(start, count, stride=None, block=None) -> SelectionSpec:
    """Unbound hyperslab spec; bound to a dataset's shape by the API."""
    return _HyperslabSpec(start, count, stride, block)


def points(coords) -> SelectionSpec:
    """Unbound point-selection spec."""
    return _PointsSpec(coords)


def select_all() -> SelectionSpec:
    """Unbound whole-extent spec."""
    return _AllSpec()


def chunks_touched(sel: Selection, chunk_shape) -> int:
    """Number of fixed-shape chunks a selection intersects.

    Drives the chunk-aware I/O cost model (each touched chunk is one
    lock/IO unit on the file system).
    """
    chunk_shape = tuple(int(c) for c in chunk_shape)
    if len(chunk_shape) != sel.ndim or any(c < 1 for c in chunk_shape):
        raise SelectionError(f"bad chunk shape {chunk_shape}")
    if sel.npoints == 0:
        return 0
    if sel.is_separable:
        n = 1
        for idx, c in zip(sel.per_dim_indices(), chunk_shape):
            n *= len(np.unique(idx // c))
        return int(n)
    coords = sel.coords() // np.asarray(chunk_shape, dtype=np.int64)
    return int(len(np.unique(coords, axis=0)))


def bind_selection(sel, shape) -> Selection:
    """Coerce ``sel`` (None, spec, or bound selection) onto ``shape``."""
    if sel is None:
        return AllSelection(shape)
    if isinstance(sel, SelectionSpec):
        return sel.bind(shape)
    if isinstance(sel, Selection):
        if sel.shape != tuple(shape):
            raise SelectionError(
                f"selection extent {sel.shape} != dataspace shape {tuple(shape)}"
            )
        return sel
    raise SelectionError(f"cannot interpret selection: {sel!r}")
