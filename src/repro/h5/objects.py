"""In-memory metadata hierarchy: files, groups, datasets, attributes.

This is the tree of paper Fig. 1: every node knows its name, parent and
children; dataset nodes carry a datatype, a dataspace, and the *data
pieces* written so far -- each piece is (selection, array, ownership),
where ownership records whether the node holds a deep copy or a shallow
reference to user memory (configurable per dataset, paper Sec. I).

The same node types back the native VOL's in-core image of a file and
LowFive's metadata VOL, which is exactly the reuse the paper describes
("we manage our own tree of HDF5 objects ... that replicates the user's
HDF5 data model").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.h5.datatype import Datatype
from repro.h5.dataspace import Dataspace
from repro.h5.errors import ExistsError, NotFoundError, SelectionError
from repro.h5.selection import Selection

#: LowFive made a private copy of the data.
OWN_DEEP = "deep"
#: The node references user-owned memory (zero-copy).
OWN_SHALLOW = "shallow"


def split_path(path: str) -> list[str]:
    """Split an HDF5 path into components, ignoring empty segments."""
    return [p for p in path.split("/") if p]


class Node:
    """Base tree node."""

    __slots__ = ("name", "parent", "attributes")

    def __init__(self, name: str, parent: "GroupNode | None" = None):
        self.name = name
        self.parent = parent
        self.attributes: dict[str, AttributeNode] = {}

    @property
    def path(self) -> str:
        """Absolute path of this node within its file."""
        parts = []
        node = self
        while node.parent is not None:
            parts.append(node.name)
            node = node.parent
        return "/" + "/".join(reversed(parts))

    @property
    def file_node(self) -> "FileNode":
        """The file root this node hangs off."""
        node = self
        while node.parent is not None:
            node = node.parent
        if not isinstance(node, FileNode):
            raise NotFoundError("node is not attached to a file")
        return node

    # -- attributes ------------------------------------------------------------

    def create_attribute(self, name: str, dtype: Datatype,
                         space: Dataspace) -> "AttributeNode":
        """Create a new attribute on this node."""
        if name in self.attributes:
            raise ExistsError(f"attribute {name!r} exists on {self.path}")
        attr = AttributeNode(name, dtype, space)
        self.attributes[name] = attr
        return attr

    def get_attribute(self, name: str) -> "AttributeNode":
        """Look up an attribute by name."""
        try:
            return self.attributes[name]
        except KeyError:
            raise NotFoundError(
                f"no attribute {name!r} on {self.path}"
            ) from None


class GroupNode(Node):
    """A group: named container of child nodes."""

    __slots__ = ("children",)

    def __init__(self, name: str, parent: "GroupNode | None" = None):
        super().__init__(name, parent)
        self.children: dict[str, Node] = {}

    # -- child management ----------------------------------------------------

    def add_child(self, node: Node) -> Node:
        """Attach ``node`` under this group."""
        if node.name in self.children:
            raise ExistsError(f"link {node.name!r} exists in {self.path}")
        node.parent = self
        self.children[node.name] = node
        return node

    def remove_child(self, name: str) -> None:
        """Unlink the child called ``name``."""
        try:
            del self.children[name]
        except KeyError:
            raise NotFoundError(f"no link {name!r} in {self.path}") from None

    # -- traversal --------------------------------------------------------------

    def lookup(self, path: str) -> Node:
        """Resolve a path relative to this node (absolute paths resolve
        from the file root)."""
        node: Node = self.file_node if path.startswith("/") else self
        for part in split_path(path):
            if not isinstance(node, GroupNode):
                raise NotFoundError(f"{node.path} is not a group")
            try:
                node = node.children[part]
            except KeyError:
                raise NotFoundError(
                    f"no link {part!r} in {node.path}"
                ) from None
        return node

    def exists(self, path: str) -> bool:
        """True when ``path`` resolves under this node."""
        try:
            self.lookup(path)
            return True
        except NotFoundError:
            return False

    def require_groups(self, path: str) -> "GroupNode":
        """Create (or traverse) intermediate groups along ``path``."""
        node: Node = self.file_node if path.startswith("/") else self
        for part in split_path(path):
            assert isinstance(node, GroupNode)
            child = node.children.get(part)
            if child is None:
                child = node.add_child(GroupNode(part))
            node = child
        if not isinstance(node, GroupNode):
            raise ExistsError(f"{node.path} exists and is not a group")
        return node

    def walk(self):
        """Yield every descendant node, depth first, children sorted."""
        for name in sorted(self.children):
            child = self.children[name]
            yield child
            if isinstance(child, GroupNode):
                yield from child.walk()


class FileNode(GroupNode):
    """Root of a file's metadata hierarchy; behaves as the root group."""

    __slots__ = ()


@dataclass
class DataPiece:
    """One write's worth of data: where it lives in the file dataspace,
    the values, and whether we own them."""

    selection: Selection
    data: np.ndarray
    ownership: str = OWN_DEEP

    @property
    def nbytes(self) -> int:
        """Size of this piece's values in bytes."""
        return int(self.data.nbytes)


class DatasetNode(Node):
    """A dataset: datatype + dataspace + written data pieces.

    Each :meth:`write` appends a piece; :meth:`read` assembles any
    requested selection from the stored pieces (zero-filled where
    nothing was written, like HDF5's fill value).
    """

    __slots__ = ("dtype", "space", "pieces", "fill_value", "chunks")

    def __init__(self, name: str, dtype: Datatype, space: Dataspace,
                 parent: GroupNode | None = None, fill_value=None,
                 chunks=None):
        super().__init__(name, parent)
        self.dtype = dtype
        self.space = space
        self.pieces: list[DataPiece] = []
        self.fill_value = fill_value
        if chunks is not None:
            chunks = tuple(int(c) for c in chunks)
            if len(chunks) != space.ndim or any(c < 1 for c in chunks):
                raise SelectionError(
                    f"bad chunk shape {chunks} for rank {space.ndim}"
                )
        self.chunks = chunks

    # -- writing -------------------------------------------------------------

    def write(self, selection: Selection, data: np.ndarray,
              ownership: str = OWN_DEEP) -> DataPiece:
        """Record ``data`` (in selection order) for ``selection``.

        ``ownership == OWN_DEEP`` copies; ``OWN_SHALLOW`` keeps a
        reference to the caller's array (zero-copy; the caller must not
        modify it until the piece is consumed -- paper Sec. I).
        """
        if selection.shape != self.space.shape:
            raise SelectionError(
                f"selection extent {selection.shape} != dataset shape "
                f"{self.space.shape}"
            )
        arr = np.asarray(data, dtype=self.dtype.np).reshape(-1)
        if arr.size != selection.npoints:
            raise SelectionError(
                f"data size {arr.size} != selection size {selection.npoints}"
            )
        if ownership == OWN_DEEP:
            arr = arr.copy()
        elif ownership != OWN_SHALLOW:
            raise ValueError(f"unknown ownership {ownership!r}")
        piece = DataPiece(selection, arr, ownership)
        self.pieces.append(piece)
        return piece

    # -- reading -----------------------------------------------------------------

    def read(self, selection: Selection) -> np.ndarray:
        """Assemble values for ``selection`` from stored pieces.

        Returns a flat array in selection order. Elements never written
        get the fill value (default 0).
        """
        if selection.shape != self.space.shape:
            raise SelectionError(
                f"selection extent {selection.shape} != dataset shape "
                f"{self.space.shape}"
            )
        fill = 0 if self.fill_value is None else self.fill_value
        # Dense staging buffer over the selection's bounding box keeps the
        # assembly vectorized without allocating the whole dataspace.
        lo, hi = selection.bounds()
        box_shape = tuple(int(h - l) for l, h in zip(lo, hi))
        if selection.npoints == 0:
            return np.empty(0, dtype=self.dtype.np)
        box = np.full(box_shape, fill, dtype=self.dtype.np)
        for piece in self.pieces:
            overlap = piece.selection.intersect(selection)
            if overlap.npoints == 0:
                continue
            values = overlap.translate(
                piece.selection.bounds()[0],
                self._piece_box_shape(piece),
            )
            src_box = piece.data.reshape(self._piece_box_shape(piece)) \
                if self._piece_is_dense(piece) else None
            if src_box is not None:
                vals = values.extract(src_box)
            else:
                vals = self._gather_sparse(piece, overlap)
            overlap.translate(lo, box_shape).scatter(vals, box)
        return selection.translate(lo, box_shape).extract(box)

    def _piece_is_dense(self, piece: DataPiece) -> bool:
        """A piece is dense when its selection is a solid box, so its
        flat data reshapes to the box directly."""
        sel = piece.selection
        if not sel.is_separable:
            return False
        lo, hi = sel.bounds()
        return sel.npoints == int(np.prod(hi - lo))

    def _piece_box_shape(self, piece: DataPiece) -> tuple:
        lo, hi = piece.selection.bounds()
        return tuple(int(h - l) for l, h in zip(lo, hi))

    def _gather_sparse(self, piece: DataPiece, overlap: Selection) -> np.ndarray:
        """Gather overlap values from a non-dense piece via coordinate
        matching (small selections only: strided slabs, point lists)."""
        want = {tuple(c): i for i, c in enumerate(overlap.coords())}
        out = np.empty(overlap.npoints, dtype=self.dtype.np)
        for j, c in enumerate(piece.selection.coords()):
            i = want.get(tuple(c))
            if i is not None:
                out[i] = piece.data[j]
        return out

    @property
    def total_written_bytes(self) -> int:
        """Bytes held across all written pieces."""
        return sum(p.nbytes for p in self.pieces)

    # -- resizing -----------------------------------------------------------

    def resize(self, new_shape) -> None:
        """Change the extent (within ``maxshape``), HDF5-style.

        Growing keeps all data; shrinking discards elements outside the
        new extent (clipping pieces that straddle the boundary).
        """
        new_space = self.space.resized(new_shape)
        old_shape = self.space.shape
        new_shape = new_space.shape
        keep_counts = tuple(min(o, n) for o, n in zip(old_shape, new_shape))
        shrinks = any(n < o for o, n in zip(old_shape, new_shape))
        new_pieces: list[DataPiece] = []
        for piece in self.pieces:
            sel = piece.selection
            if not shrinks:
                new_pieces.append(
                    DataPiece(_rebind(sel, new_shape), piece.data,
                              piece.ownership)
                )
                continue
            if 0 in keep_counts:
                continue
            from repro.h5.selection import HyperslabSelection

            keep = HyperslabSelection(
                old_shape, (0,) * len(old_shape), keep_counts
            )
            overlap = sel.intersect(keep)
            if overlap.npoints == 0:
                continue
            if overlap.npoints == sel.npoints:
                new_pieces.append(
                    DataPiece(_rebind(sel, new_shape), piece.data,
                              piece.ownership)
                )
                continue
            # Straddling piece: keep only the surviving values (a copy,
            # since the clipped layout no longer matches user memory).
            lo, hi = sel.bounds()
            box_shape = tuple(int(h - l) for l, h in zip(lo, hi))
            if sel.npoints == int(np.prod(box_shape)):
                src = piece.data.reshape(box_shape)
                values = overlap.translate(lo, box_shape).extract(src)
            else:
                values = self._gather_sparse(piece, overlap)
            new_pieces.append(
                DataPiece(_rebind(overlap, new_shape), values.copy(),
                          OWN_DEEP)
            )
        self.pieces = new_pieces
        self.space = new_space


def _rebind(sel: Selection, new_shape) -> Selection:
    """The same coordinates as ``sel``, bound to a new extent."""
    from repro.h5.selection import (
        IndexSetSelection,
        NoneSelection,
        PointSelection,
    )

    new_shape = tuple(new_shape)
    if sel.npoints == 0:
        return NoneSelection(new_shape)
    if sel.is_separable:
        return IndexSetSelection(
            new_shape, sel.per_dim_indices()
        ).simplify()
    return PointSelection(new_shape, sel.coords())


class AttributeNode(Node):
    """A small named value attached to any object."""

    __slots__ = ("dtype", "space", "value")

    def __init__(self, name: str, dtype: Datatype, space: Dataspace):
        super().__init__(name, None)
        self.dtype = dtype
        self.space = space
        self.value: np.ndarray | None = None

    def write(self, value) -> None:
        """Store ``value``, reshaped to the dataspace."""
        arr = np.asarray(value, dtype=self.dtype.np)
        if self.space.is_scalar:
            arr = arr.reshape(())
        else:
            arr = arr.reshape(self.space.shape)
        self.value = arr.copy()

    def read(self):
        """The stored value (raises if never written)."""
        if self.value is None:
            raise NotFoundError(f"attribute {self.name!r} never written")
        return self.value
