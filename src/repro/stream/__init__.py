"""Multi-timestep streaming pipelines over the LowFive VOL.

A producer task publishes a series of epochs -- each an ordinary
LowFive file named ``"<name>@<epoch>"`` -- while consumer tasks
subscribe and lag behind. The live epochs form a bounded queue:
:class:`~repro.lowfive.StreamConfig.max_lag` caps how far the producer
may run ahead of the slowest consumer, and when the cap is hit the
producer's virtual clock blocks (serving queries the whole time) until
a release arrives -- backpressure, visible to causal analysis as the
``backpressure`` wait category. Wire-side data reduction (strided
subsampling and simulated compression, both driven by
``CostConfig.reduction_level``) happens at serve time, so the data cut
never exists on the consumer side of the wire.

Typical producer loop::

    prod = StreamProducer(vol, comm, inter, "sim", StreamConfig(max_lag=2))
    for step in range(n):
        with prod.epoch() as f:
            f.create_dataset("grid/x", data=x)
    prod.close()

and consumer loop::

    cons = StreamConsumer(vol, comm, inter, "sim")
    for ep in cons.epochs():
        with ep:
            x = ep.file["grid/x"][...]
    cons.close()
"""

from repro.lowfive.config import StreamConfig
from repro.stream.consumer import Epoch, StreamConsumer
from repro.stream.producer import StreamError, StreamProducer
from repro.stream.protocol import (
    MSG_EOS,
    MSG_EPOCH,
    TAG_STREAM_CTRL,
    TAG_STREAM_RELEASE,
    epoch_fname,
    stream_pattern,
)

__all__ = [
    "Epoch",
    "MSG_EOS",
    "MSG_EPOCH",
    "StreamConfig",
    "StreamConsumer",
    "StreamError",
    "StreamProducer",
    "TAG_STREAM_CTRL",
    "TAG_STREAM_RELEASE",
    "epoch_fname",
    "stream_pattern",
]
