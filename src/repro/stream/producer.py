"""Streaming producer: publish a series of epochs with backpressure.

The producer side of a :mod:`repro.stream` pipeline. Each epoch is an
ordinary LowFive file write (``with prod.epoch() as f: ...``); closing
it indexes collectively and registers the epoch with this rank's RPC
server *without* parking in a serve loop, so the producer keeps
computing. Consumer queries are answered only at the producer's
deterministic serving points -- the backpressure gate and the final
drain -- where the serve loop commits messages in global
virtual-arrival order (a nonblocking between-epoch poll would answer
whatever the consumer *thread* happened to have posted, making the
virtual schedule depend on real scheduling).

The backpressure rule: before starting an epoch that would push the
live-epoch window past ``StreamConfig.max_lag``, the producer blocks
inside a ``stream.backpressure`` span, serving the laggards' queries
until a release shrinks the window. Its virtual clock only advances to
the message that frees it, and the causal classifier attributes the
whole blocked interval to :data:`~repro.obs.causal.BACKPRESSURE` with
the lagging consumer as the cause.
"""

from __future__ import annotations

from contextlib import contextmanager

import repro.h5 as h5
from repro.lowfive.config import StreamConfig
from repro.stream.protocol import (
    MSG_EOS,
    MSG_EPOCH,
    TAG_STREAM_CTRL,
    TAG_STREAM_RELEASE,
    epoch_fname,
    stream_pattern,
)
from repro.stream.state import EpochWindow


class StreamError(RuntimeError):
    """Streaming protocol misuse (e.g. publishing after close)."""


def _stream_router(server) -> dict:
    """Per-server stream-name -> :class:`StreamProducer` map.

    One rank may run several streams over one RPC server; the single
    :data:`TAG_STREAM_RELEASE` lane and the ``stream.newest`` RPC both
    dispatch on the stream name carried in the payload.
    """
    router = getattr(server, "_stream_router", None)
    if router is None:
        router = {}
        server._stream_router = router

        def lane(inter, payload, source):
            stream, upto = payload
            prod = router.get(stream)
            if prod is not None:
                prod._on_release(inter, upto, source)

        server.add_lane(TAG_STREAM_RELEASE, lane)

        def newest(source, stream):
            # Catch-up support: a slow joiner asks rank 0 how far the
            # stream has advanced. Answered at a deterministic point
            # of the serve order, so the caller's jump target is a
            # pure function of virtual time (unlike peeking its own
            # announcement queue, which would race real threads).
            prod = router.get(stream)
            if prod is None:
                raise KeyError(f"unknown stream {stream!r}")
            return prod.window.published

        server.register("stream.newest", newest)
    return router


class StreamProducer:
    """Publishes the epochs of one stream from one producer rank.

    Every rank of the producer task constructs one (the VOL wiring
    calls are idempotent, so sharing the task's singleton VOL is
    fine). Epochs are produced in lockstep across the task: publishing
    runs an epoch barrier before rank 0 announces to the consumers.

    Parameters
    ----------
    vol:
        The task's :class:`~repro.lowfive.DistMetadataVOL` (or staged
        subclass) -- gets memory + stream wiring for the epoch files.
    comm:
        The producer task's communicator.
    inter:
        Intercommunicator (or list of them) to the consumer task(s).
    name:
        Stream name; epoch files are ``"<name>@<epoch>"``.
    config:
        :class:`~repro.lowfive.StreamConfig`; default bounds the live
        window at 2 epochs.
    """

    def __init__(self, vol, comm, inter, name: str,
                 config: StreamConfig | None = None):
        self.vol = vol
        self.comm = comm
        self.inters = (list(inter) if isinstance(inter, (list, tuple))
                       else [inter])
        self.name = name
        self.config = config if config is not None else StreamConfig()
        pattern = stream_pattern(name)
        if not vol.config.file_intercepted(epoch_fname(name, 0)):
            vol.set_memory(pattern)
        for i in self.inters:
            vol.stream_on_close(pattern, i)
        consumers = [w for i in self.inters for w in i.remote_members]
        self.window = EpochWindow(consumers)
        self.server = vol.rank_server()
        _stream_router(self.server)[name] = self
        self._obs = comm.engine.obs
        self._world = comm.world_rank(comm.rank)
        self._closed = False

    # -- release / retirement ----------------------------------------------

    def _on_release(self, inter, upto: int, source: int) -> None:
        self.window.release(inter._src_world(source), upto)
        self._retire()

    def _done_worlds(self) -> set:
        """Consumer world ranks that already signalled end-of-stream."""
        worlds: set[int] = set()
        for i in self.inters:
            for s in self.server._done.get(id(i), ()):
                worlds.add(i._src_world(s))
        return worlds

    def _window_ok(self) -> bool:
        return (self.window.depth(self._done_worlds())
                < self.config.max_lag)

    def _retire(self) -> None:
        """Drop epochs every consumer rank has released."""
        done = self._done_worlds()
        ready = self.window.retire_ready(done)
        if not ready:
            return
        depth = self.window.depth(done)
        t = self.comm.vtime
        for e in ready:
            self.vol.drop_file(self.comm, epoch_fname(self.name, e))
            self._obs.stream.drop(self.name, e, self._world, t,
                                  depth=depth)
        self._obs.sample("stream.queue_depth", t, depth,
                         rank=self._world, stream=self.name)

    # -- publishing ---------------------------------------------------------

    @contextmanager
    def epoch(self):
        """Write one epoch: ``with prod.epoch() as f: ...``.

        Applies backpressure *before* opening the file (so the live
        window never exceeds ``max_lag``), then yields a writable
        :class:`repro.h5.File`; on exit the file is closed (collective
        index), registered for serving and announced to the consumers.
        """
        if self._closed:
            raise StreamError(f"stream {self.name!r} is closed")
        self._gate()
        e = self.window.published + 1
        with self._obs.span(self.comm, "stream.epoch", cat="stream",
                            stream=self.name, epoch=e,
                            phase="stream_epoch"):
            f = h5.File(epoch_fname(self.name, e), "w", comm=self.comm,
                        vol=self.vol)
            yield f
            f.close()
            self._publish(e)

    def _gate(self) -> None:
        """Block (serving) until the next publish fits in the window."""
        if self._window_ok():
            return
        with self._obs.span(self.comm, "stream.backpressure",
                            cat="stream", stream=self.name,
                            phase="backpressure"):
            self.server.serve_until(
                self._window_ok, timeout=self.config.timeout,
                what=f"epoch release on stream {self.name!r} "
                     "(backpressure)",
            )
        self._retire()

    def _publish(self, e: int) -> None:
        # Every producer rank must have closed (indexed + registered)
        # the epoch before rank 0 announces it as readable.
        self.comm.epoch_barrier(e)
        self.window.publish()
        depth = self.window.depth(self._done_worlds())
        t = self.comm.vtime
        self._obs.stream.publish(self.name, e, self._world, t, depth)
        self._obs.sample("stream.queue_depth", t, depth,
                         rank=self._world, stream=self.name)
        if self.comm.rank == 0:
            for i in self.inters:
                i.notify_remote((MSG_EPOCH, self.name, e),
                                TAG_STREAM_CTRL)
        self._retire()

    def close(self) -> None:
        """End the stream: announce EOS and serve until consumers are
        done with every retained epoch."""
        if self._closed:
            return
        self._closed = True
        self.comm.barrier()
        if self.comm.rank == 0:
            for i in self.inters:
                i.notify_remote((MSG_EOS, self.name,
                                 self.window.published),
                                TAG_STREAM_CTRL)
        for i in self.inters:
            self.server.attach(i)
        with self._obs.span(self.comm, "stream.drain", cat="stream",
                            stream=self.name, phase="drain"):
            self.server.serve(timeout=self.config.timeout)
        self._retire()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            self.close()
        return False
