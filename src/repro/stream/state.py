"""Live-epoch window bookkeeping (pure data structure, per rank).

Each producer rank tracks which epochs it has published and the
cumulative release high-water mark of every consumer rank. An epoch is
*live* until every consumer rank's mark covers it; the number of live
epochs is the queue depth the ``max_lag`` backpressure rule bounds.
"""

from __future__ import annotations


class EpochWindow:
    """Publish/release ledger of one producer rank.

    Parameters
    ----------
    consumers:
        World ranks of every consumer subscribed to the stream. The
        release quorum: an epoch retires once each of them (minus any
        ranks the caller excludes as *done*) has released it.
    """

    def __init__(self, consumers):
        self.consumers = tuple(sorted(consumers))
        self.published = -1  # newest published epoch (-1: none yet)
        self._hwm: dict[int, int] = {}  # consumer world rank -> released
        self._retired = -1  # newest epoch dropped by the producer

    def publish(self) -> int:
        """Make the next epoch live; returns its id."""
        self.published += 1
        return self.published

    def release(self, consumer: int, upto: int) -> None:
        """Consumer ``consumer`` released every epoch ``<= upto``."""
        if consumer not in self._hwm or self._hwm[consumer] < upto:
            self._hwm[consumer] = upto

    def floor(self, done=()) -> int:
        """Newest epoch released by every consumer still in the quorum.

        ``done`` lists consumer world ranks that signalled end-of-
        stream; they will never release again and drop out of the
        quorum (with everyone done, everything published is released).
        """
        active = [c for c in self.consumers if c not in done]
        if not active:
            return self.published
        return min(self._hwm.get(c, -1) for c in active)

    def depth(self, done=()) -> int:
        """Number of live (published, not fully released) epochs."""
        return self.published - self.floor(done)

    def retire_ready(self, done=()) -> list[int]:
        """Epochs newly eligible for dropping; marks them retired."""
        limit = self.floor(done)
        ready = list(range(self._retired + 1, limit + 1))
        if ready:
            self._retired = limit
        return ready
