"""Wire protocol constants and naming for streaming pipelines.

A stream maps ``(name, epoch)`` to the VOL file ``"<name>@<epoch>"``:
each epoch is written, closed and indexed like an ordinary LowFive
file, so the whole index/serve/query machinery works per timestep.
Control flow rides on two dedicated tags (outside the RPC 701-703 and
push/stage 705/707 ranges) so causal analysis can recognize stream
traffic without importing this package:

- ``TAG_STREAM_CTRL``: producer rank 0 -> every consumer rank;
  ``("__epoch__", name, e)`` announces a published epoch and
  ``("__eos__", name, last)`` ends the stream.
- ``TAG_STREAM_RELEASE``: consumer rank -> every producer rank;
  ``(name, upto)`` releases every epoch ``<= upto`` (a cumulative
  high-water mark, so slow joiners skipping epochs release them
  implicitly). Mirrored as ``_TAG_STREAM_RELEASE`` in
  :mod:`repro.obs.causal`.
"""

from __future__ import annotations

#: Epoch publish / end-of-stream announcements (producer -> consumer).
TAG_STREAM_CTRL = 709
#: Cumulative epoch releases (consumer -> producer).
TAG_STREAM_RELEASE = 710

#: Announcement kinds carried on :data:`TAG_STREAM_CTRL`.
MSG_EPOCH = "__epoch__"
MSG_EOS = "__eos__"


def epoch_fname(name: str, epoch: int) -> str:
    """VOL file name of one epoch of stream ``name``."""
    return f"{name}@{epoch}"


def stream_pattern(name: str) -> str:
    """Glob pattern matching every epoch file of stream ``name``."""
    return f"{name}@*"
