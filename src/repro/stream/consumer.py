"""Streaming consumer: subscribe to epochs, release them when done.

The consumer side of a :mod:`repro.stream` pipeline. Epoch
announcements from producer rank 0 arrive on ``TAG_STREAM_CTRL``;
:meth:`StreamConsumer.next_epoch` opens the next (or, with
``StreamConfig.catch_up``, the newest announced) epoch remotely
through the VOL and hands back an :class:`Epoch`. Leaving the epoch's
``with`` block releases it -- a cumulative high-water mark sent to
every producer rank -- which is what shrinks the producer's live
window and relieves backpressure. :meth:`Epoch.retain` keeps an epoch
live past the cursor; a retained epoch the consumer never releases is
reported by ``repro.analyze`` as an epoch leak.
"""

from __future__ import annotations

import repro.h5 as h5
from repro.lowfive.config import StreamConfig
from repro.lowfive.rpc import RPCClient
from repro.stream.protocol import (
    MSG_EOS,
    MSG_EPOCH,
    TAG_STREAM_CTRL,
    TAG_STREAM_RELEASE,
    epoch_fname,
    stream_pattern,
)


class Epoch:
    """Handle on one live epoch held by a consumer rank.

    Context manager: ``with cons.next_epoch() as ep:`` reads
    ``ep.file`` and releases the epoch on exit. Call :meth:`retain`
    inside the block to keep it live past the cursor -- the holder must
    then call :meth:`release` itself, or the epoch stays retained on
    the producer for the rest of the stream (an *epoch leak*).
    """

    def __init__(self, consumer: "StreamConsumer", epoch: int, file):
        self.consumer = consumer
        self.id = epoch
        self.file = file
        self._retained = False
        self._released = False

    def retain(self) -> None:
        """Keep this epoch live when the ``with`` block exits."""
        self._retained = True

    def release(self) -> None:
        """Close the file and release every epoch ``<= id``.

        Idempotent. Releases are cumulative high-water marks, so
        releasing a caught-up epoch also releases any skipped ones.
        """
        if self._released:
            return
        self._released = True
        self.file.close()
        self.consumer._release_upto(self.id)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if not self._retained:
            self.release()
        return False


class StreamConsumer:
    """Subscribes one consumer rank to a stream's epochs.

    Parameters
    ----------
    vol:
        The task's :class:`~repro.lowfive.DistMetadataVOL` -- gets
        memory + stream-consumer wiring for the epoch files.
    comm:
        The consumer task's communicator.
    inter:
        Intercommunicator to the producer task.
    name:
        Stream name (must match the producer's).
    config:
        :class:`~repro.lowfive.StreamConfig`; ``catch_up=True`` makes
        :meth:`next_epoch` ask producer rank 0 for the newest published
        epoch and jump there instead of consuming every one (slow
        joiners / restarted consumers).
    """

    def __init__(self, vol, comm, inter, name: str,
                 config: StreamConfig | None = None):
        self.vol = vol
        self.comm = comm
        self.inter = inter
        self.name = name
        self.config = config if config is not None else StreamConfig()
        pattern = stream_pattern(name)
        if not vol.config.file_intercepted(epoch_fname(name, 0)):
            vol.set_memory(pattern)
        vol.set_stream_consumer(pattern, inter)
        self._obs = comm.engine.obs
        self._world = comm.world_rank(comm.rank)
        self._next = 0  # cursor: next epoch this rank would consume
        self._newest = -1  # newest epoch announced so far
        self._eos: int | None = None  # last epoch, once EOS arrives
        self._closed = False

    # -- announcements ------------------------------------------------------

    def _note(self, kind: str, stream: str, epoch: int) -> None:
        if stream != self.name:
            return
        if kind == MSG_EOS:
            self._eos = epoch
        self._newest = max(self._newest, epoch)

    def _recv_announcement(self) -> None:
        """Block for one announcement from producer rank 0.

        The concrete source/tag pair makes this a deterministic FIFO
        receive; the wait's flow edge points at the producer, so a
        consumer ahead of the stream shows up as waiting on it.
        Announcements are only ever consumed this way -- a nonblocking
        drain would make state (and this rank's virtual clock) depend
        on how far the producer *thread* happens to have run.
        """
        (kind, stream, epoch), _ = self.inter.recv(
            source=0, tag=TAG_STREAM_CTRL)
        self._note(kind, stream, epoch)

    # -- consuming ----------------------------------------------------------

    def next_epoch(self) -> Epoch | None:
        """Open the next epoch (newest, with ``catch_up``); None at EOS."""
        while self._newest < self._next:
            if self._eos is not None:
                return None
            self._recv_announcement()
        if self._eos is not None and self._next > self._eos:
            return None
        e = self._next
        if self.config.catch_up:
            # Ask rank 0 how far the stream has advanced and jump
            # there; the cumulative release covers skipped epochs.
            newest = RPCClient(self.inter).call(0, "stream.newest",
                                                self.name)
            e = max(e, newest)
        f = h5.File(epoch_fname(self.name, e), "r", comm=self.comm,
                    vol=self.vol)
        self._obs.stream.acquire(self.name, e, self._world,
                                 self.comm.vtime)
        self._next = e + 1
        return Epoch(self, e, f)

    def epochs(self):
        """Iterate the stream: yields :class:`Epoch` handles until EOS.

        Each yielded epoch is released when the loop body leaves its
        ``with`` block (or, without one, when the caller releases it).
        """
        while True:
            ep = self.next_epoch()
            if ep is None:
                return
            yield ep

    def _release_upto(self, epoch: int) -> None:
        self._obs.stream.release(self.name, epoch, self._world,
                                 self.comm.vtime)
        for dest in range(self.inter.remote_size):
            self.inter.send((self.name, epoch), dest,
                            TAG_STREAM_RELEASE)

    def close(self, drain: bool = True) -> None:
        """Leave the stream: signal done to every producer rank.

        With ``drain`` (the default) first waits for EOS, so the
        producer's announcements are all consumed; ``drain=False``
        abandons the stream early (the producer drops this rank from
        the release quorum once the done signal lands). Deliberately
        does *not* release epochs still retained by this rank --
        that is the holder's job, and forgetting it is exactly what
        the epoch-leak check reports.
        """
        if self._closed:
            return
        self._closed = True
        if drain:
            # Announcements are FIFO from producer rank 0, so EOS is
            # last; once seen, nothing is left queued on the tag.
            while self._eos is None:
                self._recv_announcement()
        RPCClient(self.inter).notify_all("__done__")

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            self.close()
        return False
