"""Bredala-like container data model and redistribution (paper Fig. 9-10).

Bredala (Dreher & Peterka) annotates fields appended to a *container*
with how they must be redistributed between n producer and m consumer
processes. The two policies the paper benchmarks:

- **contiguous** (Fig. 10 top): a linear list of items keeps its global
  ordering; producers ship contiguous chunks to the consumers whose
  global ranges they overlap. Cheap: offsets are computed from counts
  and data moves in contiguous buffers ("the particles dataset conforms
  to these requirements").
- **bounding box** (Fig. 10 bottom): items carry d-dimensional
  coordinates that must land inside each consumer's subdomain. Dreher et
  al. report that "most of that time is spent computing and
  communicating the indices of intersecting bounding boxes", and the
  per-item classification/reordering ships coordinates along with the
  data. Those costs are charged here (see :class:`BredalaCosts`), which
  is what makes the grid dataset blow up at scale in Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

import numpy as np

from repro.diy import Bounds, RegularDecomposer

REDIST_CONTIGUOUS = "contiguous"
REDIST_BBOX = "bbox"

_TAG_BASE = 820


@dataclass(frozen=True)
class BredalaCosts:
    """Calibrated cost constants for Bredala's data path.

    ``per_item_contiguous`` covers append/serialize of one item in the
    contiguous policy (bulk-friendly). ``per_item_bbox`` covers per-item
    coordinate classification, reordering and serialization in the
    bounding-box policy. ``per_pair_index`` is the per-(producer,
    consumer)-pair cost of computing and exchanging intersecting bbox
    indices -- the term Dreher et al. measured to dominate, quadratic in
    task sizes and responsible for Fig. 9's blow-up.
    """

    per_item_contiguous: float = 3.0e-7
    per_item_bbox: float = 1.0e-6
    per_pair_index: float = 6.0e-5
    #: Direct-messaging transport: one epoch of synchronization skew.
    sync_factor: float = 1.0


@dataclass
class Field:
    """One annotated field of a container.

    Producer side sets ``data`` (and ``coords`` for the bbox policy);
    consumer side leaves them ``None`` and fills in the metadata needed
    to receive (``global_count`` or ``domain``).
    """

    name: str
    policy: str
    dtype: object
    item_shape: tuple = ()
    data: np.ndarray | None = None
    coords: np.ndarray | None = None  # (nitems, d) for bbox policy
    domain: tuple | None = None       # global domain shape for bbox
    global_count: int | None = None   # total items for contiguous

    def __post_init__(self):
        if self.policy not in (REDIST_CONTIGUOUS, REDIST_BBOX):
            raise ValueError(f"unknown policy {self.policy!r}")
        if self.policy == REDIST_BBOX and self.domain is None:
            raise ValueError("bbox policy needs a domain shape")


@dataclass
class Container:
    """An ordered set of fields exchanged in one redistribution epoch."""

    fields: list = dc_field(default_factory=list)

    def append(self, f: Field) -> None:
        """Append a field; names must be unique."""
        if any(g.name == f.name for g in self.fields):
            raise ValueError(f"duplicate field {f.name!r}")
        self.fields.append(f)

    def __iter__(self):
        return iter(self.fields)

    def __len__(self):
        return len(self.fields)


def _even_ranges(total: int, parts: int) -> list[tuple[int, int]]:
    base, rem = divmod(total, parts)
    out = []
    start = 0
    for r in range(parts):
        count = base + (1 if r < rem else 0)
        out.append((start, start + count))
        start += count
    return out


def redistribute_producer(inter, comm, container: Container,
                          costs: BredalaCosts | None = None) -> None:
    """Producer side: split and send every field to the consumers.

    Every consumer receives exactly one message per field from every
    producer (possibly empty), so the consumer side is deterministic.
    """
    costs = costs or BredalaCosts()
    comm.compute(costs.sync_factor * 0.5
                 * comm.model.epoch_jitter(comm.engine.nprocs))
    ncons = inter.remote_size
    for fidx, f in enumerate(container):
        tag = _TAG_BASE + fidx
        data = np.asarray(f.data)
        nitems = data.shape[0] if data.ndim else 0
        if f.policy == REDIST_CONTIGUOUS:
            counts = comm.allgather(nitems)
            my_start = sum(counts[:comm.rank])
            total = sum(counts)
            comm.charge_pack_elements(0)  # appended in bulk
            comm.compute(costs.per_item_contiguous * nitems)
            for crank, (c0, c1) in enumerate(_even_ranges(total, ncons)):
                lo = max(my_start, c0)
                hi = min(my_start + nitems, c1)
                if lo >= hi:
                    inter.send((f.name, None, None), crank, tag)
                else:
                    chunk = data[lo - my_start:hi - my_start]
                    comm.charge_memcpy(int(chunk.nbytes))
                    inter.send((f.name, lo, chunk), crank, tag)
        else:  # REDIST_BBOX
            coords = np.asarray(f.coords)
            dec = RegularDecomposer(f.domain, ncons)
            # The dominant cost Dreher et al. measured: computing and
            # communicating intersecting bbox indices, all pairs.
            nprod = comm.size
            comm.compute(costs.per_pair_index * nprod * ncons)
            # Per-item classification into consumer blocks (vectorized
            # here, but charged per item as Bredala walks items).
            comm.compute(costs.per_item_bbox * nitems)
            gids = dec.point_gids(coords) if nitems else \
                np.empty(0, dtype=np.int64)
            for crank in range(ncons):
                mask = gids == crank
                if not mask.any():
                    inter.send((f.name, None, None), crank, tag)
                    continue
                # Coordinates travel with the data (reordering on the
                # receive side needs them) -- extra bytes on the wire.
                payload = (coords[mask], data[mask])
                inter.send((f.name, payload[0], payload[1]), crank, tag)
        comm.barrier()  # Bredala epochs are collective per field


def redistribute_consumer(inter, comm, container: Container,
                          costs: BredalaCosts | None = None) -> dict:
    """Consumer side: receive one message per producer per field.

    Returns ``{field name: (origin, array)}`` where origin is the global
    start index (contiguous) or the block :class:`Bounds` (bbox), and
    the array holds this consumer's items in global order / block
    layout.
    """
    costs = costs or BredalaCosts()
    comm.compute(costs.sync_factor * 0.5
                 * comm.model.epoch_jitter(comm.engine.nprocs))
    nprod = inter.remote_size
    ncons = comm.size
    out = {}
    for fidx, f in enumerate(container):
        tag = _TAG_BASE + fidx
        np_dtype = np.dtype(getattr(f.dtype, "np", f.dtype))
        if f.policy == REDIST_CONTIGUOUS:
            c0, c1 = _even_ranges(f.global_count, ncons)[comm.rank]
            buf = np.zeros((c1 - c0,) + tuple(f.item_shape), dtype=np_dtype)
            for _ in range(nprod):
                (name, start, chunk), _st = inter.recv(tag=tag)
                if start is None:
                    continue
                comm.charge_memcpy(int(np.asarray(chunk).nbytes))
                buf[start - c0:start - c0 + len(chunk)] = chunk
            out[f.name] = (c0, buf)
        else:
            dec = RegularDecomposer(f.domain, ncons)
            if comm.rank < dec.ngrid_blocks:
                blk = dec.block_bounds(comm.rank)
            else:
                blk = Bounds([0] * len(f.domain), [0] * len(f.domain))
            buf = np.zeros(blk.shape + tuple(f.item_shape), dtype=np_dtype)
            nitems = 0
            for _ in range(nprod):
                (name, coords, values), _st = inter.recv(tag=tag)
                if coords is None:
                    continue
                local = np.asarray(coords) - blk.min
                buf[tuple(local.T)] = values
                nitems += len(coords)
            # Per-item reorder/deserialize on the receive side.
            comm.compute(costs.per_item_bbox * nitems)
            out[f.name] = (blk, buf)
    return out
