"""Hand-written MPI redistribution baseline (paper Fig. 7).

The application knows both decompositions (it wrote them), so producers
compute intersections with every consumer's read selection directly and
send the overlapping data point-to-point; no index/serve/query protocol
is needed. The catch, quoted from the paper: the hand-written code
"simply iterates over all the data points in the intersection of
bounding boxes and serializes them one point at a time" -- so its
serialization is charged per element, which is why LowFive's
contiguous-region optimization beats it at small scale.
"""

from __future__ import annotations

import numpy as np

from repro.h5.selection import Selection

#: Message tag for redistribution chunks.
TAG_DATA = 810


def pure_mpi_producer(inter, local_selection: Selection,
                      local_data: np.ndarray,
                      consumer_selections: list[Selection],
                      tag: int = TAG_DATA, epoch_start: bool = True) -> int:
    """Send this producer's overlaps with every consumer selection.

    Parameters
    ----------
    inter:
        Producer->consumer intercommunicator.
    local_selection, local_data:
        What this producer holds (flat, selection order).
    consumer_selections:
        Every consumer rank's read selection (known to the hand-written
        app a priori).

    Returns the number of messages sent. Every consumer gets exactly one
    message (possibly empty) so receives are deterministic.
    """
    local_data = np.asarray(local_data).reshape(-1)
    if epoch_start:
        # One direct-exchange epoch's synchronization skew (charge only
        # once when several datasets share an epoch).
        inter.compute(inter.model.epoch_jitter(inter.engine.nprocs) * 0.5)
    lo = local_selection.bounds()[0]
    box_shape = tuple(
        int(h - l) for l, h in zip(lo, local_selection.bounds()[1])
    )
    dense = local_selection.npoints == int(np.prod(box_shape))
    src_box = local_data.reshape(box_shape) if dense else None
    sent = 0
    for crank, csel in enumerate(consumer_selections):
        overlap = local_selection.intersect(csel)
        if overlap.npoints == 0:
            inter.send((None, None), crank, tag)
            sent += 1
            continue
        if src_box is not None:
            values = overlap.translate(lo, box_shape).extract(src_box)
        else:  # pragma: no cover - hand-written code used dense slabs
            index = {tuple(c): i for i, c in
                     enumerate(local_selection.coords())}
            values = np.array(
                [local_data[index[tuple(c)]] for c in overlap.coords()],
                dtype=local_data.dtype,
            )
        # Point-at-a-time serialization on the send side.
        inter.charge_pack_elements(overlap.npoints)
        inter.send((overlap, values), crank, tag)
        sent += 1
    return sent


def pure_mpi_consumer(inter, selection: Selection, dtype,
                      fill=0, tag: int = TAG_DATA,
                      epoch_end: bool = True) -> np.ndarray:
    """Receive one message from every producer; assemble the selection.

    Returns flat values in selection order. Unpacking is also charged
    per element (the hand-written code walks points on both sides).
    """
    if selection.npoints == 0:
        for _ in range(inter.remote_size):
            inter.recv(tag=tag)
        return np.empty(0, dtype=dtype)
    lo, hi = selection.bounds()
    box_shape = tuple(int(h - l) for l, h in zip(lo, hi))
    box = np.full(box_shape, fill, dtype=dtype)
    for _ in range(inter.remote_size):
        (overlap, values), _status = inter.recv(tag=tag)
        if overlap is None:
            continue
        inter.charge_pack_elements(overlap.npoints)
        overlap.translate(lo, box_shape).scatter(values, box)
    # Straggler skew: the consumer finishes only after the slowest of
    # its arrivals; charged post-receive so it cannot hide behind the
    # producer's packing phase (once per epoch).
    if epoch_end:
        inter.compute(inter.model.epoch_jitter(inter.engine.nprocs) * 0.65)
    return selection.translate(lo, box_shape).extract(box)
