"""DataSpaces-like staging transport (paper Fig. 8).

Key design points reproduced from DataSpaces (Docan et al.) as used in
the paper's comparison:

- **Dedicated staging ranks**: a separate server task indexes metadata.
  This is the extra resource cost the paper highlights ("at full scale,
  we used 4 additional compute nodes for the DataSpaces server").
- **``put_local``**: producers register only *metadata* with the
  servers; the data stays in producer memory ("the server only maintains
  indexing metadata") and is fetched by consumers one-sidedly (RDMA), so
  producers never block serving data.
- **Restricted data model**: N-dimensional arrays addressed by bounding
  boxes; no hierarchy, types, or irregular selections. Registered boxes
  of one version must tile (not overlap) the region consumers query.
- **No file-close synchronization**: a ``get`` blocks only until the
  queried region is covered by registered puts, not until the producer
  finishes its whole output step -- one reason DataSpaces beats LowFive
  by 20-50% in the paper.

The server-side index is sharded over server ranks by a regular
decomposition of each array's global shape (a DHT over space, as in the
real DataSpaces).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.diy import Bounds, RegularDecomposer
from repro.h5.selection import Selection
from repro.lowfive.rpc import Defer, RPCClient, RPCServer


@dataclass(frozen=True)
class DSCosts:
    """Client/server software costs (smaller than LowFive's: restricted
    flat-array data model, no VOL interception, no type machinery)."""

    per_put: float = 3e-6
    per_get: float = 3e-6
    per_rdma_fetch: float = 4e-6
    per_element_handle: float = 4.6e-8
    #: DataSpaces decouples producers and consumers through the staging
    #: index (no file-close wait, no collective index), so it pays less
    #: per-epoch synchronization skew than LowFive or direct exchanges.
    sync_factor: float = 0.5


class _Registered:
    """One put_local registration living in producer memory."""

    __slots__ = ("selection", "data", "producer")

    def __init__(self, selection: Selection, data: np.ndarray, producer: int):
        self.selection = selection
        self.data = np.asarray(data).reshape(-1)
        self.producer = producer


class DataSpaces:
    """Shared state of one DataSpaces deployment.

    Construct once in the workflow driver and share with the producer,
    consumer, and server tasks. Clients use :meth:`put_local` /
    :meth:`get` / :meth:`finalize`; server ranks run
    :func:`dataspaces_server_main`.
    """

    def __init__(self, nservers: int, costs: DSCosts | None = None):
        if nservers < 1:
            raise ValueError("need at least one staging rank")
        self.nservers = nservers
        self.costs = costs if costs is not None else DSCosts()
        # (name, version) -> list[_Registered]; producer-memory registry
        # reachable one-sidedly (models RDMA-registered buffers).
        self._registry: dict[tuple[str, int], list[_Registered]] = {}
        self._lock = threading.Lock()

    # -- spatial DHT -------------------------------------------------------

    def server_ranks_for(self, shape, bounds: Bounds) -> list[int]:
        """Server ranks whose DHT block intersects ``bounds``."""
        dec = RegularDecomposer(tuple(shape), self.nservers)
        return dec.blocks_intersecting(bounds)

    # -- producer API --------------------------------------------------------

    def put_local(self, inter, comm, name: str, version: int,
                  selection: Selection, data) -> None:
        """Register ``data`` for ``selection`` without copying it out.

        ``inter`` is the producer->server intercommunicator. Metadata
        goes to the DHT shards asynchronously; the call returns without
        waiting for consumers (unlike LowFive's serve-at-close).
        """
        reg = _Registered(selection, data, comm.rank)
        with self._lock:
            self._registry.setdefault((name, version), []).append(reg)
        bb = Bounds.from_selection(selection)
        comm.compute(self.costs.per_put)
        for srank in self.server_ranks_for(selection.shape, bb):
            inter.send(
                ("register",
                 (name, version, tuple(selection.shape),
                  tuple(bb.min), tuple(bb.max), comm.rank)),
                srank, _TAG_CTRL,
            )

    # -- consumer API ----------------------------------------------------------

    def get(self, inter, comm, name: str, version: int,
            selection: Selection, dtype, fill=0) -> np.ndarray:
        """Read ``selection`` of array ``name``@``version``.

        Blocks until the servers report the region covered, then fetches
        the intersecting pieces one-sidedly from producer memory.
        """
        client = RPCClient(inter)
        qbb = Bounds.from_selection(selection)
        comm.compute(self.costs.per_get)
        comm.compute(
            self.costs.sync_factor
            * comm.model.epoch_jitter(comm.engine.nprocs)
        )
        hits: set[tuple[int, tuple, tuple]] = set()  # (producer, bmin, bmax)
        for srank in self.server_ranks_for(selection.shape, qbb):
            found = client.call(
                srank, "query",
                name, version, tuple(selection.shape),
                tuple(qbb.min), tuple(qbb.max),
            )
            hits.update((p, tuple(bmin), tuple(bmax))
                        for p, bmin, bmax in found)
        if selection.npoints == 0:
            return np.empty(0, dtype=dtype)
        lo, hi = selection.bounds()
        box_shape = tuple(int(h - l) for l, h in zip(lo, hi))
        box = np.full(box_shape, fill, dtype=dtype)
        with self._lock:
            regs = list(self._registry.get((name, version), []))
        by_key = {
            (reg.producer,
             tuple(Bounds.from_selection(reg.selection).min),
             tuple(Bounds.from_selection(reg.selection).max)): reg
            for reg in regs
        }
        fetched_elems = 0
        for key in sorted(hits):
            reg = by_key[key]
            overlap = reg.selection.intersect(selection)
            if overlap.npoints == 0:
                continue
            plo = reg.selection.bounds()[0]
            pshape = tuple(
                int(h - l) for l, h in zip(plo, reg.selection.bounds()[1])
            )
            values = overlap.translate(plo, pshape).extract(
                reg.data.reshape(pshape)
            )
            # One-sided fetch: wire time charged on the consumer only.
            comm.compute(
                self.costs.per_rdma_fetch
                + comm.model.transfer_time(
                    int(values.nbytes), comm.engine.nprocs
                )
            )
            overlap.translate(lo, box_shape).scatter(values, box)
            fetched_elems += overlap.npoints
        comm.compute(self.costs.per_element_handle * fetched_elems)
        return selection.translate(lo, box_shape).extract(box)

    # -- teardown ------------------------------------------------------------------

    @staticmethod
    def finalize(inter, comm) -> None:
        """Each client rank releases the servers (collective per task)."""
        client = RPCClient(inter)
        for dest in range(inter.remote_size):
            client.notify(dest, "__done__")


_TAG_CTRL = 703  # matches rpc.TAG_CTRL: registrations ride the ctrl lane


def dataspaces_server_main(dataspaces: DataSpaces, inters) -> None:
    """Run one staging rank: index registrations, answer queries.

    ``inters`` are the server-side views of the client intercomms
    (producer task and consumer task). Returns when every client rank of
    every intercomm has sent done.
    """
    index: dict[tuple[str, int], list[tuple[Bounds, int]]] = {}
    server = RPCServer()
    my_rank = inters[0].rank  # server's rank within its own task

    def register(source, name, version, shape, bmin, bmax, producer):
        index.setdefault((name, version), []).append(
            (Bounds(bmin, bmax), producer)
        )

    def query(source, name, version, shape, qmin, qmax):
        qbb = Bounds(qmin, qmax)
        entries = index.get((name, version), [])
        # Visibility: the region must be fully covered by registered
        # (non-overlapping) puts within this shard's DHT block before
        # the get may proceed.
        dec = RegularDecomposer(tuple(shape), dataspaces.nservers)
        if my_rank < dec.ngrid_blocks:
            region = qbb.intersect(dec.block_bounds(my_rank))
        else:  # rank owns no block; nothing to check
            region = Bounds(qbb.min, qbb.min)
        got = sum(b.intersect(region).size for b, _ in entries)
        if got < region.size:
            raise Defer()
        return [
            (producer, tuple(b.min), tuple(b.max))
            for b, producer in entries
            if b.intersects(qbb)
        ]

    server.register("query", query)
    server.on_notify("register", register)
    for inter in inters:
        server.attach(inter)
    server.serve()
