"""Comparator transports from the paper's evaluation (Sec. IV).

- :mod:`repro.baselines.pure_mpi` -- the hand-written MPI redistribution
  the paper compares against in Fig. 7 (per-point serialization);
- :mod:`repro.baselines.dataspaces` -- a DataSpaces-like staging service
  (Fig. 8): dedicated server ranks index metadata, ``put_local`` leaves
  data in producer memory, gets are one-sided;
- :mod:`repro.baselines.bredala` -- a Bredala-like container data model
  with *contiguous* and *bounding box* redistribution policies (Fig. 9,
  Fig. 10);
- pure HDF5 file I/O (Fig. 6) is simply :class:`repro.h5.native.NativeVOL`
  without LowFive, driven by the benchmark harness.
"""

from repro.baselines.pure_mpi import pure_mpi_producer, pure_mpi_consumer
from repro.baselines.dataspaces import (
    DataSpaces,
    dataspaces_server_main,
)
from repro.baselines.bredala import (
    Container,
    Field,
    REDIST_CONTIGUOUS,
    REDIST_BBOX,
    redistribute_producer,
    redistribute_consumer,
)

__all__ = [
    "pure_mpi_producer",
    "pure_mpi_consumer",
    "DataSpaces",
    "dataspaces_server_main",
    "Container",
    "Field",
    "REDIST_CONTIGUOUS",
    "REDIST_BBOX",
    "redistribute_producer",
    "redistribute_consumer",
]
