"""Critical-path extraction over the causal record.

The virtual timeline of a run is a program activity graph: per-rank
local work, message edges (:class:`~repro.obs.causal.FlowEdge`) and
collective completions (:class:`~repro.obs.causal.CollectiveRecord`).
:func:`critical_path` walks that graph *backward* from the last event
of the slowest rank: whenever the walk reaches a receive whose sender
was late it hops to the sender at post time, and whenever it reaches a
collective it hops to the straggler at its entry clock; in between it
descends through the rank's local activity. The resulting segments
telescope -- each starts exactly where the previous one ends -- so
their durations sum to the makespan *exactly* (no sampling, no
approximation), which :meth:`CriticalPath.residual` exposes and tests
assert to 1e-9.

Each local segment is split by the deepest enclosing span into the
five categories ``simmpi`` / ``lowfive`` / ``pfs`` / ``compute`` /
``wait`` and, where spans carry a ``phase`` label (index/serve/query,
...), into per-phase seconds. :func:`analyze` bundles the path with
the wait-state table and conservation check from
:mod:`repro.obs.causal` into one report for the CLI and benchmarks.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, cast

from repro.obs.causal import (
    ConservationReport,
    RankAccount,
    WaitState,
    classify_waits,
    conservation,
    dominant_span,
)

if TYPE_CHECKING:
    from repro.obs.causal import CollectiveRecord, FlowEdge
    from repro.obs.spans import SpanEvent

#: Critical-path categories (span cat -> category is :data:`_CAT`).
CATEGORIES = ("simmpi", "lowfive", "pfs", "compute", "wait")

#: Span category -> critical-path category. Anything else (including
#: uninstrumented time under a bare ``task.*`` span) is compute.
#: Stream spans fold into the lowfive bucket: streaming is the VOL
#: transport extended in time, not a new machine layer.
_CAT = {"simmpi": "simmpi", "lowfive": "lowfive", "rpc": "lowfive",
        "pfs": "pfs", "stream": "lowfive"}


@dataclass(frozen=True)
class Segment:
    """One critical-path segment ``[t0, t1]`` resident on ``rank``.

    ``kind`` is ``"local"`` (the rank was executing), ``"recv"``
    (receive overhead / in-flight delivery), ``"wire"`` (message
    network time, resident on the sender) or ``"collective"`` (the
    collective's own transfer time). ``category_seconds`` partitions
    the duration over :data:`CATEGORIES`; ``phase_seconds`` over
    ``phase`` span labels where present.
    """

    rank: int
    t0: float
    t1: float
    kind: str
    category: str
    detail: str = ""
    category_seconds: tuple[tuple[str, float], ...] = ()
    phase_seconds: tuple[tuple[str, float], ...] = ()

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def to_dict(self) -> dict[str, object]:
        return {"rank": self.rank, "t0": self.t0, "t1": self.t1,
                "duration": self.duration, "kind": self.kind,
                "category": self.category, "detail": self.detail,
                "categories": dict(self.category_seconds),
                "phases": dict(self.phase_seconds)}


@dataclass(frozen=True)
class CriticalPath:
    """The extracted path, chronological (first segment starts at 0)."""

    makespan: float
    segments: tuple[Segment, ...]

    @property
    def total(self) -> float:
        """Summed segment durations (equals makespan up to residual)."""
        return sum(s.duration for s in self.segments)

    @property
    def residual(self) -> float:
        """``makespan - total``; exactness means ``|residual| ~ 0``."""
        return self.makespan - self.total

    def category_breakdown(self) -> dict[str, float]:
        """Seconds per category over the whole path (all keys present)."""
        out = {c: 0.0 for c in CATEGORIES}
        for s in self.segments:
            for cat, sec in s.category_seconds:
                out[cat] = out.get(cat, 0.0) + sec
        return out

    def category_shares(self) -> dict[str, float]:
        """Category fractions of the path (zeros on an empty path)."""
        total = self.total
        bd = self.category_breakdown()
        if total <= 0.0:
            return {c: 0.0 for c in bd}
        return {c: sec / total for c, sec in bd.items()}

    def phase_breakdown(self) -> dict[str, float]:
        """Seconds per ``phase`` label along the path."""
        out: dict[str, float] = {}
        for s in self.segments:
            for ph, sec in s.phase_seconds:
                out[ph] = out.get(ph, 0.0) + sec
        return out

    def rank_residence(self) -> dict[int, float]:
        """Seconds the path spends on each rank (wire -> the sender)."""
        out: dict[int, float] = {}
        for s in self.segments:
            out[s.rank] = out.get(s.rank, 0.0) + s.duration
        return out

    def top_segments(self, k: int = 10) -> list[Segment]:
        """The ``k`` longest segments, descending."""
        return sorted(self.segments,
                      key=lambda s: -s.duration)[:max(0, k)]


class _Event:
    """One per-rank sync completion (receive or collective). Internal."""

    __slots__ = ("t_end", "kind", "edge", "rec")

    def __init__(self, t_end: float, kind: str,
                 edge: FlowEdge | None = None,
                 rec: CollectiveRecord | None = None) -> None:
        self.t_end = t_end
        self.kind = kind
        self.edge = edge
        self.rec = rec


def _split_interval(
    spans: Iterable[SpanEvent], a: float, b: float,
) -> tuple[dict[str, float], dict[str, float]]:
    """Partition ``[a, b]`` by the deepest enclosing span.

    Returns ``(category_seconds, phase_seconds)`` dicts; the category
    seconds sum to ``b - a`` exactly (uncovered slices are compute).
    """
    cats: dict[str, float] = {}
    phases: dict[str, float] = {}
    if b <= a:
        return cats, phases
    overl = [s for s in spans if s.t0 < b and s.t1 > a]
    if not overl:
        cats["compute"] = b - a
        return cats, phases
    cuts = sorted({a, b}
                  | {max(a, s.t0) for s in overl}
                  | {min(b, s.t1) for s in overl})
    for p0, p1 in zip(cuts, cuts[1:]):
        if p1 <= p0:
            continue
        mid = 0.5 * (p0 + p1)
        containing = [s for s in overl if s.t0 <= mid <= s.t1]
        d = p1 - p0
        if containing:
            deepest = min(containing, key=lambda s: (s.t1 - s.t0, -s.t0))
            cat = _CAT.get(deepest.cat, "compute")
            labelled = [s for s in containing if "phase" in s.labels]
            if labelled:
                ph = cast(str, min(
                    labelled,
                    key=lambda s: (s.t1 - s.t0, -s.t0)).labels["phase"])
                phases[ph] = phases.get(ph, 0.0) + d
        else:
            cat = "compute"
        cats[cat] = cats.get(cat, 0.0) + d
    return cats, phases


def _phase_at(spans: Iterable[SpanEvent], t: float) -> str | None:
    """Innermost ``phase`` label covering instant ``t`` (or ``None``)."""
    containing = [s for s in spans
                  if s.t0 <= t <= s.t1 and "phase" in s.labels]
    if not containing:
        return None
    return cast(str, min(containing,
                         key=lambda s: (s.t1 - s.t0, -s.t0)).labels["phase"])


def critical_path(obs: Any, clocks: Sequence[float]) -> CriticalPath:
    """Extract the critical path of a finished run.

    ``obs`` is the run's :class:`~repro.obs.ObsContext` (with its
    ``causal`` record populated); ``clocks`` the per-rank final-clock
    list from the result. See the module docstring for the algorithm.
    """
    clocks = list(clocks)
    makespan = max(clocks, default=0.0)
    if makespan <= 0.0:
        return CriticalPath(max(makespan, 0.0), ())

    spans_by_rank: dict[int, list[SpanEvent]] = {}
    for s in obs.spans.spans():
        spans_by_rank.setdefault(s.rank, []).append(s)

    events: dict[int, list[_Event]] = {}
    for e in obs.causal.edges():
        events.setdefault(e.dst, []).append(_Event(e.t_recv, "recv", edge=e))
    for rec in obs.causal.collectives():
        for rank in rec.enter_clocks:
            events.setdefault(rank, []).append(
                _Event(rec.t_end, "coll", rec=rec)
            )
    t_ends: dict[int, list[float]] = {}
    for rank, evs in events.items():
        evs.sort(key=lambda ev: ev.t_end)
        t_ends[rank] = [ev.t_end for ev in evs]
    nevents = sum(len(v) for v in events.values())

    # hi[rank]: events below this index are still available to consume;
    # monotonically decreasing, which (with strictly decreasing local
    # descents) bounds the walk even under zero-duration ties.
    hi = {rank: len(evs) for rank, evs in events.items()}
    rev: list[Segment] = []
    cur_rank = max(range(len(clocks)), key=lambda r: (clocks[r], -r))
    cur_t = makespan
    budget = 2 * nevents + 2 * len(clocks) + 64

    def local(rank: int, a: float, b: float) -> Segment:
        cats, phases = _split_interval(spans_by_rank.get(rank, ()), a, b)
        cat = max(cats, key=lambda c: (cats[c], c)) if cats else "compute"
        dom = dominant_span(spans_by_rank.get(rank, ()), a, b)
        return Segment(rank, a, b, "local", cat,
                       dom.name if dom is not None else "",
                       tuple(sorted(cats.items())),
                       tuple(sorted(phases.items())))

    while cur_t > 0.0:
        budget -= 1
        if budget < 0:  # pragma: no cover - defensive backstop
            raise RuntimeError("critical-path walk did not converge")
        evs = events.get(cur_rank, ())
        idx = bisect_right(t_ends.get(cur_rank, ()), cur_t,
                           0, hi.get(cur_rank, 0)) - 1
        if idx < 0:
            rev.append(local(cur_rank, 0.0, cur_t))
            break
        ev = evs[idx]
        if ev.t_end < cur_t:
            rev.append(local(cur_rank, ev.t_end, cur_t))
            cur_t = ev.t_end
            continue
        hi[cur_rank] = idx
        if ev.kind == "recv":
            e = ev.edge
            assert e is not None
            phase = _phase_at(spans_by_rank.get(e.dst, ()), cur_t)
            pseq = ((phase, 0.0),) if phase else ()
            if e.wait > 0.0:
                # Late sender: overhead tail on the receiver, then the
                # wire, then hop to the sender at post time.
                lo = min(e.t_post, e.t_arrival)
                d1 = cur_t - e.t_arrival
                rev.append(Segment(
                    e.dst, e.t_arrival, cur_t, "recv", "simmpi",
                    f"recv tag={e.tag} from rank {e.src}",
                    (("simmpi", d1),),
                    ((phase, d1),) if phase else (),
                ))
                d2 = e.t_arrival - lo
                wphase = _phase_at(spans_by_rank.get(e.src, ()), e.t_post)
                rev.append(Segment(
                    e.src, lo, e.t_arrival, "wire", "simmpi",
                    f"wire tag={e.tag} to rank {e.dst} "
                    f"({e.nbytes} B)",
                    (("simmpi", d2),),
                    ((wphase, d2),) if wphase else (),
                ))
                cur_rank, cur_t = e.src, lo
            else:
                # Sender was early (or on time): delivery + overhead
                # stay resident on the receiver.
                d = cur_t - e.t_recv_start
                rev.append(Segment(
                    e.dst, e.t_recv_start, cur_t, "recv", "simmpi",
                    f"recv tag={e.tag} from rank {e.src}",
                    (("simmpi", d),),
                    ((phase, d),) if phase else (),
                ))
                cur_t = e.t_recv_start
        else:
            rec = ev.rec
            assert rec is not None
            phase = _phase_at(spans_by_rank.get(cur_rank, ()),
                              0.5 * (rec.t_ready + rec.t_end))
            d = cur_t - rec.t_ready
            rev.append(Segment(
                cur_rank, rec.t_ready, cur_t, "collective", "simmpi",
                f"mpi.{rec.kind} (straggler rank {rec.straggler})",
                (("simmpi", d),),
                ((phase, d),) if phase else (),
            ))
            cur_rank, cur_t = rec.straggler, rec.t_ready

    rev.reverse()
    return CriticalPath(makespan, tuple(rev))


# -- combined report ---------------------------------------------------------


def imbalance(accounts: Mapping[int, RankAccount], nranks: int) -> float:
    """Load-imbalance metric over per-rank *compute* seconds.

    The classic ``max/mean - 1`` (0 = perfectly balanced); ranks with
    no account count as zero compute.
    """
    if nranks <= 0:
        return 0.0
    comp = [accounts[r].compute if r in accounts else 0.0
            for r in range(nranks)]
    mean = sum(comp) / nranks
    if mean <= 0.0:
        return 0.0
    return max(comp) / mean - 1.0


@dataclass(frozen=True)
class CausalReport:
    """Everything the causal layer knows about one finished run."""

    makespan: float
    path: CriticalPath
    waits: tuple[WaitState, ...]
    conservation: ConservationReport
    imbalance: float
    #: Aggregate compute/transfer/wait fractions of total rank-seconds.
    shares: dict[str, float] = field(default_factory=dict)

    def wait_by_category(self) -> dict[str, float]:
        """Idle seconds per wait-state category (across all ranks)."""
        out: dict[str, float] = {}
        for w in self.waits:
            out[w.category] = out.get(w.category, 0.0) + w.seconds
        return out

    def summary(self) -> dict[str, object]:
        """Flat JSON-able summary (used by benchmarks and snapshots)."""
        return {
            "makespan": self.makespan,
            "critpath": self.path.category_shares(),
            "critpath_residual": self.path.residual,
            "critpath_phases": self.path.phase_breakdown(),
            "shares": dict(self.shares),
            "wait_by_category": self.wait_by_category(),
            "imbalance": self.imbalance,
            "conservation_ok": self.conservation.ok,
            "max_residual": self.conservation.max_residual,
        }

    def to_dict(self) -> dict[str, object]:
        """Full JSON-able report (CLI ``--report`` output)."""
        d = self.summary()
        d["segments"] = [s.to_dict() for s in self.path.segments]
        d["waits"] = [w.to_dict() for w in self.waits]
        d["conservation"] = self.conservation.to_dict()
        return d


def analyze(obs: Any, clocks: Sequence[float],
            tol: float = 1e-9) -> CausalReport:
    """Run the full causal analysis of a finished run.

    Extracts the critical path, classifies wait states, checks
    conservation (within ``tol``) and computes the aggregate
    compute/transfer/wait shares and the compute-imbalance metric.
    """
    clocks = list(clocks)
    path = critical_path(obs, clocks)
    waits = classify_waits(obs)
    cons = conservation(obs, clocks, tol=tol, waits=waits)
    accounts = obs.causal.accounts()
    total = sum(clocks)
    shares = {"compute": 0.0, "transfer": 0.0, "wait": 0.0}
    if total > 0.0:
        for acct in accounts.values():
            shares["compute"] += acct.compute / total
            shares["transfer"] += acct.transfer / total
            shares["wait"] += acct.wait / total
    return CausalReport(
        makespan=max(clocks, default=0.0),
        path=path,
        waits=tuple(w for w in waits),
        conservation=cons,
        imbalance=imbalance(accounts, len(clocks)),
        shares=shares,
    )
