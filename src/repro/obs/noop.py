"""Disabled observability: a drop-in ObsContext that records nothing.

Used to measure telemetry overhead (``bench_wallclock --obs-budget``):
run the same workload once with the real :class:`~repro.obs.ObsContext`
and once with :class:`NullObsContext`, and compare wall clocks. Virtual
results must be identical -- observability never changes simulation
semantics, only how much of it is remembered.

Every producer-side surface of the real context exists here as a no-op
with the same signature shape. The one subtlety is
:meth:`NullCausal.account`: :mod:`repro.simmpi.comm` mutates the
returned ledger's ``compute``/``transfer``/``wait`` attributes
directly, so the null recorder hands out one shared throwaway
:class:`~repro.obs.causal.RankAccount` whose contents are never read.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager
from typing import Any

from repro.obs.causal import RankAccount


class NullMetrics:
    """No-op :class:`~repro.obs.metrics.MetricsRegistry`."""

    def inc(self, name: str, value: float = 1, **labels: object) -> None:
        pass

    def set(self, name: str, value: float, **labels: object) -> None:
        pass

    def observe(self, name: str, value: float,
                **labels: object) -> None:
        pass

    def counter(self, name: str, **labels: object) -> _NullBoundCounter:
        return _NULL_BOUND_COUNTER

    def snapshot(self) -> Any:
        from repro.obs.metrics import MetricsSnapshot

        return MetricsSnapshot()

    def to_dict(self) -> dict[str, Any]:
        return {}


class _NullBoundCounter:
    def add(self, value: float = 1) -> None:
        pass

    inc = add


class NullSpans:
    """No-op :class:`~repro.obs.spans.SpanRecorder`."""

    def begin(self, rank: int, name: str, cat: str, t0: float,
              labels: dict[str, object] | None = None) -> None:
        return None

    def end(self, open_span: object, t1: float) -> None:
        pass

    def add(self, *a: object, **kw: object) -> None:
        pass

    def instant(self, *a: object, **kw: object) -> None:
        pass

    def spans(self, **filters: object) -> list[Any]:
        return []

    def instants(self) -> list[Any]:
        return []

    @property
    def total(self) -> float:
        return 0


class NullFlight:
    """No-op :class:`~repro.obs.recorder.FlightRecorder`."""

    capacity = 0

    def record(self, rank: int, t: float, kind: str, what: str = "",
               **labels: object) -> None:
        pass

    def append(self, *a: object, **kw: object) -> None:
        pass

    def set_capacity(self, capacity: int) -> None:
        pass

    def events(self, rank: int | None = None) -> list[Any]:
        return []

    def ranks(self) -> list[int]:
        return []

    def dump(self) -> dict[int, Any]:
        return {}


class NullCausal:
    """No-op :class:`~repro.obs.causal.CausalRecorder`.

    ``account`` returns a shared discardable ledger because callers
    mutate its attributes in place rather than calling methods.
    """

    def __init__(self) -> None:
        self._scratch = RankAccount(-1)

    def account(self, rank: int) -> RankAccount:
        return self._scratch

    def edge(self, **kw: object) -> None:
        return None

    def collective(self, *a: object, **kw: object) -> None:
        return None

    def post(self, *a: object, **kw: object) -> None:
        pass

    def consume(self, msg_id: object) -> None:
        pass

    def match(self, *a: object, **kw: object) -> None:
        pass

    def edges(self, *a: object, **kw: object) -> list[Any]:
        return []

    def collectives(self) -> list[Any]:
        return []

    def accounts(self) -> dict[int, RankAccount]:
        return {}

    def posts(self) -> list[Any]:
        return []

    def consumed_ids(self) -> set[object]:
        return set()

    def matches(self) -> list[Any]:
        return []


class NullStream:
    """No-op :class:`~repro.obs.streamstat.StreamLedger`."""

    def publish(self, *a: object, **kw: object) -> None:
        pass

    def acquire(self, *a: object, **kw: object) -> None:
        pass

    def release(self, *a: object, **kw: object) -> None:
        pass

    def drop(self, *a: object, **kw: object) -> None:
        pass

    def events(self, *a: object, **kw: object) -> list[Any]:
        return []

    def streams(self) -> list[str]:
        return []

    def max_depth(self, *a: object, **kw: object) -> int:
        return 0

    def open_acquisitions(self) -> list[Any]:
        return []

    def snapshot(self) -> NullStream:
        return self

    def merge(self, other: object) -> NullStream:
        return self


class NullSeries:
    """No-op :class:`~repro.obs.series.SeriesRecorder`."""

    def record(self, name: str, t: float, value: float,
               **kw: object) -> None:
        pass

    def bound(self, name: str, **kw: object) -> _NullBoundSeries:
        return _NULL_BOUND_SERIES

    def snapshot(self) -> Any:
        from repro.obs.series import SeriesSnapshot

        return SeriesSnapshot()

    def to_dict(self) -> dict[str, Any]:
        return {}


class _NullBoundSeries:
    def record(self, t: float, value: float) -> None:
        pass


_NULL_BOUND_COUNTER = _NullBoundCounter()
_NULL_BOUND_SERIES = _NullBoundSeries()


class NullObsContext:
    """Telemetry-disabled stand-in for :class:`~repro.obs.ObsContext`.

    Pass as ``Engine(obs=...)`` / ``Workflow.run(obs=...)`` to run the
    identical simulation with every recording surface stubbed out.
    """

    def __init__(self) -> None:
        self.metrics = NullMetrics()
        self.spans = NullSpans()
        self.flight = NullFlight()
        self.causal = NullCausal()
        self.stream = NullStream()
        self.series = NullSeries()
        self._rank_tasks: dict[int, str] = {}

    def set_task(self, task: str, world_ranks: object) -> None:
        pass

    def task_of(self, rank: int) -> str | None:
        return None

    def rank_tasks(self) -> dict[int, str]:
        return {}

    def sample(self, name: str, t: float, value: float, *,
               rank: int | None = None, volatile: bool = False,
               **labels: object) -> None:
        pass

    def fault(self, rank: int, t: float, kind: str,
              **labels: object) -> None:
        pass

    @contextmanager
    def span(self, comm: object, name: str, cat: str = "",
             **labels: object) -> Iterator[None]:
        yield None

    def chrome_trace(self, events: object = ()) -> dict[str, Any]:
        raise ValueError("observability is disabled for this run")

    def write_chrome_trace(self, path: str,
                           events: object = ()) -> None:
        raise ValueError("observability is disabled for this run")
