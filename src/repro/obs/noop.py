"""Disabled observability: a drop-in ObsContext that records nothing.

Used to measure telemetry overhead (``bench_wallclock --obs-budget``):
run the same workload once with the real :class:`~repro.obs.ObsContext`
and once with :class:`NullObsContext`, and compare wall clocks. Virtual
results must be identical -- observability never changes simulation
semantics, only how much of it is remembered.

Every producer-side surface of the real context exists here as a no-op
with the same signature shape. The one subtlety is
:meth:`NullCausal.account`: :mod:`repro.simmpi.comm` mutates the
returned ledger's ``compute``/``transfer``/``wait`` attributes
directly, so the null recorder hands out one shared throwaway
:class:`~repro.obs.causal.RankAccount` whose contents are never read.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.causal import RankAccount


class NullMetrics:
    """No-op :class:`~repro.obs.metrics.MetricsRegistry`."""

    def inc(self, name, value=1, **labels):
        pass

    def set(self, name, value, **labels):
        pass

    def observe(self, name, value, **labels):
        pass

    def counter(self, name, **labels):
        return _NULL_BOUND_COUNTER

    def snapshot(self):
        from repro.obs.metrics import MetricsSnapshot

        return MetricsSnapshot()

    def to_dict(self):
        return {}


class _NullBoundCounter:
    def add(self, value=1):
        pass

    inc = add


class NullSpans:
    """No-op :class:`~repro.obs.spans.SpanRecorder`."""

    def begin(self, rank, name, cat, t0, labels=None):
        return None

    def end(self, open_span, t1):
        pass

    def add(self, *a, **kw):
        pass

    def instant(self, *a, **kw):
        pass

    def spans(self, **filters):
        return []

    def instants(self):
        return []

    @property
    def total(self):
        return 0


class NullFlight:
    """No-op :class:`~repro.obs.recorder.FlightRecorder`."""

    capacity = 0

    def record(self, rank, t, kind, what="", **labels):
        pass

    def append(self, *a, **kw):
        pass

    def set_capacity(self, capacity):
        pass

    def events(self, rank=None):
        return []

    def ranks(self):
        return []

    def dump(self):
        return {}


class NullCausal:
    """No-op :class:`~repro.obs.causal.CausalRecorder`.

    ``account`` returns a shared discardable ledger because callers
    mutate its attributes in place rather than calling methods.
    """

    def __init__(self):
        self._scratch = RankAccount(-1)

    def account(self, rank):
        return self._scratch

    def edge(self, **kw):
        return None

    def collective(self, *a, **kw):
        return None

    def post(self, *a, **kw):
        pass

    def consume(self, msg_id):
        pass

    def match(self, *a, **kw):
        pass

    def edges(self, *a, **kw):
        return []

    def collectives(self):
        return []

    def accounts(self):
        return {}

    def posts(self):
        return []

    def consumed_ids(self):
        return set()

    def matches(self):
        return []


class NullStream:
    """No-op :class:`~repro.obs.streamstat.StreamLedger`."""

    def publish(self, *a, **kw):
        pass

    def acquire(self, *a, **kw):
        pass

    def release(self, *a, **kw):
        pass

    def drop(self, *a, **kw):
        pass

    def events(self, *a, **kw):
        return []

    def streams(self):
        return []

    def max_depth(self, *a, **kw):
        return 0

    def open_acquisitions(self):
        return []

    def snapshot(self):
        return self

    def merge(self, other):
        return self


class NullSeries:
    """No-op :class:`~repro.obs.series.SeriesRecorder`."""

    def record(self, name, t, value, **kw):
        pass

    def bound(self, name, **kw):
        return _NULL_BOUND_SERIES

    def snapshot(self):
        from repro.obs.series import SeriesSnapshot

        return SeriesSnapshot()

    def to_dict(self):
        return {}


class _NullBoundSeries:
    def record(self, t, value):
        pass


_NULL_BOUND_COUNTER = _NullBoundCounter()
_NULL_BOUND_SERIES = _NullBoundSeries()


class NullObsContext:
    """Telemetry-disabled stand-in for :class:`~repro.obs.ObsContext`.

    Pass as ``Engine(obs=...)`` / ``Workflow.run(obs=...)`` to run the
    identical simulation with every recording surface stubbed out.
    """

    def __init__(self):
        self.metrics = NullMetrics()
        self.spans = NullSpans()
        self.flight = NullFlight()
        self.causal = NullCausal()
        self.stream = NullStream()
        self.series = NullSeries()
        self._rank_tasks: dict[int, str] = {}

    def set_task(self, task, world_ranks):
        pass

    def task_of(self, rank):
        return None

    def rank_tasks(self):
        return {}

    def sample(self, name, t, value, *, rank=None, volatile=False,
               **labels):
        pass

    def fault(self, rank, t, kind, **labels):
        pass

    @contextmanager
    def span(self, comm, name, cat="", **labels):
        yield None

    def chrome_trace(self, events=()):
        raise ValueError("observability is disabled for this run")

    def write_chrome_trace(self, path, events=()):
        raise ValueError("observability is disabled for this run")
