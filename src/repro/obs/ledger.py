"""Run ledger: persistent cross-run manifests + the drift comparator.

Every benchmark or workflow run distills into one :class:`RunRecord`
-- workload key, parameters, the exact virtual-time results
(``vtime``/``messages``/``bytes_sent``), a cost-model digest, counter
totals, the causal attribution summary and stable series digests --
appended as one JSON line to a :class:`Ledger` file (by convention
``results/ledger.jsonl``). Wall-clock and timestamp fields are carried
for information but excluded from :meth:`RunRecord.digest`, so
same-seed runs of the same tree produce byte-identical stable records.

The same module owns the *single* drift comparator that used to be
hand-rolled three times over in ``bench_wallclock`` / ``bench_stream``
/ ``bench_snapshot``: :func:`compare_runs` checks the exact virtual
fields (and data digests) bit-for-bit, applies relative tolerances to
noisy fields (wall seconds, wait fractions), and annotates speedups;
:func:`check_reference` wraps it with the reference-file/params
guard logic every bench gate shares. ``python -m repro.tools regress``
exposes it for any pair of run documents or ledgers.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Sequence
from dataclasses import asdict, dataclass, field, is_dataclass
from typing import Any

#: Bump when the record layout changes incompatibly.
SCHEMA_VERSION = 1

#: Virtual fields that must be bit-identical across perf-only changes.
EXACT_FIELDS = ("vtime", "messages", "bytes_sent")

#: Machine/timestamp-dependent fields excluded from the stable digest.
VOLATILE_FIELDS = ("wall_seconds", "created_at", "git_rev",
                   "obs_overhead_frac", "wall_obs_off",
                   "ref_wall_seconds", "speedup_vs_reference")


def _canonical(doc: object) -> bytes:
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()


def cost_digest(costs: Any) -> str | None:
    """Stable digest of a cost-model dataclass (e.g. ``CostConfig``)."""
    if costs is None:
        return None
    doc = asdict(costs) if is_dataclass(costs) else dict(costs)
    return hashlib.blake2b(_canonical(doc), digest_size=6).hexdigest()


def git_rev() -> str | None:
    """Short git revision of the working tree (or ``None``).

    ``REPRO_GIT_REV`` overrides; the subprocess is best-effort so a
    ledger append never fails because the tree is not a checkout.
    """
    rev = os.environ.get("REPRO_GIT_REV")
    if rev:
        return rev
    try:
        import subprocess

        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        return out.stdout.strip() or None
    except Exception:  # noqa: BLE001,ANL006 - telemetry must never fail a run
        return None


def counter_totals(metrics_doc: dict[str, Any] | None) -> dict[str, float]:
    """Aggregate a metrics dump's counters to per-name totals.

    Label sets (``rank=``, ``file=``, ...) fold together, so the result
    is compact and deterministic (sorted-key summation order).
    """
    if not metrics_doc:
        return {}
    out: dict[str, float] = {}
    for key in sorted(metrics_doc.get("counter", {})):
        name = key.split("{", 1)[0]
        out[name] = out.get(name, 0.0) + metrics_doc["counter"][key]["total"]
    return out


@dataclass
class RunRecord:
    """Manifest of one run, as appended to the ledger.

    ``workload`` is the cross-run join key (same convention as the
    bench documents: ``fig5/lowfive_memory/P4``). The exact fields
    (:data:`EXACT_FIELDS`) plus ``params``/``cost_digest``/``counters``
    /``attribution``/``series`` form the stable portion;
    :data:`VOLATILE_FIELDS` are informational.
    """

    workload: str
    vtime: float
    messages: int
    bytes_sent: int
    schema_version: int = SCHEMA_VERSION
    nprocs: int = 0
    mode: str | None = None
    seed: int | None = None
    params: dict[str, Any] = field(default_factory=dict)
    cost_digest: str | None = None
    git_rev: str | None = None
    wall_seconds: float | None = None
    created_at: str | None = None
    attempts: int = 1
    failed_tasks: tuple[str, ...] = ()
    #: Per-name counter totals (labels folded), deterministic.
    counters: dict[str, float] = field(default_factory=dict)
    #: Causal summary: critpath shares/phases, wait taxonomy, shares.
    attribution: dict[str, Any] | None = None
    #: Stable series digests (volatile series excluded).
    series: dict[str, str] = field(default_factory=dict)
    #: Free-form digest-stable extras (data digests, levels, depths).
    extra: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        doc = asdict(self)
        doc["failed_tasks"] = list(self.failed_tasks)
        return doc

    def stable_json(self) -> dict[str, Any]:
        """The record minus every volatile field."""
        doc = self.to_json()
        for k in VOLATILE_FIELDS:
            doc.pop(k, None)
        return doc

    def digest(self) -> str:
        """Content digest of the stable portion; same-seed runs of the
        same tree must agree byte-for-byte."""
        return hashlib.blake2b(_canonical(self.stable_json()),
                               digest_size=8).hexdigest()

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "RunRecord":
        known = {f for f in cls.__dataclass_fields__}
        kw = {k: v for k, v in doc.items() if k in known}
        kw["failed_tasks"] = tuple(kw.get("failed_tasks", ()))
        extra = {k: v for k, v in doc.items() if k not in known}
        if extra:
            kw.setdefault("extra", {}).update(extra)
        return cls(**kw)


def record_from_result(res: Any, workload: str, *, mode: str | None = None,
                       params: dict[str, Any] | None = None,
                       seed: int | None = None,
                       costs: Any = None, wall_seconds: float | None = None,
                       created_at: str | None = None,
                       extra: dict[str, Any] | None = None,
                       attribution: bool = True) -> RunRecord:
    """Distill a finished run into a :class:`RunRecord`.

    ``res`` is a :class:`~repro.workflow.runner.WorkflowResult` or
    :class:`~repro.simmpi.engine.WorldResult` -- anything exposing
    ``vtime``/``messages``/``bytes_sent`` and (optionally) ``obs``,
    ``clocks``, ``attempts``, ``failed_tasks``.
    """
    obs = getattr(res, "obs", None)
    counters: dict[str, float] = {}
    series: dict[str, str] = {}
    if obs is not None:
        try:
            counters = counter_totals(obs.metrics.to_dict())
        except Exception:  # noqa: BLE001,ANL006 - disabled/noop obs
            counters = {}
        recorder = getattr(obs, "series", None)
        if recorder is not None:
            try:
                series = recorder.snapshot().digests()
            except Exception:  # noqa: BLE001,ANL006 - disabled/noop obs
                series = {}
    attr = None
    if attribution and obs is not None and getattr(res, "clocks", None):
        try:
            attr = res.causal_report().summary()
        except Exception:  # noqa: BLE001,ANL006 - results without causal data
            attr = None
    nprocs = len(getattr(res, "clocks", ()) or ())
    return RunRecord(
        workload=workload,
        vtime=res.vtime,
        messages=res.messages,
        bytes_sent=res.bytes_sent,
        nprocs=nprocs,
        mode=mode,
        seed=seed,
        params=dict(params or {}),
        cost_digest=cost_digest(costs),
        git_rev=git_rev(),
        wall_seconds=wall_seconds,
        created_at=created_at,
        attempts=getattr(res, "attempts", 1),
        failed_tasks=tuple(getattr(res, "failed_tasks", ()) or ()),
        counters=counters,
        attribution=attr,
        series=series,
        extra=dict(extra or {}),
    )


def record_from_run(run: dict[str, Any], *,
                    params: dict[str, Any] | None = None,
                    mode: str | None = None,
                    created_at: str | None = None,
                    costs: Any = None) -> RunRecord:
    """Build a record from a bench-document run dict.

    Fields the bench already computed (``workload``, the exact virtual
    fields, ``wall_seconds``, ``nprocs``, ``attribution``, ``digest``)
    map onto the record; everything else rides in ``extra``.
    """
    known = ("workload", "vtime", "messages", "bytes_sent", "nprocs",
             "wall_seconds", "attribution")
    extra = {k: v for k, v in run.items() if k not in known}
    return RunRecord(
        workload=run["workload"],
        vtime=run["vtime"],
        messages=run["messages"],
        bytes_sent=run["bytes_sent"],
        nprocs=run.get("nprocs", 0),
        mode=mode,
        params=dict(params or {}),
        cost_digest=cost_digest(costs),
        git_rev=git_rev(),
        wall_seconds=run.get("wall_seconds"),
        created_at=created_at,
        attribution=run.get("attribution"),
        extra=extra,
    )


class Ledger:
    """Append-only JSONL file of :class:`RunRecord` lines."""

    def __init__(self, path: str) -> None:
        self.path = path

    def append(self, record: RunRecord) -> None:
        """Append one record (creating parent directories as needed)."""
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        with open(self.path, "a") as f:
            json.dump(record.to_json(), f, sort_keys=True,
                      separators=(",", ":"))
            f.write("\n")

    def append_doc(self, doc: dict[str, Any], *, mode: str | None = None,
                   created_at: str | None = None) -> int:
        """Append every run of a bench document; returns the count."""
        n = 0
        for run in doc.get("runs", []):
            self.append(record_from_run(run, params=doc.get("params"),
                                        mode=mode, created_at=created_at))
            n += 1
        return n

    def records(self) -> list[RunRecord]:
        """Every record in file order (missing file = empty ledger)."""
        if not os.path.exists(self.path):
            return []
        out: list[RunRecord] = []
        with open(self.path) as f:
            for line in f:
                line = line.strip()
                if line:
                    out.append(RunRecord.from_json(json.loads(line)))
        return out

    def latest(self, workload: str) -> RunRecord | None:
        """The most recent record of ``workload`` (or ``None``)."""
        found = None
        for rec in self.records():
            if rec.workload == workload:
                found = rec
        return found

    def runs_doc(self) -> dict[str, Any]:
        """The ledger as a comparator-ready ``{"runs": [...]}`` doc,
        keeping only the newest record per workload."""
        by_key: dict[str, dict[str, Any]] = {}
        for rec in self.records():
            by_key[rec.workload] = rec.to_json()
        return {"schema_version": SCHEMA_VERSION,
                "runs": [by_key[k] for k in sorted(by_key)]}


# -- the unified comparator ---------------------------------------------------


def _get_path(doc: dict[str, Any], dotted: str) -> Any:
    """Resolve ``"attribution.shares.wait"`` through nested dicts."""
    cur: Any = doc
    for part in dotted.split("."):
        if not isinstance(cur, dict) or part not in cur:
            return None
        cur = cur[part]
    return cur


def compare_runs(runs: list[dict[str, Any]], ref: dict[str, Any], *,
                 exact: Sequence[str] = EXACT_FIELDS,
                 check_digest: bool = True, annotate_wall: bool = False,
                 tolerances: dict[str, float] | None = None,
                 key: str = "workload") -> tuple[list[str], bool]:
    """Compare run dicts against a reference document's runs.

    Exact fields must be bit-identical; a committed ``digest`` must
    match when both sides carry one; ``tolerances`` maps dotted field
    paths to allowed *relative* drift. With ``annotate_wall`` each run
    gains ``ref_wall_seconds``/``speedup_vs_reference`` (mutating the
    run dicts, as the wall-clock harness always did). Returns
    ``(problems, compared_anything)``.
    """
    problems: list[str] = []
    compared = False
    ref_runs = {r[key]: r for r in ref.get("runs", [])}
    for run in runs:
        base = ref_runs.get(run.get(key))
        if base is None:
            continue
        compared = True
        for fieldname in exact:
            if fieldname not in base or fieldname not in run:
                continue
            if run[fieldname] != base[fieldname]:
                problems.append(
                    f"{run[key]}: {fieldname} drifted "
                    f"{base[fieldname]!r} -> {run[fieldname]!r}"
                )
        if check_digest:
            # Ledger records carry bench extras (incl. the data digest)
            # under "extra" -- honour both layouts on both sides.
            base_dig = base.get("digest") \
                or base.get("extra", {}).get("digest")
            run_dig = run.get("digest") \
                or run.get("extra", {}).get("digest")
            if base_dig and run_dig != base_dig:
                problems.append(f"{run[key]}: data digest drifted")
        for dotted, tol in (tolerances or {}).items():
            mine, ours = _get_path(base, dotted), _get_path(run, dotted)
            if not isinstance(mine, (int, float)) \
                    or not isinstance(ours, (int, float)):
                continue
            scale = max(abs(mine), abs(ours), 1e-12)
            drift = abs(ours - mine) / scale
            if drift > tol:
                problems.append(
                    f"{run[key]}: {dotted} drifted beyond tolerance "
                    f"{tol:g} ({mine!r} -> {ours!r}, rel {drift:.3g})"
                )
        if annotate_wall and base.get("wall_seconds"):
            run["ref_wall_seconds"] = base["wall_seconds"]
            run["speedup_vs_reference"] = (
                base["wall_seconds"] / run["wall_seconds"]
            )
    return problems, compared


def load_runs_doc(path: str) -> dict[str, Any]:
    """Load a run document: bench JSON (``{"runs": [...]}``) or a
    JSONL ledger (one record per line)."""
    if path.endswith(".jsonl"):
        return Ledger(path).runs_doc()
    with open(path) as f:
        head = f.read(1)
        f.seek(0)
        if head == "{":
            doc: dict[str, Any] = json.load(f)
            return doc
    return Ledger(path).runs_doc()


def check_reference(runs: list[dict[str, Any]], ref_path: str, *,
                    our_params: dict[str, Any] | None = None,
                    check_ref: bool = False,
                    exact: Sequence[str] = EXACT_FIELDS,
                    check_digest: bool = True,
                    annotate_wall: bool = False,
                    tolerances: dict[str, float] | None = None) -> list[str]:
    """The shared reference-gate wrapper every bench driver uses.

    Handles the guard conditions identically to the three pre-existing
    hand-rolled gates: a missing reference or non-covering parameters
    are problems only under ``check_ref``; matching parameters always
    run the comparison (annotations apply regardless), and under
    ``check_ref`` an empty intersection is itself a problem.
    """
    if not os.path.exists(ref_path):
        return [f"reference {ref_path} not found"] if check_ref else []
    ref_doc = load_runs_doc(ref_path)
    ref_params = ref_doc.get("params", {})
    if our_params is not None and \
            not all(ref_params.get(k) == v for k, v in our_params.items()):
        if check_ref:
            return [
                f"reference params {ref_params} do not cover this run "
                f"({our_params}); cannot check drift"
            ]
        return []
    problems, compared = compare_runs(
        runs, ref_doc, exact=exact, check_digest=check_digest,
        annotate_wall=annotate_wall, tolerances=tolerances,
    )
    if check_ref and not compared:
        problems.append("reference matched no workloads")
    return problems
