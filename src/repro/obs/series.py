"""Bounded-memory virtual-clock time series.

End-of-run totals answer *how much*; the paper's longitudinal story
(fig5-fig11 curves across modes and scales) and the multi-tenant SLO
work both need *how it evolved* -- queue depths, bytes in flight,
attempt counts over virtual time. A full sample log is unbounded, so a
series here is a fixed-budget array of *windows*: samples landing in
the same virtual-time window fold into a streaming aggregate
``(count, total, min, max)``; when the run outgrows the window budget
the series coarsens itself (window width doubles, adjacent windows
merge), so memory stays ``O(max_windows)`` no matter how long the run.

Window widths are power-of-two multiples of one base interval, which
makes coarsening exact (``floor(t/2i) == floor(t/i) // 2``) and lets
snapshots from different ranks or runs merge associatively like
:class:`~repro.obs.metrics.MetricsSnapshot`: the finer side coarsens to
the coarser width, then windows merge index-by-index.

Determinism: series fed from *virtual-time-ordered* producers (stream
queue depth, staged retention, PFS transfers) are byte-stable across
same-seed runs and carry a content digest into the run ledger. Series
whose values depend on real thread interleaving (mailbox depth sampled
at delivery) are recorded with ``volatile=True`` and excluded from
digests.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field

from repro.obs.metrics import Key, key_str, metric_key

#: Default finest window width (virtual seconds). Power of two so every
#: coarsening step stays exact.
DEFAULT_INTERVAL = 2.0 ** -10

#: Default per-series window budget.
DEFAULT_WINDOWS = 64


@dataclass
class Window:
    """Streaming aggregate of the samples in one time window."""

    count: int = 0
    total: float = 0.0
    vmin: float = float("inf")
    vmax: float = float("-inf")

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    def merge(self, other: "Window") -> "Window":
        return Window(self.count + other.count, self.total + other.total,
                      min(self.vmin, other.vmin),
                      max(self.vmax, other.vmax))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_json(self) -> list[float]:
        return [self.count, self.total, self.vmin, self.vmax]


class SeriesValue:
    """One bounded series: windows of samples over virtual time.

    ``interval`` only ever grows by doubling from ``base_interval``, so
    any two series sharing a base can be merged exactly.
    """

    __slots__ = ("base_interval", "interval", "max_windows", "volatile",
                 "windows")

    def __init__(self, base_interval: float = DEFAULT_INTERVAL,
                 max_windows: int = DEFAULT_WINDOWS,
                 volatile: bool = False) -> None:
        if base_interval <= 0.0:
            raise ValueError("base_interval must be > 0")
        if max_windows < 2:
            raise ValueError("max_windows must be >= 2")
        self.base_interval = base_interval
        self.interval = base_interval
        self.max_windows = max_windows
        self.volatile = volatile
        self.windows: dict[int, Window] = {}

    # -- producing ---------------------------------------------------------

    def record(self, t: float, value: float) -> None:
        """Fold one sample taken at virtual time ``t``."""
        idx = int(t // self.interval)
        w = self.windows.get(idx)
        if w is None:
            w = self.windows[idx] = Window()
        w.add(value)
        if len(self.windows) > 1:
            lo, hi = min(self.windows), max(self.windows)
            while hi - lo + 1 > self.max_windows:
                self._coarsen()
                lo, hi = min(self.windows), max(self.windows)

    def _coarsen(self) -> None:
        """Double the window width, merging adjacent window pairs."""
        self.interval *= 2.0
        merged: dict[int, Window] = {}
        for idx, w in self.windows.items():
            tgt = merged.get(idx >> 1)
            merged[idx >> 1] = w if tgt is None else tgt.merge(w)
        self.windows = merged

    # -- combining ---------------------------------------------------------

    def copy(self) -> "SeriesValue":
        out = SeriesValue(self.base_interval, self.max_windows,
                          self.volatile)
        out.interval = self.interval
        out.windows = {i: Window(w.count, w.total, w.vmin, w.vmax)
                       for i, w in self.windows.items()}
        return out

    def merge(self, other: "SeriesValue") -> "SeriesValue":
        """Associative merge; both sides must share a base interval."""
        if self.base_interval != other.base_interval:
            raise ValueError(
                f"cannot merge series with base intervals "
                f"{self.base_interval} and {other.base_interval}"
            )
        a, b = self.copy(), other.copy()
        while a.interval < b.interval:
            a._coarsen()
        while b.interval < a.interval:
            b._coarsen()
        for idx, w in b.windows.items():
            mine = a.windows.get(idx)
            a.windows[idx] = w if mine is None else mine.merge(w)
        a.volatile = a.volatile or b.volatile
        a.max_windows = min(a.max_windows, b.max_windows)
        if a.windows:
            lo, hi = min(a.windows), max(a.windows)
            while hi - lo + 1 > a.max_windows:
                a._coarsen()
                lo, hi = min(a.windows), max(a.windows)
        return a

    # -- querying ----------------------------------------------------------

    @property
    def count(self) -> int:
        """Total samples folded into the series."""
        return sum(w.count for w in self.windows.values())

    def points(self) -> list[tuple[float, Window]]:
        """``(window start vtime, Window)`` pairs, time-ordered."""
        return [(idx * self.interval, self.windows[idx])
                for idx in sorted(self.windows)]

    def to_json(self) -> dict[str, object]:
        return {
            "interval": self.interval,
            "volatile": self.volatile,
            "windows": [[idx] + self.windows[idx].to_json()
                        for idx in sorted(self.windows)],
        }

    def digest(self) -> str:
        """Stable content digest (windows + width, not volatility)."""
        doc = {"interval": self.interval,
               "windows": self.to_json()["windows"]}
        blob = json.dumps(doc, sort_keys=True,
                          separators=(",", ":")).encode()
        return hashlib.blake2b(blob, digest_size=8).hexdigest()


class BoundSeries:
    """A pre-resolved handle onto one series (hot-path producer).

    Like :class:`~repro.obs.metrics.BoundCounter`: resolve the
    ``(name, labels)`` key once, then every :meth:`record` is a locked
    window update with no key construction.
    """

    __slots__ = ("_lock", "_slot")

    def __init__(self, lock: threading.Lock, slot: SeriesValue) -> None:
        self._lock = lock
        self._slot = slot

    def record(self, t: float, value: float) -> None:
        with self._lock:
            self._slot.record(t, value)


@dataclass(frozen=True)
class SeriesSnapshot:
    """Immutable copy of a recorder: ``key -> SeriesValue``."""

    data: dict[Key, SeriesValue] = field(default_factory=dict)

    def merge(self, other: "SeriesSnapshot") -> "SeriesSnapshot":
        out = dict(self.data)
        for k, v in other.data.items():
            mine = out.get(k)
            out[k] = v if mine is None else mine.merge(v)
        return SeriesSnapshot(out)

    def get(self, name: str, **labels: object) -> SeriesValue | None:
        return self.data.get(metric_key(name, labels))

    def to_dict(self) -> dict[str, object]:
        """Plain-dict dump: ``{name{labels}: series json}``."""
        return {key_str(k): v.to_json()
                for k, v in sorted(self.data.items())}

    def digests(self, include_volatile: bool = False) -> dict[str, str]:
        """Stable per-series digests; volatile series are skipped
        unless asked for (their content depends on thread timing, so
        they must not feed deterministic run digests)."""
        return {key_str(k): v.digest()
                for k, v in sorted(self.data.items())
                if include_volatile or not v.volatile}


class SeriesRecorder:
    """Thread-safe registry of bounded virtual-time series.

    One lock guards all series; a sample is a dict lookup plus a
    window update, cheap enough for protocol-rate sampling.
    """

    def __init__(self, base_interval: float = DEFAULT_INTERVAL,
                 max_windows: int = DEFAULT_WINDOWS) -> None:
        self.base_interval = base_interval
        self.max_windows = max_windows
        self._lock = threading.Lock()
        self._data: dict[Key, SeriesValue] = {}

    def _slot(self, name: str, labels: dict[str, object],
              volatile: bool) -> SeriesValue:
        key = metric_key(name, labels)
        v = self._data.get(key)
        if v is None:
            v = self._data[key] = SeriesValue(
                self.base_interval, self.max_windows, volatile
            )
        return v

    def record(self, name: str, t: float, value: float, *,
               rank: object = None, volatile: bool = False,
               **labels: object) -> None:
        """Fold one sample of ``(name, labels)`` taken at vtime ``t``."""
        if rank is not None:
            labels["rank"] = rank
        with self._lock:
            self._slot(name, labels, volatile).record(t, value)

    def bound(self, name: str, *, rank: object = None,
              volatile: bool = False, **labels: object) -> BoundSeries:
        """Resolve ``(name, labels)`` once; returns a cheap handle."""
        if rank is not None:
            labels["rank"] = rank
        with self._lock:
            slot = self._slot(name, labels, volatile)
        return BoundSeries(self._lock, slot)

    def snapshot(self) -> SeriesSnapshot:
        """Immutable copy of every series."""
        with self._lock:
            return SeriesSnapshot(
                {k: v.copy() for k, v in self._data.items()}
            )

    def to_dict(self) -> dict[str, object]:
        """Shortcut: ``snapshot().to_dict()``."""
        return self.snapshot().to_dict()


def series_dump(series: object) -> dict[str, object]:
    """Plain-dict dump of a recorder or snapshot (JSON-able)."""
    if isinstance(series, SeriesRecorder):
        series = series.snapshot()
    if isinstance(series, SeriesSnapshot):
        return series.to_dict()
    raise TypeError(f"cannot dump series from {type(series).__name__}")
