"""Virtual-clock span tracing with parent/child links.

A span is one timed region of a rank's execution, measured in *virtual*
seconds (the simulated machine's clocks, not wall time). Spans nest:
each simmpi rank runs on its own thread, and the recorder keeps a
per-thread stack so a span opened inside another becomes its child --
e.g. the ``mpi.alltoall`` collective recorded inside LowFive's
``lowfive.index`` phase.

Producers use either the context-manager form (via
:meth:`repro.obs.ObsContext.span`) or the explicit
:meth:`SpanRecorder.begin` / :meth:`SpanRecorder.end` pair when the
start clock is known before any waiting happens.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass(frozen=True)
class SpanEvent:
    """One completed span.

    Attributes
    ----------
    span_id, parent_id:
        Unique id and the enclosing span's id (``None`` at top level).
    name, cat:
        Event name (``"lowfive.query"``) and category/layer
        (``"simmpi"``, ``"lowfive"``, ``"pfs"``, ``"workflow"``).
    rank:
        World rank that executed the span.
    t0, t1:
        Virtual start/end clocks, seconds.
    labels:
        Structured context (dataset path, file name, phase, ...).
    """

    span_id: int
    parent_id: int | None
    name: str
    cat: str
    rank: int
    t0: float
    t1: float
    labels: dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass(frozen=True)
class InstantEvent:
    """One point-in-time event (no duration)."""

    name: str
    cat: str
    rank: int
    t: float
    labels: dict[str, object] = field(default_factory=dict)


class _OpenSpan:
    """Handle returned by :meth:`SpanRecorder.begin`. Internal."""

    __slots__ = ("span_id", "parent_id", "name", "cat", "rank", "t0",
                 "labels")

    def __init__(self, span_id: int, parent_id: int | None, name: str,
                 cat: str, rank: int, t0: float,
                 labels: dict[str, object]) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.cat = cat
        self.rank = rank
        self.t0 = t0
        self.labels = labels


class SpanRecorder:
    """Collects completed spans and instants; thread-safe.

    The per-thread open-span stack supplies parent links. Begin/end
    pairs must nest properly within one thread (the context-manager
    form guarantees this).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: list[SpanEvent] = []
        self._instants: list[InstantEvent] = []
        self._next_id = 1
        self._tls = threading.local()

    def _stack(self) -> list[_OpenSpan]:
        st: list[_OpenSpan] | None = getattr(self._tls, "stack", None)
        if st is None:
            st = []
            self._tls.stack = st
        return st

    # -- producing ---------------------------------------------------------

    def begin(self, rank: int, name: str, cat: str, t0: float,
              labels: dict[str, object] | None = None) -> _OpenSpan:
        """Open a span at virtual time ``t0``; returns its handle."""
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        with self._lock:
            sid = self._next_id
            self._next_id += 1
        span = _OpenSpan(sid, parent, name, cat, rank, t0,
                         dict(labels) if labels else {})
        stack.append(span)
        return span

    def end(self, open_span: _OpenSpan, t1: float) -> SpanEvent:
        """Close ``open_span`` at virtual time ``t1``."""
        stack = self._stack()
        if open_span in stack:
            # Pop through any improperly-unclosed children too.
            while stack and stack[-1] is not open_span:
                stack.pop()
            if stack:
                stack.pop()
        ev = SpanEvent(open_span.span_id, open_span.parent_id,
                       open_span.name, open_span.cat, open_span.rank,
                       open_span.t0, t1, open_span.labels)
        with self._lock:
            self._spans.append(ev)
        return ev

    def add(self, name: str, cat: str, rank: int, t0: float, t1: float,
            labels: dict[str, object] | None = None,
            parent_id: int | None = None) -> SpanEvent:
        """Record an already-measured span (no nesting bookkeeping).

        The parent link is *explicit*: pass ``parent_id`` (e.g. from an
        open span's handle) to nest the span, or leave it ``None`` for
        a top-level span. The calling thread's open-span stack is
        deliberately not consulted -- a helper thread recording on
        behalf of another rank must not adopt its own unrelated open
        span as the parent.
        """
        with self._lock:
            sid = self._next_id
            self._next_id += 1
            ev = SpanEvent(sid, parent_id, name, cat, rank, t0, t1,
                           dict(labels) if labels else {})
            self._spans.append(ev)
        return ev

    def instant(self, name: str, cat: str, rank: int, t: float,
                labels: dict[str, object] | None = None) -> InstantEvent:
        """Record a point event at virtual time ``t``."""
        ev = InstantEvent(name, cat, rank, t,
                          dict(labels) if labels else {})
        with self._lock:
            self._instants.append(ev)
        return ev

    # -- querying ----------------------------------------------------------

    def spans(self, cat: str | None = None, name: str | None = None,
              rank: int | None = None,
              **label_filter: object) -> list[SpanEvent]:
        """Completed spans, optionally filtered."""
        with self._lock:
            out = list(self._spans)
        if cat is not None:
            out = [s for s in out if s.cat == cat]
        if name is not None:
            out = [s for s in out if s.name == name]
        if rank is not None:
            out = [s for s in out if s.rank == rank]
        for k, v in label_filter.items():
            out = [s for s in out if s.labels.get(k) == v]
        return out

    def instants(self) -> list[InstantEvent]:
        """All recorded instants."""
        with self._lock:
            return list(self._instants)

    def total(self, cat: str | None = None, name: str | None = None,
              rank: int | None = None, **label_filter: object) -> float:
        """Summed duration of the matching spans (virtual seconds)."""
        return sum(s.duration
                   for s in self.spans(cat, name, rank, **label_filter))

    def children_of(self, span_id: int) -> list[SpanEvent]:
        """Direct children of span ``span_id``."""
        return [s for s in self.spans() if s.parent_id == span_id]
