"""Thread-safe metrics: counters, gauges, histograms.

Every metric is keyed by ``(name, labels)``; per-rank scoping is just a
``rank=...`` label, so one registry serves all ranks of a simulated
machine. Snapshots are cheap (copy of small dataclasses under one lock)
and merge associatively, so per-task or per-run snapshots can be
combined in any grouping:

    reg = MetricsRegistry()
    reg.inc("simmpi.send.bytes", 4096, rank=3)
    reg.set("pfs.open_files", 2, rank=0)
    reg.observe("lowfive.query.bytes", 1024, rank=1, dataset="/grid")
    snap = reg.snapshot()
    combined = snap.merge(other_snap)
    combined.to_dict()   # plain JSON-able dict

Histograms use base-2 exponential buckets (bucket ``i`` holds values in
``(2**(i-1), 2**i]``; non-positive values land in bucket ``None``), so
merging never re-bins.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Any, cast

#: Canonical metric key: ``(name, sorted (label, value) pairs)``.
Key = tuple[str, tuple[tuple[str, object], ...]]


def metric_key(name: str, labels: dict[str, object]) -> Key:
    """Canonical hashable key for ``(name, labels)``."""
    return (name, tuple(sorted(labels.items())))


def key_str(key: Key) -> str:
    """Prometheus-flavoured rendering: ``name{k=v,...}``."""
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


@dataclass
class CounterValue:
    """Monotonic sum plus increment count."""

    total: float = 0.0
    count: int = 0

    def inc(self, value: float) -> None:
        self.total += value
        self.count += 1

    def merge(self, other: "CounterValue") -> "CounterValue":
        return CounterValue(self.total + other.total,
                            self.count + other.count)

    def to_json(self) -> dict[str, object]:
        return {"total": self.total, "count": self.count}


@dataclass
class GaugeValue:
    """Last-written value; ``seq`` orders writes across merges.

    Merging keeps the write with the larger ``(seq, value)`` pair, which
    makes the merge associative and commutative.
    """

    value: float = 0.0
    seq: int = 0

    def merge(self, other: "GaugeValue") -> "GaugeValue":
        a, b = (self.seq, self.value), (other.seq, other.value)
        seq, value = max(a, b)
        return GaugeValue(value, seq)

    def to_json(self) -> dict[str, object]:
        return {"value": self.value, "seq": self.seq}


def bucket_index(value: float) -> int | None:
    """Exponential bucket of ``value``: smallest ``i`` with
    ``2**i >= value`` (and ``None`` for values <= 0)."""
    if value <= 0:
        return None
    return max(0, math.ceil(math.log2(value)))


@dataclass
class HistogramValue:
    """Bucketed distribution: counts per base-2 bucket + moments."""

    buckets: dict[int | None, int] = field(default_factory=dict)
    total: float = 0.0
    count: int = 0
    vmin: float = math.inf
    vmax: float = -math.inf

    def observe(self, value: float) -> None:
        b = bucket_index(value)
        self.buckets[b] = self.buckets.get(b, 0) + 1
        self.total += value
        self.count += 1
        self.vmin = min(self.vmin, value)
        self.vmax = max(self.vmax, value)

    def merge(self, other: "HistogramValue") -> "HistogramValue":
        buckets = dict(self.buckets)
        for b, n in other.buckets.items():
            buckets[b] = buckets.get(b, 0) + n
        return HistogramValue(
            buckets, self.total + other.total, self.count + other.count,
            min(self.vmin, other.vmin), max(self.vmax, other.vmax),
        )

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Bucket-interpolated quantile estimate (``None`` when empty).

        The base-2 bucket containing the order statistic is exact;
        within it the estimate interpolates linearly between the bucket
        bounds, then clamps to the observed ``[min, max]``. For values
        ``>= 1`` the estimate is always within a factor of two of the
        true order statistic (bucket 0 spans all of ``(0, 1]``, so no
        such bound holds below 1), and merging histograms can only
        move it within that bound (buckets merge without re-binning).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return None
        target = q * self.count
        seen = 0.0
        # None bucket (non-positive values) sorts lowest.
        ordered = sorted(self.buckets.items(),
                         key=lambda kv: (kv[0] is not None, kv[0] or 0))
        for b, n in ordered:
            if seen + n >= target or (b, n) == ordered[-1]:
                if b is None:
                    lo, hi = self.vmin, min(0.0, self.vmax)
                elif b == 0:
                    lo, hi = 0.0, 1.0
                else:
                    lo, hi = 2.0 ** (b - 1), 2.0 ** b
                frac = (target - seen) / n if n else 0.0
                est = lo + min(max(frac, 0.0), 1.0) * (hi - lo)
                return min(max(est, self.vmin), self.vmax)
            seen += n
        return self.vmax  # unreachable; defensive

    def to_json(self) -> dict[str, object]:
        return {
            "buckets": {str(b): n for b, n in sorted(
                self.buckets.items(), key=lambda kv: (kv[0] is None, kv[0]))},
            "total": self.total,
            "count": self.count,
            "min": None if self.count == 0 else self.vmin,
            "max": None if self.count == 0 else self.vmax,
        }


#: Any concrete metric value; all three merge associatively.
MetricValue = CounterValue | GaugeValue | HistogramValue

_KINDS: dict[str, type[MetricValue]] = {
    "counter": CounterValue, "gauge": GaugeValue,
    "histogram": HistogramValue,
}


class BoundCounter:
    """A pre-resolved handle onto one counter slot.

    Hot paths (one or more increments *per simulated message*) resolve
    the ``(name, labels)`` key once via
    :meth:`MetricsRegistry.counter`; every subsequent :meth:`inc` is a
    single locked float-add with no kwargs dict, no ``sorted(labels)``
    key build and no registry lookup. Increments land in the same slot
    plain :meth:`MetricsRegistry.inc` calls would, so snapshots and
    merges are unchanged.
    """

    __slots__ = ("_lock", "_slot")

    def __init__(self, lock: threading.Lock, slot: CounterValue) -> None:
        self._lock = lock
        self._slot = slot

    def inc(self, value: float = 1.0) -> None:
        """Add ``value`` to the bound counter."""
        with self._lock:
            self._slot.inc(value)


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable point-in-time copy of a registry.

    ``data`` maps ``(kind, key)`` -> value dataclass. Merging is pure
    and associative (see the individual value types).
    """

    data: dict[tuple[str, Key], MetricValue] = field(default_factory=dict)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        out = dict(self.data)
        for k, v in other.data.items():
            mine = out.get(k)
            # Same key => same kind (the registry enforces it), so the
            # union-typed merge is always kind-homogeneous at runtime.
            out[k] = v if mine is None else mine.merge(cast(Any, v))
        return MetricsSnapshot(out)

    def get(self, name: str, **labels: object) -> MetricValue | None:
        """The value object for ``(name, labels)`` or ``None``."""
        key = metric_key(name, labels)
        for kind in _KINDS:
            v = self.data.get((kind, key))
            if v is not None:
                return v
        return None

    def to_dict(self) -> dict[str, dict[str, object]]:
        """Plain-dict dump: ``{kind: {name{labels}: value...}}``."""
        out: dict[str, dict[str, object]] = {kind: {} for kind in _KINDS}
        for (kind, key), v in sorted(self.data.items(),
                                     key=lambda kv: (kv[0][0], kv[0][1])):
            out[kind][key_str(key)] = v.to_json()
        return out


def merge_snapshots(*snaps: MetricsSnapshot) -> MetricsSnapshot:
    """Fold any number of snapshots into one."""
    out = MetricsSnapshot()
    for s in snaps:
        out = out.merge(s)
    return out


class MetricsRegistry:
    """Thread-safe registry of counters, gauges and histograms.

    One lock guards all metrics; operations are dictionary lookups plus
    a couple of float ops, cheap enough for per-message accounting on
    the simulated machine.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._data: dict[tuple[str, Key], MetricValue] = {}
        self._seq = 0

    def _slot(self, kind: str, name: str,
              labels: dict[str, object]) -> MetricValue:
        key = (kind, metric_key(name, labels))
        v = self._data.get(key)
        if v is None:
            for other in _KINDS:
                if other != kind and (other, key[1]) in self._data:
                    raise TypeError(
                        f"metric {name!r} already registered as {other}"
                    )
            v = _KINDS[kind]()
            self._data[key] = v
        return v

    def inc(self, name: str, value: float = 1.0, *,
            rank: object = None, **labels: object) -> None:
        """Add ``value`` to the counter ``(name, labels)``."""
        if rank is not None:
            labels["rank"] = rank
        with self._lock:
            cast(CounterValue,
                 self._slot("counter", name, labels)).inc(value)

    def counter(self, name: str, *, rank: object = None,
                **labels: object) -> BoundCounter:
        """Resolve ``(name, labels)`` once; returns a cheap bound handle.

        Use on hot paths instead of repeated :meth:`inc` calls with the
        same labels -- the handle's :meth:`BoundCounter.inc` skips the
        per-call key construction entirely.
        """
        if rank is not None:
            labels["rank"] = rank
        with self._lock:
            slot = cast(CounterValue,
                        self._slot("counter", name, labels))
        return BoundCounter(self._lock, slot)

    def set(self, name: str, value: float, *,
            rank: object = None, **labels: object) -> None:
        """Set the gauge ``(name, labels)`` to ``value``."""
        if rank is not None:
            labels["rank"] = rank
        with self._lock:
            g = cast(GaugeValue, self._slot("gauge", name, labels))
            self._seq += 1
            g.value = value
            g.seq = self._seq

    def observe(self, name: str, value: float, *,
                rank: object = None, **labels: object) -> None:
        """Record ``value`` into the histogram ``(name, labels)``."""
        if rank is not None:
            labels["rank"] = rank
        with self._lock:
            cast(HistogramValue,
                 self._slot("histogram", name, labels)).observe(value)

    def snapshot(self) -> MetricsSnapshot:
        """Cheap immutable copy of every metric's current value."""
        with self._lock:
            data: dict[tuple[str, Key], MetricValue] = {}
            for key, v in self._data.items():
                if isinstance(v, CounterValue):
                    data[key] = CounterValue(v.total, v.count)
                elif isinstance(v, GaugeValue):
                    data[key] = GaugeValue(v.value, v.seq)
                else:
                    data[key] = HistogramValue(dict(v.buckets), v.total,
                                               v.count, v.vmin, v.vmax)
            return MetricsSnapshot(data)

    def to_dict(self) -> dict[str, dict[str, object]]:
        """Shortcut: ``snapshot().to_dict()``."""
        return self.snapshot().to_dict()
