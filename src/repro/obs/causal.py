"""Causal layer: message flow edges, stragglers, wait-state analysis.

Every point-to-point receive records a :class:`FlowEdge` -- who sent,
when the message was posted, when it arrived, and how long the receiver
was blocked -- and every collective records a :class:`CollectiveRecord`
with the per-rank entry clocks and the straggler whose arrival released
everyone. Alongside them, :class:`RankAccount` ledgers are charged at
every virtual-clock mutation in :mod:`repro.simmpi.comm`, partitioning
each rank's timeline into *compute*, *transfer* and *wait* seconds.

On top of that raw record this module provides Scalasca-style
wait-state classification (:func:`classify_waits`) attributing each
blocked interval to its causing rank and span, and the conservation
check (:func:`conservation`) that per-rank
``compute + transfer + wait`` sums exactly to the rank's final clock --
the invariant every analysis in :mod:`repro.obs.critpath` relies on.

A receive that blocks splits its blocked interval with the sender's
post time ``t_post``::

    blocked   = max(0, t_arrival - t_recv_start)
    wait      = min(blocked, max(0, t_post - t_recv_start))
    in_flight = blocked - wait

``wait`` is the portion spent idle before the sender even posted (a
*late sender*); ``in_flight`` is wire time and counts as transfer.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.obs.spans import SpanEvent

#: Receiver idled because the sender had not posted yet.
LATE_SENDER = "late-sender"
#: Sender posted early; the message sat buffered at the receiver.
EARLY_SENDER = "early-sender"
#: Receiver idled inside a collective until the last rank arrived.
COLLECTIVE_STRAGGLER = "collective-straggler"
#: Receiver idled for an RPC reply while the server handled traffic.
RPC_SERVER_BUSY = "rpc-server-busy"
#: Receiver idled behind a peer doing parallel-file-system I/O.
PFS_CONTENTION = "pfs-contention"
#: A streaming producer idled for a consumer's epoch release (its
#: live-epoch window hit ``max_lag``).
BACKPRESSURE = "backpressure"

#: Every category :func:`classify_waits` can emit.
WAIT_CATEGORIES = (LATE_SENDER, EARLY_SENDER, COLLECTIVE_STRAGGLER,
                   RPC_SERVER_BUSY, PFS_CONTENTION, BACKPRESSURE)

#: RPC reply tag (mirrors :data:`repro.lowfive.rpc.TAG_REPLY`; obs must
#: not import lowfive).
_TAG_REPLY = 702
#: Span names that mean "this rank is acting as an RPC server".
_SERVER_SPANS = ("rpc.handle", "lowfive.serve", "lowfive.staging")
#: Span a backpressured streaming producer blocks inside: any wait the
#: *receiver* spends there is backpressure, whatever message wakes it.
_BACKPRESSURE_SPAN = "stream.backpressure"


@dataclass(frozen=True)
class FlowEdge:
    """One matched send -> recv pair (a causal edge between ranks).

    Times are virtual seconds on the shared simulated timeline:
    ``t_post`` (sender's clock when the message entered the network),
    ``t_arrival`` (modeled delivery time at the receiver),
    ``t_recv_start`` (receiver's clock when it started matching) and
    ``t_recv`` (receiver's clock after the completed receive).
    """

    msg_id: int
    src: int  # sender world rank
    dst: int  # receiver world rank
    tag: int
    comm_id: int
    nbytes: int
    t_post: float
    t_arrival: float
    t_recv_start: float
    t_recv: float

    @property
    def wire(self) -> float:
        """Modeled network time of this message."""
        return self.t_arrival - self.t_post

    @property
    def blocked(self) -> float:
        """Seconds the receiver was blocked before delivery."""
        return max(0.0, self.t_arrival - self.t_recv_start)

    @property
    def wait(self) -> float:
        """Blocked seconds attributable to the sender being late."""
        return min(self.blocked, max(0.0, self.t_post - self.t_recv_start))

    @property
    def in_flight(self) -> float:
        """Blocked seconds spent on the wire (counted as transfer)."""
        return self.blocked - self.wait

    @property
    def buffered(self) -> float:
        """Seconds the message sat buffered before the receiver asked."""
        return max(0.0, self.t_recv_start - self.t_arrival)


@dataclass(frozen=True)
class PendingSend:
    """One posted point-to-point message (the pending-send table).

    Recorded at delivery time; the message-leak checker reports every
    post whose ``msg_id`` was never consumed by a matching receive at
    finalize.
    """

    msg_id: int
    src: int  # sender world rank
    dst: int  # receiver world rank
    tag: int
    comm_id: int
    nbytes: int
    t_post: float
    t_arrival: float


@dataclass(frozen=True)
class MatchRecord:
    """Candidate-set snapshot of one wildcard receive.

    ``candidates`` holds ``(msg_id, src, t_post, t_arrival)`` for every
    live, spec-matching message queued when the match committed --
    exactly the heads the matcher compared. The schedule-race detector
    flags matches whose candidate set admits more than one plausible
    delivery order under real MPI.
    """

    dst: int  # receiver world rank
    comm_id: int
    source: int  # the spec, local numbering (ANY_SOURCE = -1)
    tag: int  # the spec (ANY_TAG = -1)
    msg_id: int  # the message the schedule chose
    t_match: float  # receiver's clock when the match committed
    candidates: tuple[Any, ...]


@dataclass(frozen=True)
class CollectiveRecord:
    """One completed collective: entry clocks and the straggler.

    ``enter_clocks`` maps world rank -> virtual clock at entry;
    ``t_ready`` is the last entry (when the collective could start) and
    ``t_end`` the common exit clock, so ``t_end - t_ready`` is the
    modeled collective transfer time. ``kinds`` maps world rank -> the
    operation that rank entered with (the mismatch checker flags records
    where they differ: the rendezvous completes regardless, silently
    corrupting semantics).
    """

    coll_id: int
    kind: str
    comm_id: int
    nbytes: int
    enter_clocks: dict[int, float]
    t_ready: float
    t_end: float
    straggler: int
    kinds: dict[int, str] = field(default_factory=dict)

    @property
    def transfer(self) -> float:
        """Modeled network time of the collective itself."""
        return self.t_end - self.t_ready

    def wait_of(self, rank: int) -> float:
        """Seconds ``rank`` idled waiting for the straggler."""
        return max(0.0, self.t_ready - self.enter_clocks[rank])


class RankAccount:
    """Running compute/transfer/wait ledger of one rank.

    Written only by the owning rank's thread (single-writer); read
    after the run. The conservation invariant is
    ``compute + transfer + wait == final clock``.
    """

    __slots__ = ("rank", "compute", "transfer", "wait")

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.compute = 0.0
        self.transfer = 0.0
        self.wait = 0.0

    @property
    def total(self) -> float:
        """Accounted seconds (should equal the rank's final clock)."""
        return self.compute + self.transfer + self.wait

    def to_dict(self) -> dict[str, object]:
        return {"rank": self.rank, "compute": self.compute,
                "transfer": self.transfer, "wait": self.wait}


class CausalRecorder:
    """Collects flow edges, collective records and rank ledgers.

    One per :class:`~repro.obs.ObsContext`; always on. Appends come
    from the simmpi layer (one per receive / collective completion), so
    volume tracks message count, not payload size.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._edges: list[FlowEdge] = []
        self._colls: list[CollectiveRecord] = []
        self._accounts: dict[int, RankAccount] = {}
        self._next_coll = 1
        self._posts: dict[int, PendingSend] = {}
        self._consumed: set[int] = set()
        self._matches: list[MatchRecord] = []

    # -- producing ---------------------------------------------------------

    def account(self, rank: int) -> RankAccount:
        """The (lazily created) ledger of ``rank``."""
        acct = self._accounts.get(rank)
        if acct is None:
            with self._lock:
                acct = self._accounts.setdefault(rank, RankAccount(rank))
        return acct

    def edge(self, **kw: Any) -> FlowEdge:
        """Record one matched receive (fields of :class:`FlowEdge`)."""
        e = FlowEdge(**kw)
        with self._lock:
            self._edges.append(e)
        return e

    def collective(self, kind: str, comm_id: int, nbytes: int,
                   enter_clocks: dict[int, float], t_ready: float,
                   t_end: float,
                   kinds: dict[int, str] | None = None) -> CollectiveRecord:
        """Record one completed collective; derives the straggler."""
        straggler = max(enter_clocks,
                        key=lambda r: (enter_clocks[r], r))
        with self._lock:
            cid = self._next_coll
            self._next_coll += 1
            rec = CollectiveRecord(cid, kind, comm_id, nbytes,
                                   dict(enter_clocks), t_ready, t_end,
                                   straggler, dict(kinds or {}))
            self._colls.append(rec)
        return rec

    def post(self, msg_id: int, src: int, dst: int, tag: int,
             comm_id: int, nbytes: int, t_post: float,
             t_arrival: float) -> None:
        """Record one delivered message in the pending-send table."""
        rec = PendingSend(msg_id, src, dst, tag, comm_id, nbytes,
                          t_post, t_arrival)
        with self._lock:
            self._posts[msg_id] = rec

    def consume(self, msg_id: int) -> None:
        """Mark a posted message (or its injected twin) as received."""
        with self._lock:
            self._consumed.add(msg_id)

    def match(self, dst: int, comm_id: int, source: int, tag: int,
              msg_id: int, t_match: float,
              candidates: tuple[Any, ...]) -> None:
        """Record a wildcard match and its candidate-set snapshot."""
        rec = MatchRecord(dst, comm_id, source, tag, msg_id, t_match,
                          candidates)
        with self._lock:
            self._matches.append(rec)

    # -- querying ----------------------------------------------------------

    def edges(self, src: int | None = None, dst: int | None = None,
              tag: int | None = None) -> list[FlowEdge]:
        """Recorded flow edges, optionally filtered."""
        with self._lock:
            out = list(self._edges)
        if src is not None:
            out = [e for e in out if e.src == src]
        if dst is not None:
            out = [e for e in out if e.dst == dst]
        if tag is not None:
            out = [e for e in out if e.tag == tag]
        return out

    def collectives(self) -> list[CollectiveRecord]:
        """Recorded collective completions, in completion order."""
        with self._lock:
            return list(self._colls)

    def accounts(self) -> dict[int, RankAccount]:
        """Copy of the rank -> :class:`RankAccount` map, in rank order
        (iteration order must not leak thread-scheduling order)."""
        with self._lock:
            return {r: self._accounts[r] for r in sorted(self._accounts)}

    def posts(self) -> list[PendingSend]:
        """The pending-send table, in message-id order."""
        with self._lock:
            return [self._posts[k] for k in sorted(self._posts)]

    def consumed_ids(self) -> set[int]:
        """Message ids satisfied by a receive (either twin counts)."""
        with self._lock:
            return set(self._consumed)

    def matches(self) -> list[MatchRecord]:
        """Wildcard match records with candidate snapshots, ordered by
        ``(t_match, dst, comm_id, msg_id)`` -- append order would leak
        which rank's thread reached the recorder first."""
        with self._lock:
            return sorted(self._matches,
                          key=lambda m: (m.t_match, m.dst, m.comm_id,
                                         m.msg_id))


# -- cause attribution -------------------------------------------------------


def dominant_span(spans: Iterable[SpanEvent], a: float,
                  b: float) -> SpanEvent | None:
    """The innermost span covering most of ``[a, b]`` (or ``None``).

    ``spans`` are one rank's :class:`~repro.obs.spans.SpanEvent` list.
    The interval is swept over span boundaries; each slice is charged
    to its innermost (shortest) containing span, and the span with the
    largest covered total wins. This picks ``pfs.write`` over the
    enclosing ``task.producer`` when both cover a wait.
    """
    if b <= a:
        return None
    overl = [s for s in spans if s.t0 < b and s.t1 > a]
    if not overl:
        return None
    cuts = sorted({a, b}
                  | {max(a, s.t0) for s in overl}
                  | {min(b, s.t1) for s in overl})
    totals: dict[int, float] = {}
    by_id: dict[int, SpanEvent] = {}
    for p0, p1 in zip(cuts, cuts[1:]):
        if p1 <= p0:
            continue
        mid = 0.5 * (p0 + p1)
        containing = [s for s in overl if s.t0 <= mid <= s.t1]
        if not containing:
            continue
        # Tie-break on timeline position and name, never on span_id:
        # ids are allocated in real-thread order and would leak
        # scheduling nondeterminism into the attribution.
        deepest = min(containing,
                      key=lambda s: (s.t1 - s.t0, -s.t0, s.name))
        totals[deepest.span_id] = totals.get(deepest.span_id, 0.0) + (p1 - p0)
        by_id[deepest.span_id] = deepest
    if not totals:
        return None
    best = max(totals,
               key=lambda sid: (totals[sid], -by_id[sid].t0,
                                by_id[sid].t1, by_id[sid].name))
    return by_id[best]


@dataclass(frozen=True)
class WaitState:
    """One classified blocked interval.

    ``rank`` idled over ``[t0, t1]`` because of ``cause_rank``;
    ``cause_span`` names what the causing rank was doing (the dominant
    innermost span over the interval, ``""`` when uninstrumented).
    :data:`EARLY_SENDER` entries are informational (the *message*
    buffered, the rank did not idle) and are excluded from the
    wait-conservation cross-check.
    """

    rank: int
    t0: float
    t1: float
    category: str
    cause_rank: int
    cause_span: str = ""
    detail: dict[str, object] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.t1 - self.t0

    def to_dict(self) -> dict[str, object]:
        return {"rank": self.rank, "t0": self.t0, "t1": self.t1,
                "seconds": self.seconds, "category": self.category,
                "cause_rank": self.cause_rank,
                "cause_span": self.cause_span, **self.detail}


def _classify_edge(edge: FlowEdge, cause_span: SpanEvent | None,
                   recv_span: SpanEvent | None = None) -> str:
    """Wait category of a late receive, from the sender's activity
    (and, for backpressure, the receiver's)."""
    if recv_span is not None and recv_span.name == _BACKPRESSURE_SPAN:
        # The receiver was a producer parked on its live-epoch bound;
        # whatever message ends the wait, the cause is the consumer
        # it was throttled by. The receiver span (not the release tag)
        # is the signal: a release arriving during an ordinary
        # end-of-stream drain is not backpressure.
        return BACKPRESSURE
    if cause_span is not None:
        if cause_span.cat == "pfs" or cause_span.name.startswith("pfs."):
            return PFS_CONTENTION
        if cause_span.name in _SERVER_SPANS:
            return RPC_SERVER_BUSY
    if edge.tag == _TAG_REPLY:
        return RPC_SERVER_BUSY
    return LATE_SENDER


def classify_waits(obs: Any, tol: float = 1e-12) -> list[WaitState]:
    """Classify every blocked interval recorded by ``obs.causal``.

    Returns :class:`WaitState` entries sorted by start time. Excluding
    :data:`EARLY_SENDER` (buffered-message) entries, the per-rank sum
    of ``seconds`` equals the rank's accounted ``wait`` ledger -- the
    cross-check :func:`conservation` enforces.
    """
    causal = obs.causal
    spans_by_rank: dict[int, list[SpanEvent]] = {}
    for s in obs.spans.spans():
        spans_by_rank.setdefault(s.rank, []).append(s)
    out: list[WaitState] = []
    for e in causal.edges():
        w = e.wait
        if w > tol:
            cause = dominant_span(spans_by_rank.get(e.src, ()),
                                  e.t_recv_start, e.t_recv_start + w)
            recv = dominant_span(spans_by_rank.get(e.dst, ()),
                                 e.t_recv_start, e.t_recv_start + w)
            out.append(WaitState(
                e.dst, e.t_recv_start, e.t_recv_start + w,
                _classify_edge(e, cause, recv), e.src,
                cause.name if cause is not None else "",
                {"tag": e.tag, "msg_id": e.msg_id},
            ))
        if e.buffered > tol:
            out.append(WaitState(
                e.dst, e.t_arrival, e.t_recv_start, EARLY_SENDER, e.src,
                "", {"tag": e.tag, "msg_id": e.msg_id},
            ))
    for rec in causal.collectives():
        for rank, enter in rec.enter_clocks.items():
            w = rec.t_ready - enter
            if rank == rec.straggler or w <= tol:
                continue
            cause = dominant_span(
                spans_by_rank.get(rec.straggler, ()), enter, rec.t_ready
            )
            out.append(WaitState(
                rank, enter, rec.t_ready, COLLECTIVE_STRAGGLER,
                rec.straggler,
                cause.name if cause is not None else "",
                {"kind": rec.kind, "coll_id": rec.coll_id},
            ))
    # Total order: the time/rank prefix alone admits ties (e.g. two
    # buffered messages from different senders consumed back-to-back
    # at identical clocks), and ties would leak the recorder's append
    # order -- which is real-thread order on the serve path. The
    # category/cause/detail suffix (msg or collective ids are unique
    # per entry) pins the output byte-for-byte across same-seed runs.
    out.sort(key=lambda w: (w.t0, w.rank, w.t1, w.category, w.cause_rank,
                            sorted(w.detail.items())))
    return out


# -- conservation ------------------------------------------------------------


@dataclass(frozen=True)
class ConservationRow:
    """Per-rank accounting vs. the rank's actual final clock."""

    rank: int
    compute: float
    transfer: float
    wait: float
    classified_wait: float
    makespan: float  # the rank's final virtual clock

    @property
    def residual(self) -> float:
        """``makespan - (compute + transfer + wait)`` (should be ~0)."""
        return self.makespan - (self.compute + self.transfer + self.wait)

    @property
    def wait_residual(self) -> float:
        """Accounted wait minus the classified wait states (~0)."""
        return self.wait - self.classified_wait


@dataclass(frozen=True)
class ConservationReport:
    """Outcome of :func:`conservation` over every rank."""

    rows: tuple[ConservationRow, ...]
    tol: float

    @property
    def max_residual(self) -> float:
        return max((abs(r.residual) for r in self.rows), default=0.0)

    @property
    def max_wait_residual(self) -> float:
        return max((abs(r.wait_residual) for r in self.rows), default=0.0)

    @property
    def ok(self) -> bool:
        return (self.max_residual <= self.tol
                and self.max_wait_residual <= self.tol)

    def raise_if_violated(self) -> None:
        """Raise ``AssertionError`` naming the worst offending rank."""
        if self.ok:
            return
        worst = max(self.rows,
                    key=lambda r: max(abs(r.residual),
                                      abs(r.wait_residual)))
        raise AssertionError(
            f"conservation violated on rank {worst.rank}: "
            f"compute={worst.compute:.9f} + transfer={worst.transfer:.9f}"
            f" + wait={worst.wait:.9f} != clock={worst.makespan:.9f} "
            f"(residual {worst.residual:.3e}, "
            f"wait residual {worst.wait_residual:.3e}, tol {self.tol:g})"
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "ok": self.ok,
            "tol": self.tol,
            "max_residual": self.max_residual,
            "max_wait_residual": self.max_wait_residual,
            "ranks": [
                {"rank": r.rank, "compute": r.compute,
                 "transfer": r.transfer, "wait": r.wait,
                 "classified_wait": r.classified_wait,
                 "clock": r.makespan, "residual": r.residual}
                for r in self.rows
            ],
        }


def conservation(obs: Any, clocks: Sequence[float], tol: float = 1e-9,
                 waits: list[WaitState] | None = None) -> ConservationReport:
    """Check compute+transfer+wait == final clock on every rank.

    ``clocks`` is the per-rank final-clock list from the run result.
    Also cross-checks that the classified wait states
    (:func:`classify_waits`, minus :data:`EARLY_SENDER` entries) sum to
    each rank's accounted wait, so the classifier provably covers every
    idle second. Pass precomputed ``waits`` to avoid reclassifying.
    """
    accounts = obs.causal.accounts()
    if waits is None:
        waits = classify_waits(obs)
    classified: dict[int, float] = {}
    for w in waits:
        if w.category != EARLY_SENDER:
            classified[w.rank] = classified.get(w.rank, 0.0) + w.seconds
    rows: list[ConservationRow] = []
    for rank, clock in enumerate(clocks):
        acct = accounts.get(rank)
        if acct is None:
            acct = RankAccount(rank)
        rows.append(ConservationRow(
            rank, acct.compute, acct.transfer, acct.wait,
            classified.get(rank, 0.0), clock,
        ))
    return ConservationReport(tuple(rows), tol)
