"""Flight recorder: a bounded per-rank ring buffer of recent events.

Full span tracing keeps every event alive for later analysis; a flight
recorder keeps only the last ``capacity`` events *per rank*, so it can
stay on permanently -- when a run deadlocks, validates wrong, or is
mysteriously slow, the tail of each rank's activity is available for a
post-mortem without having paid full-trace memory.

Events are whatever the producers feed it: message sends/receives and
collectives (from :class:`repro.simmpi.engine.Engine`), span begin/end
markers (from :class:`repro.obs.ObsContext`).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class FlightEvent:
    """One ring-buffer entry."""

    vtime: float
    rank: int
    kind: str  # "send", "recv", "coll", "span_begin", "span_end", ...
    name: str
    detail: tuple[tuple[str, object], ...] = ()  # sorted (key, value)

    def to_dict(self) -> dict[str, object]:
        d: dict[str, object] = {"vtime": self.vtime, "rank": self.rank,
                                "kind": self.kind, "name": self.name}
        d.update(dict(self.detail))
        return d


class FlightRecorder:
    """Per-rank bounded ring buffers of :class:`FlightEvent`.

    ``capacity`` is per rank; the oldest events are evicted first.
    Appends and snapshots both take the recorder lock: a rank's ring
    may be *read* (post-mortem dump, live inspection) while other
    ranks' threads are still appending, and iterating a deque that is
    mutated concurrently raises ``RuntimeError``, so :meth:`events`
    must copy under the same lock the writers hold.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._rings: dict[int, deque[FlightEvent]] = {}
        self._lock = threading.Lock()

    def set_capacity(self, capacity: int) -> None:
        """Re-bound every ring to ``capacity`` events per rank.

        Existing rings keep their newest events (a shrink evicts from
        the old end, like normal ring overflow). Configured from
        :class:`~repro.lowfive.config.CostConfig.flight_capacity` when
        a VOL attaches to the machine.
        """
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        with self._lock:
            if capacity == self.capacity:
                return
            self.capacity = capacity
            self._rings = {r: deque(ring, maxlen=capacity)
                           for r, ring in self._rings.items()}

    def record(self, rank: int, vtime: float, kind: str, name: str,
               **detail: object) -> None:
        """Append one event to ``rank``'s ring (evicting the oldest)."""
        self.append(rank, vtime, kind, name, tuple(sorted(detail.items())))

    def append(self, rank: int, vtime: float, kind: str, name: str,
               detail: tuple[tuple[str, object], ...] = ()) -> None:
        """Fast-path append: ``detail`` is an already key-sorted tuple
        of ``(key, value)`` pairs.

        Per-message producers (``Engine.record`` / ``Engine.deliver``)
        build the tuple literally in key order, skipping the kwargs
        dict and the sort that :meth:`record` pays on every call.
        """
        ev = FlightEvent(vtime, rank, kind, name, detail)
        with self._lock:
            ring = self._rings.get(rank)
            if ring is None:
                ring = self._rings[rank] = deque(maxlen=self.capacity)
            ring.append(ev)

    def events(self, rank: int | None = None) -> list[FlightEvent]:
        """Retained events of one rank (or all ranks, time-ordered)."""
        with self._lock:
            if rank is not None:
                return list(self._rings.get(rank, ()))
            rings = [list(ring) for ring in self._rings.values()]
        out: list[FlightEvent] = []
        for ring in rings:
            out.extend(ring)
        out.sort(key=lambda e: (e.vtime, e.rank))
        return out

    def ranks(self) -> list[int]:
        """Ranks that have recorded at least one event."""
        with self._lock:
            return sorted(self._rings)

    def dump(self) -> dict[int, list[dict[str, object]]]:
        """JSON-able post-mortem dump: ``{rank: [event dicts]}``."""
        return {r: [e.to_dict() for e in self.events(r)]
                for r in self.ranks()}
