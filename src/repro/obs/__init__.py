"""Unified observability: metrics, spans, trace export, flight recorder.

One :class:`ObsContext` per simulated machine (the
:class:`~repro.simmpi.engine.Engine` owns it) collects telemetry from
every layer -- simmpi messages and collectives, LowFive transport
phases, PFS I/O, workflow tasks -- behind a single API:

- :mod:`repro.obs.metrics` -- thread-safe counters/gauges/histograms
  keyed by ``(name, labels)`` with associative snapshot merging;
- :mod:`repro.obs.spans` -- virtual-clock span tracing with
  parent/child links;
- :mod:`repro.obs.recorder` -- a bounded per-rank flight recorder for
  post-mortems without full-trace overhead;
- :mod:`repro.obs.causal` -- message flow edges, collective straggler
  records, per-rank compute/transfer/wait ledgers and the wait-state
  classifier with its conservation check;
- :mod:`repro.obs.critpath` -- exact critical-path extraction through
  the virtual timeline with per-category/per-phase breakdowns;
- :mod:`repro.obs.export` -- Chrome/Perfetto ``trace_event`` JSON
  (including ``s``/``f`` flow arrows for message edges) and plain-dict
  metrics dumps;
- :mod:`repro.obs.series` -- bounded-memory virtual-clock time series
  (windowed min/max/mean aggregates, mergeable across ranks);
- :mod:`repro.obs.ledger` -- persistent per-run manifests
  (:class:`~repro.obs.ledger.RunRecord`) in a JSONL ledger plus the
  unified cross-run drift comparator behind ``repro.tools regress``;
- :mod:`repro.obs.noop` -- a disabled drop-in context for measuring
  telemetry overhead.

Instrumentation points reach the context through their communicator::

    from repro.obs import span

    with span(comm, "lowfive.query", cat="lowfive", dataset=path):
        ...  # measured in virtual time, nested under enclosing spans
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from contextlib import AbstractContextManager, contextmanager, nullcontext
from typing import Any, cast

from repro.obs.causal import (
    CausalRecorder,
    CollectiveRecord,
    ConservationReport,
    FlowEdge,
    RankAccount,
    WaitState,
    classify_waits,
    conservation,
)
from repro.obs.critpath import (
    CausalReport,
    CriticalPath,
    Segment,
    analyze,
    critical_path,
)
from repro.obs.export import (
    chrome_trace,
    metrics_dump,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    BoundCounter,
    MetricsRegistry,
    MetricsSnapshot,
    merge_snapshots,
)
from repro.obs.ledger import (
    Ledger,
    RunRecord,
    check_reference,
    compare_runs,
    record_from_result,
)
from repro.obs.noop import NullObsContext
from repro.obs.recorder import FlightEvent, FlightRecorder
from repro.obs.series import (
    BoundSeries,
    SeriesRecorder,
    SeriesSnapshot,
    SeriesValue,
    series_dump,
)
from repro.obs.spans import InstantEvent, SpanEvent, SpanRecorder
from repro.obs.streamstat import StreamEvent, StreamLedger

__all__ = [
    "ObsContext",
    "obs_of",
    "span",
    "BoundCounter",
    "MetricsRegistry",
    "MetricsSnapshot",
    "merge_snapshots",
    "SpanRecorder",
    "SpanEvent",
    "InstantEvent",
    "FlightRecorder",
    "FlightEvent",
    "StreamLedger",
    "StreamEvent",
    "CausalRecorder",
    "FlowEdge",
    "CollectiveRecord",
    "RankAccount",
    "WaitState",
    "classify_waits",
    "conservation",
    "ConservationReport",
    "CausalReport",
    "CriticalPath",
    "Segment",
    "analyze",
    "critical_path",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "metrics_dump",
    "SeriesRecorder",
    "SeriesSnapshot",
    "SeriesValue",
    "BoundSeries",
    "series_dump",
    "Ledger",
    "RunRecord",
    "record_from_result",
    "compare_runs",
    "check_reference",
    "NullObsContext",
]


class ObsContext:
    """All telemetry of one simulated machine.

    Parameters
    ----------
    flight_capacity:
        Per-rank ring-buffer size of the always-on flight recorder.
    """

    def __init__(self, flight_capacity: int = 256) -> None:
        self.metrics = MetricsRegistry()
        self.spans = SpanRecorder()
        self.flight = FlightRecorder(flight_capacity)
        #: Flow edges, collective records and per-rank time ledgers.
        self.causal = CausalRecorder()
        #: Epoch-lifecycle events of streaming pipelines.
        self.stream = StreamLedger()
        #: Bounded virtual-time series of the hot gauges.
        self.series = SeriesRecorder()
        self._rank_tasks: dict[int, str] = {}

    # -- task topology (pid/tid mapping for export) ------------------------

    def set_task(self, task: str, world_ranks: Iterable[int]) -> None:
        """Declare that ``world_ranks`` belong to workflow task ``task``."""
        for r in world_ranks:
            self._rank_tasks[r] = task

    def task_of(self, rank: int) -> str | None:
        """The task owning world rank ``rank`` (or ``None``)."""
        return self._rank_tasks.get(rank)

    def rank_tasks(self) -> dict[int, str]:
        """Copy of the world-rank -> task-name map."""
        return dict(self._rank_tasks)

    # -- sampling ----------------------------------------------------------

    def sample(self, name: str, t: float, value: float, *,
               rank: object = None, volatile: bool = False,
               **labels: object) -> None:
        """Record ``value`` as both a point-in-time gauge and a window
        of the virtual-time series ``name``.

        ``volatile=True`` marks series whose values depend on real
        thread interleaving (e.g. mailbox depth sampled at delivery);
        they are kept out of deterministic run digests.
        """
        if rank is not None:
            labels["rank"] = rank
        self.metrics.set(name, value, **labels)
        self.series.record(name, t, value, volatile=volatile, **labels)

    # -- fault annotations --------------------------------------------------

    def fault(self, rank: int, t: float, kind: str,
              **labels: object) -> None:
        """Account one injected fault on ``rank`` at virtual time ``t``.

        Bumps the ``faults.injected`` counter (labelled by ``kind`` and
        rank) and drops an instant event into the span stream so the
        injection shows up in the exported Perfetto trace.
        """
        self.metrics.inc("faults.injected", 1, kind=kind, rank=rank)
        self.spans.instant(f"fault.{kind}", "faults", rank, t, labels)
        self.flight.record(rank, t, "fault", kind)

    # -- span production ---------------------------------------------------

    @contextmanager
    def span(self, comm: Any, name: str, cat: str = "",
             **labels: object) -> Iterator[Any]:
        """Measure a region of ``comm``'s calling rank in virtual time.

        Yields the open-span handle. No-op when ``comm`` is None (code
        running outside a simulated machine).
        """
        if comm is None:
            yield None
            return
        rank = comm.world_rank(comm.rank)
        t0 = comm.vtime
        handle = self.spans.begin(rank, name, cat, t0, labels)
        self.flight.record(rank, t0, "span_begin", name)
        try:
            yield handle
        finally:
            t1 = comm.vtime
            self.spans.end(handle, t1)
            self.flight.record(rank, t1, "span_end", name)

    # -- export ------------------------------------------------------------

    def chrome_trace(self, events: Iterable[Any] = ()) -> dict[str, object]:
        """Chrome ``trace_event`` document (see :mod:`repro.obs.export`)."""
        return chrome_trace(self, events)

    def write_chrome_trace(self, path: str,
                           events: Iterable[Any] = ()) -> dict[str, object]:
        """Export the trace as JSON at ``path``."""
        return write_chrome_trace(path, self, events)


def obs_of(comm: Any) -> ObsContext | None:
    """The :class:`ObsContext` reachable from ``comm`` (or ``None``)."""
    if comm is None:
        return None
    engine = getattr(comm, "engine", None)
    return cast("ObsContext | None", getattr(engine, "obs", None))


def span(comm: Any, name: str, cat: str = "",
         **labels: object) -> AbstractContextManager[Any]:
    """Context manager measuring a span on ``comm``'s calling rank.

    Resolves the machine's :class:`ObsContext` through the
    communicator; degrades to a no-op when there is none (plain
    single-process code).
    """
    obs = obs_of(comm)
    if obs is None:
        return nullcontext()
    return obs.span(comm, name, cat, **labels)
