"""Epoch-lifecycle ledger for streaming pipelines.

Every stream event -- a producer publishing or retiring an epoch, a
consumer acquiring or releasing one -- is recorded here with its
virtual time and world rank. The analyzer's retained-epoch leak check
reads :meth:`StreamLedger.open_acquisitions`; the backpressure
property tests read the queue depth carried on publish/drop events.

Releases are *cumulative high-water marks* (a release of epoch ``e``
covers every epoch ``<= e``), matching the wire protocol.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass(frozen=True)
class StreamEvent:
    """One epoch-lifecycle event.

    ``depth`` is the publisher's live-epoch queue depth right after
    the event (publish/drop only; -1 elsewhere).
    """

    kind: str  # "publish" | "acquire" | "release" | "drop"
    stream: str
    epoch: int
    rank: int  # world rank
    t: float
    depth: int = -1

    def to_dict(self) -> dict:
        d = {"kind": self.kind, "stream": self.stream,
             "epoch": self.epoch, "rank": self.rank, "t": self.t}
        if self.depth >= 0:
            d["depth"] = self.depth
        return d


@dataclass
class StreamLedger:
    """Thread-safe append log of :class:`StreamEvent`."""

    _events: list = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def _add(self, ev: StreamEvent) -> None:
        with self._lock:
            self._events.append(ev)

    def publish(self, stream: str, epoch: int, rank: int, t: float,
                depth: int) -> None:
        """Producer ``rank`` made ``epoch`` live; ``depth`` live now."""
        self._add(StreamEvent("publish", stream, epoch, rank, t, depth))

    def acquire(self, stream: str, epoch: int, rank: int,
                t: float) -> None:
        """Consumer ``rank`` opened ``epoch`` for reading."""
        self._add(StreamEvent("acquire", stream, epoch, rank, t))

    def release(self, stream: str, epoch: int, rank: int,
                t: float) -> None:
        """Consumer ``rank`` released every epoch ``<= epoch``."""
        self._add(StreamEvent("release", stream, epoch, rank, t))

    def drop(self, stream: str, epoch: int, rank: int, t: float,
             depth: int = -1) -> None:
        """Server ``rank`` retired ``epoch`` (released by everyone)."""
        self._add(StreamEvent("drop", stream, epoch, rank, t, depth))

    # -- combining ---------------------------------------------------------

    def snapshot(self) -> "StreamLedger":
        """Immutable-by-convention copy of the current event log."""
        with self._lock:
            return StreamLedger(list(self._events))

    def merge(self, other: "StreamLedger") -> "StreamLedger":
        """Union of two ledgers' events.

        Events are frozen and hashable, so a shared event recorded by
        both sides (e.g. ledgers snapshotted from the same machine)
        dedups instead of double-counting; queries re-sort, so merge
        order never matters.
        """
        with self._lock:
            mine = list(self._events)
        with other._lock:
            theirs = list(other._events)
        seen = set(mine)
        out = mine + [e for e in theirs if e not in seen]
        return StreamLedger(out)

    # -- queries -----------------------------------------------------------

    def events(self, stream: str | None = None,
               kind: str | None = None) -> list[StreamEvent]:
        """Events in deterministic virtual-time order."""
        with self._lock:
            evs = list(self._events)
        if stream is not None:
            evs = [e for e in evs if e.stream == stream]
        if kind is not None:
            evs = [e for e in evs if e.kind == kind]
        evs.sort(key=lambda e: (e.t, e.stream, e.epoch, e.rank, e.kind))
        return evs

    def streams(self) -> list[str]:
        """Names of every stream that produced events."""
        with self._lock:
            return sorted({e.stream for e in self._events})

    def max_depth(self, stream: str | None = None) -> int:
        """Largest live-epoch queue depth ever recorded (-1: none)."""
        depths = [e.depth for e in self.events(stream)
                  if e.kind in ("publish", "drop") and e.depth >= 0]
        return max(depths, default=-1)

    def open_acquisitions(self) -> list[tuple[str, int, int]]:
        """``(stream, epoch, rank)`` acquired but never released.

        A release is cumulative, so an acquisition of epoch ``e`` by
        rank ``r`` is open iff no release event of the same stream and
        rank has ``epoch >= e``.
        """
        hwm: dict[tuple[str, int], int] = {}
        acq: dict[tuple[str, int], set[int]] = {}
        for e in self.events():
            key = (e.stream, e.rank)
            if e.kind == "acquire":
                acq.setdefault(key, set()).add(e.epoch)
            elif e.kind == "release":
                hwm[key] = max(hwm.get(key, -1), e.epoch)
        return sorted(
            (stream, epoch, rank)
            for (stream, rank), epochs in acq.items()
            for epoch in epochs
            if epoch > hwm.get((stream, rank), -1)
        )
