"""Exporters: Chrome/Perfetto ``trace_event`` JSON and metrics dumps.

The Chrome trace format (loadable in ``chrome://tracing``, Perfetto, or
speedscope) maps naturally onto a workflow run: one *pid* per task, one
*tid* per rank, virtual-clock seconds as microsecond timestamps. Spans
become complete (``"ph": "X"``) events; point-to-point trace events and
recorded instants become instant (``"ph": "i"``) events; task and rank
names ride along as metadata (``"ph": "M"``) events; causal flow edges
(matched send -> recv pairs) become flow start/finish
(``"ph": "s"`` / ``"ph": "f"``) pairs, which Perfetto renders as
arrows between the sender's and receiver's tracks.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from typing import Any

from repro.obs.metrics import MetricsRegistry, MetricsSnapshot

#: Virtual seconds -> Chrome trace microseconds.
_US = 1e6

#: pid used for ranks that belong to no declared task.
WORLD_PID = 0


def _pids(obs: Any) -> dict[str, int]:
    """Task name -> pid (1-based, in task-declaration order)."""
    tasks: list[str] = []
    for task in obs.rank_tasks().values():
        if task not in tasks:
            tasks.append(task)
    return {t: i + 1 for i, t in enumerate(tasks)}


def chrome_trace(obs: Any, events: Iterable[Any] = ()) -> dict[str, object]:
    """Build a Chrome ``trace_event`` document from an
    :class:`~repro.obs.ObsContext` plus optional legacy
    :class:`~repro.simmpi.engine.TraceEvent` records.

    Returns a plain dict; dump it with ``json.dump`` or use
    :func:`write_chrome_trace`.
    """
    pids = _pids(obs)
    rank_tasks = obs.rank_tasks()

    def pid_of(rank: int) -> int:
        return pids.get(rank_tasks.get(rank), WORLD_PID)

    out: list[dict[str, object]] = []
    seen_threads: set[tuple[int, int]] = set()

    def thread_meta(rank: int) -> None:
        pid = pid_of(rank)
        if (pid, rank) in seen_threads:
            return
        seen_threads.add((pid, rank))
        out.append({"ph": "M", "name": "thread_name", "pid": pid,
                    "tid": rank, "args": {"name": f"rank {rank}"}})

    for task, pid in pids.items():
        out.append({"ph": "M", "name": "process_name", "pid": pid,
                    "tid": 0, "args": {"name": task}})
    out.append({"ph": "M", "name": "process_name", "pid": WORLD_PID,
                "tid": 0, "args": {"name": "world"}})

    for s in obs.spans.spans():
        thread_meta(s.rank)
        args = dict(s.labels)
        args["span_id"] = s.span_id
        if s.parent_id is not None:
            args["parent_id"] = s.parent_id
        out.append({
            "ph": "X", "name": s.name, "cat": s.cat or "span",
            "ts": s.t0 * _US, "dur": max(0.0, s.duration) * _US,
            "pid": pid_of(s.rank), "tid": s.rank, "args": args,
        })

    for i in obs.spans.instants():
        thread_meta(i.rank)
        out.append({
            "ph": "i", "s": "t", "name": i.name, "cat": i.cat or "instant",
            "ts": i.t * _US, "pid": pid_of(i.rank), "tid": i.rank,
            "args": dict(i.labels),
        })

    for e in events:
        thread_meta(e.rank)
        out.append({
            "ph": "i", "s": "t", "name": e.label or e.kind, "cat": "simmpi",
            "ts": e.vtime * _US, "pid": pid_of(e.rank), "tid": e.rank,
            "args": {"kind": e.kind, "peer": e.peer, "tag": e.tag,
                     "nbytes": e.nbytes},
        })

    causal = getattr(obs, "causal", None)
    if causal is not None:
        for edge in causal.edges():
            thread_meta(edge.src)
            thread_meta(edge.dst)
            name = f"msg tag={edge.tag}"
            out.append({
                "ph": "s", "id": edge.msg_id, "name": name, "cat": "flow",
                "ts": edge.t_post * _US, "pid": pid_of(edge.src),
                "tid": edge.src,
                "args": {"tag": edge.tag, "nbytes": edge.nbytes,
                         "comm": edge.comm_id},
            })
            out.append({
                "ph": "f", "bp": "e", "id": edge.msg_id, "name": name,
                "cat": "flow", "ts": edge.t_recv * _US,
                "pid": pid_of(edge.dst), "tid": edge.dst,
            })

    other: dict[str, object] = {"clock": "virtual",
                                "metrics": metrics_dump(obs.metrics)}
    series = getattr(obs, "series", None)
    if series is not None:
        dumped = series.to_dict()
        if dumped:
            other["series"] = dumped
    return {"traceEvents": out, "displayTimeUnit": "ms",
            "otherData": other}


def write_chrome_trace(path: str, obs: Any,
                       events: Iterable[Any] = ()) -> dict[str, object]:
    """Export ``obs`` (plus legacy events) as JSON at ``path``."""
    doc = chrome_trace(obs, events)
    with open(path, "w") as f:
        json.dump(doc, f, indent=None, separators=(",", ":"))
    return doc


def validate_chrome_trace(doc: object) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed trace.

    Checks the envelope and the per-event required fields for the
    phases this exporter emits (``X``, ``i``, ``M``, and the flow pair
    ``s``/``f``).
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("missing traceEvents")
    if not isinstance(doc["traceEvents"], list):
        raise ValueError("traceEvents must be a list")
    for ev in doc["traceEvents"]:
        if not isinstance(ev, dict):
            raise ValueError(f"event is not an object: {ev!r}")
        ph = ev.get("ph")
        if ph not in ("X", "i", "M", "s", "f"):
            raise ValueError(f"unsupported phase {ph!r}")
        for k in ("name", "pid", "tid"):
            if k not in ev:
                raise ValueError(f"event missing {k!r}: {ev!r}")
        if ph == "X":
            if "ts" not in ev or "dur" not in ev:
                raise ValueError(f"X event missing ts/dur: {ev!r}")
            if ev["dur"] < 0:
                raise ValueError(f"negative duration: {ev!r}")
        if ph == "i" and "ts" not in ev:
            raise ValueError(f"i event missing ts: {ev!r}")
        if ph in ("s", "f"):
            if "ts" not in ev or "id" not in ev:
                raise ValueError(f"flow event missing ts/id: {ev!r}")
    json.dumps(doc)  # must be serializable as-is


def metrics_dump(metrics: object) -> dict[str, dict[str, object]]:
    """Plain-dict dump of a registry or snapshot (JSON-able)."""
    if isinstance(metrics, MetricsRegistry):
        metrics = metrics.snapshot()
    if isinstance(metrics, MetricsSnapshot):
        return metrics.to_dict()
    raise TypeError(f"cannot dump metrics from {type(metrics).__name__}")
