"""Wait-for-graph deadlock explanation.

When the engine's real-time watchdog fires it knows only that *this*
rank made no progress; the interesting question is what the whole
machine was doing. Every blocked wait now publishes a
:class:`~repro.simmpi.WaitDesc` (what kind of wait, on which
communicator, which ranks could release it), so the explainer can
build the wait-for graph rank -> potential wakers, walk it for a
cycle, and render both the cycle and the full per-rank wait table.

Everything here is **lock-free by design**: the caller is a rank that
just timed out inside its own condition wait, and other ranks may be
blocked holding arbitrary conditions. ``wait_desc`` is a single
attribute read (atomic under the GIL), clocks are plain floats, and
no Proc lock is ever taken -- a diagnostic that could itself deadlock
would be worse than none.
"""

from __future__ import annotations

from typing import Any


def _spec_of(desc: Any) -> str:
    """Human-readable wait spec of one blocked rank."""
    if desc.kind == "collective":
        return f"collective {desc.detail} (comm {desc.comm_id})"
    if desc.kind == "serve":
        lanes = ", ".join(f"(comm {c}, tag {t})"
                          for c, _s, t in desc.lanes)
        return f"serve loop on lanes {lanes or '-'}"
    return (f"{desc.kind} (comm {desc.comm_id}, source {desc.source}, "
            f"tag {desc.tag})")


def wait_for_graph(
        engine: Any) -> dict[int, tuple[Any, tuple[int, ...]]]:
    """Snapshot ``rank -> (WaitDesc, wakers)`` for every blocked rank.

    ``wakers`` is the tuple of world ranks whose action could release
    the wait (``desc.senders``, or every other rank when the desc does
    not name its senders). Lock-free: descs are read once and may be a
    moment stale, which is fine for a post-mortem diagnostic.
    """
    graph: dict[int, tuple[Any, tuple[int, ...]]] = {}
    nprocs = engine.nprocs
    for p in engine.procs:
        if p.done:
            continue
        desc = p.wait_desc  # atomic attribute read
        if desc is None:
            continue
        wakers = desc.senders
        if wakers is None:
            wakers = tuple(r for r in range(nprocs) if r != p.rank)
        graph[p.rank] = (desc, tuple(wakers))
    return graph


def find_cycle(
        graph: dict[int, tuple[Any, tuple[int, ...]]],
) -> list[int] | None:
    """A cycle of mutually-waiting ranks, or ``None``.

    Edges run from a blocked rank to each potential waker that is
    itself blocked. Deterministic: ranks and wakers are explored in
    ascending order, so the same snapshot always yields the same
    cycle.
    """
    state: dict[int, int] = {}  # 0 visiting, 1 done
    stack: list[int] = []

    def visit(r: int) -> list[int] | None:
        state[r] = 0
        stack.append(r)
        for w in sorted(graph[r][1]):
            if w not in graph:
                continue
            if state.get(w) == 0:
                return stack[stack.index(w):] + [w]
            if w not in state:
                cyc = visit(w)
                if cyc is not None:
                    return cyc
        state[r] = 1
        stack.pop()
        return None

    for r in sorted(graph):
        if r not in state:
            cyc = visit(r)
            if cyc is not None:
                return cyc
    return None


def explain_deadlock(engine: Any) -> str:
    """Render the machine's wait-for state for a DeadlockError.

    Returns an empty string when nothing is blocked (the timeout was
    starvation, not a deadlock). Never takes a lock and never raises
    on a half-torn-down engine beyond what the caller already guards.
    """
    graph = wait_for_graph(engine)
    if not graph:
        return ""
    lines = ["blocked ranks:"]
    for r in sorted(graph):
        desc, _wakers = graph[r]
        clock = engine.procs[r].clock
        lines.append(f"  rank {r} @ {clock:.9f}s: waiting for "
                     f"{_spec_of(desc)}")
    cycle = find_cycle(graph)
    if cycle is not None:
        path = " -> ".join(str(r) for r in cycle)
        lines.append(f"wait-for cycle: {path}")
        for r in cycle[:-1]:
            desc, _ = graph[r]
            lines.append(f"  rank {r} blocks on {_spec_of(desc)}")
    else:
        lines.append("no wait-for cycle among blocked ranks (some rank "
                     "is runnable but starved, or a peer exited without "
                     "sending what this rank waits for)")
    return "\n".join(lines)
