"""repro.analyze -- schedule analysis and virtual-time lint.

Two halves, one purpose: trust the simulated schedules.

**Dynamic** (needs a recorded run's ``Observability``): vector clocks
derived from the causal trace (:mod:`repro.analyze.vclock`), a
wildcard-receive race detector (:mod:`repro.analyze.races`),
collective-mismatch, message-leak and stream-epoch-leak checks
(:mod:`repro.analyze.checks`), and a wait-for-graph deadlock explainer
(:mod:`repro.analyze.deadlock`) that the engine folds into every
``DeadlockError``. :func:`analyze_obs` runs the full battery.

**Static** (needs only source text): the ANL00x lint rules
(:mod:`repro.analyze.lint`) that keep wall-clock reads, dropped
request handles, raw thread primitives and float clock equality out of
virtual-time code, and the PRO00x protocol verifier
(:mod:`repro.analyze.proto`) that proves collective agreement,
point-to-point matching, deadlock freedom and handle hygiene of
rank-body code for every rank and branch -- before anything runs.

Command line: ``python -m repro.tools analyze`` / ``... lint`` /
``... proto``.
"""

from __future__ import annotations

from typing import Any

from repro.analyze.checks import (
    check_collectives,
    check_leaks,
    check_stream_leaks,
)
from repro.analyze.deadlock import explain_deadlock, find_cycle, wait_for_graph
from repro.analyze.finding import (
    COLLECTIVE_MISMATCH,
    EPOCH_LEAK,
    FINDING_KINDS,
    Finding,
    MESSAGE_LEAK,
    WILDCARD_RACE,
    msg_label,
)
from repro.analyze.lint import RULES, Violation, lint_paths, lint_source
from repro.analyze.proto import (
    PROTO_RULES,
    ProtoFinding,
    check_paths as check_proto_paths,
    check_source as check_proto_source,
)
from repro.analyze.races import find_races
from repro.analyze.vclock import (
    HBRelation,
    TraceInconsistency,
    build_happens_before,
    concurrent,
    happens_before,
)

__all__ = [
    "COLLECTIVE_MISMATCH",
    "EPOCH_LEAK",
    "FINDING_KINDS",
    "Finding",
    "HBRelation",
    "MESSAGE_LEAK",
    "PROTO_RULES",
    "ProtoFinding",
    "RULES",
    "TraceInconsistency",
    "Violation",
    "WILDCARD_RACE",
    "analyze_obs",
    "build_happens_before",
    "check_collectives",
    "check_leaks",
    "check_proto_paths",
    "check_proto_source",
    "check_stream_leaks",
    "concurrent",
    "explain_deadlock",
    "find_cycle",
    "find_races",
    "happens_before",
    "lint_paths",
    "lint_source",
    "msg_label",
    "wait_for_graph",
]


def analyze_obs(obs: Any, nranks: int | None = None) -> list[Finding]:
    """Run every dynamic check over one recorded run.

    Returns all findings -- wildcard races, collective mismatches,
    message leaks and stream epoch leaks -- sorted by (kind, rank,
    summary) so repeated analyses of the same trace render identically.
    """
    hb = build_happens_before(obs, nranks)
    findings = (find_races(obs, nranks, hb=hb)
                + check_collectives(obs)
                + check_leaks(obs)
                + check_stream_leaks(obs))
    findings.sort(key=lambda f: (f.kind, f.rank, f.summary))
    return findings
