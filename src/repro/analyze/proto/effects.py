"""Communication-effect extraction for the static protocol checker.

The :class:`Evaluator` walks expressions under an abstract environment
(:mod:`repro.analyze.proto.domain`) and emits :class:`Effect` records
for every communication-relevant call it can classify:

- point-to-point: ``send``/``isend``/``recv``/``irecv``/``sendrecv``/
  ``probe`` on a communicator object;
- collectives: ``barrier``/``bcast``/``reduce``/... (``epoch_barrier``
  normalizes to ``barrier``, matching what the dynamic layer records);
- handle lifecycles: ``repro.h5.File(...)`` opens, ``.close()``
  closes, stream ``next_epoch()`` acquires, ``retain``/``release``;
- ``opaque``: a communicator / task context escaping into a call the
  checker cannot see through -- the signal for the closed-world rules
  to stand down rather than guess.

Everything is name-based (like the ANL lint): the checker never
imports the code under analysis.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analyze.proto import domain
from repro.analyze.proto.domain import Binding, Sym, SYM_TOP

#: Wildcard sentinel carried as a CONST :class:`Sym` value.
ANY = "<any>"
SYM_ANY = domain.const(ANY)

#: Dotted names resolving to the wildcard constants.
_ANY_SOURCE_NAMES = {"repro.simmpi.ANY_SOURCE", "ANY_SOURCE",
                     "repro.simmpi.message.ANY_SOURCE"}
_ANY_TAG_NAMES = {"repro.simmpi.ANY_TAG", "ANY_TAG",
                  "repro.simmpi.message.ANY_TAG"}

#: Import-resolved call targets that open an h5 file handle.
H5_FILE_TARGETS = {"repro.h5.File", "repro.h5.api.File", "h5.File"}

#: Method names that enter a collective rendezvous, mapped to the
#: operation kind the dynamic layer would record.
COLLECTIVES = {
    "barrier": "barrier", "epoch_barrier": "barrier", "bcast": "bcast",
    "reduce": "reduce", "allreduce": "allreduce",
    "allgather": "allgather", "alltoall": "alltoall",
    "alltoallv": "alltoall", "gather": "gather", "gatherv": "gather",
    "scatter": "scatter", "scatterv": "scatter", "scan": "scan",
    "exscan": "exscan", "reduce_scatter": "reduce_scatter",
    "split": "split", "dup": "dup",
}


@dataclass(frozen=True)
class CommRef:
    """Abstract handle on a communicator object."""

    key: str
    inter: bool = False


@dataclass(frozen=True)
class CtxRef:
    """Abstract handle on a workflow :class:`TaskContext`."""

    key: str = "ctx"


@dataclass(frozen=True)
class StreamRef:
    """Abstract handle on a stream producer/consumer."""

    role: str
    key: str = ""


@dataclass(frozen=True)
class HandleVal:
    """A freshly-opened resource handle (h5 file or stream epoch)."""

    res: str  # "h5" | "epoch"
    line: int


@dataclass(frozen=True)
class HandleRef:
    """Reference to a tracked open handle (interpreter-owned id)."""

    hid: int


@dataclass(frozen=True)
class RangeVal:
    """``range(...)`` value, kept symbolic for loop unrolling."""

    args: tuple[Sym, ...]


@dataclass(frozen=True)
class RaisesVal:
    """``pytest.raises(...)`` context: the body is *expected* to blow
    up, so resources opened inside it are not leak candidates."""


Value = object  # Sym | CommRef | CtxRef | StreamRef | HandleVal | ...


@dataclass(frozen=True)
class Effect:
    """One communication-relevant event observed on a path."""

    kind: str  # send recv coll request probe opaque
    line: int
    col: int = 0
    comm: str = ""
    inter: bool = False
    peer: Sym = SYM_TOP
    tag: Sym = SYM_TOP
    coll: str = ""
    detail: str = ""


@dataclass
class HandleEvent:
    """Open/close/retain/release on a handle variable (interpreter
    consumes these inline rather than storing them on the path)."""

    op: str  # open close retain release escape
    value: object = None
    line: int = 0


def dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _arg(call: ast.Call, pos: int, name: str) -> ast.expr | None:
    """Positional-or-keyword argument lookup."""
    if len(call.args) > pos \
            and not isinstance(call.args[pos], ast.Starred):
        return call.args[pos]
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


class Evaluator:
    """Abstract expression evaluation with effect emission.

    One evaluator is owned by one in-flight path; ``env`` maps local
    names to abstract values and is copied when paths fork.
    """

    def __init__(self, alias: dict[str, str],
                 binding: Binding | None = None) -> None:
        self.alias = alias
        self.binding = binding
        self.env: dict[str, Value] = {}
        self.effects: list[Effect] = []
        self.handle_events: list[HandleEvent] = []

    # -- helpers -----------------------------------------------------------

    def _resolve(self, name: str | None) -> str | None:
        if name is None:
            return None
        head, _, rest = name.partition(".")
        base = self.alias.get(head)
        if base is None:
            return name
        return f"{base}.{rest}" if rest else base

    def _emit(self, kind: str, node: ast.AST, **kw: object) -> None:
        eff = Effect(kind=kind, line=getattr(node, "lineno", 0),
                     col=getattr(node, "col_offset", 0),
                     **kw)  # type: ignore[arg-type]
        self.effects.append(eff)

    def _sym(self, node: ast.expr | None, default: Sym) -> Sym:
        if node is None:
            return default
        v = self.eval(node)
        return v if isinstance(v, Sym) else SYM_TOP

    # -- the evaluator ------------------------------------------------------

    def eval(self, node: ast.expr) -> Value:
        """Abstract value of ``node``; emits effects for calls seen."""
        if isinstance(node, ast.Constant):
            return domain.const(node.value)
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            resolved = self._resolve(node.id)
            if resolved in _ANY_SOURCE_NAMES | _ANY_TAG_NAMES:
                return SYM_ANY
            return SYM_TOP
        if isinstance(node, ast.Attribute):
            return self._attribute(node)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.BinOp):
            left = self._sym(node.left, SYM_TOP)
            right = self._sym(node.right, SYM_TOP)
            return domain.binop(node.op, left, right, self.binding)
        if isinstance(node, ast.UnaryOp):
            v = self._sym(node.operand, SYM_TOP)
            if isinstance(node.op, ast.USub) and v.kind == domain.CONST \
                    and isinstance(v.val, (int, float)) \
                    and not isinstance(v.val, bool):
                return domain.const(-v.val)
            return SYM_TOP
        if isinstance(node, (ast.Tuple, ast.List)):
            return tuple(self.eval(e) for e in node.elts)
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            a, b = self.eval(node.body), self.eval(node.orelse)
            return a if a == b else SYM_TOP
        if isinstance(node, ast.Compare) and len(node.ops) == 1:
            left = self._sym(node.left, SYM_TOP)
            right = self._sym(node.comparators[0], SYM_TOP)
            out = domain.compare(node.ops[0], left, right, self.binding)
            return SYM_TOP if out is None else domain.const(out)
        # Generic fallback: walk children for effect-bearing calls.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child)
            elif isinstance(child, (ast.comprehension,)):
                self.eval(child.iter)
                for cond in child.ifs:
                    self.eval(cond)
            elif isinstance(child, ast.keyword):
                self.eval(child.value)
        return SYM_TOP

    def _attribute(self, node: ast.Attribute) -> Value:
        base = self.eval(node.value)
        attr = node.attr
        if isinstance(base, CtxRef):
            if attr == "comm":
                return CommRef(f"{base.key}.comm")
            if attr == "world":
                return CommRef(f"{base.key}.world", inter=True)
            if attr == "rank":
                return domain.SYM_RANK
            if attr == "size":
                return domain.SYM_NPROCS
            return SYM_TOP
        if isinstance(base, CommRef):
            if attr == "rank":
                return domain.SYM_RANK if not base.inter else SYM_TOP
            if attr in ("size", "nprocs"):
                return domain.SYM_NPROCS if not base.inter else SYM_TOP
            return SYM_TOP
        # A bare ``something.rank`` / ``something.size`` in rank-body
        # style code still reads as rank identity for guard purposes.
        if attr == "rank" and isinstance(base, Sym) \
                and base.kind == domain.TOP \
                and _comm_like(node.value):
            return domain.SYM_RANK
        return SYM_TOP

    def _call(self, node: ast.Call) -> Value:
        func = node.func
        # Method calls on abstract objects.
        if isinstance(func, ast.Attribute):
            obj = self.eval(func.value)
            out = self._method(node, obj, func.attr)
            if out is not None:
                return out
        # Plain calls resolved through imports.
        target = self._resolve(dotted(func))
        if target == "range" and 1 <= len(node.args) <= 3 \
                and not node.keywords:
            return RangeVal(tuple(self._sym(a, SYM_TOP)
                                  for a in node.args))
        if target in H5_FILE_TARGETS:
            self._eval_args(node)
            return HandleVal("h5", node.lineno)
        if target == "pytest.raises":
            self._eval_args(node)
            return RaisesVal()
        # Unknown call: evaluate arguments, note comm/ctx escapes.
        self._eval_args(node, opaque_node=node)
        return SYM_TOP

    def _method(self, node: ast.Call, obj: Value,
                attr: str) -> Value | None:
        """Classify a method call; None = not ours, fall through."""
        if isinstance(obj, CommRef):
            return self._comm_method(node, obj, attr)
        if isinstance(obj, CtxRef):
            if attr == "intercomm":
                a = _arg(node, 0, "other")
                peer = self._sym(a, SYM_TOP)
                key = (peer.val if peer.kind == domain.CONST
                       else "?")
                return CommRef(f"inter:{key}", inter=True)
            if attr == "stream_producer":
                self._eval_args(node)
                return StreamRef("producer")
            if attr == "stream_consumer":
                self._eval_args(node)
                return StreamRef("consumer")
            if attr == "singleton":
                self._eval_args(node)
                return SYM_TOP
            self._eval_args(node, opaque_node=node)
            return SYM_TOP
        if isinstance(obj, StreamRef):
            if attr == "next_epoch":
                self._eval_args(node)
                return HandleVal("epoch", node.lineno)
            self._eval_args(node)
            return SYM_TOP
        if isinstance(obj, HandleRef):
            if attr in ("close", "release"):
                self.handle_events.append(
                    HandleEvent("close", obj, node.lineno))
                return domain.const(None)
            if attr == "retain":
                self.handle_events.append(
                    HandleEvent("retain", obj, node.lineno))
                return domain.const(None)
            self._eval_args(node)
            return SYM_TOP
        return None

    def _comm_method(self, node: ast.Call, comm: CommRef,
                     attr: str) -> Value:
        key, inter = comm.key, comm.inter
        if attr in ("send", "isend"):
            self._eval_args(node)
            self._emit("send", node, comm=key, inter=inter,
                       peer=self._sym(_arg(node, 1, "dest"), SYM_TOP),
                       tag=self._sym(_arg(node, 2, "tag"),
                                     domain.const(0)))
            if attr == "isend":
                self._emit("request", node, comm=key, detail="isend")
            return SYM_TOP
        if attr in ("recv", "irecv"):
            self._eval_args(node)
            self._emit("recv", node, comm=key, inter=inter,
                       peer=self._sym(_arg(node, 0, "source"), SYM_ANY),
                       tag=self._sym(_arg(node, 1, "tag"), SYM_ANY))
            if attr == "irecv":
                self._emit("request", node, comm=key, detail="irecv")
            return SYM_TOP
        if attr == "sendrecv":
            self._eval_args(node)
            self._emit("send", node, comm=key, inter=inter,
                       peer=self._sym(_arg(node, 1, "dest"), SYM_TOP),
                       tag=self._sym(_arg(node, 3, "sendtag"),
                                     domain.const(0)))
            self._emit("recv", node, comm=key, inter=inter,
                       peer=self._sym(_arg(node, 2, "source"), SYM_ANY),
                       tag=self._sym(_arg(node, 4, "recvtag"), SYM_ANY))
            return SYM_TOP
        if attr == "probe":
            self._eval_args(node)
            self._emit("probe", node, comm=key, inter=inter,
                       peer=self._sym(_arg(node, 0, "source"), SYM_ANY),
                       tag=self._sym(_arg(node, 1, "tag"), SYM_ANY))
            return SYM_TOP
        if attr in COLLECTIVES:
            self._eval_args(node)
            self._emit("coll", node, comm=key, inter=inter,
                       coll=COLLECTIVES[attr])
            if attr in ("split", "dup"):
                return CommRef(f"{key}.{attr}@{node.lineno}")
            return SYM_TOP
        if attr == "notify_remote":
            # Fan-out send to every remote-group rank (inter-task).
            self._eval_args(node)
            self._emit("send", node, comm=key, inter=True, peer=SYM_ANY,
                       tag=self._sym(_arg(node, 1, "tag"), SYM_TOP))
            return SYM_TOP
        if attr in ("compute", "charge_memcpy", "charge_pack_elements",
                    "world_rank"):
            self._eval_args(node)
            return SYM_TOP
        # Unknown communicator method: the comm did not escape (it is
        # the receiver), but arguments are still evaluated.
        self._eval_args(node)
        return SYM_TOP

    def _eval_args(self, node: ast.Call,
                   opaque_node: ast.Call | None = None) -> None:
        """Evaluate every argument; when ``opaque_node`` is given, a
        comm/ctx/stream value escaping into the call emits ``opaque``
        and a handle argument escapes the handle."""
        vals: list[Value] = []
        for a in node.args:
            if isinstance(a, ast.Starred):
                vals.append(self.eval(a.value))
            else:
                vals.append(self.eval(a))
        for kw in node.keywords:
            vals.append(self.eval(kw.value))
        flat: list[Value] = []
        for v in vals:
            if isinstance(v, tuple):
                flat.extend(v)
            else:
                flat.append(v)
        for v in flat:
            if isinstance(v, HandleRef):
                self.handle_events.append(
                    HandleEvent("escape", v, node.lineno))
            if opaque_node is not None \
                    and isinstance(v, (CommRef, CtxRef, StreamRef)):
                self._emit("opaque", opaque_node,
                           detail=dotted(opaque_node.func) or "call")


def _comm_like(node: ast.expr) -> bool:
    """Heuristic: does this expression smell like a communicator?"""
    name = dotted(node)
    if name is None:
        return False
    last = name.rsplit(".", 1)[-1]
    return "comm" in last.lower()


# -- guard classification ----------------------------------------------------

#: Decision kinds recorded on paths.
D_RANK = "rank"       # guard depends on the calling rank
D_UNIFORM = "uniform"  # guard uniform across ranks (nprocs, intervals)
D_UNKNOWN = "unknown"  # data-dependent guard
D_EXCEPT = "except"    # exception edge taken


@dataclass(frozen=True)
class GuardInfo:
    """Classification of one branch test."""

    decided: bool | None  # definite outcome, when decidable
    kind: str             # D_RANK / D_UNIFORM / D_UNKNOWN
    key: str              # canonical identity for consistency tracking
    flip: bool            # True when the key's polarity is inverted
    text: str             # rendering for witnesses
    stable: bool = False  # guard value cannot change along a path


_PURE_KINDS = (domain.CONST, domain.RANK, domain.NPROCS)


def _canon_side(sym: Sym, node: ast.expr) -> str:
    """Value-canonical rendering of one comparison side, so that
    ``me == 0`` and ``comm.rank == 0`` share one guard identity."""
    if sym.kind in (domain.RANK, domain.NPROCS):
        return f"<{sym.kind}{sym.off:+d}>"
    if sym.kind == domain.CONST:
        return f"<const:{sym.val!r}>"
    return ast.dump(node)


def _canon_compare(node: ast.Compare, left: Sym,
                   right: Sym) -> tuple[str, bool]:
    """Canonical (key, flip) for single-op comparisons, so ``rank != 0``
    and ``rank == 0`` (and ``<`` / ``>=`` pairs) share one identity."""
    op = node.ops[0]
    ls = _canon_side(left, node.left)
    rs = _canon_side(right, node.comparators[0])
    if isinstance(op, ast.Eq):
        return f"eq({ls},{rs})", False
    if isinstance(op, ast.NotEq):
        return f"eq({ls},{rs})", True
    if isinstance(op, ast.Lt):
        return f"lt({ls},{rs})", False
    if isinstance(op, ast.GtE):
        return f"lt({ls},{rs})", True
    if isinstance(op, ast.Gt):
        return f"lt({rs},{ls})", False
    if isinstance(op, ast.LtE):
        return f"lt({rs},{ls})", True
    return ast.dump(node), False


def classify_test(node: ast.expr, ev: Evaluator) -> GuardInfo:
    """Evaluate + classify a branch condition.

    Effects inside the condition (rare, but ``if comm.recv()[0]:`` is
    legal) are emitted on ``ev`` as a side effect of evaluation.
    """
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
        inner = classify_test(node.operand, ev)
        return GuardInfo(
            decided=None if inner.decided is None else not inner.decided,
            kind=inner.kind, key=inner.key, flip=not inner.flip,
            text=f"not {inner.text}", stable=inner.stable)

    text = ast.unparse(node) if hasattr(ast, "unparse") else "<guard>"
    if isinstance(node, ast.Compare) and len(node.ops) == 1:
        left = ev._sym(node.left, SYM_TOP)
        right = ev._sym(node.comparators[0], SYM_TOP)
        op = node.ops[0]
        decided: bool | None = None
        if isinstance(op, (ast.Is, ast.IsNot)):
            if left.kind == domain.CONST and right.kind == domain.CONST:
                same = left.val is right.val or left.val == right.val
                decided = same if isinstance(op, ast.Is) else not same
        else:
            decided = domain.compare(op, left, right, ev.binding)
        key, flip = _canon_compare(node, left, right)
        kind = D_UNKNOWN
        if domain.is_rankish(left) or domain.is_rankish(right):
            kind = D_RANK
        elif domain.NPROCS in (left.kind, right.kind) \
                or domain.INTERVAL in (left.kind, right.kind):
            kind = D_UNIFORM
        # A guard over rank/nprocs/constants only cannot change value
        # along a path, so its outcome may be cached for consistency.
        stable = left.kind in _PURE_KINDS and right.kind in _PURE_KINDS
        return GuardInfo(decided, kind, key, flip, text, stable)

    v = ev.eval(node)
    if isinstance(v, Sym):
        if v.kind == domain.CONST:
            return GuardInfo(bool(v.val), D_UNKNOWN, ast.dump(node),
                             False, text, stable=True)
        if v.kind == domain.RANK:
            # ``if rank:`` is a rank guard (truthiness of rank+off).
            return GuardInfo(None, D_RANK, f"truthy(<rank{v.off:+d}>)",
                             False, text, stable=True)
        if v.kind in (domain.NPROCS, domain.INTERVAL):
            return GuardInfo(None, D_UNIFORM, ast.dump(node), False,
                             text)
    return GuardInfo(None, D_UNKNOWN, ast.dump(node), False, text)
