"""repro.analyze.proto -- static communication-protocol verification.

The static twin of the dynamic analyzers: where ``analyze_obs``
certifies the one schedule that executed, this package proves protocol
properties of rank-body *code* for every rank and branch before a
single virtual second is simulated. Per-function CFGs
(:mod:`~repro.analyze.proto.cfg`) are abstractly interpreted
(:mod:`~repro.analyze.proto.interp`) over a symbolic rank/tag domain
(:mod:`~repro.analyze.proto.domain`), and the PRO00x rules
(:mod:`~repro.analyze.proto.rules`) compare the resulting path
effects:

========  ==========================================================
PRO001    Collective divergence: a collective reachable on one arm of
          a rank-dependent guard but not the other.
PRO002    Unmatched point-to-point: a send no reachable recv covers,
          or a recv nothing sends to.
PRO003    Static wait-for cycle in the replayed exchange (the static
          twin of the dynamic deadlock explainer).
PRO004    Handle/epoch leak: an h5 file or stream epoch opened but
          not closed/released on some path.
PRO005    Tag/comm type confusion: non-int tags/peers, or a match
          that only works across different communicators.
========  ==========================================================

Suppression mirrors the lint: a trailing ``# noqa: PRO00X`` silences
the line, :data:`DEFAULT_ALLOWLIST` silences rule/path pairs, and the
known-bad corpus under ``tests/analyze/proto_corpus/`` is excluded
from directory walks (it exists to be bad) while staying reachable as
an explicit file target.
"""

from __future__ import annotations

import ast
import os
from collections.abc import Iterable

from repro.analyze.proto.rules import (
    PROTO_RULES, ProtoFinding, STATIC_PROTOCOL, check_tree,
)

__all__ = [
    "PROTO_RULES", "ProtoFinding", "STATIC_PROTOCOL",
    "check_source", "check_paths", "DEFAULT_ALLOWLIST",
]

#: ``rule -> path suffixes`` where the rule does not apply.
DEFAULT_ALLOWLIST: dict[str, tuple[str, ...]] = {}

#: Directory fragments excluded from directory walks: fixture trees
#: that are intentionally protocol-broken.
EXCLUDED_DIR_FRAGMENTS = (
    "tests/analyze/proto_corpus",
)


def _suppressed_lines(source: str) -> set[tuple[str, int]]:
    """``(code, line)`` pairs silenced by ``# noqa`` comments."""
    out: set[tuple[str, int]] = set()
    for i, text in enumerate(source.splitlines(), start=1):
        if "# noqa" not in text:
            continue
        _, _, tail = text.partition("# noqa")
        tail = tail.strip()
        if tail.startswith(":"):
            for code in tail[1:].replace(",", " ").split():
                out.add((code.strip(), i))
        else:
            for code in PROTO_RULES:
                out.add((code, i))
    return out


def check_source(source: str, path: str,
                 skip: frozenset[str] = frozenset(),
                 ) -> list[ProtoFinding]:
    """Check one file's text; ``skip`` holds rule codes to ignore."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [ProtoFinding(
            rule="PRO000", path=path, line=exc.lineno or 0,
            col=exc.offset or 0, func="<module>",
            message=f"syntax error: {exc.msg}")]
    suppressed = _suppressed_lines(source)
    return [f for f in check_tree(tree, path)
            if f.rule not in skip
            and (f.rule, f.line) not in suppressed]


def _skip_for(path: str,
              allowlist: dict[str, tuple[str, ...]] | None,
              ) -> frozenset[str]:
    allowlist = DEFAULT_ALLOWLIST if allowlist is None else allowlist
    norm = path.replace(os.sep, "/")
    return frozenset(code for code, suffixes in allowlist.items()
                     if any(norm.endswith(s) for s in suffixes))


def _excluded(path: str) -> bool:
    norm = path.replace(os.sep, "/")
    return any(frag in norm for frag in EXCLUDED_DIR_FRAGMENTS)


def check_paths(paths: Iterable[str],
                allowlist: dict[str, tuple[str, ...]] | None = None,
                ) -> list[ProtoFinding]:
    """Check files and directory trees; returns sorted findings.

    Directory walks skip the known-bad corpus; naming a corpus file
    explicitly still checks it (that is how its tests assert on it).
    """
    files: list[str] = []
    for p in paths:
        if os.path.isdir(p):
            for root, _dirs, names in os.walk(p):
                files.extend(os.path.join(root, n) for n in names
                             if n.endswith(".py")
                             and not _excluded(os.path.join(root, n)))
        elif p.endswith(".py"):
            files.append(p)
    out: list[ProtoFinding] = []
    for f in sorted(set(files)):
        with open(f, encoding="utf-8") as fh:
            source = fh.read()
        out.extend(check_source(source, f, _skip_for(f, allowlist)))
    out.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return out
