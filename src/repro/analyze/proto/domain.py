"""Symbolic rank/tag/comm domain for the static protocol checker.

The abstract interpreter tracks every value as a :class:`Sym`:

========  ===========================================================
CONST     A known python constant (``0``, ``"grid"``, ``None``).
RANK      ``rank + off`` -- the calling rank's id plus a constant.
NPROCS    ``nprocs + off`` -- the communicator size plus a constant.
INTERVAL  An integer interval ``[lo, hi]`` (e.g. a loop variable over
          ``range(nprocs)`` when ``nprocs`` is not bound).
TOP       Anything else (unknown).
========  ===========================================================

This is deliberately tiny: it is exactly enough to resolve the guards
and address arithmetic that real rank bodies use (``if rank == 0:``,
``dest=(rank + 1) % nprocs``, ``tag=BASE + rank``), while everything
data-dependent collapses to TOP and forks the path instead of guessing.

Under a :class:`Binding` (concrete ``rank``/``nprocs``, used by the
closed-world rules), RANK/NPROCS symbols evaluate to plain ints and
the same arithmetic becomes exact.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

CONST = "const"
RANK = "rank"
NPROCS = "nprocs"
INTERVAL = "interval"
TOP = "top"


@dataclass(frozen=True)
class Sym:
    """One abstract value. ``val`` holds the constant for CONST,
    ``off`` the additive offset for RANK/NPROCS, ``lo``/``hi`` the
    INTERVAL bounds."""

    kind: str
    val: object = None
    off: int = 0
    lo: int = 0
    hi: int = 0

    def render(self) -> str:
        """Human form used in finding witnesses."""
        if self.kind == CONST:
            return repr(self.val)
        if self.kind == RANK:
            return f"rank{self.off:+d}" if self.off else "rank"
        if self.kind == NPROCS:
            return f"nprocs{self.off:+d}" if self.off else "nprocs"
        if self.kind == INTERVAL:
            return f"[{self.lo}..{self.hi}]"
        return "?"


SYM_TOP = Sym(TOP)
SYM_RANK = Sym(RANK)
SYM_NPROCS = Sym(NPROCS)


def const(value: object) -> Sym:
    """The CONST symbol for ``value``."""
    return Sym(CONST, val=value)


@dataclass(frozen=True)
class Binding:
    """Concrete ``rank``/``nprocs`` assignment for closed-world runs."""

    rank: int
    nprocs: int


def is_rankish(s: Sym) -> bool:
    """True when ``s`` depends on the calling rank's identity."""
    return s.kind == RANK


def evaluate(s: Sym, binding: Binding | None) -> object | None:
    """Concrete value of ``s`` under ``binding``, or None if unknown."""
    if s.kind == CONST:
        return s.val
    if binding is None:
        return None
    if s.kind == RANK:
        return binding.rank + s.off
    if s.kind == NPROCS:
        return binding.nprocs + s.off
    return None


def _as_int(s: Sym, binding: Binding | None) -> int | None:
    v = evaluate(s, binding)
    return v if isinstance(v, int) and not isinstance(v, bool) else None


def add(a: Sym, b: Sym, binding: Binding | None = None) -> Sym:
    """Abstract ``a + b``."""
    av, bv = _as_int(a, binding), _as_int(b, binding)
    if av is not None and bv is not None:
        return const(av + bv)
    if a.kind == CONST and b.kind == CONST \
            and isinstance(a.val, str) and isinstance(b.val, str):
        return const(a.val + b.val)
    for x, y in ((a, b), (b, a)):
        yv = _as_int(y, binding)
        if x.kind in (RANK, NPROCS) and yv is not None:
            return Sym(x.kind, off=x.off + yv)
        if x.kind == INTERVAL and yv is not None:
            return Sym(INTERVAL, lo=x.lo + yv, hi=x.hi + yv)
    return SYM_TOP


def sub(a: Sym, b: Sym, binding: Binding | None = None) -> Sym:
    """Abstract ``a - b``."""
    av, bv = _as_int(a, binding), _as_int(b, binding)
    if av is not None and bv is not None:
        return const(av - bv)
    if a.kind in (RANK, NPROCS) and bv is not None:
        return Sym(a.kind, off=a.off - bv)
    if a.kind == INTERVAL and bv is not None:
        return Sym(INTERVAL, lo=a.lo - bv, hi=a.hi - bv)
    if a.kind == b.kind and a.kind in (RANK, NPROCS):
        return const(a.off - b.off)
    return SYM_TOP


def binop(op: ast.operator, a: Sym, b: Sym,
          binding: Binding | None = None) -> Sym:
    """Abstract binary arithmetic; exact when both sides are concrete."""
    if isinstance(op, ast.Add):
        return add(a, b, binding)
    if isinstance(op, ast.Sub):
        return sub(a, b, binding)
    av, bv = _as_int(a, binding), _as_int(b, binding)
    if av is not None and bv is not None:
        try:
            if isinstance(op, ast.Mult):
                return const(av * bv)
            if isinstance(op, ast.Mod):
                return const(av % bv)
            if isinstance(op, ast.FloorDiv):
                return const(av // bv)
        except (ZeroDivisionError, ValueError):
            return SYM_TOP
    return SYM_TOP


def compare(op: ast.cmpop, a: Sym, b: Sym,
            binding: Binding | None = None) -> bool | None:
    """Abstract comparison: True/False when decidable, else None.

    Decidable cases: both sides concrete (possibly via ``binding``);
    RANK vs RANK / NPROCS vs NPROCS with offsets; an INTERVAL wholly
    on one side of a constant.
    """
    av, bv = evaluate(a, binding), evaluate(b, binding)
    if av is not None and bv is not None:
        try:
            if isinstance(op, ast.Eq):
                return bool(av == bv)
            if isinstance(op, ast.NotEq):
                return bool(av != bv)
            if isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE)):
                assert isinstance(av, (int, float)) \
                    and isinstance(bv, (int, float))
                if isinstance(op, ast.Lt):
                    return av < bv
                if isinstance(op, ast.LtE):
                    return av <= bv
                if isinstance(op, ast.Gt):
                    return av > bv
                return av >= bv
        except TypeError:
            return None
    if a.kind == b.kind and a.kind in (RANK, NPROCS):
        d = a.off - b.off
        if isinstance(op, ast.Eq):
            return d == 0
        if isinstance(op, ast.NotEq):
            return d != 0
        if isinstance(op, ast.Lt):
            return True if d < 0 else (False if d >= 0 else None)
        if isinstance(op, ast.LtE):
            return d <= 0
        if isinstance(op, ast.Gt):
            return d > 0
        if isinstance(op, ast.GtE):
            return d >= 0
    bi = _as_int(b, binding)
    if a.kind == INTERVAL and bi is not None:
        if isinstance(op, ast.Eq) and (bi < a.lo or bi > a.hi):
            return False
        if isinstance(op, ast.NotEq) and (bi < a.lo or bi > a.hi):
            return True
        if isinstance(op, ast.Lt):
            return True if a.hi < bi else (False if a.lo >= bi else None)
        if isinstance(op, ast.Gt):
            return True if a.lo > bi else (False if a.hi <= bi else None)
    return None
