"""Bounded path enumeration over the protocol CFG.

Drives :class:`~repro.analyze.proto.cfg.CFG` blocks under the abstract
:class:`~repro.analyze.proto.effects.Evaluator`, forking a path at
every guard it cannot decide and recording each fork as a
:class:`Decision` (rank-dependent / uniform / data-dependent /
exception edge). The result is a set of complete :class:`Path`
objects -- ordered effect sequences plus the decision vector that
selected them -- which the rule layer groups and compares.

Precision/soundness posture:

- loops: concrete ``range`` bounds (closed-world bindings) unroll
  exactly up to a cap; symbolic ``range(nprocs)`` runs its body once
  over an interval variable; unknown iterables fork a zero-iteration
  and a one-iteration path.
- guards over pure rank/nprocs/constant values are *consistent*: once
  a path decides ``rank == 0`` one way, every later occurrence of an
  equivalent guard (including negated spellings) follows the same way.
- exception edges fork after each effectful statement inside ``try``
  bodies, so handler paths see precisely the handles that were open.
- when any cap trips the function is flagged incomplete and the rule
  layer stands down instead of reporting from a partial picture.
"""

from __future__ import annotations

import ast
import dataclasses
from dataclasses import dataclass, field

from repro.analyze.proto import cfg as cfgmod
from repro.analyze.proto import domain
from repro.analyze.proto import effects as eff
from repro.analyze.proto.cfg import (
    CFG, Block, Branch, Exit, ExitCtx, ForLoop, Jump, Unsupported,
    build_cfg,
)
from repro.analyze.proto.domain import Binding, Sym
from repro.analyze.proto.effects import (
    ANY, CommRef, CtxRef, Effect, Evaluator, GuardInfo, HandleRef,
    HandleVal, RaisesVal, RangeVal, StreamRef, classify_test,
    D_EXCEPT, D_RANK, D_UNIFORM, D_UNKNOWN,
)

#: Completed-path cap per function.
MAX_PATHS = 256
#: Interpreter step budget per function (blocks executed).
MAX_STEPS = 50_000
#: Concrete loop-unroll cap (iterations).
UNROLL_CAP = 64
#: Back-edge traversal cap for while loops per path.
WHILE_CAP_CONCRETE = 64
WHILE_CAP_SYMBOLIC = 3
#: Interval upper bound standing in for an unknown ``nprocs``.
BIG = 1 << 30


@dataclass
class Decision:
    """One forked guard outcome on a path."""

    kind: str   # D_RANK / D_UNIFORM / D_UNKNOWN / D_EXCEPT
    key: str
    value: bool
    text: str
    line: int

    def render(self) -> str:
        if self.kind == D_EXCEPT:
            return f"line {self.line}: exception raised"
        return f"line {self.line}: {self.text} -> {self.value}"


@dataclass
class Handle:
    """Lifecycle state of one opened resource on one path."""

    hid: int
    res: str        # "h5" | "epoch"
    line: int
    var: str | None = None
    state: str = "open"  # open / closed / escaped
    retained: bool = False


@dataclass
class Path:
    """One complete path through a function."""

    effects: list[Effect]
    decisions: list[Decision]
    leaks: list[Handle]
    exit_kind: str       # return / raise / end
    exit_line: int
    exceptional: bool

    def non_rank_key(self) -> tuple[tuple[str, bool], ...]:
        """Grouping key: every non-rank decision with its outcome."""
        return tuple((d.key, d.value) for d in self.decisions
                     if d.kind != D_RANK)

    def witness(self) -> str:
        """Human rendering of the decision vector."""
        parts = [d.render() for d in self.decisions]
        parts.append(f"line {self.exit_line}: {self.exit_kind}"
                     if self.exit_line else self.exit_kind)
        return "; ".join(parts)


@dataclass
class FnResult:
    """All enumerated paths of one function."""

    name: str
    line: int
    paths: list[Path] = field(default_factory=list)
    complete: bool = True
    unsupported: bool = False
    opaque: bool = False       # a comm/ctx escaped the analysis
    has_request: bool = False  # isend/irecv/probe present somewhere


@dataclass
class _State:
    """One in-flight path."""

    block: int
    ev: Evaluator
    decisions: list[Decision]
    guards: dict[str, bool]
    handles: dict[int, Handle]
    loops: dict[int, list[object]]
    back: dict[int, int]
    exceptional: bool = False
    next_hid: int = 0

    def fork(self) -> "_State":
        ev = Evaluator(self.ev.alias, self.ev.binding)
        ev.env = dict(self.ev.env)
        ev.effects = list(self.ev.effects)
        return _State(
            block=self.block, ev=ev,
            decisions=list(self.decisions), guards=dict(self.guards),
            handles={k: dataclasses.replace(v)
                     for k, v in self.handles.items()},
            loops={k: list(v) for k, v in self.loops.items()},
            back=dict(self.back), exceptional=self.exceptional,
            next_hid=self.next_hid)


class _Interp:
    """Runs one CFG to completion under the caps."""

    def __init__(self, cfg: CFG, alias: dict[str, str],
                 binding: Binding | None,
                 seed: dict[str, object]) -> None:
        self.cfg = cfg
        self.binding = binding
        self.result = FnResult(name=cfg.name, line=cfg.line)
        self.steps = 0
        st = _State(block=0, ev=Evaluator(alias, binding),
                    decisions=[], guards={}, handles={}, loops={},
                    back={})
        st.ev.env.update(seed)
        self.work: list[_State] = [st]

    # -- handle plumbing ----------------------------------------------------

    def _register(self, st: _State, hv: HandleVal,
                  var: str | None) -> HandleRef:
        h = Handle(hid=st.next_hid, res=hv.res, line=hv.line, var=var)
        st.handles[h.hid] = h
        st.next_hid += 1
        return HandleRef(h.hid)

    def _intern(self, st: _State, v: object,
                var: str | None) -> object:
        """Convert HandleVal(s) in ``v`` into tracked HandleRef(s).

        Inside an active ``pytest.raises`` region the open is expected
        to fail, so nothing is tracked."""
        if any(isinstance(x, RaisesVal) for x in st.ev.env.values()):
            return v
        if isinstance(v, HandleVal):
            return self._register(st, v, var)
        if isinstance(v, tuple):
            return tuple(self._intern(st, x, var) for x in v)
        return v

    def _drain(self, st: _State) -> None:
        for evn in st.ev.handle_events:
            ref = evn.value
            if not isinstance(ref, HandleRef):
                continue
            h = st.handles.get(ref.hid)
            if h is None:
                continue
            if evn.op == "close":
                if h.state == "open":
                    h.state = "closed"
                h.retained = False
            elif evn.op == "retain":
                h.retained = True
            elif evn.op == "escape":
                if h.state == "open":
                    h.state = "escaped"
        st.ev.handle_events.clear()

    def _escape_value(self, st: _State, v: object) -> None:
        if isinstance(v, HandleRef):
            h = st.handles.get(v.hid)
            if h is not None and h.state == "open":
                h.state = "escaped"
        elif isinstance(v, tuple):
            for x in v:
                self._escape_value(st, x)

    # -- statements ---------------------------------------------------------

    def _assign_target(self, st: _State, target: ast.expr,
                       v: object) -> None:
        if isinstance(target, ast.Name):
            st.ev.env[target.id] = v
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            elts = target.elts
            if isinstance(v, tuple) and len(v) == len(elts) \
                    and not any(isinstance(e, ast.Starred)
                                for e in elts):
                for e, x in zip(elts, v):
                    self._assign_target(st, e, x)
            else:
                for e in elts:
                    inner = e.value if isinstance(e, ast.Starred) else e
                    self._assign_target(st, inner, domain.SYM_TOP)
            return
        # Attribute / subscript stores: the value escapes our view.
        self._escape_value(st, v)
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            st.ev.eval(target.value)
            if isinstance(target, ast.Subscript):
                st.ev.eval(target.slice)
            self._drain(st)

    def _stmt(self, st: _State, stmt: ast.stmt | ExitCtx) -> None:
        ev = st.ev
        if isinstance(stmt, ExitCtx):
            v = ev.env.get(stmt.var)
            if isinstance(v, RaisesVal):
                del ev.env[stmt.var]
                return
            refs = v if isinstance(v, tuple) else (v,)
            for r in refs:
                if isinstance(r, HandleRef):
                    h = st.handles.get(r.hid)
                    if h is None or h.state != "open":
                        continue
                    # ``with`` exit: epochs release unless retained,
                    # files always close.
                    if h.res == "epoch" and h.retained:
                        continue
                    h.state = "closed"
            return
        if isinstance(stmt, ast.Assign):
            v = ev.eval(stmt.value)
            self._drain(st)
            var = (stmt.targets[0].id
                   if len(stmt.targets) == 1
                   and isinstance(stmt.targets[0], ast.Name) else None)
            v = self._intern(st, v, var)
            for t in stmt.targets:
                self._assign_target(st, t, v)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                v = ev.eval(stmt.value)
                self._drain(st)
                var = (stmt.target.id
                       if isinstance(stmt.target, ast.Name) else None)
                v = self._intern(st, v, var)
                self._assign_target(st, stmt.target, v)
            return
        if isinstance(stmt, ast.AugAssign):
            rhs = ev.eval(stmt.value)
            self._drain(st)
            if isinstance(stmt.target, ast.Name):
                cur = ev.env.get(stmt.target.id, domain.SYM_TOP)
                if isinstance(cur, Sym) and isinstance(rhs, Sym):
                    ev.env[stmt.target.id] = domain.binop(
                        stmt.op, cur, rhs, self.binding)
                else:
                    ev.env[stmt.target.id] = domain.SYM_TOP
            else:
                self._assign_target(st, stmt.target, domain.SYM_TOP)
            return
        if isinstance(stmt, ast.Expr):
            v = ev.eval(stmt.value)
            self._drain(st)
            # A bare ``h5.File(...)`` expression: opened and dropped.
            self._intern(st, v, None)
            return
        if isinstance(stmt, ast.Assert):
            ev.eval(stmt.test)
            self._drain(st)
            return
        if isinstance(stmt, ast.Delete):
            for t in stmt.targets:
                if isinstance(t, ast.Name):
                    st.ev.env.pop(t.id, None)
            return
        # Import / Global / Nonlocal / Pass inside functions: no-op at
        # this abstraction level (imported names stay TOP).

    # -- terminators --------------------------------------------------------

    def _finish(self, st: _State, term: Exit) -> None:
        if term.kind == "return" and term.value is not None:
            v = st.ev.eval(term.value)
            self._drain(st)
            self._escape_value(st, v)
        if term.kind == "raise" and term.value is not None:
            st.ev.eval(term.value)
            self._drain(st)
        leaks = [h for h in st.handles.values() if h.state == "open"]
        self.result.paths.append(Path(
            effects=st.ev.effects, decisions=st.decisions, leaks=leaks,
            exit_kind=term.kind, exit_line=term.line,
            exceptional=st.exceptional))
        if len(self.result.paths) >= MAX_PATHS:
            self.result.complete = False
            self.work.clear()

    def _decide(self, st: _State, gi: GuardInfo, line: int,
                block: Block) -> None:
        """Route a Branch terminator."""
        term = block.term
        assert isinstance(term, Branch)
        if gi.stable and gi.key in st.guards:
            val = st.guards[gi.key] ^ gi.flip
            st.block = term.true if val else term.false
            self.work.append(st)
            return
        if gi.decided is not None:
            if gi.stable:
                st.guards[gi.key] = gi.decided ^ gi.flip
            st.block = term.true if gi.decided else term.false
            self.work.append(st)
            return
        refine = self._none_refinement(term.test, st)
        for val in (True, False):
            br = st.fork()
            if gi.stable:
                br.guards[gi.key] = val ^ gi.flip
            br.decisions.append(Decision(gi.kind, gi.key, val,
                                         gi.text, line))
            br.block = term.true if val else term.false
            if refine is not None and val == refine[1]:
                # On the ``x is None`` branch the handle was never
                # actually produced: drop it from leak tracking.
                name, _, hid = refine
                br.ev.env[name] = domain.const(None)
                h = br.handles.get(hid)
                if h is not None and h.state == "open":
                    h.state = "escaped"
            self.work.append(br)

    @staticmethod
    def _none_refinement(test: ast.expr,
                         st: _State) -> tuple[str, bool, int] | None:
        """``(name, branch-where-none, hid)`` for ``x is [not] None``
        guards over a tracked handle, else None."""
        if not (isinstance(test, ast.Compare) and len(test.ops) == 1
                and isinstance(test.ops[0], (ast.Is, ast.IsNot))
                and isinstance(test.left, ast.Name)
                and isinstance(test.comparators[0], ast.Constant)
                and test.comparators[0].value is None):
            return None
        v = st.ev.env.get(test.left.id)
        if not isinstance(v, HandleRef):
            return None
        none_branch = isinstance(test.ops[0], ast.Is)
        return (test.left.id, none_branch, v.hid)

    def _for(self, st: _State, block: Block) -> None:
        term = block.term
        assert isinstance(term, ForLoop)
        bid = block.bid
        if bid in st.loops:
            pending = st.loops[bid]
            if pending:
                v = pending.pop(0)
                self._assign_target(st, term.target, v)
                st.block = term.body
            else:
                del st.loops[bid]
                st.block = term.after
            self.work.append(st)
            return
        it = st.ev.eval(term.iter)
        self._drain(st)
        if isinstance(it, RangeVal):
            vals = [domain.evaluate(a, self.binding) for a in it.args]
            if all(isinstance(v, int) for v in vals):
                ivals = [v for v in vals if isinstance(v, int)]
                seq = (range(*ivals) if ivals else range(0))
                if len(seq) > UNROLL_CAP:
                    self.result.complete = False
                    return  # drop this path: loop too large to unroll
                st.loops[bid] = [domain.const(i) for i in seq]
                self.work.append(st)
                return
            first = it.args[0] if len(it.args) > 1 else domain.const(0)
            if (len(it.args) <= 2
                    and first.kind == domain.CONST
                    and isinstance(first.val, int)
                    and it.args[-1].kind == domain.NPROCS):
                # range(nprocs): at least one iteration (nprocs >= 1);
                # the body runs once over an interval loop variable.
                st.loops[bid] = [Sym(domain.INTERVAL, lo=first.val,
                                     hi=BIG)]
                self.work.append(st)
                return
            uniform = all(a.kind in (domain.CONST, domain.NPROCS,
                                     domain.INTERVAL)
                          for a in it.args)
            self._fork_loop(st, bid, term,
                            D_UNIFORM if uniform else D_UNKNOWN,
                            Sym(domain.INTERVAL, lo=0, hi=BIG))
            return
        if isinstance(it, tuple) and len(it) <= UNROLL_CAP:
            st.loops[bid] = list(it)
            self.work.append(st)
            return
        self._fork_loop(st, bid, term, D_UNKNOWN, domain.SYM_TOP)

    def _fork_loop(self, st: _State, bid: int, term: ForLoop,
                   kind: str, var: object) -> None:
        """Unknown iteration count: fork empty vs. one-iteration."""
        key = f"iter@{term.line}"
        empty = st.fork()
        empty.decisions.append(Decision(kind, key, False,
                                        "loop body runs", term.line))
        empty.loops[bid] = []
        self.work.append(empty)
        once = st
        once.decisions.append(Decision(kind, key, True,
                                       "loop body runs", term.line))
        once.loops[bid] = [var]
        self.work.append(once)

    # -- main loop ----------------------------------------------------------

    def run(self) -> FnResult:
        while self.work:
            self.steps += 1
            if self.steps > MAX_STEPS:
                self.result.complete = False
                break
            st = self.work.pop()
            block = self.cfg.blocks[st.block]
            bail = False
            for stmt in block.stmts:
                self._stmt(st, stmt)
            # Exception edge: fork into the first handler when this
            # block can raise (call-bearing statement in a try body).
            if block.except_to and self.binding is None \
                    and any(_can_raise(s) for s in block.stmts):
                exc = st.fork()
                exc.exceptional = True
                exc.decisions.append(Decision(
                    D_EXCEPT, f"exc@{block.bid}", True,
                    "exception raised", _first_line(block)))
                exc.block = block.except_to[0]
                self.work.append(exc)
            term = block.term
            if isinstance(term, Exit):
                self._finish(st, term)
            elif isinstance(term, Jump):
                if term.back:
                    st.back[term.dst] = st.back.get(term.dst, 0) + 1
                    cap = (WHILE_CAP_CONCRETE if self.binding
                           else WHILE_CAP_SYMBOLIC)
                    dst = self.cfg.blocks[term.dst]
                    if not isinstance(dst.term, ForLoop) \
                            and st.back[term.dst] > cap:
                        self.result.complete = False
                        bail = True
                if not bail:
                    st.block = term.dst
                    self.work.append(st)
            elif isinstance(term, Branch):
                gi = classify_test(term.test, st.ev)
                self._drain(st)
                self._decide(st, gi, term.line, block)
            elif isinstance(term, ForLoop):
                self._for(st, block)
        for p in self.result.paths:
            for e in p.effects:
                if e.kind == "opaque":
                    self.result.opaque = True
                if e.kind in ("request", "probe"):
                    self.result.has_request = True
        return self.result


def _can_raise(stmt: ast.stmt | ExitCtx) -> bool:
    if isinstance(stmt, ExitCtx):
        return False
    return any(isinstance(n, ast.Call) for n in ast.walk(stmt))


def _first_line(block: Block) -> int:
    for s in block.stmts:
        line = getattr(s, "lineno", None) or getattr(s, "line", None)
        if line:
            return int(line)
    return 0


def seed_params(fn: ast.FunctionDef) -> dict[str, object]:
    """Default abstract bindings for a function's parameters.

    ``ctx`` seeds a task context; a parameter whose name mentions
    ``comm`` seeds a communicator; everything else is unknown.
    """
    seed: dict[str, object] = {}
    args = list(fn.args.posonlyargs) + list(fn.args.args) \
        + list(fn.args.kwonlyargs)
    for a in args:
        if a.arg == "ctx":
            seed[a.arg] = CtxRef()
        elif "comm" in a.arg.lower():
            seed[a.arg] = CommRef(a.arg)
        else:
            seed[a.arg] = domain.SYM_TOP
    return seed


def run_function(fn: ast.FunctionDef, alias: dict[str, str],
                 binding: Binding | None = None,
                 seed: dict[str, object] | None = None) -> FnResult:
    """Enumerate the paths of one function.

    Returns an unsupported/incomplete :class:`FnResult` (never raises)
    when the function uses unmodeled control flow or trips a cap.
    """
    try:
        cfg = build_cfg(fn)
    except Unsupported:
        out = FnResult(name=fn.name, line=fn.lineno)
        out.complete = False
        out.unsupported = True
        return out
    if seed is None:
        seed = seed_params(fn)
    return _Interp(cfg, alias, binding, seed).run()
