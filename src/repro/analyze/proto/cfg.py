"""Per-function control-flow graphs for the static protocol checker.

Built once per function from the AST: basic blocks of simple
statements connected by branch / loop / exception edges. Structured
control flow is lowered the classic way:

- ``if``/``while``/``for`` produce branch blocks with explicit
  true/false successors; loop bodies jump **back** to their header
  (the interpreter bounds how often a back edge may be followed).
- ``with`` is desugared: the context expression is assigned to the
  ``as`` name (or a synthetic one) and a :class:`ExitCtx` token is
  injected on *every* route out of the body -- normal fall-through,
  ``return``, ``break``, ``continue`` and ``raise`` -- mirroring how
  ``__exit__`` really runs.
- ``try``/``finally`` duplicates the ``finally`` body onto every exit
  route the same way.
- statements inside a ``try`` body get their own single-statement
  blocks carrying ``except_to`` (the handler entry points), so the
  interpreter can fork "an exception fired after this statement"
  paths exactly where that matters.

``return``/``raise``/falling off the end terminate in an
:class:`Exit` block; ``match`` statements and ``async`` constructs
raise :class:`Unsupported`, which callers treat as "skip this
function, report nothing" (a checker that guesses would lie).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Hard cap on blocks per function (runaway guard).
MAX_BLOCKS = 2000


class Unsupported(Exception):
    """The function uses control flow the CFG does not model."""


@dataclass(frozen=True)
class ExitCtx:
    """Synthetic statement: ``with`` block exit for handle ``var``."""

    var: str
    line: int


@dataclass(frozen=True)
class Jump:
    """Unconditional edge; ``back`` marks a loop back edge."""

    dst: int
    back: bool = False


@dataclass(frozen=True)
class Branch:
    """Two-way branch on ``test``."""

    test: ast.expr
    true: int
    false: int
    line: int


@dataclass(frozen=True)
class ForLoop:
    """``for target in iter`` header; interpreter drives iterations."""

    target: ast.expr
    iter: ast.expr
    body: int
    after: int
    line: int


@dataclass(frozen=True)
class Exit:
    """Function exit: ``kind`` is ``return`` / ``raise`` / ``end``."""

    kind: str
    value: ast.expr | None
    line: int


Term = Jump | Branch | ForLoop | Exit


@dataclass
class Block:
    """One basic block: simple statements plus a terminator."""

    bid: int
    stmts: list[ast.stmt | ExitCtx] = field(default_factory=list)
    term: Term | None = None
    #: Handler entry block ids active for this block's statements.
    except_to: tuple[int, ...] = ()


@dataclass
class CFG:
    """The graph: ``blocks[0]`` is the entry block."""

    name: str
    line: int
    blocks: list[Block] = field(default_factory=list)

    def new_block(self, except_to: tuple[int, ...] = ()) -> Block:
        if len(self.blocks) >= MAX_BLOCKS:
            raise Unsupported(f"{self.name}: too many blocks")
        b = Block(bid=len(self.blocks), except_to=except_to)
        self.blocks.append(b)
        return b


@dataclass
class _Frame:
    """Loop context + cleanup the builder threads through exits.

    ``cleanup`` holds :class:`ExitCtx` tokens (innermost last) that any
    early exit crossing this frame must emit first.
    """

    break_to: int | None = None
    continue_to: int | None = None
    cleanup: list[ExitCtx] = field(default_factory=list)


class _Builder:
    """Lowers one function body to a :class:`CFG`."""

    def __init__(self, fn: ast.FunctionDef) -> None:
        self.cfg = CFG(name=fn.name, line=fn.lineno)
        self.frames: list[_Frame] = [_Frame()]
        self.with_seq = 0

    # -- plumbing ----------------------------------------------------------

    def _cleanup_since(self, loop_exit: bool) -> list[ExitCtx]:
        """Tokens to emit before leaving: all frames for ``return`` /
        ``raise``, frames inside the nearest loop for break/continue."""
        toks: list[ExitCtx] = []
        for fr in reversed(self.frames):
            toks.extend(reversed(fr.cleanup))
            if loop_exit and fr.break_to is not None:
                break
        return toks

    def _seal(self, block: Block, term: Term) -> None:
        if block.term is None:
            block.term = term

    # -- statement lowering -------------------------------------------------

    def build(self, body: list[ast.stmt]) -> CFG:
        entry = self.cfg.new_block()
        last = self._body(body, entry, ())
        self._seal(last, Exit("end", None, 0))
        for b in self.cfg.blocks:
            if b.term is None:  # pragma: no cover - safety net
                b.term = Exit("end", None, 0)
        return self.cfg

    def _body(self, stmts: list[ast.stmt], cur: Block,
              except_to: tuple[int, ...]) -> Block:
        """Lower a statement list starting in ``cur``; returns the
        (possibly new) block where control falls out."""
        for stmt in stmts:
            if cur.term is not None:
                # Unreachable code after return/raise/break: stop.
                return cur
            cur = self._stmt(stmt, cur, except_to)
        return cur

    def _stmt(self, stmt: ast.stmt, cur: Block,
              except_to: tuple[int, ...]) -> Block:
        cfg = self.cfg
        if isinstance(stmt, (ast.AsyncFunctionDef, ast.AsyncFor,
                             ast.AsyncWith, ast.Await)):
            raise Unsupported(f"{cfg.name}: async construct")
        if isinstance(stmt, ast.Match):
            raise Unsupported(f"{cfg.name}: match statement")

        if isinstance(stmt, ast.If):
            true_b = cfg.new_block(except_to)
            false_b = cfg.new_block(except_to)
            join = cfg.new_block(except_to)
            self._seal(cur, Branch(stmt.test, true_b.bid, false_b.bid,
                                   stmt.lineno))
            t_end = self._body(stmt.body, true_b, except_to)
            self._seal(t_end, Jump(join.bid))
            f_end = self._body(stmt.orelse, false_b, except_to)
            self._seal(f_end, Jump(join.bid))
            return join

        if isinstance(stmt, ast.While):
            head = cfg.new_block(except_to)
            body_b = cfg.new_block(except_to)
            after = cfg.new_block(except_to)
            self._seal(cur, Jump(head.bid))
            self._seal(head, Branch(stmt.test, body_b.bid, after.bid,
                                    stmt.lineno))
            self.frames.append(_Frame(break_to=after.bid,
                                      continue_to=head.bid))
            b_end = self._body(stmt.body, body_b, except_to)
            self._seal(b_end, Jump(head.bid, back=True))
            self.frames.pop()
            if stmt.orelse:
                return self._body(stmt.orelse, after, except_to)
            return after

        if isinstance(stmt, ast.For):
            head = cfg.new_block(except_to)
            body_b = cfg.new_block(except_to)
            after = cfg.new_block(except_to)
            self._seal(cur, Jump(head.bid))
            self._seal(head, ForLoop(stmt.target, stmt.iter, body_b.bid,
                                     after.bid, stmt.lineno))
            self.frames.append(_Frame(break_to=after.bid,
                                      continue_to=head.bid))
            b_end = self._body(stmt.body, body_b, except_to)
            self._seal(b_end, Jump(head.bid, back=True))
            self.frames.pop()
            if stmt.orelse:
                return self._body(stmt.orelse, after, except_to)
            return after

        if isinstance(stmt, ast.With):
            return self._with(stmt, cur, except_to)

        if isinstance(stmt, ast.Try):
            return self._try(stmt, cur, except_to)

        if isinstance(stmt, ast.Return):
            for tok in self._cleanup_since(loop_exit=False):
                cur.stmts.append(tok)
            self._seal(cur, Exit("return", stmt.value, stmt.lineno))
            return cur

        if isinstance(stmt, ast.Raise):
            for tok in self._cleanup_since(loop_exit=False):
                cur.stmts.append(tok)
            if except_to:
                self._seal(cur, Jump(except_to[0]))
            else:
                self._seal(cur, Exit("raise", stmt.exc, stmt.lineno))
            return cur

        if isinstance(stmt, (ast.Break, ast.Continue)):
            for tok in self._cleanup_since(loop_exit=True):
                cur.stmts.append(tok)
            for fr in reversed(self.frames):
                if fr.break_to is not None:
                    dst = (fr.break_to if isinstance(stmt, ast.Break)
                           else fr.continue_to)
                    assert dst is not None
                    self._seal(cur, Jump(
                        dst, back=isinstance(stmt, ast.Continue)))
                    return cur
            raise Unsupported(f"{cfg.name}: break/continue outside loop")

        if isinstance(stmt, (ast.FunctionDef, ast.ClassDef)):
            # Nested definitions are analyzed separately; here the name
            # simply becomes an unknown local.
            return cur

        # Everything else is a simple statement.
        cur.stmts.append(stmt)
        if except_to:
            # Inside a try body each statement gets its own block so the
            # interpreter can fork exception edges precisely.
            nxt = cfg.new_block(except_to)
            self._seal(cur, Jump(nxt.bid))
            return nxt
        return cur

    def _with(self, stmt: ast.With, cur: Block,
              except_to: tuple[int, ...]) -> Block:
        toks: list[ExitCtx] = []
        for item in stmt.items:
            if item.optional_vars is not None \
                    and isinstance(item.optional_vars, ast.Name):
                var = item.optional_vars.id
                assign: ast.stmt = ast.Assign(
                    targets=[item.optional_vars], value=item.context_expr)
            else:
                self.with_seq += 1
                var = f"__with{self.with_seq}__"
                name = ast.Name(id=var, ctx=ast.Store())
                ast.copy_location(name, item.context_expr)
                assign = ast.Assign(targets=[name],
                                    value=item.context_expr)
            ast.copy_location(assign, stmt)
            ast.fix_missing_locations(assign)
            cur = self._stmt(assign, cur, except_to)
            toks.append(ExitCtx(var, stmt.lineno))
        self.frames[-1].cleanup.extend(toks)
        end = self._body(stmt.body, cur, except_to)
        for tok in reversed(toks):
            self.frames[-1].cleanup.remove(tok)
            if end.term is None:
                end.stmts.append(tok)
        return end

    def _try(self, stmt: ast.Try, cur: Block,
             except_to: tuple[int, ...]) -> Block:
        cfg = self.cfg
        join = cfg.new_block(except_to)
        # Handlers first, so try-body blocks can point at them.
        handler_entries: list[int] = []
        fin_toks: list[ExitCtx] = []
        if stmt.finalbody:
            # Model ``finally`` by replaying its statements on every
            # route out; communication in finally bodies is rare and
            # the replay keeps paths linear.
            pass
        for handler in stmt.handlers:
            h_entry = cfg.new_block(except_to)
            handler_entries.append(h_entry.bid)
            h_end = self._body(handler.body, h_entry, except_to)
            h_end = self._body(stmt.finalbody, h_end, except_to)
            self._seal(h_end, Jump(join.bid))
        inner_except = tuple(handler_entries) or except_to
        # The try body needs its own block: statements appended to
        # ``cur`` would keep ``cur``'s exception edges (or lack of
        # them) instead of pointing at the handlers.
        body_entry = cfg.new_block(inner_except)
        self._seal(cur, Jump(body_entry.bid))
        body_end = self._body(stmt.body, body_entry, inner_except)
        # ``else``/``finally`` run outside the handlers' protection.
        after = cfg.new_block(except_to)
        self._seal(body_end, Jump(after.bid))
        after_end = self._body(stmt.orelse, after, except_to)
        after_end = self._body(stmt.finalbody, after_end, except_to)
        self._seal(after_end, Jump(join.bid))
        del fin_toks
        return join


def build_cfg(fn: ast.FunctionDef) -> CFG:
    """The CFG of one function; raises :class:`Unsupported` when the
    function uses control flow outside the modeled subset."""
    return _Builder(fn).build(fn.body)
