"""The PRO00x protocol rules over enumerated paths.

Two tiers, trading scope against precision:

**Symbolic tier** (every function in a file): compares the collective
sequences of sibling paths (PRO001), chases handle lifecycles to every
exit (PRO004), and type-checks literal tags/destinations (PRO005).
These need no knowledge of how many ranks run the function -- a
divergence between the two arms of ``if rank == 0:`` is a bug for
*any* nprocs > 1.

**Closed-world tier** (only rank bodies registered through a literal
``wf.add_task(name, nprocs=N, main=fn)``): instantiates the body once
per concrete rank, requires each rank to reduce to exactly one fully
resolved path (no data-dependent guards, no nonblocking ops, no comm
escapes), then replays the global send/recv/collective exchange with
the same matching semantics as the simulator -- buffered sends,
blocking wildcard-capable receives, generation-ordered collectives.
A stall is classified through the same wait-for-graph cycle detector
the dynamic deadlock explainer uses (PRO003), a divergent rendezvous
is PRO001, and anything left unmatched is PRO002. When any
precondition fails the tier silently stands down: a static checker
that guesses produces noise, and noise gets ignored.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analyze.deadlock import find_cycle
from repro.analyze.finding import Finding
from repro.analyze.lint import _Imports
from repro.analyze.proto import domain
from repro.analyze.proto.domain import Binding
from repro.analyze.proto.effects import ANY, Effect
from repro.analyze.proto.interp import (
    FnResult, Path, run_function,
)

#: Rule code -> one-line description (the proto rule table).
PROTO_RULES = {
    "PRO001": "collective divergence across rank-dependent branches",
    "PRO002": "unmatched point-to-point send or recv",
    "PRO003": "static wait-for cycle (deadlock)",
    "PRO004": "h5/stream handle leaked on some path",
    "PRO005": "tag/comm type confusion",
}

#: Finding ``kind`` used when converting to the analyze plumbing.
STATIC_PROTOCOL = "static-protocol"


@dataclass(frozen=True)
class ProtoFinding:
    """One static protocol finding with its path witness."""

    rule: str
    path: str
    line: int
    col: int
    func: str
    message: str
    witness: tuple[str, ...] = ()

    def render(self) -> str:
        head = (f"{self.path}:{self.line}:{self.col}: {self.rule} "
                f"[{self.func}] {self.message}")
        return "\n".join([head] + [f"    {w}" for w in self.witness])

    def to_dict(self) -> dict[str, object]:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "func": self.func,
                "message": self.message, "witness": list(self.witness)}

    def to_finding(self) -> Finding:
        """Adapt into the shared :class:`repro.analyze.Finding` shape."""
        return Finding(
            kind=STATIC_PROTOCOL, rank=-1,
            summary=f"{self.rule}: {self.message}",
            detail="\n".join((f"{self.path}:{self.line} "
                              f"in {self.func}",) + self.witness))


# -- symbolic tier -----------------------------------------------------------


def _coll_seq(p: Path) -> tuple[tuple[str, str, int], ...]:
    return tuple((e.comm, e.coll, e.line) for e in p.effects
                 if e.kind == "coll")


def _render_seq(seq: tuple[tuple[str, str, int], ...]) -> str:
    return "[" + ", ".join(f"{k}@{line}" for _c, k, line in seq) + "]"


def pro001(res: FnResult, path: str) -> list[ProtoFinding]:
    """Collective divergence: two sibling paths (same non-rank
    decisions, different rank decisions) with different collective
    sequences hang every rank that takes the shorter side."""
    if not res.complete or res.unsupported or res.opaque:
        return []
    groups: dict[tuple[tuple[str, bool], ...], list[Path]] = {}
    for p in res.paths:
        if p.exceptional or p.exit_kind == "raise":
            continue
        groups.setdefault(p.non_rank_key(), []).append(p)
    for key in sorted(groups, key=repr):
        variants: dict[tuple[tuple[str, str], ...], Path] = {}
        for p in groups[key]:
            variants.setdefault(
                tuple((c, k) for c, k, _l in _coll_seq(p)), p)
        if len(variants) < 2:
            continue
        (k1, p1), (k2, p2) = sorted(variants.items(),
                                    key=lambda kv: kv[0])[:2]
        s1, s2 = _coll_seq(p1), _coll_seq(p2)
        line = res.line
        for i in range(max(len(s1), len(s2))):
            a = s1[i] if i < len(s1) else None
            b = s2[i] if i < len(s2) else None
            if a is None or b is None or a[:2] != b[:2]:
                line = (a or b)[2]  # type: ignore[index]
                break
        return [ProtoFinding(
            rule="PRO001", path=path, line=line, col=0, func=res.name,
            message="collective sequence diverges across "
                    f"rank-dependent branches: {_render_seq(s1)} vs "
                    f"{_render_seq(s2)}",
            witness=(f"path A: {p1.witness()}",
                     f"  collectives A: {_render_seq(s1)}",
                     f"path B: {p2.witness()}",
                     f"  collectives B: {_render_seq(s2)}"))]
    return []


def pro004(res: FnResult, path: str) -> list[ProtoFinding]:
    """Handle leak: an h5 file / stream epoch opened on a path that
    exits without closing, releasing, or handing it off."""
    if res.unsupported:
        return []
    out: list[ProtoFinding] = []
    seen: set[tuple[str, int]] = set()
    for p in res.paths:
        for h in p.leaks:
            key = (h.res, h.line)
            if key in seen:
                continue
            seen.add(key)
            what = "h5 file" if h.res == "h5" else "stream epoch"
            how = ("retained and never released"
                   if h.res == "epoch" and h.retained
                   else "never closed/released")
            name = f" {h.var!r}" if h.var else ""
            out.append(ProtoFinding(
                rule="PRO004", path=path, line=h.line, col=0,
                func=res.name,
                message=f"{what}{name} opened here is {how} on some "
                        "path",
                witness=(f"leaking path: {p.witness()}",)))
    return out


def pro005(res: FnResult, path: str) -> list[ProtoFinding]:
    """Tag/dest type confusion: a literal tag or destination that is
    not an int can never match its peer (or crashes the transport)."""
    out: list[ProtoFinding] = []
    seen: set[int] = set()
    for p in res.paths:
        for e in p.effects:
            if e.kind not in ("send", "recv", "probe"):
                continue
            if e.line in seen:
                continue
            bad: list[str] = []
            if _bad_int(e.tag):
                bad.append(f"tag {e.tag.val!r}")
            if e.kind == "send" and _bad_int(e.peer):
                bad.append(f"dest {e.peer.val!r}")
            if e.kind in ("recv", "probe") and _bad_int(e.peer):
                bad.append(f"source {e.peer.val!r}")
            if bad:
                seen.add(e.line)
                out.append(ProtoFinding(
                    rule="PRO005", path=path, line=e.line, col=e.col,
                    func=res.name,
                    message=f"{e.kind} with non-int {' and '.join(bad)}"
                            " can never match its peer",
                    witness=(f"path: {p.witness()}",)))
    return out


def _bad_int(s: domain.Sym) -> bool:
    if s.kind != domain.CONST or s.val == ANY:
        return False
    return not isinstance(s.val, int) or isinstance(s.val, bool)


# -- closed-world tier -------------------------------------------------------


@dataclass(frozen=True)
class TaskSpec:
    """One statically-discovered ``add_task`` registration."""

    name: str
    nprocs: int
    fn: ast.FunctionDef
    line: int


def discover_tasks(tree: ast.Module) -> list[TaskSpec]:
    """Rank bodies registered via literal ``add_task`` calls whose
    ``main`` is a module-level function and ``nprocs`` a literal."""
    fns = {n.name: n for n in tree.body
           if isinstance(n, ast.FunctionDef)}
    out: list[TaskSpec] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_task"):
            continue
        args: dict[str, ast.expr] = {}
        for i, a in enumerate(node.args):
            if i < 3 and not isinstance(a, ast.Starred):
                args[("name", "nprocs", "main")[i]] = a
        for kw in node.keywords:
            if kw.arg:
                args[kw.arg] = kw.value
        name_n, np_n, main_n = (args.get("name"), args.get("nprocs"),
                                args.get("main"))
        if not (isinstance(name_n, ast.Constant)
                and isinstance(name_n.value, str)
                and isinstance(np_n, ast.Constant)
                and isinstance(np_n.value, int)
                and isinstance(main_n, ast.Name)
                and main_n.id in fns):
            continue
        if not 1 <= np_n.value <= 64:
            continue
        out.append(TaskSpec(name_n.value, np_n.value,
                            fns[main_n.id], node.lineno))
    return out


@dataclass
class _Op:
    """One concrete communication step of one rank."""

    kind: str              # send / recv / coll
    line: int
    comm: str = ""
    peer: object = None    # int or ANY
    tag: object = None     # int or ANY
    coll: str = ""

    def spec(self) -> str:
        if self.kind == "coll":
            return f"collective {self.coll} at line {self.line}"
        peer = "ANY" if self.peer == ANY else self.peer
        tag = "ANY" if self.tag == ANY else self.tag
        role = "dest" if self.kind == "send" else "source"
        return (f"{self.kind}({role}={peer}, tag={tag}) "
                f"at line {self.line}")


def _rank_ops(spec: TaskSpec, alias: dict[str, str],
              rank: int) -> list[_Op] | None:
    """The single deterministic op sequence of ``rank``, or None when
    the body is outside the closed-world preconditions."""
    res = run_function(spec.fn, alias,
                       binding=Binding(rank, spec.nprocs))
    if (res.unsupported or not res.complete or res.opaque
            or res.has_request or len(res.paths) != 1):
        return None
    p = res.paths[0]
    if p.exit_kind == "raise":
        return None
    binding = Binding(rank, spec.nprocs)
    ops: list[_Op] = []
    for e in p.effects:
        if e.inter:
            continue  # cross-task traffic is out of this task's world
        if e.kind == "coll":
            if e.coll in ("split", "dup") or e.comm != "ctx.comm":
                return None
            ops.append(_Op("coll", e.line, e.comm, coll=e.coll))
        elif e.kind in ("send", "recv"):
            if e.comm != "ctx.comm":
                return None
            peer = domain.evaluate(e.peer, binding)
            tag = domain.evaluate(e.tag, binding)
            if e.kind == "send":
                if not _is_int(peer) or not _is_int(tag):
                    return None
            else:
                if not (_is_int(peer) or peer == ANY):
                    return None
                if not (_is_int(tag) or tag == ANY):
                    return None
            ops.append(_Op(e.kind, e.line, e.comm, peer=peer, tag=tag))
        elif e.kind in ("probe", "request", "opaque"):
            return None
    return ops


def _is_int(v: object) -> bool:
    return isinstance(v, int) and not isinstance(v, bool)


@dataclass
class _Mail:
    src: int
    tag: int
    comm: str
    line: int


def check_task(spec: TaskSpec, alias: dict[str, str],
               path: str) -> list[ProtoFinding]:
    """Replay one task's exchange; classify any stall or leftover."""
    n = spec.nprocs
    ops: list[list[_Op]] = []
    for r in range(n):
        seq = _rank_ops(spec, alias, r)
        if seq is None:
            return []
        ops.append(seq)
    pos = [0] * n
    mail: list[list[_Mail]] = [[] for _ in range(n)]
    orphans: list[tuple[int, _Op]] = []

    def done(r: int) -> bool:
        return pos[r] >= len(ops[r])

    def cur(r: int) -> _Op:
        return ops[r][pos[r]]

    def match(r: int, op: _Op) -> int | None:
        for i, m in enumerate(mail[r]):
            if m.comm != op.comm:
                continue
            if op.peer != ANY and m.src != op.peer:
                continue
            if op.tag != ANY and m.tag != op.tag:
                continue
            return i
        return None

    progressed = True
    while progressed:
        progressed = False
        for r in range(n):
            while not done(r):
                op = cur(r)
                if op.kind == "send":
                    assert isinstance(op.peer, int) \
                        and isinstance(op.tag, int)
                    if 0 <= op.peer < n:
                        mail[op.peer].append(
                            _Mail(r, op.tag, op.comm, op.line))
                    else:
                        orphans.append((r, op))
                    pos[r] += 1
                    progressed = True
                elif op.kind == "recv":
                    i = match(r, op)
                    if i is None:
                        break
                    mail[r].pop(i)
                    pos[r] += 1
                    progressed = True
                else:
                    break
        waiting = [r for r in range(n)
                   if not done(r) and cur(r).kind == "coll"]
        if len(waiting) == n:
            kinds = sorted({cur(r).coll for r in range(n)})
            if len(kinds) > 1:
                by_kind = "; ".join(
                    f"rank {r}: {cur(r).spec()}" for r in range(n))
                return [ProtoFinding(
                    rule="PRO001", path=path, line=cur(0).line, col=0,
                    func=spec.fn.name,
                    message=f"task {spec.name!r}: ranks enter "
                            "different collectives at the same "
                            f"rendezvous ({' vs '.join(kinds)})",
                    witness=(by_kind,))]
            for r in range(n):
                pos[r] += 1
            progressed = True

    blocked = sorted(r for r in range(n) if not done(r))
    if blocked:
        return _classify_stall(spec, path, ops, pos, mail, blocked)
    out: list[ProtoFinding] = []
    leftovers = [(m, d) for d in range(n) for m in mail[d]]
    for r, op in orphans:
        out.append(ProtoFinding(
            rule="PRO002", path=path, line=op.line, col=0,
            func=spec.fn.name,
            message=f"task {spec.name!r} (nprocs={n}): rank {r} "
                    f"{op.spec()} targets a rank outside the task",
            witness=(f"rank {r}: {op.spec()}",)))
    seen: set[int] = set()
    for m, dest in leftovers:
        if m.line in seen:
            continue
        seen.add(m.line)
        out.append(ProtoFinding(
            rule="PRO002", path=path, line=m.line, col=0,
            func=spec.fn.name,
            message=f"task {spec.name!r} (nprocs={n}): send at line "
                    f"{m.line} from rank {m.src} to rank {dest} "
                    f"(tag {m.tag}) is never received",
            witness=(f"rank {dest} finished with the message still "
                     "queued",)))
    return out


def _classify_stall(spec: TaskSpec, path: str, ops: list[list[_Op]],
                    pos: list[int], mail: list[list[_Mail]],
                    blocked: list[int]) -> list[ProtoFinding]:
    """Stalled replay: cycle -> PRO003, divergent collective ->
    PRO001, comm-mixed near-miss -> PRO005, else PRO002."""
    n = len(ops)

    def cur(r: int) -> _Op:
        return ops[r][pos[r]]

    def arrived(x: int) -> bool:
        return pos[x] < len(ops[x]) and cur(x).kind == "coll"

    graph: dict[int, tuple[object, tuple[int, ...]]] = {}
    for r in blocked:
        op = cur(r)
        if op.kind == "recv":
            wakers = ((op.peer,) if isinstance(op.peer, int)
                      else tuple(x for x in range(n) if x != r))
        else:
            wakers = tuple(x for x in range(n)
                           if x != r and not arrived(x))
        graph[r] = (op, wakers)
    table = tuple(f"rank {r}: blocked at {cur(r).spec()}"
                  for r in blocked)

    cycle = find_cycle(graph)
    if cycle is not None:
        rendered = " -> ".join(str(r) for r in cycle)
        return [ProtoFinding(
            rule="PRO003", path=path, line=cur(cycle[0]).line, col=0,
            func=spec.fn.name,
            message=f"task {spec.name!r} (nprocs={n}): static "
                    f"wait-for cycle: {rendered}",
            witness=table)]

    coll_blocked = [r for r in blocked if cur(r).kind == "coll"]
    if coll_blocked:
        r = coll_blocked[0]
        absent = [x for x in range(n) if x != r and not arrived(x)]
        return [ProtoFinding(
            rule="PRO001", path=path, line=cur(r).line, col=0,
            func=spec.fn.name,
            message=f"task {spec.name!r} (nprocs={n}): rank {r} "
                    f"blocks in {cur(r).coll} that rank"
                    f"{'s' if len(absent) > 1 else ''} "
                    f"{', '.join(map(str, absent))} never enter"
                    f"{'s' if len(absent) == 1 else ''}",
            witness=table)]

    out: list[ProtoFinding] = []
    for r in blocked:
        op = cur(r)
        near = [m for m in mail[r]
                if m.comm != op.comm
                and (op.peer == ANY or m.src == op.peer)
                and (op.tag == ANY or m.tag == op.tag)]
        if near:
            m = near[0]
            out.append(ProtoFinding(
                rule="PRO005", path=path, line=op.line, col=0,
                func=spec.fn.name,
                message=f"task {spec.name!r}: rank {r} {op.spec()} "
                        f"matches a message sent on a different "
                        f"communicator ({m.comm!r} at line {m.line})",
                witness=table))
        else:
            out.append(ProtoFinding(
                rule="PRO002", path=path, line=op.line, col=0,
                func=spec.fn.name,
                message=f"task {spec.name!r} (nprocs={spec.nprocs}): "
                        f"rank {r} {op.spec()} has no matching send",
                witness=table))
        break  # the first blocked rank explains the stall
    return out


# -- file driver -------------------------------------------------------------


def _functions(tree: ast.Module) -> list[ast.FunctionDef]:
    """Module-level functions plus one level of class methods."""
    out: list[ast.FunctionDef] = []
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            out.append(node)
        elif isinstance(node, ast.ClassDef):
            out.extend(n for n in node.body
                       if isinstance(n, ast.FunctionDef))
    return out


def check_tree(tree: ast.Module, path: str) -> list[ProtoFinding]:
    """All PRO findings of one parsed module."""
    imports = _Imports()
    imports.visit(tree)
    alias = imports.alias
    out: list[ProtoFinding] = []
    flagged_fns: set[str] = set()
    for fn in _functions(tree):
        res = run_function(fn, alias)
        findings = pro001(res, path) + pro004(res, path) \
            + pro005(res, path)
        if findings:
            flagged_fns.add(fn.name)
        out.extend(findings)
    for spec in discover_tasks(tree):
        # A body the symbolic tier already flagged gets one report,
        # not two renderings of the same bug.
        if spec.fn.name in flagged_fns:
            continue
        out.extend(check_task(spec, alias, path))
    dedup: dict[tuple[str, int, str], ProtoFinding] = {}
    for f in out:
        dedup.setdefault((f.rule, f.line, f.message), f)
    return sorted(dedup.values(),
                  key=lambda f: (f.line, f.col, f.rule))
