"""Collective-mismatch and message-leak checks over the causal trace.

Both are protocol-hygiene invariants the simulator itself does not
enforce:

- the collective rendezvous is generation-based, so ranks calling
  *different* collectives on the same communicator still complete the
  rendezvous -- with silently corrupted semantics. Every
  :class:`~repro.obs.causal.CollectiveRecord` carries the per-rank
  entered operation; :func:`check_collectives` flags records where
  they differ.
- a buffered send completes locally whether or not anyone ever
  receives it, so a mismatched tag or a forgotten receive leaks the
  message without any error. :func:`check_leaks` reports every entry
  of the pending-send table never satisfied by a matching receive.
- a retained stream epoch the holder never releases stays live on the
  producer for the rest of the stream -- the producer cannot retire it
  and its memory is pinned. :func:`check_stream_leaks` reports every
  epoch a consumer rank acquired but never covered with a release
  high-water mark.
"""

from __future__ import annotations

from typing import Any

from repro.analyze.finding import (
    COLLECTIVE_MISMATCH,
    EPOCH_LEAK,
    Finding,
    MESSAGE_LEAK,
    msg_label,
)


def check_collectives(obs: Any) -> list[Finding]:
    """Flag collectives whose participants entered different ops."""
    findings: list[Finding] = []
    for rec in obs.causal.collectives():
        if not rec.kinds or len(set(rec.kinds.values())) <= 1:
            continue
        by_kind: dict[str, list[int]] = {}
        for rank in sorted(rec.kinds):
            by_kind.setdefault(rec.kinds[rank], []).append(rank)
        findings.append(Finding(
            COLLECTIVE_MISMATCH, min(rec.kinds),
            f"collective #{rec.coll_id} on comm {rec.comm_id} completed "
            "with mismatched operations: "
            + ", ".join(f"{k} on ranks {r}"
                        for k, r in sorted(by_kind.items())),
            {"coll_id": rec.coll_id, "comm_id": rec.comm_id,
             "kinds": dict(sorted(rec.kinds.items()))},
        ))
    return findings


def check_leaks(obs: Any) -> list[Finding]:
    """Report posted messages never matched by any receive."""
    consumed = obs.causal.consumed_ids()
    findings: list[Finding] = []
    for p in obs.causal.posts():
        if p.msg_id in consumed:
            continue
        findings.append(Finding(
            MESSAGE_LEAK, p.src,
            f"message {msg_label(p.msg_id)} (rank {p.src} -> rank {p.dst}, comm "
            f"{p.comm_id}, tag {p.tag}, {p.nbytes} B, posted at "
            f"{p.t_post:.9f}) was never received",
            {"msg_id": p.msg_id, "src": p.src, "dst": p.dst,
             "comm_id": p.comm_id, "tag": p.tag, "nbytes": p.nbytes,
             "t_post": p.t_post, "t_arrival": p.t_arrival},
        ))
    return findings


def check_stream_leaks(obs: Any) -> list[Finding]:
    """Report stream epochs acquired but never released.

    Reads the :class:`~repro.obs.streamstat.StreamLedger`: an epoch a
    consumer rank acquired whose id exceeds that rank's cumulative
    release high-water mark is retained forever -- the producer keeps
    it live (and its memory pinned) for the rest of the stream.
    Typically a consumer that called ``Epoch.retain()`` and exited
    without the matching ``release()``.
    """
    ledger = getattr(obs, "stream", None)
    if ledger is None:
        return []
    findings: list[Finding] = []
    for stream, epoch, rank in ledger.open_acquisitions():
        findings.append(Finding(
            EPOCH_LEAK, rank,
            f"stream {stream!r} epoch {epoch} was acquired by rank "
            f"{rank} and never released (the producer retains it for "
            "the rest of the stream)",
            {"stream": stream, "epoch": epoch, "rank": rank},
        ))
    return findings
