"""Vector clocks: a happens-before relation over the causal trace.

Every run already records the full communication structure --
:class:`~repro.obs.causal.PendingSend` entries for posts,
:class:`~repro.obs.causal.FlowEdge` entries for matched receives and
:class:`~repro.obs.causal.CollectiveRecord` entries for rendezvous --
so happens-before can be *derived* after the fact instead of being
tracked online. :func:`build_happens_before` replays the trace into
per-event vector clocks:

- each rank's events (send posts, receive completions, collective
  enters/exits) form a chain ordered by that rank's virtual clock;
- a receive joins the sender's clock at the matched post;
- a collective exit joins every participant's clock at entry (the
  rendezvous is a barrier in the happens-before sense, whatever data
  it moves).

Two sends are *concurrent* when neither vector clock dominates the
other -- exactly the pairs whose delivery order real MPI would not
fix. The race detector (:mod:`repro.analyze.races`) uses that test to
separate candidate messages that merely queued up (but were causally
ordered) from genuine schedule races.

The replay is a worklist pass: a rank's next event fires once its
cross-rank dependencies (the matched send, the other participants'
entries) have fired. Virtual times are consistent with causality by
construction of the simulator (messages arrive strictly after they
are posted, collectives end no earlier than their last entry), so the
pass always terminates on a well-formed trace; a trace that cannot be
replayed raises :class:`TraceInconsistency`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

VClock = tuple[int, ...]


class TraceInconsistency(RuntimeError):
    """The recorded trace admits no causally-consistent replay."""


def leq(a: VClock, b: VClock) -> bool:
    """Componentwise ``a <= b`` (vector-clock partial order)."""
    return all(x <= y for x, y in zip(a, b))


def happens_before(a: VClock, b: VClock) -> bool:
    """Strict vector-clock order: ``a`` causally precedes ``b``."""
    return a != b and leq(a, b)


def concurrent(a: VClock, b: VClock) -> bool:
    """Neither event causally precedes the other."""
    return not leq(a, b) and not leq(b, a)


# Event kinds, in same-virtual-time priority order: completions
# (receives, collective exits) fire before initiations (sends,
# collective enters) at an equal clock reading, matching program order
# (a rank that receives at t can post its next send no earlier than t
# plus the message overhead; a collective releases at t_end and the
# next operation starts from that clock).
_PRIO = {"recv": 0, "cexit": 0, "send": 1, "centr": 1}


@dataclass(frozen=True)
class _Event:
    t: float
    kind: str  # "send" | "recv" | "centr" | "cexit"
    key: int  # msg_id for send/recv, coll_id for centr/cexit

    @property
    def order(self) -> tuple[float, int, int]:
        return (self.t, _PRIO[self.kind], self.key)


class HBRelation:
    """The happens-before relation of one recorded run.

    Attributes
    ----------
    nranks:
        Length of every vector clock.
    send_vc / recv_vc:
        ``msg_id -> vector clock`` of the post / completed receive.
    coll_vc:
        ``coll_id -> vector clock`` of the collective's release.
    """

    def __init__(self, nranks: int) -> None:
        self.nranks = nranks
        self.send_vc: dict[int, VClock] = {}
        self.recv_vc: dict[int, VClock] = {}
        self.coll_vc: dict[int, VClock] = {}

    def concurrent_sends(self, msg_a: int, msg_b: int) -> bool:
        """True when the posts of two messages are causally unordered.

        A message whose post was never recorded (an injected duplicate
        consumed in place of its original) is conservatively treated
        as concurrent -- the detector must not *miss* races.
        """
        a = self.send_vc.get(msg_a)
        b = self.send_vc.get(msg_b)
        if a is None or b is None:
            return True
        return concurrent(a, b)


def _rank_streams(causal: Any) -> dict[int, list[_Event]]:
    """Per-rank event chains, each sorted by local virtual time."""
    streams: dict[int, list[_Event]] = {}

    def add(rank: int, ev: _Event) -> None:
        streams.setdefault(rank, []).append(ev)

    for p in causal.posts():
        add(p.src, _Event(p.t_post, "send", p.msg_id))
    for e in causal.edges():
        add(e.dst, _Event(e.t_recv, "recv", e.msg_id))
    for rec in causal.collectives():
        for rank, enter in rec.enter_clocks.items():
            add(rank, _Event(enter, "centr", rec.coll_id))
            add(rank, _Event(rec.t_end, "cexit", rec.coll_id))
    for evs in streams.values():
        evs.sort(key=lambda ev: ev.order)
    return streams


def build_happens_before(obs: Any,
                         nranks: int | None = None) -> HBRelation:
    """Replay ``obs.causal`` into vector clocks (see module docs).

    ``nranks`` defaults to one past the highest world rank seen in the
    trace. Raises :class:`TraceInconsistency` when the trace has a
    receive before its send or a collective exit before some entry --
    states an actual run cannot produce.
    """
    causal = obs.causal
    streams = _rank_streams(causal)
    if nranks is None:
        nranks = max(streams, default=-1) + 1
    hb = HBRelation(nranks)

    # Cross-rank dependency state.
    posted = {p.msg_id for p in causal.posts()}
    enters_left = {rec.coll_id: len(rec.enter_clocks)
                   for rec in causal.collectives()}
    coll_join: dict[int, list[VClock]] = {}

    vc = {r: [0] * nranks for r in streams}
    idx = {r: 0 for r in streams}
    remaining = sum(len(evs) for evs in streams.values())
    while remaining:
        progressed = False
        for r in sorted(streams):
            evs = streams[r]
            while idx[r] < len(evs):
                ev = evs[idx[r]]
                if (ev.kind == "recv" and ev.key in posted
                        and ev.key not in hb.send_vc):
                    break  # matched send not replayed yet
                if ev.kind == "cexit" and enters_left[ev.key] > 0:
                    break  # some participant has not entered yet
                clock = vc[r]
                if r < nranks:
                    clock[r] += 1
                if ev.kind == "recv":
                    sent = hb.send_vc.get(ev.key)
                    if sent is not None:
                        for i, x in enumerate(sent):
                            if x > clock[i]:
                                clock[i] = x
                    hb.recv_vc[ev.key] = tuple(clock)
                elif ev.kind == "send":
                    hb.send_vc[ev.key] = tuple(clock)
                elif ev.kind == "centr":
                    enters_left[ev.key] -= 1
                    coll_join.setdefault(ev.key, []).append(tuple(clock))
                else:  # cexit: join every participant's entry clock
                    for snap in coll_join[ev.key]:
                        for i, x in enumerate(snap):
                            if x > clock[i]:
                                clock[i] = x
                    hb.coll_vc[ev.key] = tuple(clock)
                idx[r] += 1
                remaining -= 1
                progressed = True
        if not progressed:
            stuck = {r: streams[r][idx[r]]
                     for r in streams if idx[r] < len(streams[r])}
            raise TraceInconsistency(
                "causal trace admits no consistent replay; stuck at "
                + ", ".join(f"rank {r}: {ev.kind} {ev.key} @ {ev.t:.9f}"
                            for r, ev in sorted(stuck.items()))
            )
    return hb
