"""Static lint for virtual-time code (AST-based, zero dependencies).

The simulator's whole value is that time is *virtual*: every duration
comes from the cost model and every schedule decision from virtual
arrival order. The bugs that silently break that property follow
recurring shapes, each of which is mechanically detectable:

========  ==========================================================
ANL001    Wall-clock call (``time.time``, ``time.monotonic``,
          ``time.perf_counter``, ``time.sleep``, ``datetime.now``,
          ...) in virtual-time code. Real time must only appear in
          the engine's watchdog and in explicitly wall-clock
          harnesses.
ANL002    An ``isend``/``irecv`` result that never reaches ``wait``
          or ``test`` (dropped or forgotten request objects make the
          nonblocking API lie about completion).
ANL003    Raw ``threading`` coordination primitives (``Thread``,
          ``Condition``, ``Event``, ``Semaphore``, ``Barrier``,
          ``Timer``) outside the simmpi engine. Plain ``Lock`` /
          ``RLock`` guards for shared state are fine; *coordination*
          belongs to the engine, where it is accounted in virtual
          time.
ANL004    Float equality (``==`` / ``!=``) on virtual clocks
          (``clock`` / ``vtime`` names). Clock arithmetic
          accumulates rounding; compare with a tolerance.
ANL005    An ``h5.File`` opened and bound to a name that is neither
          ``with``-managed, ``close()``d, nor handed off in the same
          function. The path-sensitive twin is PRO004; this is the
          cheap syntactic net.
ANL006    A bare ``except:`` / ``except Exception:`` with no
          re-raise. :class:`~repro.simmpi.RankFailure` (and every
          other engine error) derives from ``Exception``, so such a
          handler silently swallows simulated rank crashes.
========  ==========================================================

Suppression: a trailing ``# noqa: ANL00X`` (or bare ``# noqa``)
silences the line; :data:`DEFAULT_ALLOWLIST` silences whole files
that are legitimately about real time or engine internals.
"""

from __future__ import annotations

import ast
import os
from collections.abc import Iterable
from dataclasses import dataclass
from typing import TypeGuard

#: Rule code -> one-line description (the lint rule table).
RULES = {
    "ANL001": "wall-clock call in virtual-time code",
    "ANL002": "isend/irecv result never reaches wait/test",
    "ANL003": "raw threading primitive outside simmpi.engine",
    "ANL004": "float equality on virtual clocks",
    "ANL005": "h5 file opened without with/close in this function",
    "ANL006": "bare except swallows RankFailure",
}

#: Call targets (after import resolution) that open a simulated file.
_H5_FILE = {"repro.h5.File", "repro.h5.api.File", "h5.File"}

#: Dotted call targets that read or spend real time.
_WALLCLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.thread_time", "time.sleep",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
}

#: Dotted names of threading coordination primitives (locks excluded).
_THREAD_PRIMS = {
    "threading.Thread", "threading.Condition", "threading.Event",
    "threading.Semaphore", "threading.BoundedSemaphore",
    "threading.Barrier", "threading.Timer",
}

#: ``rule -> path suffixes`` where the rule does not apply: the engine
#: really does own real time (watchdog) and threads (rank runners),
#: and the wall-clock-reporting benchmarks are *about* real seconds.
DEFAULT_ALLOWLIST = {
    "ANL001": (
        "src/repro/simmpi/engine.py",
        "benchmarks/bench_wallclock.py",
        "benchmarks/bench_stream.py",
    ),
    "ANL003": (
        "src/repro/simmpi/engine.py",
        "src/repro/simmpi/comm.py",
    ),
}


@dataclass(frozen=True)
class Violation:
    """One lint finding: ``path:line: code message``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} " \
               f"{self.message}"


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` as a string for Name/Attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _clockish(node: ast.AST) -> bool:
    """True for expressions that read a virtual clock."""
    name = None
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    if name is None:
        return False
    name = name.lower()
    return name in ("clock", "vtime") or name.endswith("_clock") \
        or name.endswith("_vtime")


class _Imports(ast.NodeVisitor):
    """Maps local names to the dotted path they import."""

    def __init__(self) -> None:
        self.alias: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for a in node.names:
            self.alias[a.asname or a.name.split(".")[0]] = \
                a.name if a.asname else a.name.split(".")[0]

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return
        for a in node.names:
            self.alias[a.asname or a.name] = f"{node.module}.{a.name}"


def _resolve(dotted: str | None, alias: dict[str, str]) -> str | None:
    """Expand the leading segment of a dotted chain through imports."""
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    base = alias.get(head)
    if base is None:
        return dotted
    return f"{base}.{rest}" if rest else base


class _RequestTracker(ast.NodeVisitor):
    """ANL002 within one function: requests must reach wait/test.

    Requests are tracked through the shapes real code uses: direct
    assignment, tuple unpacking (``ra, rb = comm.isend(...),
    comm.irecv(...)``), container literals and comprehensions
    (``reqs = [comm.isend(...) for ...]``) and ``append``/``extend``
    onto a *local* container. A local container of requests must
    itself reach a wait (as a call argument or by being iterated) or
    escape. Stores into attributes or subscripts cannot be followed,
    so they are reported as a distinct "unknown escape" instead of
    silently trusted.
    """

    def __init__(self, out: list[Violation], path: str,
                 suppressed: set[tuple[str, int]]) -> None:
        self.out = out
        self.path = path
        self.suppressed = suppressed
        # name -> (line, col) of the pending isend/irecv assignment
        self.pending: dict[str, tuple[int, int]] = {}
        # local container name -> origins of the requests it holds
        self.containers: dict[str, list[tuple[int, int]]] = {}

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs are their own scope; walked separately

    visit_AsyncFunctionDef = visit_FunctionDef

    @staticmethod
    def _is_req_call(node: ast.AST) -> TypeGuard[ast.Call]:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("isend", "irecv"))

    def _collect(self, value: ast.AST) -> list[tuple[int, int]] | None:
        """Request origins carried by ``value``, or None when it is
        not a request-bearing expression we can follow."""
        if self._is_req_call(value):
            return [(value.lineno, value.col_offset)]
        if isinstance(value, ast.Name):
            if value.id in self.pending:
                return [self.pending.pop(value.id)]
            if value.id in self.containers:
                return self.containers.pop(value.id)
            return None
        if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
            found: list[tuple[int, int]] = []
            for elt in value.elts:
                got = self._collect(elt)
                if got:
                    found.extend(got)
            return found or None
        if isinstance(value, (ast.ListComp, ast.SetComp,
                              ast.GeneratorExp)) \
                and self._is_req_call(value.elt):
            return [(value.elt.lineno, value.elt.col_offset)]
        return None

    def visit_Expr(self, node: ast.Expr) -> None:
        value = node.value
        if self._is_req_call(value) \
                and isinstance(value.func, ast.Attribute):
            self._flag(node.lineno, node.col_offset,
                       "request discarded: result of "
                       f"{value.func.attr} is never waited on")
            return
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        value = node.value
        if len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                if self._is_req_call(value):
                    self.pending[target.id] = (value.lineno,
                                               value.col_offset)
                    return
                got = self._collect(value)
                if got is not None:
                    self.containers[target.id] = got
                    return
                if isinstance(value, (ast.List, ast.Set, ast.Dict)) \
                        and not getattr(value, "elts",
                                        getattr(value, "keys", ())):
                    # ``reqs = []``: an empty *local* container we can
                    # follow through later append/extend calls.
                    self.containers[target.id] = []
                    return
            elif isinstance(target, (ast.Attribute, ast.Subscript)):
                self._unknown_escape(node, value)
                return
            elif isinstance(target, ast.Tuple) \
                    and isinstance(value, ast.Tuple) \
                    and len(target.elts) == len(value.elts):
                for t, v in zip(target.elts, value.elts):
                    if not isinstance(t, ast.Name):
                        continue
                    if self._is_req_call(v):
                        self.pending[t.id] = (v.lineno, v.col_offset)
                    else:
                        got = self._collect(v)
                        if got:
                            self.containers[t.id] = got
                return
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Name) \
                and node.target.id in self.containers:
            got = self._collect(node.value)
            if got:
                self.containers[node.target.id].extend(got)
            return
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        f = node.func
        if isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name):
            recv = f.value.id
            if f.attr in ("wait", "test"):
                self.pending.pop(recv, None)
                self.containers.pop(recv, None)
            elif f.attr in ("append", "extend", "add") \
                    and recv in self.containers:
                # Requests moved into a tracked local container stay
                # tracked instead of escaping.
                for arg in node.args:
                    got = self._collect(arg)
                    if got:
                        self.containers[recv].extend(got)
                return
        # Passing a name to any other call (wait_all, a helper, ...)
        # escapes it conservatively: the callee may wait it.
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Name):
                    self.pending.pop(sub.id, None)
                    self.containers.pop(sub.id, None)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        # ``for r in reqs: r.wait()`` -- iterating a tracked container
        # hands each element to the loop; treat it as consumed.
        if isinstance(node.iter, ast.Name):
            self.containers.pop(node.iter.id, None)
        self.generic_visit(node)

    def _escape(self, value: ast.AST | None) -> None:
        if value is None:
            return
        for sub in ast.walk(value):
            if isinstance(sub, ast.Name):
                self.pending.pop(sub.id, None)
                self.containers.pop(sub.id, None)

    def visit_Return(self, node: ast.Return) -> None:
        self._escape(node.value)
        self.generic_visit(node)

    def visit_Yield(self, node: ast.Yield) -> None:
        self._escape(node.value)
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        self._escape(node)

    def _unknown_escape(self, node: ast.Assign, value: ast.AST) -> None:
        """A store we cannot follow (attribute/subscript target)."""
        for sub in ast.walk(value):
            if not isinstance(sub, ast.Name):
                continue
            if sub.id in self.pending:
                line, col = self.pending.pop(sub.id)
                self._flag(line, col,
                           f"request {sub.id!r} escapes into an "
                           "attribute/subscript store (unknown "
                           "escape); cannot verify it reaches "
                           "wait/test")
            elif sub.id in self.containers:
                for line, col in self.containers.pop(sub.id):
                    self._flag(line, col,
                               f"request container {sub.id!r} escapes "
                               "into an attribute/subscript store "
                               "(unknown escape); cannot verify its "
                               "requests reach wait/test")

    def _flag(self, line: int, col: int, msg: str) -> None:
        if ("ANL002", line) in self.suppressed:
            return
        self.out.append(Violation(self.path, line, col, "ANL002", msg))

    def finish(self) -> None:
        leaks = [(origin, f"request {name!r} never reaches wait/test")
                 for name, origin in self.pending.items()]
        leaks += [(origin, f"request in container {name!r} never "
                           "reaches wait/test")
                  for name, origins in self.containers.items()
                  for origin in origins]
        for (line, col), msg in sorted(leaks):
            self._flag(line, col, msg)


class _FileTracker(ast.NodeVisitor):
    """ANL005 within one function: named ``h5.File`` opens must be
    ``with``-managed, closed, or handed off before the function ends.

    Deliberately shallower than PRO004 (no path sensitivity): a
    ``close()`` or any escape anywhere in the function clears the
    name. The point is catching the file nobody even *tries* to
    close.
    """

    def __init__(self, out: list[Violation], path: str,
                 suppressed: set[tuple[str, int]],
                 alias: dict[str, str]) -> None:
        self.out = out
        self.path = path
        self.suppressed = suppressed
        self.alias = alias
        self.pending: dict[str, tuple[int, int]] = {}

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs are their own scope; walked separately

    visit_AsyncFunctionDef = visit_FunctionDef

    def _is_file_call(self, node: ast.AST) -> TypeGuard[ast.Call]:
        return (isinstance(node, ast.Call)
                and _resolve(_dotted(node.func), self.alias) in _H5_FILE)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_file_call(node.value) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            self.pending[node.targets[0].id] = (node.lineno,
                                                node.col_offset)
            return
        if len(node.targets) == 1 and isinstance(
                node.targets[0], (ast.Attribute, ast.Subscript)):
            self._escape(node.value)  # stored for later use elsewhere
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        # ``with h5.File(...) as f:`` is the blessed shape, and
        # ``with f:`` closes a previously assigned handle.
        for item in node.items:
            if isinstance(item.context_expr, ast.Name):
                self.pending.pop(item.context_expr.id, None)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        f = node.func
        if isinstance(f, ast.Attribute) and f.attr == "close" \
                and isinstance(f.value, ast.Name):
            self.pending.pop(f.value.id, None)
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            self._escape(arg)
        self.generic_visit(node)

    def _escape(self, value: ast.AST | None) -> None:
        """Hand-off of the handle *itself*: a bare name, or names
        directly inside a container literal. Merely *using* the
        handle (``f['d'].read()``) is not an escape."""
        if isinstance(value, ast.Name):
            self.pending.pop(value.id, None)
        elif isinstance(value, (ast.List, ast.Tuple, ast.Set)):
            for elt in value.elts:
                self._escape(elt)
        elif isinstance(value, ast.Dict):
            for v in value.values:
                self._escape(v)

    def visit_Return(self, node: ast.Return) -> None:
        self._escape(node.value)
        self.generic_visit(node)

    def visit_Yield(self, node: ast.Yield) -> None:
        self._escape(node.value)
        self.generic_visit(node)

    def finish(self) -> None:
        for name, (line, col) in sorted(self.pending.items(),
                                        key=lambda kv: kv[1]):
            if ("ANL005", line) in self.suppressed:
                continue
            self.out.append(Violation(
                self.path, line, col, "ANL005",
                f"h5 file {name!r} opened without with/close in this "
                "function (leaks the handle on every path)"))


def _suppressed_lines(source: str) -> set[tuple[str, int]]:
    """``(code, line)`` pairs silenced by ``# noqa`` comments."""
    out: set[tuple[str, int]] = set()
    for i, text in enumerate(source.splitlines(), start=1):
        if "# noqa" not in text:
            continue
        _, _, tail = text.partition("# noqa")
        tail = tail.strip()
        if tail.startswith(":"):
            for code in tail[1:].replace(",", " ").split():
                out.add((code.strip(), i))
        else:
            for code in RULES:
                out.add((code, i))
    return out


def lint_source(source: str, path: str,
                skip: frozenset[str] = frozenset()) -> list[Violation]:
    """Lint one file's text; ``skip`` holds rule codes to ignore."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(path, exc.lineno or 0, exc.offset or 0,
                          "ANL000", f"syntax error: {exc.msg}")]
    suppressed = _suppressed_lines(source)
    imports = _Imports()
    imports.visit(tree)
    alias = imports.alias
    out: list[Violation] = []

    def flag(code: str, node: ast.AST, msg: str) -> None:
        if code in skip or (code, node.lineno) in suppressed:
            return
        out.append(Violation(path, node.lineno, node.col_offset, code,
                             msg))

    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            target = _resolve(_dotted(node.func), alias)
            if target in _WALLCLOCK:
                flag("ANL001", node,
                     f"wall-clock call {target}() in virtual-time "
                     "code (durations must come from the cost model)")
            if target in _THREAD_PRIMS:
                flag("ANL003", node,
                     f"raw {target} outside simmpi.engine (schedule "
                     "coordination belongs to the engine)")
        elif isinstance(node, ast.Compare):
            operands = [node.left] + list(node.comparators)
            if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops) \
                    and any(_clockish(o) for o in operands):
                flag("ANL004", node,
                     "float equality on a virtual clock; compare with "
                     "a tolerance (clock arithmetic accumulates "
                     "rounding)")
        elif isinstance(node, ast.ExceptHandler):
            caught = _dotted(node.type) if node.type is not None else None
            swallows = node.type is None \
                or caught in ("Exception", "BaseException")
            reraises = any(isinstance(n, ast.Raise)
                           for n in ast.walk(node))
            if swallows and not reraises:
                what = "bare except" if node.type is None \
                    else f"except {caught}"
                flag("ANL006", node,
                     f"{what} with no re-raise swallows RankFailure "
                     "(simulated rank crashes); catch a narrower "
                     "type or re-raise")
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if "ANL002" not in skip:
                tracker = _RequestTracker(out, path, suppressed)
                for stmt in node.body:
                    tracker.visit(stmt)
                tracker.finish()
            if "ANL005" not in skip:
                files = _FileTracker(out, path, suppressed, alias)
                for stmt in node.body:
                    files.visit(stmt)
                files.finish()
    out.sort(key=lambda v: (v.line, v.col, v.code))
    return out


def _skip_for(path: str,
              allowlist: dict[str, tuple[str, ...]] | None,
              ) -> frozenset[str]:
    allowlist = DEFAULT_ALLOWLIST if allowlist is None else allowlist
    norm = path.replace(os.sep, "/")
    return frozenset(code for code, suffixes in allowlist.items()
                     if any(norm.endswith(s) for s in suffixes))


def lint_paths(paths: Iterable[str],
               allowlist: dict[str, tuple[str, ...]] | None = None,
               ) -> list[Violation]:
    """Lint files and directory trees; returns sorted violations."""
    files: list[str] = []
    for p in paths:
        if os.path.isdir(p):
            for root, _dirs, names in os.walk(p):
                files.extend(os.path.join(root, n)
                             for n in names if n.endswith(".py"))
        elif p.endswith(".py"):
            files.append(p)
    out: list[Violation] = []
    for f in sorted(set(files)):
        with open(f, encoding="utf-8") as fh:
            source = fh.read()
        out.extend(lint_source(source, f, _skip_for(f, allowlist)))
    out.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return out
