"""The one result type every analyzer emits."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: A wildcard receive whose outcome real MPI would not have ordered.
WILDCARD_RACE = "wildcard-race"
#: Ranks entered one collective rendezvous with different operations.
COLLECTIVE_MISMATCH = "collective-mismatch"
#: A posted message no receive ever matched by finalize.
MESSAGE_LEAK = "message-leak"
#: A stream epoch acquired by a consumer rank and never released.
EPOCH_LEAK = "epoch-leak"

#: Every finding kind the dynamic analyzers can emit.
FINDING_KINDS = (WILDCARD_RACE, COLLECTIVE_MISMATCH, MESSAGE_LEAK,
                 EPOCH_LEAK)


def msg_label(msg_id: int) -> str:
    """Human form of an engine message id: ``r<sender>#<n>``.

    Engine ids encode ``sender_rank << 32 | n`` (the sender's n-th
    post); small ids from directly-built messages render as ``r0#n``,
    which is still unambiguous within one trace.
    """
    return f"r{msg_id >> 32}#{msg_id & 0xFFFFFFFF}"


@dataclass(frozen=True)
class Finding:
    """One confirmed defect in a recorded schedule.

    ``kind`` is one of :data:`FINDING_KINDS`; ``rank`` is the world
    rank where the defect was observed (the receiver for races, the
    sender for leaks, -1 when no single rank applies); ``summary`` is
    the one-line human statement and ``detail`` the machine-readable
    evidence (candidate sets, clocks, message ids).
    """

    kind: str
    rank: int
    summary: str
    detail: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "rank": self.rank,
                "summary": self.summary, **self.detail}
