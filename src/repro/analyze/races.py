"""Schedule-race detection over wildcard receive candidate sets.

Every wildcard receive (``ANY_SOURCE``/``ANY_TAG``) records a
:class:`~repro.obs.causal.MatchRecord` -- the exact set of live
candidate messages the matcher chose between. The simulator always
commits the candidate with the least ``(arrival, src, seq)``, so the
*simulated* schedule is deterministic; the question this detector
answers is whether that choice stands in for a choice real MPI would
also have made, or papers over a genuine race.

A match is flagged when the winner and some other candidate are

1. **causally concurrent** -- neither send happens-before the other
   (:mod:`repro.analyze.vclock`), so no program ordering forced one
   to arrive first, *and*
2. **order-unstable** -- their modeled arrival order either *inverts*
   their post order (the message posted earlier arrived later: the
   winner is decided by modeled transfer times, which a real network
   would perturb) or *ties* it exactly (the winner is decided by the
   ``(src, seq)`` tie-break, which has no physical meaning at all),
   *and*
3. **assignment-relevant** -- resolving the pair the other way would
   change which receive stream gets which message. An inversion
   always qualifies (the modeled times deciding it are exactly what a
   perturbation changes). An exact tie does not when both messages
   are drained by the *same* stream -- the same ``(dst, comm, source,
   tag)`` wildcard spec -- since either resolution then delivers the
   same messages to the same receiver, differing only in an
   intra-stream order the model itself declares symmetric. A tie
   whose loser lands in a *different* stream (or is never received at
   all) is a race: physical noise alone decides the assignment.

Candidates that are concurrent but arrive in post order are not
races: any network that roughly preserves injection order delivers
the same winner. Together these rules make a clean many-to-one server
loop (the paper's fig5/fig7 workloads, including their symmetric
same-instant control messages) analyze silent, while a fault-injected
message delay deterministically fires.

Documented limitation: an application that is order-sensitive to two
*tied* messages within one receive stream can hide behind rule 3;
the trace records who-got-what, not what the receiver did with it.
"""

from __future__ import annotations

from typing import Any

from repro.analyze.finding import Finding, WILDCARD_RACE, msg_label
from repro.analyze.vclock import HBRelation, build_happens_before


def _unstable(winner: tuple[int, int, float, float],
              other: tuple[int, int, float, float]) -> str | None:
    """Why the pair's arrival order is not forced by its post order."""
    _, _, w_post, w_arrival = winner
    _, _, o_post, o_arrival = other
    if o_arrival == w_arrival:
        return "arrival tie"
    if (o_post - w_post) * (o_arrival - w_arrival) < 0:
        return "arrival order inverts post order"
    return None


def _stream_map(obs: Any) -> dict[int, tuple[int, int, int, int]]:
    """``msg_id -> (dst, comm, source, tag)`` wildcard stream that
    eventually received it (matched wildcard receives only)."""
    return {m.msg_id: (m.dst, m.comm_id, m.source, m.tag)
            for m in obs.causal.matches()}


def find_races(obs: Any, nranks: int | None = None,
               hb: HBRelation | None = None) -> list[Finding]:
    """Flag every recorded wildcard match that hides a schedule race.

    Returns one :class:`~repro.analyze.finding.Finding` per racy
    match, naming the full candidate set and each racy rival. Pass a
    prebuilt ``hb`` relation to avoid replaying the trace twice.
    """
    if hb is None:
        hb = build_happens_before(obs, nranks)
    streams = _stream_map(obs)
    findings: list[Finding] = []
    for m in obs.causal.matches():
        if len(m.candidates) < 2:
            continue
        winner = next((c for c in m.candidates if c[0] == m.msg_id), None)
        if winner is None:  # candidate snapshot predates a fault rewrite
            continue
        stream = (m.dst, m.comm_id, m.source, m.tag)
        rivals: list[dict[str, Any]] = []
        for cand in m.candidates:
            if cand[0] == winner[0]:
                continue
            why = _unstable(winner, cand)
            if why is None:
                continue
            if why == "arrival tie" and streams.get(cand[0]) == stream:
                continue  # same-stream drain: assignment-irrelevant
            if not hb.concurrent_sends(winner[0], cand[0]):
                continue
            rivals.append({"msg_id": cand[0], "src": cand[1],
                           "t_post": cand[2], "t_arrival": cand[3],
                           "why": why})
        if not rivals:
            continue
        findings.append(Finding(
            WILDCARD_RACE, m.dst,
            f"wildcard recv on rank {m.dst} (comm {m.comm_id}, source "
            f"{m.source}, tag {m.tag}) chose msg {msg_label(m.msg_id)} "
            f"from rank {winner[1]} over {len(rivals)} concurrent "
            "rival(s): "
            + ", ".join(f"msg {msg_label(r['msg_id'])} from rank "
                        f"{r['src']} ({r['why']})" for r in rivals),
            {
                "comm_id": m.comm_id,
                "source": m.source,
                "tag": m.tag,
                "chosen": m.msg_id,
                "t_match": m.t_match,
                "candidates": [
                    {"msg_id": c[0], "src": c[1], "t_post": c[2],
                     "t_arrival": c[3]} for c in m.candidates
                ],
                "rivals": rivals,
            },
        ))
    return findings
