"""Explicit two-phase collective I/O model (ROMIO-style).

:class:`~repro.pfs.lustre.LustreModel` folds collective-buffering costs
into a single bandwidth term, which is what the calibrated benchmarks
use. This module exposes the *mechanism* separately for analysis: the
shuffle phase (every rank redistributes its pieces to stripe-aligned
aggregators over the interconnect) followed by the write phase (one
aggregator per stripe streams to its OST). Useful for studying where
collective I/O time goes and when collective buffering stops paying
off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.pfs.lustre import LustreModel
from repro.simmpi.netmodel import NetworkModel


@dataclass(frozen=True)
class TwoPhaseModel:
    """Two-phase collective I/O: shuffle to aggregators, then write.

    Attributes
    ----------
    net:
        Interconnect model for the shuffle phase.
    lustre:
        File-system model; the write phase streams from
        ``min(nprocs, stripe_count)`` aggregators at OST bandwidth with
        no extent-lock contention (each aggregator owns its stripes --
        the point of collective buffering).
    cb_buffer:
        Collective buffer size per aggregator; total bytes move in
        rounds of ``naggregators * cb_buffer``.
    """

    net: NetworkModel
    lustre: LustreModel
    cb_buffer: int = 16 * 2**20

    def naggregators(self, nprocs: int) -> int:
        """One aggregator per stripe, capped by the job size."""
        return max(1, min(nprocs, self.lustre.stripe_count))

    def _round_times(self, round_bytes: float,
                     nprocs: int) -> tuple[float, float]:
        """(shuffle, write) time of one buffer round moving
        ``round_bytes`` in total across all aggregators."""
        nagg = self.naggregators(nprocs)
        per_agg = round_bytes / nagg
        shuffle = (per_agg / (self.net.bandwidth
                              / self.net.contention_factor(nprocs))
                   + nprocs / nagg * (self.net.latency
                                      + 2 * self.net.msg_overhead))
        write = (per_agg / (self.lustre.ost_bandwidth
                            * self.lustre.slowest_ost_factor())
                 + self.lustre.md_small_op)
        return shuffle, write

    def nrounds(self, total_bytes: int, nprocs: int) -> int:
        """Buffer rounds: total bytes over ``naggregators * cb_buffer``."""
        per_round = self.naggregators(nprocs) * self.cb_buffer
        return max(1, math.ceil(total_bytes / per_round))

    def shuffle_time(self, total_bytes: int, nprocs: int) -> float:
        """Phase 1: redistribute pieces to aggregators (alltoall-ish).

        Each aggregator ingests its share; every round pays per-peer
        latency (one exchange with each non-aggregator per round).
        """
        nagg = self.naggregators(nprocs)
        per_agg = total_bytes / nagg
        nrounds = self.nrounds(total_bytes, nprocs)
        return (per_agg / (self.net.bandwidth
                           / self.net.contention_factor(nprocs))
                + nrounds * nprocs / nagg * (self.net.latency
                                             + 2 * self.net.msg_overhead))

    def write_time(self, total_bytes: int, nprocs: int) -> float:
        """Phase 2: aggregators stream stripe-aligned data to OSTs."""
        nagg = self.naggregators(nprocs)
        per_agg = total_bytes / nagg
        stream = per_agg / (self.lustre.ost_bandwidth
                            * self.lustre.slowest_ost_factor())
        return stream + self.nrounds(total_bytes, nprocs) * \
            self.lustre.md_small_op

    def collective_write_time(self, total_bytes: int, nprocs: int) -> float:
        """End-to-end two-phase time.

        Rounds pipeline: round ``i``'s write overlaps round ``i+1``'s
        shuffle, so each middle round costs the slower of the two
        per-round phase times and only the first shuffle and last write
        are exposed. Computed from the exact per-round schedule (the
        last round moves only the residual bytes), which keeps the
        total strictly increasing in ``total_bytes`` — amortizing
        whole-phase totals over a discrete round count is not, because
        a round-boundary crossing shrinks the amortized term faster
        than the stream terms grow.
        """
        per_round = self.naggregators(nprocs) * self.cb_buffer
        nrounds = self.nrounds(total_bytes, nprocs)
        last_bytes = total_bytes - per_round * (nrounds - 1)
        s_last, w_last = self._round_times(last_bytes, nprocs)
        if nrounds == 1:
            return s_last + w_last
        s, w = self._round_times(per_round, nprocs)
        return (s + (nrounds - 2) * max(s, w)
                + max(w, s_last) + w_last)

    def independent_write_time(self, total_bytes: int, nprocs: int) -> float:
        """The non-collective comparison: every rank writes its own
        non-contiguous pieces, paying full extent-lock contention."""
        return self.lustre.write_time(
            total_bytes // max(1, nprocs), nprocs, collective=False
        )

    def account(self, metrics, total_bytes: int, nprocs: int) -> float:
        """Record the two-phase breakdown of one collective write into an
        obs :class:`~repro.obs.metrics.MetricsRegistry` and return the
        end-to-end time.

        Histograms keep the shuffle/write split visible per job size, so
        analysis sweeps can report where collective I/O time goes.
        """
        ts = self.shuffle_time(total_bytes, nprocs)
        tw = self.write_time(total_bytes, nprocs)
        metrics.observe("mpiio.shuffle_seconds", ts, nprocs=nprocs)
        metrics.observe("mpiio.write_seconds", tw, nprocs=nprocs)
        metrics.inc("mpiio.bytes", total_bytes, nprocs=nprocs)
        return self.collective_write_time(total_bytes, nprocs)

    def breakeven_procs(self, total_bytes: int, max_procs: int = 1 << 15) -> int:
        """Smallest job size where collective beats independent I/O."""
        p = 1
        while p <= max_procs:
            if self.collective_write_time(total_bytes, p) < \
                    self.independent_write_time(total_bytes, p):
                return p
            p *= 2
        return max_procs
