"""Simulated parallel file system (Lustre-like).

Two halves:

- :mod:`repro.pfs.store` really stores bytes (shared across all simulated
  ranks, like a globally visible file system), so files written by one
  task can be read back and validated by another;
- :mod:`repro.pfs.lustre` charges virtual time for I/O using a Lustre-like
  cost model (OST striping, MDS metadata serialization, lock contention),
  calibrated so that file-based transport is orders of magnitude slower
  than in situ messaging, as measured in the paper (Figs. 5-6).
"""

from repro.pfs.store import PFSStore, FileHandle
from repro.pfs.lustre import LustreModel
from repro.pfs.mpiio import TwoPhaseModel

__all__ = ["PFSStore", "FileHandle", "LustreModel", "TwoPhaseModel"]
