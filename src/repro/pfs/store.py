"""Byte store backing the simulated parallel file system.

The store is shared by every simulated rank (the real Lustre namespace is
globally visible), and thread-safe. It holds whole files as resizable
bytearrays and supports positional reads/writes, which is all the native
VOL's file format needs.
"""

from __future__ import annotations

import threading


class _FileEntry:
    __slots__ = ("data", "lock")

    def __init__(self):
        self.data = bytearray()
        self.lock = threading.Lock()


class PFSStore:
    """A flat namespace of files with positional I/O.

    Statistics (bytes read/written, op counts) are tracked for the
    benchmark harness.
    """

    def __init__(self):
        self._files: dict[str, _FileEntry] = {}
        self._lock = threading.Lock()
        self.bytes_written = 0
        self.bytes_read = 0
        self.n_creates = 0
        self.n_opens = 0

    # -- namespace ------------------------------------------------------------

    def create(self, name: str, truncate: bool = True) -> "FileHandle":
        """Create (or truncate) a file and return a handle."""
        with self._lock:
            entry = self._files.get(name)
            if entry is None:
                entry = _FileEntry()
                self._files[name] = entry
            elif truncate:
                entry.data = bytearray()
            else:
                raise FileExistsError(f"file exists: {name}")
            self.n_creates += 1
        return FileHandle(self, name, entry)

    def open_or_create(self, name: str) -> "FileHandle":
        """Open ``name``, creating it (empty) if absent. Atomic, so
        concurrent writers sharing a file never truncate each other."""
        with self._lock:
            entry = self._files.get(name)
            if entry is None:
                entry = _FileEntry()
                self._files[name] = entry
                self.n_creates += 1
            else:
                self.n_opens += 1
        return FileHandle(self, name, entry)

    def open(self, name: str) -> "FileHandle":
        """Open an existing file."""
        with self._lock:
            entry = self._files.get(name)
            if entry is None:
                raise FileNotFoundError(f"no such file: {name}")
            self.n_opens += 1
        return FileHandle(self, name, entry)

    def exists(self, name: str) -> bool:
        """True when ``name`` exists."""
        with self._lock:
            return name in self._files

    def unlink(self, name: str) -> None:
        """Remove ``name`` from the namespace."""
        with self._lock:
            if name not in self._files:
                raise FileNotFoundError(f"no such file: {name}")
            del self._files[name]

    def listdir(self) -> list[str]:
        """Sorted names of all stored files."""
        with self._lock:
            return sorted(self._files)

    def size(self, name: str) -> int:
        """Size of ``name`` in bytes."""
        with self._lock:
            entry = self._files.get(name)
            if entry is None:
                raise FileNotFoundError(f"no such file: {name}")
            return len(entry.data)


class FileHandle:
    """Positional read/write access to one stored file."""

    __slots__ = ("_store", "name", "_entry")

    def __init__(self, store: PFSStore, name: str, entry: _FileEntry):
        self._store = store
        self.name = name
        self._entry = entry

    def pwrite(self, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset``, growing the file as needed."""
        blob = bytes(data)
        with self._entry.lock:
            end = offset + len(blob)
            if end > len(self._entry.data):
                self._entry.data.extend(b"\0" * (end - len(self._entry.data)))
            self._entry.data[offset:end] = blob
        self._store.bytes_written += len(blob)

    def pread(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset`` (short read past EOF)."""
        with self._entry.lock:
            out = bytes(self._entry.data[offset:offset + length])
        self._store.bytes_read += len(out)
        return out

    @property
    def size(self) -> int:
        """Current file size in bytes."""
        with self._entry.lock:
            return len(self._entry.data)
