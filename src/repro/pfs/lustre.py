"""Lustre-like parallel file system cost model.

Charges virtual time for opens, metadata operations and bulk transfers.
The constants are calibrated (see ``DESIGN.md`` and ``EXPERIMENTS.md``)
so that collective HDF5-style file I/O on the simulated machine is
orders of magnitude slower than in situ messaging, with metadata/lock
contention that grows with the process count -- the regime measured on
Theta's Lustre scratch in the paper (Figs. 5-6, Table II).

The dominant effects modeled:

- **MDS serialization**: collective file opens/creates funnel through one
  metadata server, so cost grows with the number of processes.
- **OST striping**: aggregate bandwidth is capped by
  ``stripe_count * ost_bandwidth`` ("medium striping" per NERSC's
  recommendation, which the paper used).
- **Extent-lock contention**: many writers to one shared file degrade
  effective bandwidth roughly linearly in ``nprocs / stripe_count``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class LustreModel:
    """Cost model for a Lustre-like shared parallel file system.

    Parameters
    ----------
    ost_bandwidth:
        Per-OST (object storage target) streaming bandwidth, bytes/s.
    stripe_count:
        Number of OSTs a shared file is striped over.
    open_base:
        Fixed cost of a collective open/create of a shared file. Large on
        real systems for a full-machine collective against one MDS.
    mds_op:
        Serialized per-process metadata cost added to collective
        open/close (MDS round trip per rank).
    md_small_op:
        Cost of one small metadata operation (create group/dataset,
        attribute write) once the file is open.
    lock_factor:
        Strength of extent-lock contention: effective bandwidth is
        divided by ``1 + lock_factor * max(0, nprocs/stripe_count - 1)``.
    independent_penalty:
        Multiplier on transfer time for non-collective (independent) I/O.
    ost_factors:
        Optional per-OST bandwidth multipliers (fault injection: a slow
        OST has a factor below 1). Striped I/O proceeds at the pace of
        the slowest stripe, so one degraded OST drags the whole file;
        empty means all OSTs are healthy.
    """

    ost_bandwidth: float = 500e6
    stripe_count: int = 8
    open_base: float = 1.0
    mds_op: float = 2.0e-4
    md_small_op: float = 2.0e-3
    lock_factor: float = 0.4
    independent_penalty: float = 3.0
    ost_factors: tuple = ()

    # -- metadata ------------------------------------------------------------

    def open_time(self, nprocs: int) -> float:
        """Collective open/create of a shared file by ``nprocs`` ranks."""
        return self.open_base + self.mds_op * nprocs

    def close_time(self, nprocs: int) -> float:
        """Collective close (flush + MDS update)."""
        return 0.25 * self.open_time(nprocs)

    def metadata_op_time(self, nops: int = 1) -> float:
        """Small metadata operations (object creates, attribute writes)."""
        return self.md_small_op * nops

    # -- bulk data ---------------------------------------------------------------

    def slowest_ost_factor(self) -> float:
        """Bandwidth factor of the slowest OST this file is striped over.

        Striped transfers finish when the slowest stripe does, so the
        whole file runs at this factor (capped at 1: a faster-than-
        nominal OST cannot speed up its peers).
        """
        if not self.ost_factors:
            return 1.0
        used = self.ost_factors[: self.stripe_count]
        return min(min(used), 1.0) if used else 1.0

    def stripe_peak(self) -> float:
        """Peak aggregate bandwidth over the stripe set, degraded by the
        slowest OST."""
        return self.stripe_count * self.ost_bandwidth \
            * self.slowest_ost_factor()

    def aggregate_bandwidth(self, nprocs: int) -> float:
        """Effective aggregate bandwidth of ``nprocs`` writers/readers
        sharing one striped file."""
        peak = self.stripe_peak()
        contention = 1.0 + self.lock_factor * max(
            0.0, nprocs / self.stripe_count - 1.0
        )
        return peak / contention

    def write_time(self, total_bytes: int, nprocs: int,
                   collective: bool = True) -> float:
        """Time for ``nprocs`` ranks to write ``total_bytes`` to one file.

        For collective I/O ``total_bytes`` is the global amount (the cost
        is charged identically on every participant); for independent
        I/O it is the caller's local amount, and the caller only gets a
        ``1/nprocs`` share of the aggregate bandwidth, degraded further
        by the non-contiguous-access penalty.
        """
        if collective:
            t = total_bytes / self.aggregate_bandwidth(nprocs)
        else:
            share = self.aggregate_bandwidth(nprocs) / max(1, nprocs)
            t = self.independent_penalty * total_bytes / share
        # Two-phase aggregation adds a latency term per participant tree.
        t += 1e-4 * math.log2(max(2, nprocs))
        return t

    def read_time(self, total_bytes: int, nprocs: int,
                  collective: bool = True) -> float:
        """Time for ``nprocs`` ranks to read ``total_bytes`` from one file.

        Reads dodge extent-lock contention (no dirty extents), so they
        see closer-to-peak bandwidth; real Nyx/Reeber measurements show
        reads far cheaper than writes (paper Table II).
        """
        t = total_bytes / self.stripe_peak()
        if not collective:
            t *= self.independent_penalty
        t += 1e-4 * math.log2(max(2, nprocs))
        return t
