"""Workflow task descriptions and per-rank execution context."""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass
class Task:
    """One task (separate 'executable') of the workflow.

    Attributes
    ----------
    name:
        Unique task name, used to address links.
    nprocs:
        Number of simulated MPI processes allocated to the task.
    main:
        ``main(ctx)`` run on every rank of the task.
    """

    name: str
    nprocs: int
    main: object

    def __post_init__(self):
        if self.nprocs < 1:
            raise ValueError(f"task {self.name!r} needs nprocs >= 1")


class TaskContext:
    """What a task rank sees: its comm, its links, shared singletons."""

    def __init__(self, task: Task, comm, world, links: dict):
        self.task = task
        #: This task's local communicator.
        self.comm = comm
        #: The whole-job communicator (rarely needed; Henson-style jobs
        #: keep tasks isolated).
        self.world = world
        self._links = links
        self._singletons = {}
        self._singleton_lock = threading.Lock()

    @property
    def name(self) -> str:
        """This task's name."""
        return self.task.name

    @property
    def rank(self) -> int:
        """This rank within the task."""
        return self.comm.rank

    @property
    def size(self) -> int:
        """Number of ranks in the task."""
        return self.comm.size

    def intercomm(self, other: str):
        """The intercommunicator linking this task with task ``other``."""
        try:
            return self._links[other]
        except KeyError:
            raise KeyError(
                f"task {self.task.name!r} has no link to {other!r}; "
                f"available: {sorted(self._links)}"
            ) from None

    @property
    def links(self) -> dict:
        """All links of this task, keyed by peer task name."""
        return dict(self._links)

    def singleton(self, key: str, factory):
        """Create-once-per-task shared object (e.g. the task's VOL).

        Every rank calls this; the first caller runs ``factory()`` and
        all ranks get the same object back.
        """
        with self._singleton_lock:
            if key not in self._singletons:
                self._singletons[key] = factory()
            return self._singletons[key]

    # -- streaming ---------------------------------------------------------

    def stream_producer(self, other: str, name: str, vol, config=None):
        """A :class:`~repro.stream.StreamProducer` publishing stream
        ``name`` to task ``other`` over this task's link.

        ``other`` may be a list of peer task names to fan the stream
        out to several consumer tasks.
        """
        from repro.stream import StreamProducer

        peers = [other] if isinstance(other, str) else list(other)
        inters = [self.intercomm(p) for p in peers]
        return StreamProducer(vol, self.comm, inters, name, config=config)

    def stream_consumer(self, other: str, name: str, vol, config=None):
        """A :class:`~repro.stream.StreamConsumer` subscribed to stream
        ``name`` published by task ``other``."""
        from repro.stream import StreamConsumer

        return StreamConsumer(vol, self.comm, self.intercomm(other),
                              name, config=config)
