"""Workflow runner: allocate ranks, wire intercomms, run the task graph."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simmpi import Engine, Intercomm, NetworkModel, RankFailure
from repro.workflow.task import Task, TaskContext


@dataclass(frozen=True)
class RestartPolicy:
    """What the runner does when a simulated rank crashes.

    Attributes
    ----------
    max_retries:
        Whole-workflow reruns allowed after a
        :class:`~repro.simmpi.RankFailure` (the fault plan is carried
        over, so a ``times=1`` crash fires once and the retry runs
        clean).
    on_exhausted:
        ``"raise"`` re-raises the failure once retries are spent;
        ``"continue"`` drops the failed task and everything connected
        to it, then reruns the independent remainder of the graph.
    """

    max_retries: int = 0
    on_exhausted: str = "raise"

    def __post_init__(self):
        if self.on_exhausted not in ("raise", "continue"):
            raise ValueError(
                "on_exhausted must be 'raise' or 'continue'"
            )


@dataclass
class WorkflowResult:
    """Result of a workflow run.

    Attributes
    ----------
    vtime:
        Simulated completion time (max over every rank of every task).
    returns:
        ``{task name: [per-rank return values]}``.
    messages, bytes_sent:
        Total traffic (point-to-point) across the whole job.
    """

    vtime: float
    returns: dict = field(default_factory=dict)
    messages: int = 0
    bytes_sent: int = 0
    #: Communication trace (populated when ``run(trace=True)``).
    trace: list = field(default_factory=list)
    #: The run's :class:`~repro.obs.ObsContext` (metrics, spans,
    #: flight recorder) -- always populated.
    obs: object = None
    #: Final virtual clock of every rank of the successful attempt.
    clocks: list = field(default_factory=list)
    #: How many runs it took (1 = no restart was needed).
    attempts: int = 1
    #: Tasks dropped by a ``RestartPolicy(on_exhausted="continue")``.
    failed_tasks: tuple = ()

    def causal_report(self, tol: float = 1e-9):
        """Causal analysis of the run: critical path, wait-state
        classification, per-rank conservation check.

        Returns a :class:`~repro.obs.critpath.CausalReport`; ``tol`` is
        the conservation tolerance in virtual seconds.
        """
        from repro.obs.critpath import analyze

        if self.obs is None or not self.clocks:
            raise ValueError(
                "causal_report() needs the run's obs and clocks"
            )
        return analyze(self.obs, self.clocks, tol=tol)

    def run_record(self, workload: str, **kw):
        """Distill this run into a ledger
        :class:`~repro.obs.ledger.RunRecord` (see
        :func:`repro.obs.ledger.record_from_result` for the keyword
        arguments: ``mode``, ``params``, ``seed``, ``costs``,
        ``wall_seconds``, ``extra``...)."""
        from repro.obs.ledger import record_from_result

        return record_from_result(self, workload, **kw)


class Workflow:
    """A directed graph of tasks linked producer -> consumer.

    Ranks are allocated contiguously in task-insertion order (like a
    Henson job script listing executables with process counts). Links
    create intercommunicators; arbitrary fan-in/fan-out is allowed
    (paper Sec. I: "more than one task can produce ... and more than one
    task can consume").
    """

    def __init__(self):
        self._tasks: list[Task] = []
        self._links: list[tuple[str, str]] = []

    def add_task(self, name: str, nprocs: int, main) -> None:
        """Declare a task; ``main(ctx)`` runs on each of its ranks."""
        if any(t.name == name for t in self._tasks):
            raise ValueError(f"duplicate task name {name!r}")
        self._tasks.append(Task(name, nprocs, main))

    def add_link(self, producer: str, consumer: str) -> None:
        """Declare a producer -> consumer link (an intercommunicator)."""
        names = {t.name for t in self._tasks}
        for n in (producer, consumer):
            if n not in names:
                raise ValueError(f"unknown task {n!r}")
        if producer == consumer:
            raise ValueError("a task cannot link to itself")
        self._links.append((producer, consumer))

    @property
    def total_procs(self) -> int:
        """Total simulated ranks across all tasks."""
        return sum(t.nprocs for t in self._tasks)

    @classmethod
    def from_spec(cls, spec: dict) -> "Workflow":
        """Build a workflow from a declarative description.

        ADIOS describes data in an external XML file and Decaf wires its
        graph from a Python driver; this is the equivalent here::

            Workflow.from_spec({
                "tasks": [
                    {"name": "sim", "nprocs": 4, "main": simulate},
                    {"name": "ana", "nprocs": 2,
                     "main": "mypkg.analysis:main"},
                ],
                "links": [["sim", "ana"]],
            })

        ``main`` is a callable or a ``"module:attribute"`` entry-point
        string (resolved with :func:`importlib.import_module`).
        """
        import importlib

        wf = cls()
        tasks = spec.get("tasks")
        if not tasks:
            raise ValueError("spec needs a non-empty 'tasks' list")
        for t in tasks:
            try:
                name, nprocs, main = t["name"], t["nprocs"], t["main"]
            except (KeyError, TypeError) as exc:
                raise ValueError(
                    f"task entries need name/nprocs/main: {t!r}"
                ) from exc
            if isinstance(main, str):
                mod_name, _, attr = main.partition(":")
                if not attr:
                    raise ValueError(
                        f"entry point {main!r} must be 'module:attr'"
                    )
                main = getattr(importlib.import_module(mod_name), attr)
            if not callable(main):
                raise ValueError(f"task {name!r} main is not callable")
            wf.add_task(name, int(nprocs), main)
        for link in spec.get("links", []):
            prod, cons = link
            wf.add_link(prod, cons)
        return wf

    def run(self, model: NetworkModel | None = None,
            timeout: float = 60.0, trace: bool = False, faults=None,
            restart: RestartPolicy | None = None,
            obs=None) -> WorkflowResult:
        """Execute the workflow on a fresh simulated machine.

        With ``trace=True`` every communication event is recorded and
        returned as ``WorkflowResult.trace`` (see
        :mod:`repro.tools.timeline`). ``faults`` installs a
        :class:`~repro.faults.FaultPlan` on the machine; ``restart``
        governs recovery when an injected crash kills a rank (default:
        the :class:`~repro.simmpi.RankFailure` propagates). ``obs``
        overrides the machine's observability context -- pass a
        :class:`~repro.obs.noop.NullObsContext` to run with telemetry
        disabled (overhead measurement).
        """
        if not self._tasks:
            raise ValueError("no tasks declared")
        policy = restart if restart is not None else RestartPolicy()
        include = [t.name for t in self._tasks]
        failed_tasks: list[str] = []
        attempts = 0
        tries_here = 0  # runs of the *current* task subset
        while True:
            attempts += 1
            tries_here += 1
            try:
                result = self._run_once(include, model, timeout, trace,
                                        faults, attempts, obs)
            except RankFailure as exc:
                if tries_here <= policy.max_retries:
                    continue
                if policy.on_exhausted != "continue":
                    raise
                dead = self._component_of(include,
                                          self._task_of_rank(include,
                                                             exc.rank))
                failed_tasks.extend(sorted(dead))
                include = [n for n in include if n not in dead]
                if not include:
                    raise  # nothing independent left to salvage
                tries_here = 0
                continue
            result.attempts = attempts
            result.failed_tasks = tuple(failed_tasks)
            return result

    # -- restart support ---------------------------------------------------

    def _task_of_rank(self, include: list, world_rank: int) -> str:
        """Task owning ``world_rank`` under the ``include`` allocation."""
        start = 0
        for t in self._tasks:
            if t.name not in include:
                continue
            if start <= world_rank < start + t.nprocs:
                return t.name
            start += t.nprocs
        raise ValueError(f"rank {world_rank} belongs to no task")

    def _component_of(self, include: list, name: str) -> set:
        """Tasks reachable from ``name`` over links (either direction),
        restricted to ``include``: losing one task poisons everything it
        feeds or is fed by, but independent chains survive."""
        alive = set(include)
        component = {name}
        frontier = [name]
        while frontier:
            cur = frontier.pop()
            for a, b in self._links:
                for nxt in ((b,) if a == cur else ()) + \
                        ((a,) if b == cur else ()):
                    if nxt in alive and nxt not in component:
                        component.add(nxt)
                        frontier.append(nxt)
        return component

    def _run_once(self, include: list, model, timeout: float, trace: bool,
                  faults, attempt: int, obs=None) -> WorkflowResult:
        """One machine run of the tasks named in ``include``."""
        tasks = [t for t in self._tasks if t.name in include]
        engine = Engine(sum(t.nprocs for t in tasks), model=model,
                        timeout=timeout, trace=trace, faults=faults,
                        obs=obs)
        engine.obs.sample("workflow.attempt", 0.0, attempt)

        # Contiguous rank ranges per task.
        ranges: dict[str, list[int]] = {}
        start = 0
        for t in tasks:
            ranges[t.name] = list(range(start, start + t.nprocs))
            engine.obs.set_task(t.name, ranges[t.name])
            start += t.nprocs

        # One intercomm pair per link, shared objects across threads.
        links: dict[str, dict[str, Intercomm]] = {t.name: {} for t in tasks}
        for prod, cons in self._links:
            if prod not in ranges or cons not in ranges:
                continue
            p_view, c_view = Intercomm.create(
                engine, ranges[prod], ranges[cons]
            )
            links[prod][cons] = p_view
            links[cons][prod] = c_view

        task_of_rank: dict[int, Task] = {}
        for t in tasks:
            for r in ranges[t.name]:
                task_of_rank[r] = t

        contexts: dict[str, TaskContext] = {}

        def main(world):
            me = task_of_rank[world.rank]
            color = tasks.index(me)
            local = world.split(color)
            if world.rank == ranges[me.name][0]:
                contexts[me.name] = TaskContext(
                    me, local, world, links[me.name]
                )
            world.barrier()  # all contexts constructed
            ctx = contexts[me.name]
            # Each rank re-binds the local comm (same shared object works
            # for all ranks of the task; split returned equivalent comms).
            with engine.obs.span(world, f"task.{me.name}", cat="workflow",
                                 task=me.name, task_rank=ctx.rank):
                return me.main(ctx)

        res = engine.run(main)
        returns = {
            t.name: [res.returns[r] for r in ranges[t.name]]
            for t in tasks
        }
        return WorkflowResult(
            vtime=res.vtime,
            returns=returns,
            messages=res.messages,
            bytes_sent=res.bytes_sent,
            trace=engine.sorted_trace() if trace else [],
            obs=engine.obs,
            clocks=res.clocks,
        )
