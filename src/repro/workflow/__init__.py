"""Henson-like workflow runner.

The paper orchestrates unmodified tasks (Nyx, Reeber) with a Python
script using Henson: tasks are colocated in one job, each gets a slice
of the MPI world, and LowFive intercommunicators connect them. This
package provides that orchestration for simulated tasks:

    wf = Workflow()
    wf.add_task("sim", nprocs=6, main=simulation)
    wf.add_task("ana", nprocs=2, main=analysis)
    wf.add_link("sim", "ana")          # producer -> consumer
    result = wf.run()

Each task ``main(ctx)`` receives a :class:`~repro.workflow.task.TaskContext`
with its local communicator, intercommunicators to linked tasks, and a
per-task singleton helper for shared objects (e.g. one VOL per task).
"""

from repro.workflow.task import Task, TaskContext
from repro.workflow.runner import RestartPolicy, Workflow, WorkflowResult

__all__ = ["Task", "TaskContext", "RestartPolicy", "Workflow",
           "WorkflowResult"]
