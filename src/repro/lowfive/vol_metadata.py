"""Metadata VOL: the in-memory replica of the HDF5 hierarchy.

Paper Sec. III-A(b): "we redefine most of the functions in the base
layer with their in-memory metadata counterparts ... we manage our own
tree of HDF5 objects (files, groups, datasets, attributes, etc.) that
replicates the user's HDF5 data model."

Each *rank* owns its own tree per file (the data pieces it wrote are
local), while object metadata is replicated across ranks because object
creation is collective in the user code. A dataset's data is stored
deep (private copy) or shallow (zero-copy reference to the user buffer)
according to :class:`~repro.lowfive.config.LowFiveConfig`.

Files matching *passthru* patterns are additionally (or only) forwarded
to the underlying native VOL -- that is LowFive's *file mode*.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.h5.datatype import as_datatype
from repro.h5.errors import NotFoundError
from repro.h5.objects import (
    DatasetNode,
    FileNode,
    GroupNode,
    OWN_DEEP,
    OWN_SHALLOW,
)
from repro.lowfive.config import CostConfig, LowFiveConfig
from repro.lowfive.vol_base import LowFiveBase


@dataclass
class LFFile:
    """Per-rank state of one LowFive-intercepted file."""

    fname: str
    comm: object
    mode: str
    root: FileNode | None  # in-memory hierarchy (None when not intercepted)
    under_token: object | None  # native token when passthru
    #: RPC client towards the producer task when this file was opened
    #: remotely by a consumer (set by the distributed VOL).
    remote_client: object | None = None


@dataclass
class LFToken:
    """LowFive VOL token: a node of our tree plus optional under-token."""

    fstate: LFFile
    node: object | None  # our tree node, or None for pure passthrough
    under: object | None  # underlying connector's token, when mirrored

    @property
    def comm(self):
        """The owning task's communicator."""
        return self.fstate.comm


class MetadataVOL(LowFiveBase):
    """In-memory metadata hierarchy with optional file passthrough.

    Parameters
    ----------
    under:
        Underlying connector for passthrough (usually
        :class:`~repro.h5.native.NativeVOL`); optional when every file is
        memory-only.
    config:
        Pattern rules; defaults to memory-everything (``set_memory("*")``
        is applied when no rule is given would be surprising, so the
        default config intercepts nothing -- callers declare patterns).
    costs:
        Software-stack cost constants charged to the virtual clock.
    """

    name = "lowfive-metadata"

    def __init__(self, under=None, config: LowFiveConfig | None = None,
                 costs: CostConfig | None = None):
        super().__init__(under)
        self.config = config if config is not None else LowFiveConfig()
        self.costs = costs if costs is not None else CostConfig()
        self._trees: dict[tuple[int, str], FileNode] = {}
        self._lock = threading.Lock()

    # -- convenience passthroughs to the config ---------------------------

    def set_memory(self, file_pattern: str, dset_pattern: str = "*"):
        """Declare matching datasets in-memory (in situ transport)."""
        self.config.set_memory(file_pattern, dset_pattern)

    def set_passthru(self, file_pattern: str, dset_pattern: str = "*"):
        """Declare matching operations forwarded to physical storage."""
        self.config.set_passthru(file_pattern, dset_pattern)

    def set_zero_copy(self, file_pattern: str, dset_pattern: str = "*"):
        """Declare matching datasets zero-copy (shallow references)."""
        self.config.set_zero_copy(file_pattern, dset_pattern)

    # -- cost charging --------------------------------------------------------

    @staticmethod
    def _rank_key(comm) -> int:
        return 0 if comm is None else comm.rank

    def _charge_op(self, comm) -> None:
        if comm is not None:
            comm.compute(self.costs.per_h5_op)

    def _charge_elements(self, comm, nelements: int) -> None:
        if comm is not None:
            comm.compute(self.costs.per_element_handle * nelements)

    # -- tree bookkeeping ---------------------------------------------------------

    def _tree_key(self, comm, fname: str) -> tuple[int, str]:
        return (self._rank_key(comm), fname)

    def get_tree(self, comm, fname: str) -> FileNode | None:
        """This rank's in-memory hierarchy for ``fname`` (or None)."""
        with self._lock:
            return self._trees.get(self._tree_key(comm, fname))

    def drop_file(self, comm, fname: str) -> None:
        """Forget this rank's in-memory hierarchy for ``fname``."""
        with self._lock:
            self._trees.pop(self._tree_key(comm, fname), None)

    # -- files ----------------------------------------------------------------------

    def file_create(self, fname, mode, fapl, comm):
        intercepted = self.config.file_intercepted(fname)
        passthru = self.config.file_passthru(fname) or not intercepted
        root = None
        if intercepted:
            root = FileNode(fname)
            with self._lock:
                self._trees[self._tree_key(comm, fname)] = root
        under_token = None
        if passthru:
            under_token = self._require_under().file_create(
                fname, mode, fapl, comm
            )
        self._charge_op(comm)
        fstate = LFFile(fname, comm, mode, root, under_token)
        return LFToken(fstate, root, under_token)

    def file_open(self, fname, mode, fapl, comm):
        intercepted = self.config.file_intercepted(fname)
        if intercepted:
            root = self.get_tree(comm, fname)
            if root is not None:
                self._charge_op(comm)
                fstate = LFFile(fname, comm, mode, root, None)
                return LFToken(fstate, root, None)
            # Intercepted but nothing in memory on this rank: fall back
            # to storage when possible (e.g. reading a checkpoint).
        under_token = self._require_under().file_open(fname, mode, fapl, comm)
        self._charge_op(comm)
        fstate = LFFile(fname, comm, mode, None, under_token)
        return LFToken(fstate, None, under_token)

    def file_close(self, ftoken):
        if ftoken.fstate.under_token is not None:
            self._require_under().file_close(ftoken.fstate.under_token)
        self._charge_op(ftoken.comm)
        # The in-memory tree survives the close: a consumer in the same
        # task may reopen it, and the distributed VOL serves from it.

    def file_flush(self, ftoken):
        if ftoken.fstate.under_token is not None:
            self._require_under().file_flush(ftoken.fstate.under_token)

    # -- groups ------------------------------------------------------------------------

    def group_create(self, parent, name):
        node = None
        if parent.node is not None:
            pnode = parent.node
            assert isinstance(pnode, GroupNode)
            node = pnode.children.get(name)
            if node is None:
                node = pnode.add_child(GroupNode(name))
        under = None
        if parent.under is not None:
            under = self._require_under().group_create(parent.under, name)
        self._charge_op(parent.comm)
        return LFToken(parent.fstate, node, under)

    def group_open(self, parent, name):
        node = None
        if parent.node is not None:
            node = parent.node.lookup(name)
            if not isinstance(node, GroupNode):
                raise NotFoundError(f"{name!r} is not a group")
        under = None
        if parent.under is not None:
            under = self._require_under().group_open(parent.under, name)
        return LFToken(parent.fstate, node, under)

    # -- datasets -----------------------------------------------------------------------

    def _dset_path(self, token) -> str:
        return token.node.path if token.node is not None else "*"

    def dataset_create(self, parent, name, dtype, space, dcpl):
        dtype = as_datatype(dtype)
        node = None
        if parent.node is not None:
            pnode = parent.node
            node = pnode.children.get(name)
            if node is None:
                fill = dcpl.fill_value if dcpl is not None else None
                chunks = dcpl.chunks if dcpl is not None else None
                node = pnode.add_child(
                    DatasetNode(name, dtype, space, fill_value=fill,
                                chunks=chunks)
                )
        under = None
        if parent.under is not None:
            under = self._require_under().dataset_create(
                parent.under, name, dtype, space, dcpl
            )
        self._charge_op(parent.comm)
        return LFToken(parent.fstate, node, under)

    def dataset_open(self, parent, name):
        node = None
        if parent.node is not None:
            node = parent.node.lookup(name)
            if not isinstance(node, DatasetNode):
                raise NotFoundError(f"{name!r} is not a dataset")
        under = None
        if parent.under is not None:
            under = self._require_under().dataset_open(parent.under, name)
        return LFToken(parent.fstate, node, under)

    def dataset_meta(self, dtoken):
        if dtoken.node is not None:
            return dtoken.node.dtype, dtoken.node.space
        return self._require_under().dataset_meta(dtoken.under)

    def dataset_resize(self, dtoken, new_shape):
        if dtoken.node is not None:
            dtoken.node.resize(new_shape)
        if dtoken.under is not None:
            self._require_under().dataset_resize(dtoken.under, new_shape)
        self._charge_op(dtoken.comm)

    def dataset_write(self, dtoken, selection, data, dxpl):
        comm = dtoken.comm
        fname = dtoken.fstate.fname
        if dtoken.node is not None:
            path = dtoken.node.path
            if self.config.is_memory(fname, path) or dtoken.under is None:
                zero_copy = self.config.is_zero_copy(fname, path)
                ownership = OWN_SHALLOW if zero_copy else OWN_DEEP
                piece = dtoken.node.write(selection, data, ownership)
                self._charge_op(comm)
                self._charge_elements(comm, selection.npoints)
                if not zero_copy and comm is not None:
                    comm.charge_memcpy(piece.nbytes)
        if dtoken.under is not None:
            self._require_under().dataset_write(
                dtoken.under, selection, data, dxpl
            )

    def dataset_read(self, dtoken, selection, dxpl):
        comm = dtoken.comm
        node = dtoken.node
        if node is not None and (node.pieces or dtoken.under is None):
            values = node.read(selection)
            self._charge_op(comm)
            self._charge_elements(comm, selection.npoints)
            return values
        return self._require_under().dataset_read(
            dtoken.under, selection, dxpl
        )

    # -- attributes -------------------------------------------------------------------------

    def attr_create(self, obj, name, dtype, space):
        dtype = as_datatype(dtype)
        node = None
        if obj.node is not None:
            existing = obj.node.attributes.get(name)
            if existing is not None and (existing.dtype != dtype
                                         or existing.space != space):
                del obj.node.attributes[name]
                existing = None
            node = existing if existing is not None else \
                obj.node.create_attribute(name, dtype, space)
        under = None
        if obj.under is not None:
            under = self._require_under().attr_create(
                obj.under, name, dtype, space
            )
        self._charge_op(obj.comm)
        return LFToken(obj.fstate, node, under)

    def attr_open(self, obj, name):
        node = None
        if obj.node is not None:
            node = obj.node.get_attribute(name)
        under = None
        if obj.under is not None:
            under = self._require_under().attr_open(obj.under, name)
        return LFToken(obj.fstate, node, under)

    def attr_write(self, atoken, value):
        if atoken.node is not None:
            atoken.node.write(value)
        if atoken.under is not None:
            self._require_under().attr_write(atoken.under, value)
        self._charge_op(atoken.comm)

    def attr_read(self, atoken):
        if atoken.node is not None:
            return atoken.node.read()
        return self._require_under().attr_read(atoken.under)

    def attr_list(self, obj):
        if obj.node is not None:
            return sorted(obj.node.attributes)
        return self._require_under().attr_list(obj.under)

    # -- links ----------------------------------------------------------------------------------

    def link_exists(self, parent, path):
        if parent.node is not None:
            return parent.node.exists(path)
        return self._require_under().link_exists(parent.under, path)

    def links(self, parent):
        if parent.node is not None:
            out = []
            for name in sorted(parent.node.children):
                child = parent.node.children[name]
                kind = "dataset" if isinstance(child, DatasetNode) else "group"
                out.append((name, kind))
            return out
        return self._require_under().links(parent.under)

    def object_open(self, parent, path):
        if parent.node is not None:
            node = parent.node.lookup(path)
            kind = "dataset" if isinstance(node, DatasetNode) else "group"
            under = None
            if parent.under is not None:
                _, under = self._require_under().object_open(
                    parent.under, path
                )
            return kind, LFToken(parent.fstate, node, under)
        kind, under = self._require_under().object_open(parent.under, path)
        return kind, LFToken(parent.fstate, None, under)

    def link_delete(self, parent, name):
        if parent.node is not None:
            parent.node.remove_child(name)
        if parent.under is not None:
            self._require_under().link_delete(parent.under, name)
        self._charge_op(parent.comm)
