"""Distributed metadata VOL: index-serve-query redistribution.

Paper Sec. III-A(c) and III-B. Producers and consumers are separate
tasks with their own communicators, linked by intercommunicators. The
producer and consumer implicitly agree on the *common decomposition* of
each dataset (a regular grid of ``n`` blocks, ``n`` = number of producer
processes, block ``i`` owned by producer ``i``); redistribution then
proceeds in three phases:

- **Index** (Algorithm 1): at file close, every producer sends the
  bounding boxes of its written data spaces to the owners of the common
  blocks they intersect (implemented as one all-to-all over the producer
  communicator -- "indexing the dataset is a collective operation").
- **Serve** (Algorithm 2): producers answer consumer queries until all
  consumer ranks signal done (at their file close).
- **Query** (Algorithm 3): to read a data space, a consumer asks the
  common-block owners which producers hold intersecting data, then
  requests the actual intersections from those producers, point-to-point
  and fully parallel.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from fnmatch import fnmatchcase

import numpy as np

from repro.diy import Bounds, RegularDecomposer
from repro.h5 import format as h5format
from repro.h5.errors import NotFoundError
from repro.h5.objects import DatasetNode, FileNode, GroupNode
from repro.lowfive.profile import PhaseStats, Profiler
from repro.lowfive.reduce import reduced_nbytes, reduction_stride, subsample
from repro.obs import obs_of, span as obs_span
from repro.lowfive.rpc import Defer, Reply, RetryPolicy, RPCClient, RPCServer
from repro.simmpi import payload_nbytes
from repro.lowfive.vol_metadata import LFFile, LFToken, MetadataVOL


@dataclass
class IndexedBox:
    """One indexed bounding box: who wrote data intersecting my block."""

    bounds: Bounds
    owner: int  # producer rank holding the actual data


def _skeleton_bytes(root: FileNode) -> bytes:
    """Serialize the metadata hierarchy without any data payloads."""
    copy = FileNode(root.name)

    def clone(src, dst_parent):
        for name in sorted(src.children):
            child = src.children[name]
            if isinstance(child, DatasetNode):
                node = DatasetNode(name, child.dtype, child.space,
                                   fill_value=child.fill_value)
                dst_parent.add_child(node)
            else:
                node = dst_parent.add_child(GroupNode(name))
                clone(child, node)
            for aname, attr in child.attributes.items():
                a = node.create_attribute(aname, attr.dtype, attr.space)
                if attr.value is not None:
                    a.write(attr.value)
        return dst_parent

    for aname, attr in root.attributes.items():
        a = copy.create_attribute(aname, attr.dtype, attr.space)
        if attr.value is not None:
            a.write(attr.value)
    clone(root, copy)
    return h5format.encode_file(copy)


class _RankState:
    """Per-rank distributed state: RPC server + indexed boxes."""

    def __init__(self):
        self.server = RPCServer()
        # (fname, dset path) -> list[IndexedBox] for MY common block
        self.boxes: dict[tuple[str, str], list[IndexedBox]] = {}
        self.ready_files: set[str] = set()
        self.served_files: set[str] = set()  # closed + indexed
        self.handlers_installed = False


class DistMetadataVOL(MetadataVOL):
    """The full LowFive connector with in situ n-to-m redistribution.

    Parameters
    ----------
    comm:
        This task's (local) communicator; the index phase is collective
        over it.
    under, config, costs:
        As in :class:`~repro.lowfive.vol_metadata.MetadataVOL`.
    """

    name = "lowfive-distributed"

    def __init__(self, comm, under=None, config=None, costs=None):
        super().__init__(under, config, costs)
        self.comm = comm
        # The cost model owns telemetry sizing: bound the machine's
        # flight-recorder rings as configured.
        obs = obs_of(comm)
        if obs is not None:
            obs.flight.set_capacity(self.costs.flight_capacity)
        #: Retry policy every remote-file RPC client is built with, so
        #: metadata/intersects/read calls ride out injected losses.
        self.rpc_retry = RetryPolicy(
            max_retries=self.costs.rpc_max_retries,
            timeout=self.costs.rpc_timeout,
            backoff=self.costs.rpc_backoff,
        )
        self._producer_inters: list[tuple[str, object]] = []
        self._consumer_inters: list[tuple[str, object]] = []
        self._stream_inters: list[tuple[str, object]] = []
        self._stream_consumer_pats: list[str] = []
        self._rank_states: dict[int, _RankState] = {}
        self._state_lock = threading.Lock()
        self._push_patterns: list[str] = []
        #: Fine-grained per-phase profiling (paper Sec. V-C future work).
        self.profiler = Profiler()

    # -- wiring -----------------------------------------------------------

    def serve_on_close(self, file_pattern: str, inter) -> None:
        """Producer role: at close of matching files, index and serve
        consumers on ``inter`` until they are done."""
        self._producer_inters.append((file_pattern, inter))

    def set_consumer(self, file_pattern: str, inter) -> None:
        """Consumer role: open matching files remotely over ``inter``."""
        self._consumer_inters.append((file_pattern, inter))

    def stream_on_close(self, file_pattern: str, inter) -> None:
        """Streaming producer role: at close of matching epoch files,
        index and *register* them with this rank's server -- but do not
        park in a serve loop. The :class:`~repro.stream.StreamProducer`
        serves at its deterministic points (backpressure gate, final
        drain) instead. Idempotent per ``(pattern, inter)`` pair, so
        every rank of a task may wire the shared VOL."""
        if (file_pattern, inter) not in self._stream_inters:
            self._stream_inters.append((file_pattern, inter))

    def set_stream_consumer(self, file_pattern: str, inter) -> None:
        """Streaming consumer role: open matching epoch files remotely,
        but suppress the per-file ``__done__`` on close -- stream
        consumers release epochs explicitly (cumulative high-water
        marks) and send one final done at stream close. Idempotent."""
        if file_pattern not in self._stream_consumer_pats:
            self._stream_consumer_pats.append(file_pattern)
        if (file_pattern, inter) not in self._consumer_inters:
            self._consumer_inters.append((file_pattern, inter))

    def enable_push(self, file_pattern: str) -> None:
        """Producer-push extension (paper Sec. V-C direction: reduce
        synchronization / schedule communication).

        For matching files, producers proactively *push* each consumer
        rank's share of every dataset at file close -- assuming the
        consumer reads the regular block decomposition over its own rank
        count, which both sides compute independently (the same implicit
        agreement as the common decomposition). Reads covered by the
        pushed data are served locally with no query round trips; other
        selections transparently fall back to index-serve-query. Both
        sides must call this with the same pattern.
        """
        self._push_patterns.append(file_pattern)

    def _push_enabled(self, fname: str) -> bool:
        return any(fnmatchcase(fname, p) for p in self._push_patterns)

    def _rank_state(self) -> _RankState:
        key = self._rank_key(self.comm)
        with self._state_lock:
            st = self._rank_states.get(key)
            if st is None:
                st = _RankState()
                self._rank_states[key] = st
            return st

    def _producer_matches(self, fname: str):
        return [i for pat, i in self._producer_inters
                if fnmatchcase(fname, pat)]

    def _consumer_matches(self, fname: str):
        return [i for pat, i in self._consumer_inters
                if fnmatchcase(fname, pat)]

    def _stream_matches(self, fname: str):
        return [i for pat, i in self._stream_inters
                if fnmatchcase(fname, pat)]

    def _is_stream_consumed(self, fname: str) -> bool:
        return any(fnmatchcase(fname, p)
                   for p in self._stream_consumer_pats)

    # -- producer side: index (Algorithm 1) ----------------------------------

    def _index_file(self, fname: str) -> None:
        """Collective over the producer comm: exchange written bounding
        boxes so each rank indexes its common-decomposition block."""
        comm = self.comm
        with self.profiler.phase(self._rank_key(comm), "index", comm,
                                 file=fname):
            self._index_file_impl(fname)

    def _index_file_impl(self, fname: str) -> None:
        comm = self.comm
        root = self.get_tree(comm, fname)
        if root is None:
            return
        nprocs = comm.size
        outgoing: list[list] = [[] for _ in range(nprocs)]
        ntests = 0
        for node in root.walk():
            if not isinstance(node, DatasetNode):
                continue
            dec = RegularDecomposer(node.space.shape, nprocs)
            for piece in node.pieces:
                bb = Bounds.from_selection(piece.selection)
                gids = dec.blocks_intersecting(bb)
                ntests += max(1, len(gids))
                for gid in gids:
                    outgoing[gid].append(
                        (node.path, tuple(bb.min), tuple(bb.max))
                    )
        comm.compute(self.costs.per_box_test * ntests)
        # Synchronization skew of the collective index + close epoch.
        comm.compute(
            self.costs.sync_factor * 0.5
            * comm.model.epoch_jitter(comm.engine.nprocs)
        )
        incoming = comm.alltoall(outgoing)
        st = self._rank_state()
        for src, entries in enumerate(incoming):
            for path, bmin, bmax in entries:
                st.boxes.setdefault((fname, path), []).append(
                    IndexedBox(Bounds(bmin, bmax), src)
                )

    # -- producer-push extension ---------------------------------------------

    #: Tag for proactively pushed data bundles.
    TAG_PUSH = 705

    def _push_file(self, fname: str, inters) -> None:
        """Push each consumer rank's regular-block share of every
        dataset (one bundle message per consumer rank)."""
        comm = self.comm
        root = self.get_tree(comm, fname)
        if root is None:
            return
        with self.profiler.phase(self._rank_key(comm), "push", comm,
                                 file=fname):
            for inter in inters:
                ncons = inter.remote_size
                for crank in range(ncons):
                    bundle = []
                    nbytes = 0
                    for node in root.walk():
                        if not isinstance(node, DatasetNode):
                            continue
                        dec = RegularDecomposer(node.space.shape, ncons)
                        if crank >= dec.ngrid_blocks:
                            continue
                        blk = dec.block_bounds(crank).to_selection(
                            node.space.shape
                        )
                        for piece in node.pieces:
                            overlap = piece.selection.intersect(blk)
                            if overlap.npoints == 0:
                                continue
                            local = overlap.translate(
                                piece.selection.bounds()[0],
                                _box_shape(piece.selection),
                            )
                            if _is_dense(piece.selection):
                                src = piece.data.reshape(
                                    _box_shape(piece.selection)
                                )
                                values = local.extract(src)
                            else:
                                values = _gather_sparse(
                                    piece, overlap, node.dtype.np
                                )
                            bundle.append((node.path, overlap, values))
                            nbytes += int(values.nbytes)
                    comm.charge_memcpy(nbytes)
                    inter.send((fname, bundle), crank, self.TAG_PUSH)

    def _receive_pushes(self, fname: str, root: FileNode, comm, inter):
        """Consumer side: absorb one push bundle from every producer."""
        from repro.h5.objects import OWN_SHALLOW

        for _ in range(inter.remote_size):
            (fn, bundle), _st = inter.recv(tag=self.TAG_PUSH)
            for path, overlap, values in bundle:
                node = root.lookup(path)
                node.write(overlap, values, OWN_SHALLOW)

    @staticmethod
    def _covered(node: DatasetNode, selection) -> bool:
        """True when stored pieces fully cover ``selection``."""
        remaining = selection.npoints
        if remaining == 0:
            return True
        got = 0
        for piece in node.pieces:
            got += piece.selection.intersect(selection).npoints
        # Pushed pieces are disjoint (they tile the consumer block).
        return got >= remaining

    # -- producer side: serve (Algorithm 2) --------------------------------------

    def _install_handlers(self, st: _RankState) -> None:
        """Register the serve-side RPC handlers once per rank.

        Handlers are generic over file names; a request for a file this
        rank has not closed (and indexed) yet is deferred to the next
        serve epoch, which is how the consumer's open blocks until the
        producer's close signals that data are ready.
        """
        if st.handlers_installed:
            return
        st.handlers_installed = True
        comm = self.comm

        def _require_served(fname: str) -> FileNode:
            if fname not in st.served_files:
                raise Defer()
            root = self.get_tree(comm, fname)
            if root is None:
                raise NotFoundError(f"no in-memory file {fname!r}")
            return root

        def metadata(source, fname):
            root = _require_served(fname)
            blob = _skeleton_bytes(root)
            comm.charge_memcpy(len(blob))
            return blob

        def intersects(source, fname, path, qmin, qmax):
            _require_served(fname)
            qbb = Bounds(qmin, qmax)
            entries = st.boxes.get((fname, path), [])
            comm.compute(self.costs.per_box_test * max(1, len(entries)))
            return sorted({
                e.owner for e in entries if e.bounds.intersects(qbb)
            })

        def read(source, fname, path, selection):
            root = _require_served(fname)
            node = root.lookup(path)
            out = []
            nbytes = 0
            stride = reduction_stride(self.costs)
            comm.compute(self.costs.per_box_test * max(1, len(node.pieces)))
            for piece in node.pieces:
                overlap = piece.selection.intersect(selection)
                if overlap.npoints == 0:
                    continue
                if stride > 1:
                    overlap = subsample(overlap, stride)
                local = overlap.translate(
                    piece.selection.bounds()[0],
                    _box_shape(piece.selection),
                )
                if _is_dense(piece.selection):
                    src = piece.data.reshape(_box_shape(piece.selection))
                    values = local.extract(src)
                else:
                    values = _gather_sparse(piece, overlap, node.dtype.np)
                out.append((overlap, values))
                nbytes += int(values.nbytes)
            # Contiguous-region serialization: bulk copies, not per point
            # (paper Sec. IV-B(c): this is why LowFive beats the
            # hand-written per-point MPI code at small scale).
            comm.charge_memcpy(nbytes)
            if self.costs.reduction_level > 0:
                # Simulated compression stage: CPU cost per input byte,
                # wire bytes scaled down; the payload itself is intact.
                raw = payload_nbytes((True, out))
                comm.compute(self.costs.reduce_cost_per_byte * raw)
                return Reply(out, reduced_nbytes(raw, self.costs))
            return out

        st.server.register("metadata", metadata)
        st.server.register("intersects", intersects)
        st.server.register("read", read)

    def _serve_file(self, fname: str, inters) -> None:
        st = self._rank_state()
        self._install_handlers(st)
        st.served_files.add(fname)
        for inter in inters:
            st.server.attach(inter)
        with self.profiler.phase(self._rank_key(self.comm), "serve",
                                 self.comm, file=fname):
            st.server.serve()

    def _stream_register(self, fname: str, inters) -> None:
        """Epoch-aware serve: make a closed (indexed) epoch file
        servable without blocking in a serve loop."""
        st = self._rank_state()
        self._install_handlers(st)
        st.served_files.add(fname)
        for inter in inters:
            st.server.attach(inter)

    def rank_server(self) -> RPCServer:
        """This rank's serve-side RPC server, handlers installed.

        The streaming layer runs its backpressure and end-of-stream
        serve loops on it.
        """
        st = self._rank_state()
        self._install_handlers(st)
        return st.server

    # -- consumer side: query (Algorithm 3) -----------------------------------------

    def _remote_open(self, fname: str, mode, fapl, comm, inter):
        with self.profiler.phase(self._rank_key(comm), "metadata_open",
                                 comm, file=fname):
            return self._remote_open_impl(fname, mode, fapl, comm, inter)

    def _remote_open_impl(self, fname: str, mode, fapl, comm, inter):
        client = RPCClient(inter, retry=self.rpc_retry)
        me = 0 if comm is None else comm.rank
        dest = me % client.remote_size
        blob = client.call(dest, "metadata", fname)
        root = h5format.decode_file(blob, fname)
        self._charge_op(comm)
        if comm is not None:
            # Consumer-side share of the wait-for-close synchronization.
            comm.compute(
                self.costs.sync_factor * 0.5
                * comm.model.epoch_jitter(comm.engine.nprocs)
            )
        if self._push_enabled(fname):
            self._receive_pushes(fname, root, comm, inter)
        fstate = LFFile(fname, comm, "r", root, None, remote_client=client)
        return LFToken(fstate, root, None)

    def _query_read(self, dtoken, selection):
        """Algorithm 3 for one read call."""
        comm = dtoken.fstate.comm
        with self.profiler.phase(self._rank_key(comm), "query", comm,
                                 file=dtoken.fstate.fname,
                                 dataset=dtoken.node.path):
            return self._query_read_impl(dtoken, selection)

    def _query_read_impl(self, dtoken, selection):
        fstate = dtoken.fstate
        client: RPCClient = fstate.remote_client
        comm = fstate.comm
        node = dtoken.node
        path = node.path
        nprod = client.remote_size
        # Step 0: the implicitly agreed common decomposition.
        dec = RegularDecomposer(node.space.shape, nprod)
        qbb = Bounds.from_selection(selection)
        gids = dec.blocks_intersecting(qbb)
        if comm is not None:
            comm.compute(self.costs.per_box_test * max(1, len(gids)))
        # Step 1: ask block owners which producers hold intersecting data.
        owners: set[int] = set()
        for gid in gids:
            owners.update(
                client.call(gid, "intersects", fstate.fname, path,
                            tuple(qbb.min), tuple(qbb.max))
            )
        # Step 2: request and receive the data, assemble locally.
        if selection.npoints == 0:
            return np.empty(0, dtype=node.dtype.np)
        lo, hi = selection.bounds()
        box_shape = tuple(int(h - l) for l, h in zip(lo, hi))
        fill = 0 if node.fill_value is None else node.fill_value
        box = np.full(box_shape, fill, dtype=node.dtype.np)
        for p in sorted(owners):
            pieces = client.call(p, "read", fstate.fname, path, selection)
            for overlap, values in pieces:
                overlap.translate(lo, box_shape).scatter(values, box)
        self._charge_elements(comm, selection.npoints)
        return selection.translate(lo, box_shape).extract(box)

    # -- VOL overrides ---------------------------------------------------------------------

    def file_open(self, fname, mode, fapl, comm):
        if self.config.file_intercepted(fname):
            root = self.get_tree(comm, fname)
            if root is None:
                inters = self._consumer_matches(fname)
                if inters:
                    # In situ consumer: open the producer's hierarchy
                    # remotely; blocks until the producer serves.
                    return self._remote_open(fname, mode, fapl, comm,
                                             inters[0])
        if self.config.file_passthru(fname) and not self.config.file_intercepted(fname):
            # File mode: wait until the producer announces the physical
            # file is complete, then read it from storage.
            inters = self._consumer_matches(fname)
            if inters:
                self._wait_file_ready(fname, inters[0], comm)
        return super().file_open(fname, mode, fapl, comm)

    def file_close(self, ftoken):
        fname = ftoken.fstate.fname
        comm = ftoken.fstate.comm
        is_remote = ftoken.fstate.remote_client is not None
        super().file_close(ftoken)
        if is_remote:
            if self._is_stream_consumed(fname):
                # Stream epoch close: no per-file done -- the consumer
                # releases epochs explicitly and signals done once at
                # stream close.
                self.drop_file(comm, fname)
                return
            # Consumer side: release the producers (Algorithm 2's "done").
            client: RPCClient = ftoken.fstate.remote_client
            for dest in range(client.remote_size):
                client.notify(dest, "__done__")
            self.drop_file(comm, fname)
            return
        stream_inters = self._stream_matches(fname)
        if stream_inters and self.config.file_intercepted(fname):
            # Streaming epoch close: index collectively, register with
            # the server, hand control straight back to the producer
            # loop (publish/backpressure live in repro.stream).
            self._index_file(fname)
            self._stream_register(fname, stream_inters)
            return
        prod_inters = self._producer_inters_for_close(fname)
        if not prod_inters:
            return
        if self.config.file_intercepted(fname):
            self._index_file(fname)
            if self._push_enabled(fname):
                self._push_file(fname, prod_inters)
        if self.config.file_passthru(fname):
            # File-mode close epoch: the VOL replays its object metadata
            # and readiness handshake against the MDS -- the overhead
            # measured in paper Fig. 6 -- plus the synchronization skew
            # of coordinating with the consumers.
            lustre = getattr(self.under, "lustre", None)
            if comm is not None:
                # A pfs-category span: consumers blocked on the
                # __file_ready__ handshake get their wait attributed
                # to PFS contention, not a generic late sender.
                with obs_span(comm, "pfs.close_epoch", cat="pfs",
                              file=fname, phase="close_epoch"):
                    if lustre is not None:
                        comm.compute(lustre.open_time(comm.size)
                                     + lustre.close_time(comm.size))
                    comm.compute(
                        self.costs.sync_factor
                        * comm.model.epoch_jitter(comm.engine.nprocs)
                    )
            self._announce_file_ready(fname, prod_inters, comm)
        if self.config.file_intercepted(fname):
            self._serve_file(fname, prod_inters)

    def _producer_inters_for_close(self, fname: str):
        return self._producer_matches(fname)

    def phase_stats(self, comm=None) -> PhaseStats:
        """This rank's accumulated per-phase profile (paper Sec. V-C:
        finer-grained communication profiling)."""
        comm = comm if comm is not None else self.comm
        return self.profiler.stats_for(self._rank_key(comm))

    def dataset_read(self, dtoken, selection, dxpl):
        if dtoken.fstate.remote_client is not None:
            node = dtoken.node
            if (self._push_enabled(dtoken.fstate.fname)
                    and isinstance(node, DatasetNode)
                    and self._covered(node, selection)):
                # Pushed data covers the request: serve locally, no
                # query round trips.
                comm = dtoken.fstate.comm
                values = node.read(selection)
                self._charge_op(comm)
                self._charge_elements(comm, selection.npoints)
                return values
            return self._query_read(dtoken, selection)
        return super().dataset_read(dtoken, selection, dxpl)

    # -- file mode readiness signalling -----------------------------------------------------

    def _announce_file_ready(self, fname: str, inters, comm) -> None:
        """Producer rank 0 tells every consumer rank the file is on disk."""
        if comm is not None and comm.rank != 0:
            return
        for inter in inters:
            client = RPCClient(inter)
            client.notify_all("__file_ready__", fname)

    def _wait_file_ready(self, fname: str, inter, comm) -> None:
        st = self._rank_state()
        if fname in st.ready_files:
            return
        from repro.lowfive.rpc import TAG_CTRL
        from repro.simmpi import ANY_SOURCE

        while fname not in st.ready_files:
            payload, _ = inter.recv(source=ANY_SOURCE, tag=TAG_CTRL)
            fn, args = payload
            if fn == "__file_ready__":
                st.ready_files.add(args[0])


# -- helpers ---------------------------------------------------------------------


def _box_shape(sel) -> tuple:
    lo, hi = sel.bounds()
    return tuple(int(h - l) for l, h in zip(lo, hi))


def _is_dense(sel) -> bool:
    if not sel.is_separable:
        return False
    lo, hi = sel.bounds()
    return sel.npoints == int(np.prod(hi - lo))


def _gather_sparse(piece, overlap, np_dtype):
    want = {tuple(c): i for i, c in enumerate(overlap.coords())}
    out = np.empty(overlap.npoints, dtype=np_dtype)
    for j, c in enumerate(piece.selection.coords()):
        i = want.get(tuple(c))
        if i is not None:
            out[i] = piece.data[j]
    return out

