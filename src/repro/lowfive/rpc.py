"""Remote procedure calls over (simulated) MPI intercommunicators.

The paper: "The index, serve, and query functions are written using a
custom remote procedure call (RPC) abstraction implemented over MPI."
This module is that abstraction: a :class:`RPCServer` registers named
handlers and answers requests from the remote group; an
:class:`RPCClient` issues blocking calls and one-way notifications.

A server can multiplex several intercommunicators (fan-out to multiple
consumer tasks): it polls each in turn. Termination is cooperative: each
remote rank sends a ``done`` control message; the serve loop exits once
every remote rank of every intercomm is done.
"""

from __future__ import annotations

import time

from repro.simmpi import ANY_SOURCE, Intercomm

#: Tag used for RPC requests (client -> server).
TAG_REQUEST = 701
#: Tag used for RPC replies (server -> client).
TAG_REPLY = 702
#: Tag used for out-of-band control notifications.
TAG_CTRL = 703


class RPCError(RuntimeError):
    """A handler raised, or an unknown function was called."""


class Defer(Exception):
    """Raised by a handler to postpone a request to the next serve epoch.

    Used when a consumer asks about a file the producer has not closed
    (and therefore not indexed) yet: the request is stashed and replayed
    at the start of the next :meth:`RPCServer.serve`.
    """


class RPCClient:
    """Issues calls to the remote group of an intercommunicator."""

    def __init__(self, inter: Intercomm):
        self.inter = inter

    @property
    def remote_size(self) -> int:
        """Number of remote (server) ranks."""
        return self.inter.remote_size

    def call(self, dest: int, fn: str, *args, nbytes: int | None = None):
        """Blocking call of ``fn(*args)`` on remote rank ``dest``."""
        self.inter.send((fn, args), dest, TAG_REQUEST, nbytes=nbytes)
        reply, _ = self.inter.recv(source=dest, tag=TAG_REPLY)
        ok, payload = reply
        if not ok:
            raise RPCError(f"remote {fn!r} failed: {payload}")
        return payload

    def notify(self, dest: int, fn: str, *args,
               nbytes: int | None = None) -> None:
        """One-way notification: no reply is produced or awaited."""
        self.inter.send((fn, args), dest, TAG_CTRL, nbytes=nbytes)

    def notify_all(self, fn: str, *args) -> None:
        """Notify every remote rank."""
        for dest in range(self.inter.remote_size):
            self.notify(dest, fn, *args)


class RPCServer:
    """Serves registered handlers over one or more intercommunicators.

    Handlers are ``fn(source_rank, *args) -> payload``; the payload is
    sent back as the reply. Control notifications dispatch to handlers
    registered with :meth:`on_notify` and produce no reply.
    """

    #: Real-time sleep between empty polls (the simulated clock is not
    #: advanced by idle waiting -- servers are passive between requests).
    _IDLE_SLEEP = 0.0005

    def __init__(self):
        self._inters: list[Intercomm] = []
        self._handlers = {}
        self._notify_handlers = {}
        self._done: dict[int, set[int]] = {}
        self._pending: list[tuple[Intercomm, object, int]] = []

    def attach(self, inter: Intercomm) -> None:
        """Listen for requests arriving on ``inter``."""
        if inter not in self._inters:
            self._inters.append(inter)
            self._done[id(inter)] = set()

    def register(self, name: str, handler) -> None:
        """Register a call handler ``handler(source, *args)``."""
        self._handlers[name] = handler

    def on_notify(self, name: str, handler) -> None:
        """Register a notification handler ``handler(source, *args)``."""
        self._notify_handlers[name] = handler

    # -- serving ----------------------------------------------------------------

    def _handle_request(self, inter: Intercomm, payload, source: int) -> None:
        fn, args = payload
        handler = self._handlers.get(fn)
        if handler is None:
            inter.send((False, f"unknown function {fn!r}"), source, TAG_REPLY)
            return
        try:
            result = handler(source, *args)
        except Defer:
            self._pending.append((inter, payload, source))
            return
        except Exception as exc:  # noqa: BLE001 - forwarded to caller
            inter.send((False, f"{type(exc).__name__}: {exc}"), source,
                       TAG_REPLY)
            return
        inter.send((True, result), source, TAG_REPLY)

    def _handle_ctrl(self, inter: Intercomm, payload, source: int) -> None:
        fn, args = payload
        if fn == "__done__":
            self._done[id(inter)].add(source)
            return
        handler = self._notify_handlers.get(fn)
        if handler is not None:
            handler(source, *args)

    def _all_done(self) -> bool:
        return all(
            len(self._done[id(i)]) >= i.remote_size for i in self._inters
        )

    def poll_once(self) -> bool:
        """Answer at most one pending message per intercomm.

        Returns True when anything was handled.
        """
        progressed = False
        for inter in self._inters:
            got = inter._try_recv(ANY_SOURCE, TAG_REQUEST)
            if got is not None:
                payload, status = got
                self._handle_request(inter, payload, status.source)
                progressed = True
                continue
            got = inter._try_recv(ANY_SOURCE, TAG_CTRL)
            if got is not None:
                payload, status = got
                self._handle_ctrl(inter, payload, status.source)
                progressed = True
        return progressed

    def serve(self, timeout: float = 60.0) -> None:
        """Answer requests until every remote rank has sent ``done``.

        The paper's Algorithm 2: producers sit in this loop after
        closing a file, answering intersection and data queries.
        ``timeout`` is real time between handled messages; exceeding it
        means a peer hung, so we fail loudly.
        """
        if not self._inters:
            return
        # Replay requests deferred from earlier epochs (e.g. queries for
        # a file that had not been closed/indexed at the time).
        replay, self._pending = self._pending, []
        for inter, payload, source in replay:
            self._handle_request(inter, payload, source)
        idle = 0.0
        while not self._all_done():
            self._inters[0].engine.check_failed()
            if self.poll_once():
                idle = 0.0
                # New traffic may unblock previously deferred requests
                # (e.g. a registration arriving completes coverage).
                if self._pending:
                    replay, self._pending = self._pending, []
                    for inter, payload, source in replay:
                        self._handle_request(inter, payload, source)
            else:
                if idle >= timeout:
                    raise RPCError(
                        f"serve loop idle for {timeout:.0f}s real time; "
                        "consumers never signalled done"
                    )
                time.sleep(self._IDLE_SLEEP)
                idle += self._IDLE_SLEEP
        # Reset for a potential next serve epoch (next file close).
        for inter in self._inters:
            self._done[id(inter)] = set()
