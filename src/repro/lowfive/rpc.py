"""Remote procedure calls over (simulated) MPI intercommunicators.

The paper: "The index, serve, and query functions are written using a
custom remote procedure call (RPC) abstraction implemented over MPI."
This module is that abstraction: a :class:`RPCServer` registers named
handlers and answers requests from the remote group; an
:class:`RPCClient` issues blocking calls and one-way notifications.

A server can multiplex several intercommunicators (fan-out to multiple
consumer tasks): it polls each in turn. Termination is cooperative: each
remote rank sends a ``done`` control message; the serve loop exits once
every remote rank of every intercomm is done.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import span as obs_span
from repro.simmpi import ANY_SOURCE, ANY_TAG, Intercomm, WAKE_ANY, WaitDesc

#: Tag used for RPC requests (client -> server).
TAG_REQUEST = 701
#: Tag used for RPC replies (server -> client).
TAG_REPLY = 702
#: Tag used for out-of-band control notifications.
TAG_CTRL = 703


class RPCError(RuntimeError):
    """A handler raised, or an unknown function was called."""


class RPCTimeout(RPCError):
    """An RPC exchange made no progress within its virtual-time bound."""


class RetriesExhausted(RPCTimeout):
    """Every attempt of a call was lost; the retry budget is spent.

    Subclasses :class:`RPCTimeout` (and hence :class:`RPCError`) so
    callers that only distinguish "RPC failed" keep working, while
    fault-tolerance tests can assert the precise terminal state.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry/backoff behaviour of an :class:`RPCClient`.

    Attributes
    ----------
    max_retries:
        Additional attempts after the first (0 = fail on first loss).
    timeout:
        Virtual seconds the client waits before concluding an attempt
        was lost. Charged to the caller's virtual clock per lost
        attempt; no real time passes.
    backoff:
        Multiplier applied to ``timeout`` on each successive attempt
        (exponential backoff).
    """

    max_retries: int = 0
    timeout: float = 0.05
    backoff: float = 2.0

    def wait_for(self, attempt: int) -> float:
        """Virtual seconds to wait out the ``attempt``-th lost try."""
        return self.timeout * self.backoff**attempt


class Defer(Exception):
    """Raised by a handler to postpone a request to the next serve epoch.

    Used when a consumer asks about a file the producer has not closed
    (and therefore not indexed) yet: the request is stashed and replayed
    at the start of the next :meth:`RPCServer.serve`.
    """


@dataclass(frozen=True)
class Reply:
    """Handler return value that overrides the reply's wire size.

    A handler normally returns a plain payload and the reply costs its
    real serialized size on the wire. Returning ``Reply(payload,
    nbytes)`` ships the same payload but charges ``nbytes`` instead --
    how the serve-time compression stage of wire-side data reduction
    is modelled (the consumer still receives exact values; only the
    wire cost shrinks).
    """

    payload: object
    nbytes: int


class RPCClient:
    """Issues calls to the remote group of an intercommunicator.

    Parameters
    ----------
    inter:
        The intercommunicator whose remote group hosts the servers.
    retry:
        Optional :class:`RetryPolicy` making calls survive injected
        request losses; the default retries nothing (first loss fails).
    """

    def __init__(self, inter: Intercomm, retry: RetryPolicy | None = None):
        self.inter = inter
        self.retry = retry if retry is not None else RetryPolicy()
        # (fn, rank) -> bound retry counter; resolved once per pair so
        # faulty runs with many retries skip the metric-key build.
        self._retry_counters: dict[tuple, object] = {}

    @property
    def remote_size(self) -> int:
        """Number of remote (server) ranks."""
        return self.inter.remote_size

    def call(self, dest: int, fn: str, *args, nbytes: int | None = None):
        """Blocking call of ``fn(*args)`` on remote rank ``dest``.

        When the engine carries a fault plan, each attempt may be lost
        before reaching the network; a lost attempt charges this rank
        ``retry.wait_for(attempt)`` virtual seconds (the timeout it
        would have waited) and is retried up to ``retry.max_retries``
        times before :class:`RetriesExhausted` is raised.
        """
        with obs_span(self.inter, "rpc.call", cat="rpc", fn=fn, dest=dest):
            return self._call_impl(dest, fn, args, nbytes)

    def _call_impl(self, dest: int, fn: str, args, nbytes):
        policy = self.retry
        plan = getattr(self.inter.engine, "faults", None)
        attempts = policy.max_retries + 1
        for attempt in range(attempts):
            if plan is not None:
                me = self.inter.world_rank(self.inter.rank)
                if plan.rpc_lost(me, dest, fn, attempt):
                    obs = self.inter.engine.obs
                    obs.fault(me, self.inter.vtime, "rpc_lost",
                              fn=fn, dest=dest, attempt=attempt)
                    # Wait out the attempt's timeout in virtual time.
                    self.inter.compute(policy.wait_for(attempt))
                    if attempt < attempts - 1:
                        ctr = self._retry_counters.get((fn, me))
                        if ctr is None:
                            ctr = obs.metrics.counter(
                                "rpc.retry.count", fn=fn, rank=me)
                            self._retry_counters[(fn, me)] = ctr
                        ctr.inc(1)
                    continue
            self.inter.send((fn, args), dest, TAG_REQUEST, nbytes=nbytes)
            reply, _ = self.inter.recv(source=dest, tag=TAG_REPLY)
            ok, payload = reply
            if not ok:
                raise RPCError(f"remote {fn!r} failed: {payload}")
            return payload
        raise RetriesExhausted(
            f"rpc {fn!r} to remote rank {dest}: all {attempts} attempts "
            "lost (retry budget spent)"
        )

    def notify(self, dest: int, fn: str, *args,
               nbytes: int | None = None) -> None:
        """One-way notification: no reply is produced or awaited."""
        self.inter.send((fn, args), dest, TAG_CTRL, nbytes=nbytes)

    def notify_all(self, fn: str, *args) -> None:
        """Notify every remote rank."""
        for dest in range(self.inter.remote_size):
            self.notify(dest, fn, *args)


class RPCServer:
    """Serves registered handlers over one or more intercommunicators.

    Handlers are ``fn(source_rank, *args) -> payload``; the payload is
    sent back as the reply. Control notifications dispatch to handlers
    registered with :meth:`on_notify` and produce no reply.
    """

    def __init__(self):
        self._inters: list[Intercomm] = []
        self._handlers = {}
        self._notify_handlers = {}
        self._done: dict[int, set[int]] = {}
        self._pending: list[tuple[Intercomm, object, int]] = []
        # Extra message lanes beyond REQUEST/CTRL: tag -> handler
        # ``fn(inter, payload, source)``. Registered lanes take part in
        # the same global arrival-order selection as RPC traffic, so a
        # server that also drains e.g. staged data keeps one
        # deterministic ordering across all of its inbound tags.
        self._lane_handlers: dict[int, object] = {}

    def attach(self, inter: Intercomm) -> None:
        """Listen for requests arriving on ``inter``."""
        if inter not in self._inters:
            self._inters.append(inter)
            self._done[id(inter)] = set()

    def add_lane(self, tag: int, handler) -> None:
        """Serve an extra inbound ``tag`` with ``handler(inter, payload,
        source)`` on every attached intercomm."""
        self._lane_handlers[tag] = handler

    def register(self, name: str, handler) -> None:
        """Register a call handler ``handler(source, *args)``."""
        self._handlers[name] = handler

    def on_notify(self, name: str, handler) -> None:
        """Register a notification handler ``handler(source, *args)``."""
        self._notify_handlers[name] = handler

    # -- serving ----------------------------------------------------------------

    def _handle_request(self, inter: Intercomm, payload, source: int) -> None:
        fn, args = payload
        handler = self._handlers.get(fn)
        if handler is None:
            inter.send((False, f"unknown function {fn!r}"), source, TAG_REPLY)
            return
        # The span marks this rank as *serving* (wait-state analysis
        # attributes reply waits on it to rpc-server-busy).
        with obs_span(inter, "rpc.handle", cat="rpc", fn=fn,
                      source=source, phase="serve"):
            try:
                result = handler(source, *args)
            except Defer:
                self._pending.append((inter, payload, source))
                return
            except Exception as exc:  # noqa: BLE001,ANL006 - forwarded to caller
                inter.send((False, f"{type(exc).__name__}: {exc}"), source,
                           TAG_REPLY)
                return
            if isinstance(result, Reply):
                inter.send((True, result.payload), source, TAG_REPLY,
                           nbytes=result.nbytes)
            else:
                inter.send((True, result), source, TAG_REPLY)

    def _handle_ctrl(self, inter: Intercomm, payload, source: int) -> None:
        fn, args = payload
        if fn == "__done__":
            self._done[id(inter)].add(source)
            return
        handler = self._notify_handlers.get(fn)
        if handler is not None:
            handler(source, *args)

    def _all_done(self) -> bool:
        return all(
            len(self._done[id(i)]) >= i.remote_size for i in self._inters
        )

    def _lane_specs(self):
        """Every ``(intercomm, tag)`` lane this server drains."""
        for inter in self._inters:
            yield inter, TAG_REQUEST
            yield inter, TAG_CTRL
            for tag in self._lane_handlers:
                yield inter, tag

    def _all_senders(self) -> tuple:
        """World ranks that can post into any lane (safety-gate input)."""
        ranks: set[int] = set()
        for inter in self._inters:
            ranks.update(inter._sender_members())
        return tuple(sorted(ranks))

    def _select_locked(self, proc):
        """Best queued candidate over every lane; ``proc.lock`` held.

        Returns ``((inter, tag, msg), key)`` or ``(None, None)`` where
        ``key = (arrival, comm_id, src, seq)`` -- the total order serve
        loops answer messages in.
        """
        best = None
        best_key = None
        for inter, tag in self._lane_specs():
            mbox = proc.mailbox.get(inter.comm_id)
            if not mbox:
                continue
            m = mbox.peek_match(ANY_SOURCE, tag, proc.consumed)
            if m is None:
                continue
            key = (m.arrival, inter.comm_id, m.src, m.seq)
            if best_key is None or key < best_key:
                best_key, best = key, (inter, tag, m)
        return best, best_key

    def _select(self, proc):
        with proc.lock:
            return self._select_locked(proc)

    def _dispatch(self, inter: Intercomm, tag: int, payload,
                  source: int) -> None:
        if tag == TAG_REQUEST:
            self._handle_request(inter, payload, source)
        elif tag == TAG_CTRL:
            self._handle_ctrl(inter, payload, source)
        else:
            self._lane_handlers[tag](inter, payload, source)

    def poll_once(self) -> bool:
        """Handle the single best queued message across every lane.

        Selection is global virtual arrival order -- the minimum
        ``(arrival, comm_id, src, seq)`` over every attached intercomm
        and tag lane -- never attachment or tag priority, so which
        message a server answers next is a pure function of virtual
        time, independent of real-thread scheduling. The winner is
        consumed only once the wildcard safety gate proves no lagging
        sender can still post an earlier one (safety is monotone in the
        arrival bound, so when the global minimum is not yet provably
        next, nothing is).

        Returns True when a message was handled.
        """
        if not self._inters:
            return False
        engine = self._inters[0].engine
        proc = engine.current_proc()
        cand, _ = self._select(proc)
        if cand is None:
            return False
        inter, tag, _msg = cand
        got = inter._try_recv(ANY_SOURCE, tag)
        if got is None:
            # Queued but not provably the global minimum yet; the
            # caller sleeps until the safety epoch moves.
            return False
        payload, status = got
        self._dispatch(inter, tag, payload, status.source)
        return True

    def _global_vtime(self) -> float:
        """Furthest virtual clock of any rank on the machine.

        The serve loop's notion of progress: while *someone* is still
        computing or communicating, the machine is alive even if this
        server sees no traffic.
        """
        engine = self._inters[0].engine
        return max(p.clock for p in engine.procs)

    def _replay_pending(self) -> None:
        """Replay requests deferred from earlier epochs (e.g. queries
        for a file that had not been closed/indexed at the time)."""
        replay, self._pending = self._pending, []
        for inter, payload, source in replay:
            self._handle_request(inter, payload, source)

    def serve(self, timeout: float = 60.0) -> None:
        """Answer requests until every remote rank has sent ``done``.

        The paper's Algorithm 2: producers sit in this loop after
        closing a file, answering intersection and data queries.

        ``timeout`` is measured on the *virtual* clock: if the
        machine's global virtual time advances ``timeout`` simulated
        seconds past the last handled message without this server
        seeing traffic, the consumers are presumed wedged and
        :class:`RPCTimeout` is raised. A machine that stops advancing
        entirely (all peers exited without signalling done) is caught
        by the engine's real-time deadlock watchdog instead, which
        raises :class:`~repro.simmpi.DeadlockError`.
        """
        if not self._inters:
            return
        self.serve_until(self._all_done, timeout=timeout)
        # Reset for a potential next serve epoch (next file close).
        for inter in self._inters:
            self._done[id(inter)] = set()

    def serve_until(self, predicate, timeout: float = 60.0,
                    what: str = "rpc traffic") -> None:
        """Answer inbound traffic until ``predicate()`` holds.

        The generalized serve loop: :meth:`serve` runs it until every
        remote rank is done; a backpressured streaming producer runs
        it until the live-epoch window shrinks. ``what`` names the
        wait for the deadlock explainer.
        """
        if not self._inters:
            return
        engine = self._inters[0].engine
        proc = engine.current_proc()
        self._replay_pending()
        # Wait descriptor for the safety gate / deadlock explainer: the
        # lanes let peers prove this server cannot act before a bound,
        # which is what breaks the mutual wait between two servers each
        # holding an unsafe candidate (they commit in arrival order).
        senders = self._all_senders()
        lanes = tuple((i.comm_id, ANY_SOURCE, t)
                      for i, t in self._lane_specs())
        desc = WaitDesc("serve", -1, ANY_SOURCE, ANY_TAG,
                        senders, lanes=lanes)
        last_progress = self._global_vtime()
        while not predicate():
            engine.check_failed()
            engine.maybe_crash()
            # Epoch read precedes the poll's peek + safety evaluation,
            # so a blocked-transition after either shows as a change
            # against ``epoch0 + 1`` (our own note_blocked bumps once).
            epoch0 = engine.safety_epoch
            if self.poll_once():
                last_progress = self._global_vtime()
                # New traffic may unblock previously deferred requests
                # (e.g. a registration arriving completes coverage).
                if self._pending:
                    self._replay_pending()
                continue
            if self._global_vtime() - last_progress >= timeout:
                raise RPCTimeout(
                    f"serve loop starved for {timeout:.0f}s virtual "
                    f"time waiting for {what}"
                )
            _, key0 = self._select(proc)
            proc.wait_desc = desc
            engine.note_blocked()
            engine.add_safety_waiter(proc)
            try:
                # Sleep until the lane minimum changes, the safety
                # epoch moves (a candidate may have become provably
                # next), or the machine advances past the virtual
                # deadline; the engine watchdog bounds real time. The
                # deadline can pass without any event, so this wait
                # polls -- unlike mailbox waits, which are event-driven.
                with proc.cond:
                    def stirred():
                        _, k = self._select_locked(proc)
                        if k != key0:
                            return True
                        if engine.safety_epoch != epoch0 + 1:
                            return True
                        return (self._global_vtime() - last_progress
                                >= timeout)

                    proc.wait_spec = WAKE_ANY
                    try:
                        engine.wait_on(proc.cond, stirred, what,
                                       poll=engine._POLL)
                    finally:
                        proc.wait_spec = None
            finally:
                engine.discard_safety_waiter(proc)
                proc.wait_desc = None
