"""LowFive: in situ data transport as an HDF5 VOL plugin (the paper's
primary contribution).

Three layered connectors, mirroring paper Sec. III-A:

- :class:`~repro.lowfive.vol_base.LowFiveBase` -- the *base VOL*: any
  operation not intercepted passes through to native file I/O;
- :class:`~repro.lowfive.vol_metadata.MetadataVOL` -- builds an in-memory
  replica of the HDF5 metadata hierarchy per rank, with deep/shallow
  (zero-copy) data ownership configurable per dataset, and optional
  passthrough to physical storage (*file mode*);
- :class:`~repro.lowfive.vol_dist.DistMetadataVOL` -- the *distributed
  metadata VOL*: producers index and serve their written data spaces,
  consumers query them, over an MPI RPC abstraction; implements the
  index-serve-query redistribution of paper Sec. III-B (Algorithms 1-3)
  with full n-to-m generality.

Typical wiring (one producer task, one consumer task)::

    vol = DistMetadataVOL(comm=task_comm, under=NativeVOL(store))
    vol.set_memory("*.h5", "*")             # keep datasets in memory
    vol.serve_on_close("out.h5", inter)     # producer side
    # or, consumer side:
    vol.set_consumer("out.h5", inter)

    f = h5.File("out.h5", "w", comm=task_comm, vol=vol)  # unchanged user code
"""

from repro.lowfive.config import LowFiveConfig, CostConfig, StreamConfig
from repro.lowfive.rpc import (
    Reply,
    RetriesExhausted,
    RetryPolicy,
    RPCClient,
    RPCError,
    RPCServer,
    RPCTimeout,
)
from repro.lowfive.vol_base import LowFiveBase
from repro.lowfive.vol_metadata import MetadataVOL
from repro.lowfive.vol_dist import DistMetadataVOL
from repro.lowfive.vol_staged import StagedMetadataVOL, staging_main

__all__ = [
    "LowFiveConfig",
    "CostConfig",
    "StreamConfig",
    "Reply",
    "RPCServer",
    "RPCClient",
    "RPCError",
    "RPCTimeout",
    "RetriesExhausted",
    "RetryPolicy",
    "LowFiveBase",
    "MetadataVOL",
    "DistMetadataVOL",
    "StagedMetadataVOL",
    "staging_main",
]
