"""LowFive base VOL: transparent passthrough to native file I/O.

Paper Sec. III-A(a): "The lowest level of our plugin is the base layer.
Any HDF5 functions that are not redefined in the subsequent layers are
caught at this base layer and pass through to native HDF5 file I/O."
"""

from __future__ import annotations

from repro.h5.vol import PassthroughVOL, VOLBase


class LowFiveBase(PassthroughVOL):
    """Passthrough layer at the bottom of the LowFive VOL stack."""

    name = "lowfive-base"

    def __init__(self, under: VOLBase | None = None):
        super().__init__(under)
