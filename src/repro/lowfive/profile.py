"""Fine-grained phase profiling for the distributed VOL.

Paper Sec. V-C: "We are working on profiling our communication at finer
grain in order to see where the remaining bottlenecks are."

Since the ``repro.obs`` subsystem, the actual telemetry lives there:
every phase is recorded as an obs *span* (``lowfive.<phase>``,
category ``"lowfive"``, with a ``phase`` label plus call-site labels
like the file or dataset). This module is kept as a thin compatibility
shim -- :class:`PhaseStats` and
:meth:`~repro.lowfive.vol_dist.DistMetadataVOL.phase_stats` keep
working, and their totals equal the summed durations of the
corresponding obs spans exactly (both read the same virtual clock at
the same points).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs import obs_of


@dataclass
class PhaseStats:
    """Accumulated per-rank phase costs (virtual seconds + counters)."""

    seconds: dict = field(default_factory=dict)
    counts: dict = field(default_factory=dict)

    def add(self, phase: str, seconds: float) -> None:
        """Accumulate ``seconds`` under ``phase``."""
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds
        self.counts[phase] = self.counts.get(phase, 0) + 1

    def total(self) -> float:
        """Total profiled seconds across phases."""
        return sum(self.seconds.values())

    def breakdown(self) -> dict:
        """Phase -> fraction of profiled time."""
        tot = self.total()
        if tot <= 0:
            return {k: 0.0 for k in self.seconds}
        return {k: v / tot for k, v in self.seconds.items()}

    def merge(self, other: "PhaseStats") -> "PhaseStats":
        """Combined stats of ``self`` and ``other`` (pure)."""
        out = PhaseStats(dict(self.seconds), dict(self.counts))
        for k, v in other.seconds.items():
            out.seconds[k] = out.seconds.get(k, 0.0) + v
        for k, v in other.counts.items():
            out.counts[k] = out.counts.get(k, 0) + v
        return out


class Profiler:
    """Per-rank phase profiler keyed like the VOL's rank state.

    A shim over :mod:`repro.obs`: each phase emits an obs span (when
    the communicator belongs to an observable machine) and still
    accumulates into the legacy :class:`PhaseStats` so existing benches
    and examples keep working unchanged.
    """

    def __init__(self):
        self._stats: dict[int, PhaseStats] = {}
        self._lock = threading.Lock()

    def stats_for(self, rank_key: int) -> PhaseStats:
        """The (created-on-demand) stats of one rank."""
        with self._lock:
            st = self._stats.get(rank_key)
            if st is None:
                st = PhaseStats()
                self._stats[rank_key] = st
            return st

    @contextmanager
    def phase(self, rank_key: int, name: str, comm, **labels):
        """Measure the virtual-time cost of a phase on this rank.

        Extra ``labels`` (dataset path, file name, ...) are attached to
        the emitted ``lowfive.<name>`` span.
        """
        if comm is None:
            yield
            return
        obs = obs_of(comm)
        start = comm.vtime
        try:
            if obs is not None:
                with obs.span(comm, f"lowfive.{name}", cat="lowfive",
                              phase=name, **labels):
                    yield
            else:
                yield
        finally:
            self.stats_for(rank_key).add(name, comm.vtime - start)

    def all_stats(self) -> dict[int, PhaseStats]:
        """Snapshot of every rank's stats."""
        with self._lock:
            return dict(self._stats)
