"""In-transit (staged) transport mode for LowFive.

The paper distinguishes *direct messaging* (LowFive's choice: producers
serve consumers themselves, no extra resources, but synchronization
couples the tasks) from *data staging / in transit* (DataSpaces' choice:
dedicated staging ranks decouple producer and consumer at the cost of
extra resources). This module adds the staging option to LowFive itself
while keeping the full hierarchical data model:

- **producer** (:class:`StagedMetadataVOL` with :meth:`stage_on_close`):
  at file close, each rank pushes its metadata skeleton and its data
  pieces -- split along the *staging decomposition* (a regular grid over
  the staging rank count) -- to the staging task, then returns
  immediately. No serve loop: the producer is decoupled.
- **staging task** (:func:`staging_main`): holds the staged trees and
  answers consumer queries; a file becomes visible once every producer
  rank announced completion (queries arriving earlier are deferred).
- **consumer** (:meth:`set_staged_consumer`): opens files against the
  staging task and reads with single-hop queries -- the staging
  placement is deterministic, so no redirect step is needed.

The trade-off is measured in ``tests/lowfive/test_staged.py`` and the
staging ablation benchmark: with a late consumer, the direct producer is
stuck serving while the staged producer finished long ago.
"""

from __future__ import annotations

from fnmatch import fnmatchcase

import numpy as np

from repro.diy import Bounds, RegularDecomposer
from repro.h5 import format as h5format
from repro.h5.errors import NotFoundError
from repro.h5.objects import DatasetNode, OWN_SHALLOW
from repro.lowfive.reduce import reduced_nbytes, reduction_stride, subsample
from repro.lowfive.rpc import Defer, Reply, RPCClient, RPCServer
from repro.simmpi import payload_nbytes
from repro.lowfive.vol_dist import (
    DistMetadataVOL,
    _box_shape,
    _gather_sparse,
    _is_dense,
    _skeleton_bytes,
)
from repro.lowfive.vol_metadata import LFFile, LFToken


class StagedMetadataVOL(DistMetadataVOL):
    """LowFive with an in-transit option.

    Files matched by :meth:`stage_on_close` (producer side) or
    :meth:`set_staged_consumer` (consumer side) go through the staging
    task; everything else behaves exactly like
    :class:`~repro.lowfive.vol_dist.DistMetadataVOL`.
    """

    name = "lowfive-staged"

    #: Tag for staged data bundles (producer -> staging).
    TAG_STAGE = 707

    def __init__(self, comm, under=None, config=None, costs=None):
        super().__init__(comm, under, config, costs)
        self._stage_inters: list[tuple[str, object]] = []
        self._staged_consumer_inters: list[tuple[str, object]] = []

    # -- wiring ------------------------------------------------------------

    def stage_on_close(self, file_pattern: str, inter) -> None:
        """Producer role: at close, push matching files to the staging
        task on ``inter`` and return without serving."""
        self._stage_inters.append((file_pattern, inter))

    def set_staged_consumer(self, file_pattern: str, inter) -> None:
        """Consumer role: open matching files against the staging task."""
        self._staged_consumer_inters.append((file_pattern, inter))

    def _stage_matches(self, fname: str):
        return [i for pat, i in self._stage_inters
                if fnmatchcase(fname, pat)]

    def _staged_consumer_matches(self, fname: str):
        return [i for pat, i in self._staged_consumer_inters
                if fnmatchcase(fname, pat)]

    # -- producer side ---------------------------------------------------------

    def _stage_file(self, fname: str, inter) -> None:
        """Split this rank's pieces along the staging decomposition and
        push them (plus the skeleton, from rank 0) to the stagers."""
        comm = self.comm
        root = self.get_tree(comm, fname)
        if root is None:
            return
        with self.profiler.phase(self._rank_key(comm), "stage", comm,
                                 file=fname):
            nstage = inter.remote_size
            if comm is None or comm.rank == 0:
                blob = _skeleton_bytes(root)
                for srank in range(nstage):
                    inter.send(("skeleton", fname, blob), srank,
                               self.TAG_STAGE)
            bundles: list[list] = [[] for _ in range(nstage)]
            nbytes = 0
            for node in root.walk():
                if not isinstance(node, DatasetNode):
                    continue
                dec = RegularDecomposer(node.space.shape, nstage)
                for piece in node.pieces:
                    bb = Bounds.from_selection(piece.selection)
                    for gid in dec.blocks_intersecting(bb):
                        blk = dec.block_bounds(gid).to_selection(
                            node.space.shape
                        )
                        overlap = piece.selection.intersect(blk)
                        if overlap.npoints == 0:
                            continue
                        local = overlap.translate(
                            piece.selection.bounds()[0],
                            _box_shape(piece.selection),
                        )
                        if _is_dense(piece.selection):
                            src = piece.data.reshape(
                                _box_shape(piece.selection)
                            )
                            values = local.extract(src)
                        else:
                            values = _gather_sparse(piece, overlap,
                                                    node.dtype.np)
                        bundles[gid].append((node.path, overlap, values))
                        nbytes += int(values.nbytes)
            comm.charge_memcpy(nbytes)
            for srank in range(nstage):
                inter.send(("pieces", fname, bundles[srank]), srank,
                           self.TAG_STAGE)
            # Visibility marker: this rank's contribution is complete.
            RPCClient(inter).notify_all("__staged__", fname)

    # -- consumer side -----------------------------------------------------------

    def _staged_open(self, fname, mode, fapl, comm, inter):
        client = RPCClient(inter, retry=self.rpc_retry)
        me = 0 if comm is None else comm.rank
        blob = client.call(me % client.remote_size, "metadata", fname)
        root = h5format.decode_file(blob, fname)
        self._charge_op(comm)
        fstate = LFFile(fname, comm, "r", root, None, remote_client=client)
        fstate.staged = True
        return LFToken(fstate, root, None)

    def _staged_read(self, dtoken, selection):
        """Single-hop query against the staging decomposition."""
        fstate = dtoken.fstate
        client: RPCClient = fstate.remote_client
        comm = fstate.comm
        node = dtoken.node
        with self.profiler.phase(self._rank_key(comm), "staged_query",
                                 comm, file=fstate.fname,
                                 dataset=node.path):
            nstage = client.remote_size
            dec = RegularDecomposer(node.space.shape, nstage)
            qbb = Bounds.from_selection(selection)
            if selection.npoints == 0:
                return np.empty(0, dtype=node.dtype.np)
            lo, hi = selection.bounds()
            box_shape = tuple(int(h - l) for l, h in zip(lo, hi))
            fill = 0 if node.fill_value is None else node.fill_value
            box = np.full(box_shape, fill, dtype=node.dtype.np)
            for gid in dec.blocks_intersecting(qbb):
                pieces = client.call(gid, "read", fstate.fname,
                                     node.path, selection)
                for overlap, values in pieces:
                    overlap.translate(lo, box_shape).scatter(values, box)
            self._charge_elements(comm, selection.npoints)
            return selection.translate(lo, box_shape).extract(box)

    # -- VOL overrides -----------------------------------------------------------------

    def file_open(self, fname, mode, fapl, comm):
        if self.config.file_intercepted(fname) \
                and self.get_tree(comm, fname) is None:
            inters = self._staged_consumer_matches(fname)
            if inters:
                return self._staged_open(fname, mode, fapl, comm,
                                         inters[0])
        return super().file_open(fname, mode, fapl, comm)

    def file_close(self, ftoken):
        fname = ftoken.fstate.fname
        comm = ftoken.fstate.comm
        if getattr(ftoken.fstate, "staged", False):
            # Staged consumer: the stagers keep serving until finalize,
            # so closing only drops the local skeleton.
            from repro.lowfive.vol_metadata import MetadataVOL

            MetadataVOL.file_close(self, ftoken)
            self.drop_file(comm, fname)
            return
        stage_inters = self._stage_matches(fname)
        if stage_inters and self.config.file_intercepted(fname):
            from repro.lowfive.vol_metadata import MetadataVOL

            MetadataVOL.file_close(self, ftoken)
            for inter in stage_inters:
                self._stage_file(fname, inter)
            return  # decoupled: no serve loop
        super().file_close(ftoken)

    def dataset_read(self, dtoken, selection, dxpl):
        if getattr(dtoken.fstate, "staged", False):
            return self._staged_read(dtoken, selection)
        return super().dataset_read(dtoken, selection, dxpl)

    @staticmethod
    def finalize_staging(inter, comm=None) -> None:
        """Release the staging ranks (each client rank, per task)."""
        RPCClient(inter).notify_all("__done__")


def staging_main(inters, costs=None, timeout: float = 60.0) -> dict:
    """Run one staging rank until every client rank has sent done.

    ``inters`` are the staging-side views of the producer and consumer
    intercommunicators. ``timeout`` is the virtual seconds the machine
    may advance without this rank seeing traffic before it gives up
    with :class:`~repro.lowfive.rpc.RPCTimeout` (the engine's real-time
    watchdog backstops a fully stalled machine). Returns ``{file:
    pieces held}`` counts (useful for tests/monitoring).
    """
    from repro.lowfive.config import CostConfig

    costs = costs or CostConfig()
    server = RPCServer()
    skeletons: dict[str, bytes] = {}
    trees: dict[str, object] = {}
    # fname -> set of producer ranks that completed staging.
    complete: dict[str, set] = {}
    producer_inter = inters[0]

    def _tree(fname):
        root = trees.get(fname)
        if root is None:
            if fname not in skeletons:
                raise Defer()
            root = h5format.decode_file(skeletons[fname], fname)
            trees[fname] = root
        return root

    def _require_visible(fname):
        done = complete.get(fname, set())
        if len(done) < producer_inter.remote_size:
            raise Defer()

    def metadata(source, fname):
        _require_visible(fname)
        if fname not in skeletons:
            raise NotFoundError(f"not staged: {fname!r}")
        return skeletons[fname]

    def read(source, fname, path, selection):
        _require_visible(fname)
        root = _tree(fname)
        node = root.lookup(path)
        out = []
        nbytes = 0
        stride = reduction_stride(costs)
        for piece in node.pieces:
            overlap = piece.selection.intersect(selection)
            if overlap.npoints == 0:
                continue
            if stride > 1:
                overlap = subsample(overlap, stride)
            local = overlap.translate(
                piece.selection.bounds()[0], _box_shape(piece.selection)
            )
            if _is_dense(piece.selection):
                src = piece.data.reshape(_box_shape(piece.selection))
                values = local.extract(src)
            else:
                values = _gather_sparse(piece, overlap, node.dtype.np)
            out.append((overlap, values))
            nbytes += int(values.nbytes)
        inters[0].charge_memcpy(nbytes)
        if costs.reduction_level > 0:
            raw = payload_nbytes((True, out))
            inters[0].compute(costs.reduce_cost_per_byte * raw)
            return Reply(out, reduced_nbytes(raw, costs))
        return out

    def staged(source, fname):
        complete.setdefault(fname, set()).add(source)

    # Epoch-aware retention: streaming consumers release epochs with
    # cumulative high-water marks (``__release__(stream, upto, world)``,
    # ``world`` disambiguating ranks across multiple consumer inters).
    # Once every consumer rank has released epoch ``e`` of a stream,
    # its staged tree is dropped -- the stagers hold a bounded window
    # of live epochs instead of the whole history.
    released: dict[str, dict[int, int]] = {}
    dropped: dict[str, int] = {}  # stream -> first epoch not yet dropped
    ncons = sum(i.remote_size for i in inters[1:])
    my_world = inters[0].world_rank(inters[0].rank)
    obs = inters[0].engine.obs

    def release(source, stream, upto, world):
        hw = released.setdefault(stream, {})
        hw[world] = max(hw.get(world, -1), upto)
        if ncons == 0 or len(hw) < ncons:
            return
        floor = min(hw.values())
        e = dropped.get(stream, 0)
        while e <= floor:
            fname = f"{stream}@{e}"
            if fname in skeletons:
                skeletons.pop(fname, None)
                trees.pop(fname, None)
                complete.pop(fname, None)
                obs.stream.drop(stream, e, my_world, inters[0].vtime)
            e += 1
        dropped[stream] = e
        live = sum(1 for f in skeletons if f.startswith(stream + "@"))
        obs.sample("stream.staged_live", inters[0].vtime, live,
                   rank=my_world, stream=stream)

    server.register("metadata", metadata)
    server.register("read", read)
    server.on_notify("__staged__", staged)
    server.on_notify("__release__", release)
    for inter in inters:
        server.attach(inter)

    # Staged data bundles arrive on their own tag, registered as an
    # extra serve lane: the server drains REQUEST, CTRL and STAGE
    # traffic in one global virtual-arrival order, so what a staging
    # rank does next never depends on real-thread scheduling. Pieces
    # can outrace the skeleton (different producer ranks), so they wait
    # in ``pending_pieces`` until their skeleton lands.
    pending_pieces: list[tuple[str, list]] = []

    def _apply(fname, payload):
        root = _tree(fname)
        for path, overlap, values in payload:
            root.lookup(path).write(overlap, values, OWN_SHALLOW)

    def _flush_pending():
        still = []
        for fname, payload in pending_pieces:
            if fname in skeletons:
                _apply(fname, payload)
            else:
                still.append((fname, payload))
        pending_pieces[:] = still

    def stage_lane(inter, payload, source):
        kind, fname, data = payload
        if kind == "skeleton":
            skeletons[fname] = data
            trees.pop(fname, None)
            _flush_pending()
        elif fname in skeletons:
            _apply(fname, data)
        else:
            pending_pieces.append((fname, data))

    server.add_lane(StagedMetadataVOL.TAG_STAGE, stage_lane)

    from repro.obs import span as obs_span

    # The span marks this rank as a server for the whole staging
    # lifetime: client waits on it classify as rpc-server-busy.
    with obs_span(inters[0], "lowfive.staging", cat="lowfive",
                  phase="staging"):
        server.serve(timeout=timeout)
    return {fname: sum(len(n.pieces) for n in _tree(fname).walk()
                       if isinstance(n, DatasetNode))
            for fname in skeletons}
