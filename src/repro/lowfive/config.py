"""LowFive configuration: transport modes, ownership, cost constants."""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase


@dataclass(frozen=True)
class CostConfig:
    """Software-stack cost constants for the LowFive data path.

    These model the per-operation and per-element costs of the HDF5/VOL
    software stack that dominate measured in situ transport times (see
    EXPERIMENTS.md calibration notes). Charged on top of the network
    model's wire times.

    Attributes
    ----------
    per_h5_op:
        CPU seconds per intercepted HDF5 operation (create/open/write
        call overhead).
    per_element_handle:
        Seconds per element for dataspace-driven handling (selection
        iteration, type conversion checks) on the producer and consumer
        data paths. LowFive's contiguous-region optimization means this
        is charged only once per element on each side, not per message.
    per_box_test:
        Seconds per bounding-box intersection test during index/query.
    sync_factor:
        Multiplier on the machine's per-epoch synchronization jitter
        (:meth:`NetworkModel.epoch_jitter`). LowFive pays more than a
        hand-written exchange because the consumer waits for the
        producer's file close and the index is collective (paper
        Sec. IV-B(d) hypothesis); hence a factor above 1.
    rpc_timeout:
        Virtual seconds an RPC client waits before declaring one call
        attempt lost (see :class:`~repro.lowfive.rpc.RetryPolicy`).
    rpc_max_retries:
        Attempts after the first before an RPC call gives up with
        :class:`~repro.lowfive.rpc.RetriesExhausted`.
    rpc_backoff:
        Exponential-backoff multiplier between RPC attempts.
    """

    per_h5_op: float = 5e-6
    per_element_handle: float = 5.0e-8
    per_box_test: float = 2.0e-7
    sync_factor: float = 1.5
    rpc_timeout: float = 0.05
    rpc_max_retries: int = 3
    rpc_backoff: float = 2.0


class LowFiveConfig:
    """Which files go where, and which datasets are zero-copy.

    LowFive matches file names (and dataset paths) against glob-style
    patterns, exactly like the real library's
    ``set_memory``/``set_passthru``/``set_zerocopy`` calls:

    - *memory*: datasets matching the pattern are kept in the in-memory
      metadata hierarchy (and transported in situ by the distributed
      VOL);
    - *passthru*: operations also (or only) reach the underlying native
      VOL, producing a physical file;
    - *zero-copy*: matching datasets are stored as shallow references to
      the user's buffers instead of deep copies.
    """

    def __init__(self):
        self._memory: list[tuple[str, str]] = []
        self._passthru: list[tuple[str, str]] = []
        self._zero_copy: list[tuple[str, str]] = []

    # -- declaration -------------------------------------------------------

    def set_memory(self, file_pattern: str, dset_pattern: str = "*") -> None:
        """Keep datasets of matching files in memory."""
        self._memory.append((file_pattern, dset_pattern))

    def set_passthru(self, file_pattern: str, dset_pattern: str = "*") -> None:
        """Send matching operations through to physical storage."""
        self._passthru.append((file_pattern, dset_pattern))

    def set_zero_copy(self, file_pattern: str, dset_pattern: str = "*") -> None:
        """Store matching datasets as shallow references (zero-copy)."""
        self._zero_copy.append((file_pattern, dset_pattern))

    # -- queries -----------------------------------------------------------------

    @staticmethod
    def _match(rules, fname: str, dset: str) -> bool:
        return any(
            fnmatchcase(fname, fp) and fnmatchcase(dset, dp)
            for fp, dp in rules
        )

    def is_memory(self, fname: str, dset: str = "*") -> bool:
        """True when (file, dataset) matches a memory rule."""
        return self._match(self._memory, fname, dset)

    def is_passthru(self, fname: str, dset: str = "*") -> bool:
        """True when (file, dataset) matches a passthru rule."""
        return self._match(self._passthru, fname, dset)

    def is_zero_copy(self, fname: str, dset: str) -> bool:
        """True when (file, dataset) matches a zero-copy rule."""
        return self._match(self._zero_copy, fname, dset)

    def file_intercepted(self, fname: str) -> bool:
        """True when LowFive keeps an in-memory hierarchy for ``fname``."""
        return any(fnmatchcase(fname, fp) for fp, _ in self._memory)

    def file_passthru(self, fname: str) -> bool:
        """True when ``fname`` also goes to physical storage."""
        return any(fnmatchcase(fname, fp) for fp, _ in self._passthru)
