"""LowFive configuration: transport modes, ownership, cost constants."""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase


@dataclass(frozen=True)
class CostConfig:
    """Software-stack cost constants for the LowFive data path.

    These model the per-operation and per-element costs of the HDF5/VOL
    software stack that dominate measured in situ transport times (see
    EXPERIMENTS.md calibration notes). Charged on top of the network
    model's wire times.

    Attributes
    ----------
    per_h5_op:
        CPU seconds per intercepted HDF5 operation (create/open/write
        call overhead).
    per_element_handle:
        Seconds per element for dataspace-driven handling (selection
        iteration, type conversion checks) on the producer and consumer
        data paths. LowFive's contiguous-region optimization means this
        is charged only once per element on each side, not per message.
    per_box_test:
        Seconds per bounding-box intersection test during index/query.
    sync_factor:
        Multiplier on the machine's per-epoch synchronization jitter
        (:meth:`NetworkModel.epoch_jitter`). LowFive pays more than a
        hand-written exchange because the consumer waits for the
        producer's file close and the index is collective (paper
        Sec. IV-B(d) hypothesis); hence a factor above 1.
    rpc_timeout:
        Virtual seconds an RPC client waits before declaring one call
        attempt lost (see :class:`~repro.lowfive.rpc.RetryPolicy`).
    rpc_max_retries:
        Attempts after the first before an RPC call gives up with
        :class:`~repro.lowfive.rpc.RetriesExhausted`.
    rpc_backoff:
        Exponential-backoff multiplier between RPC attempts.
    reduction_level:
        The fidelity/bandwidth knob for wire-side data reduction,
        applied at serve time (Catalyst-ADIOS2 style: reduce on the
        wire instead of shipping full fidelity). Level 0 ships exact
        data on the exact code path used before reduction existed;
        each level above 0 subsamples served hyperslabs with stride
        ``reduce_stride_base ** level`` per dimension and multiplies
        the wire bytes of the (already smaller) reply payload by
        ``reduce_wire_ratio ** level`` to model a compression stage.
    reduce_stride_base:
        Per-level subsampling stride base (stride = base ** level).
    reduce_wire_ratio:
        Per-level multiplier on reply payload wire bytes modelling the
        compressor's output size (< 1 shrinks the wire cost).
    reduce_cost_per_byte:
        CPU seconds per *input* byte charged to the server for running
        the compression stage (reduction is not free).
    flight_capacity:
        Per-rank ring size of the always-on flight recorder
        (:class:`~repro.obs.recorder.FlightRecorder`). Applied to the
        machine's recorder when a VOL built with this config attaches
        to a communicator; bigger rings buy longer post-mortem tails
        at proportional memory cost.
    """

    per_h5_op: float = 5e-6
    per_element_handle: float = 5.0e-8
    per_box_test: float = 2.0e-7
    sync_factor: float = 1.5
    rpc_timeout: float = 0.05
    rpc_max_retries: int = 3
    rpc_backoff: float = 2.0
    reduction_level: int = 0
    reduce_stride_base: int = 2
    reduce_wire_ratio: float = 0.6
    reduce_cost_per_byte: float = 2.0e-10
    flight_capacity: int = 256

    def __post_init__(self):
        if self.flight_capacity < 1:
            raise ValueError("flight_capacity must be >= 1")
        if self.reduction_level < 0:
            raise ValueError("reduction_level must be >= 0")
        if self.reduce_stride_base < 2:
            raise ValueError("reduce_stride_base must be >= 2")
        if not 0.0 < self.reduce_wire_ratio <= 1.0:
            raise ValueError("reduce_wire_ratio must be in (0, 1]")


@dataclass(frozen=True)
class StreamConfig:
    """Behaviour of a multi-timestep streaming pipeline.

    Attributes
    ----------
    max_lag:
        Bound on the number of *live* (published but not yet released
        by every consumer rank) epochs. Before publishing an epoch
        that would exceed the bound, the producer's virtual clock
        blocks -- it sits in a serve loop answering the laggards'
        queries until a release shrinks the window (backpressure).
    catch_up:
        Slow-joiner policy: a consumer that falls behind jumps to the
        newest retained epoch instead of draining every intermediate
        one; skipped epochs are released implicitly (releases are
        cumulative high-water marks).
    timeout:
        Virtual-time starvation bound for the stream's serve loops
        (same semantics as :meth:`~repro.lowfive.rpc.RPCServer.serve`).
    """

    max_lag: int = 2
    catch_up: bool = False
    timeout: float = 60.0

    def __post_init__(self):
        if self.max_lag < 1:
            raise ValueError("max_lag must be >= 1")


class LowFiveConfig:
    """Which files go where, and which datasets are zero-copy.

    LowFive matches file names (and dataset paths) against glob-style
    patterns, exactly like the real library's
    ``set_memory``/``set_passthru``/``set_zerocopy`` calls:

    - *memory*: datasets matching the pattern are kept in the in-memory
      metadata hierarchy (and transported in situ by the distributed
      VOL);
    - *passthru*: operations also (or only) reach the underlying native
      VOL, producing a physical file;
    - *zero-copy*: matching datasets are stored as shallow references to
      the user's buffers instead of deep copies.
    """

    def __init__(self):
        self._memory: list[tuple[str, str]] = []
        self._passthru: list[tuple[str, str]] = []
        self._zero_copy: list[tuple[str, str]] = []

    # -- declaration -------------------------------------------------------

    def set_memory(self, file_pattern: str, dset_pattern: str = "*") -> None:
        """Keep datasets of matching files in memory."""
        self._memory.append((file_pattern, dset_pattern))

    def set_passthru(self, file_pattern: str, dset_pattern: str = "*") -> None:
        """Send matching operations through to physical storage."""
        self._passthru.append((file_pattern, dset_pattern))

    def set_zero_copy(self, file_pattern: str, dset_pattern: str = "*") -> None:
        """Store matching datasets as shallow references (zero-copy)."""
        self._zero_copy.append((file_pattern, dset_pattern))

    # -- queries -----------------------------------------------------------------

    @staticmethod
    def _match(rules, fname: str, dset: str) -> bool:
        return any(
            fnmatchcase(fname, fp) and fnmatchcase(dset, dp)
            for fp, dp in rules
        )

    def is_memory(self, fname: str, dset: str = "*") -> bool:
        """True when (file, dataset) matches a memory rule."""
        return self._match(self._memory, fname, dset)

    def is_passthru(self, fname: str, dset: str = "*") -> bool:
        """True when (file, dataset) matches a passthru rule."""
        return self._match(self._passthru, fname, dset)

    def is_zero_copy(self, fname: str, dset: str) -> bool:
        """True when (file, dataset) matches a zero-copy rule."""
        return self._match(self._zero_copy, fname, dset)

    def file_intercepted(self, fname: str) -> bool:
        """True when LowFive keeps an in-memory hierarchy for ``fname``."""
        return any(fnmatchcase(fname, fp) for fp, _ in self._memory)

    def file_passthru(self, fname: str) -> bool:
        """True when ``fname`` also goes to physical storage."""
        return any(fnmatchcase(fname, fp) for fp, _ in self._passthru)
