"""Wire-side data reduction applied at serve time.

Catalyst-ADIOS2 style: instead of shipping full-fidelity data, the
serving side reduces each reply before it hits the wire. Two stages,
both driven by the single ``CostConfig.reduction_level`` knob:

1. *Strided subsampling* -- the requested overlap is thinned to every
   ``reduce_stride_base ** level``-th point per dimension (separable
   selections) or every stride-th point in row-major order (point
   selections). The consumer receives exact values for the sampled
   points; unsampled points keep the dataset's fill value.
2. *Simulated compression* -- the (already smaller) reply payload's
   wire bytes are multiplied by ``reduce_wire_ratio ** level`` and the
   server is charged ``reduce_cost_per_byte`` CPU seconds per input
   byte. Values are untouched; only the modelled wire cost shrinks.

Level 0 is a strict pass-through: the helpers below are not consulted
and the serve path is byte-identical to the pre-reduction code.
"""

from __future__ import annotations

import math

from repro.h5.selection import IndexSetSelection, PointSelection, Selection
from repro.lowfive.config import CostConfig


def reduction_stride(costs: CostConfig) -> int:
    """Per-dimension subsampling stride at the configured level."""
    if costs.reduction_level <= 0:
        return 1
    return costs.reduce_stride_base ** costs.reduction_level


def wire_ratio(costs: CostConfig) -> float:
    """Multiplier on reply payload wire bytes at the configured level."""
    if costs.reduction_level <= 0:
        return 1.0
    return costs.reduce_wire_ratio ** costs.reduction_level


def reduced_nbytes(raw_nbytes: int, costs: CostConfig) -> int:
    """Wire bytes for a reply whose serialized size is ``raw_nbytes``."""
    if raw_nbytes <= 0:
        return raw_nbytes
    return max(1, int(math.ceil(raw_nbytes * wire_ratio(costs))))


def subsample(sel: Selection, stride: int) -> Selection:
    """Thin ``sel`` to a deterministic subset of its points.

    Separable selections keep every ``stride``-th index per dimension
    (anchored at the selection's own first index, so the same region
    always samples the same points regardless of which piece serves
    it); point selections keep every ``stride``-th coordinate in
    row-major order. A non-empty selection always retains at least one
    point, so replies never degenerate to nothing.
    """
    if stride <= 1 or sel.npoints == 0:
        return sel
    if sel.is_separable:
        per_dim = [idx[::stride] for idx in sel.per_dim_indices()]
        return IndexSetSelection(sel.shape, per_dim).simplify()
    return PointSelection(sel.shape, sel.coords()[::stride])
