"""LowFive reproduction package.

This package reproduces "LowFive: In Situ Data Transport for
High-Performance Workflows" (Peterka et al., IPDPS 2023) on a simulated
HPC substrate:

- :mod:`repro.simmpi` -- simulated MPI runtime (threads + virtual clocks),
- :mod:`repro.h5` -- HDF5-like hierarchical data model with a Virtual
  Object Layer (VOL),
- :mod:`repro.pfs` -- simulated Lustre-like parallel file system,
- :mod:`repro.diy` -- DIY-like regular block decomposition,
- :mod:`repro.lowfive` -- the paper's contribution: a VOL plugin for in
  situ data transport with n-to-m redistribution,
- :mod:`repro.baselines` -- pure MPI, pure HDF5, DataSpaces-like, and
  Bredala-like comparators,
- :mod:`repro.workflow` -- Henson-like task-graph runner,
- :mod:`repro.cosmo` -- Nyx/Reeber-like cosmology use case,
- :mod:`repro.synth` -- synthetic grid/particle workloads (paper Sec. IV-B),
- :mod:`repro.perfmodel` -- analytic large-scale performance model,
- :mod:`repro.bench` -- experiment drivers shared by the benchmark suite.

See ``DESIGN.md`` for the substitution rationale and experiment index.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
