"""Exception types raised by the simulated MPI runtime."""


class SimMPIError(Exception):
    """Base class for all simmpi errors."""


class DeadlockError(SimMPIError):
    """A blocking operation timed out.

    Raised when a rank waits longer than the engine's real-time timeout
    for a message or a collective. In a correct program this indicates a
    deadlock (e.g. mismatched send/recv or a rank that skipped a
    collective), so we fail loudly instead of hanging the test suite.
    """


class WorkerAborted(SimMPIError):
    """Another rank raised an exception; this rank is being torn down.

    The engine re-raises the *original* exception from :meth:`Engine.run`,
    so user code normally never needs to catch this.
    """


class CommMismatchError(SimMPIError):
    """An operation addressed a rank outside the communicator."""


class RankFailure(SimMPIError):
    """A simulated rank crashed (fault injection).

    Raised on the crashing rank when its virtual clock reaches the
    :class:`~repro.faults.CrashRule` time; every peer is woken and torn
    down (via :class:`WorkerAborted`) instead of hanging, and
    :meth:`Engine.run` re-raises this original failure so callers see a
    typed error identifying the dead rank.
    """

    def __init__(self, rank: int, vtime: float = 0.0):
        super().__init__(
            f"rank {rank} crashed at virtual time {vtime:.6f}s"
        )
        #: World rank that crashed.
        self.rank = rank
        #: Virtual clock of the rank when the crash fired.
        self.vtime = vtime
