"""Network and node cost model for the simulated MPI runtime.

The model is a classical alpha-beta (latency/bandwidth) model with
additional terms that matter for the shapes of the paper's figures:

- per-message CPU overhead on send and receive (software stack cost),
- a memory-copy bandwidth for pack/unpack performed by transport layers,
- a much slower *per-element* packing cost used by baselines that the
  paper describes as serializing "one point at a time" (hand-written MPI,
  Bredala bounding-box redistribution),
- logarithmic collective costs,
- a mild network contention exponent so that weak-scaling curves rise
  slowly with process count, as the measured curves do on the Aries
  dragonfly (paper Figs. 5, 7, 8).

Default constants approximate a Cray XC40 (Theta/Cori): ~1.3 us MPI
latency, ~8 GB/s effective injection bandwidth per process pair, a few
GB/s memcpy. Absolute times are not expected to match the paper's
testbed; relative shapes are (see DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


def payload_nbytes(obj) -> int:
    """Best-effort size in bytes of a message payload.

    numpy arrays report their buffer size; bytes-like objects their
    length; containers the sum of their items plus a small per-item
    envelope; everything else a flat 64-byte estimate. Transport layers
    that know better pass ``nbytes`` explicitly.
    """
    if obj is None:
        return 0
    nb = getattr(obj, "nbytes", None)
    if nb is not None and isinstance(nb, (int, np.integer)):
        return int(nb)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8", "replace"))
    if isinstance(obj, (int, float, complex, bool)):
        return 8
    if isinstance(obj, (tuple, list, set, frozenset)):
        return 16 + sum(payload_nbytes(x) + 8 for x in obj)
    if isinstance(obj, dict):
        return 16 + sum(
            payload_nbytes(k) + payload_nbytes(v) + 16 for k, v in obj.items()
        )
    return 64


@dataclass(frozen=True)
class NetworkModel:
    """Cost model used to advance virtual clocks.

    Parameters
    ----------
    latency:
        One-way point-to-point message latency in seconds (alpha term).
    bandwidth:
        Point-to-point bandwidth in bytes/second (1/beta term).
    msg_overhead:
        CPU time charged on each side of a message for the software
        stack (matching, envelope handling).
    memcpy_bandwidth:
        Bandwidth of a bulk contiguous memory copy, used by transports
        that pack/unpack buffers.
    per_element_pack:
        Seconds per *element* for transports that serialize data one
        point at a time (paper Sec. IV-B(c): the hand-written MPI code
        "simply iterates over all the data points ... and serializes
        them one point at a time").
    contention_exponent:
        Effective bandwidth degrades as ``nprocs ** -contention_exponent``
        to model global network contention in weak scaling. Small (0.1)
        so curves rise slowly, as measured on Aries.
    contention_ref_procs:
        Process count at which contention factor is 1 (no degradation).
    epoch_jitter_per_log2p:
        Synchronization/OS-jitter cost per redistribution epoch, charged
        per log2 of the job size. Real machines pay this skew whenever a
        transport synchronizes tasks (the paper attributes LowFive's
        slope partly to synchronization at file close and the collective
        index); it is what makes all measured weak-scaling curves rise.
    """

    latency: float = 1.3e-6
    bandwidth: float = 8.0e9
    msg_overhead: float = 2.0e-6
    memcpy_bandwidth: float = 4.0e9
    per_element_pack: float = 8.0e-8
    contention_exponent: float = 0.10
    contention_ref_procs: int = 4
    epoch_jitter_per_log2p: float = 0.12

    # -- point to point -------------------------------------------------

    def contention_factor(self, nprocs: int) -> float:
        """Multiplier >= 1 applied to transfer times at scale."""
        if nprocs <= self.contention_ref_procs:
            return 1.0
        return (nprocs / self.contention_ref_procs) ** self.contention_exponent

    def transfer_time(self, nbytes: int, nprocs: int = 1) -> float:
        """Wire time of a point-to-point message of ``nbytes``."""
        return self.latency + self.contention_factor(nprocs) * (
            nbytes / self.bandwidth
        )

    # -- local work ------------------------------------------------------

    def memcpy_time(self, nbytes: int) -> float:
        """Time for a bulk contiguous copy of ``nbytes``."""
        return nbytes / self.memcpy_bandwidth

    def pack_elements_time(self, nelements: int) -> float:
        """Time to serialize ``nelements`` items one at a time."""
        return nelements * self.per_element_pack

    def epoch_jitter(self, nprocs: int) -> float:
        """Synchronization skew of one redistribution epoch at scale."""
        if nprocs <= 1:
            return 0.0
        return self.epoch_jitter_per_log2p * math.log2(nprocs)

    # -- collectives -----------------------------------------------------

    def collective_time(self, kind: str, nprocs: int, nbytes: int = 0) -> float:
        """Completion time of a collective over ``nprocs`` ranks.

        ``nbytes`` is the per-rank contribution size. Latency terms are
        logarithmic (tree algorithms); bandwidth terms follow the usual
        cost of each collective kind.
        """
        if nprocs <= 1:
            return self.msg_overhead
        lg = math.log2(nprocs)
        alpha = self.latency + self.msg_overhead
        beta = self.contention_factor(nprocs) / self.bandwidth
        if kind in ("barrier",):
            return 2.0 * lg * alpha
        if kind in ("bcast", "reduce", "scatter"):
            return lg * alpha + nbytes * beta
        if kind in ("allreduce",):
            return 2.0 * lg * alpha + 2.0 * nbytes * beta
        if kind in ("gather", "allgather"):
            # root/all receive nprocs * nbytes in total
            return lg * alpha + nprocs * nbytes * beta
        if kind in ("alltoall",):
            return lg * alpha + nprocs * nbytes * beta
        raise ValueError(f"unknown collective kind: {kind!r}")
