"""Simulated MPI runtime with virtual time.

``simmpi`` executes an SPMD program -- a Python callable ``main(comm)`` --
on ``n`` simulated ranks. Each rank runs on its own thread and owns a
*virtual clock*; message-passing and collective operations advance the
clocks according to a configurable network cost model
(:class:`~repro.simmpi.netmodel.NetworkModel`, defaulting to Cray
Aries-like parameters). Payloads are real Python/numpy objects, so the
algorithms built on top (LowFive redistribution, DataSpaces staging, ...)
really move and validate data; the *reported completion time* is the
maximum virtual clock, which is what the paper's figures plot.

Quickstart::

    from repro.simmpi import run_world

    def main(comm):
        if comm.rank == 0:
            comm.send({"hello": comm.rank}, dest=1, tag=7)
        elif comm.rank == 1:
            msg, status = comm.recv(source=0, tag=7)
        comm.barrier()
        return comm.rank * 10

    result = run_world(4, main)
    result.returns    # [0, 10, 20, 30]
    result.vtime      # simulated seconds
"""

from repro.simmpi.errors import (
    SimMPIError,
    DeadlockError,
    RankFailure,
    WorkerAborted,
)
from repro.simmpi.netmodel import NetworkModel, payload_nbytes
from repro.simmpi.message import VirtualPayload, Status, ANY_SOURCE, ANY_TAG
from repro.simmpi.request import Request
from repro.simmpi.comm import Comm, Intercomm
from repro.simmpi.engine import (
    Engine,
    TraceEvent,
    WAKE_ANY,
    WaitDesc,
    WorldResult,
    run_world,
)
from repro.simmpi.mailbox import CommMailbox

__all__ = [
    "SimMPIError",
    "DeadlockError",
    "RankFailure",
    "WorkerAborted",
    "NetworkModel",
    "payload_nbytes",
    "VirtualPayload",
    "Status",
    "ANY_SOURCE",
    "ANY_TAG",
    "Request",
    "Comm",
    "Intercomm",
    "Engine",
    "TraceEvent",
    "WAKE_ANY",
    "WaitDesc",
    "WorldResult",
    "run_world",
    "CommMailbox",
]
