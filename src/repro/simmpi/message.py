"""Message envelope, status, and virtual payload types."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

#: Wildcard source for :meth:`Comm.recv` / :meth:`Comm.probe`.
ANY_SOURCE = -1
#: Wildcard tag for :meth:`Comm.recv` / :meth:`Comm.probe`.
ANY_TAG = -1

_seq = itertools.count()


@dataclass(frozen=True)
class VirtualPayload:
    """A payload that carries a byte count but no data.

    Used by modeled (non-executed) large-scale runs: the communication
    schedule is exercised for real, but the bulk data is represented only
    by its size, so 16K-rank runs stay cheap. ``payload_nbytes`` picks up
    :attr:`nbytes` through duck typing.
    """

    nbytes: int
    label: str = ""


@dataclass(frozen=True)
class Status:
    """Completion status of a receive, mirroring ``MPI_Status``."""

    source: int
    tag: int
    nbytes: int


@dataclass
class Message:
    """In-flight message inside the engine. Internal."""

    comm_id: int
    src: int  # sender rank, local to the communicator
    dst_world: int  # receiver world rank
    tag: int
    payload: object
    nbytes: int
    arrival: float  # virtual arrival time at the receiver
    src_world: int = -1  # sender world rank (fault-plan link key)
    sent_at: float = 0.0  # sender's clock at post time (wire-time base)
    dup_of: int | None = None  # seq of the original, for injected copies
    has_dup: bool = False  # an injected copy of this message exists
    # Engine sends pass Engine.next_msg_seq (deterministic per-sender
    # stream); the global counter is a fallback for messages built
    # directly, e.g. in mailbox unit tests.
    seq: int = field(default_factory=lambda: next(_seq))

    @property
    def msg_id(self) -> int:
        """Globally unique message id (causal flow-edge key)."""
        return self.seq

    def matches(self, source: int, tag: int) -> bool:
        """True when (source, tag) match this envelope."""
        return (source == ANY_SOURCE or source == self.src) and (
            tag == ANY_TAG or tag == self.tag
        )
