"""Indexed per-rank mailboxes with constant-time message matching.

The engine used to keep one flat ``list[Message]`` per communicator and
rescan it linearly on every receive -- O(messages²) when a rank's
mailbox backs up (many-to-one patterns, RPC servers). A
:class:`CommMailbox` instead buckets messages by ``(src, tag)``:

- each bucket is a heap ordered by ``(arrival, seq)``, so the bucket
  head is always its best candidate;
- a fully-qualified receive ``(source, tag)`` inspects exactly one
  bucket head;
- a wildcard receive (``ANY_SOURCE`` and/or ``ANY_TAG``) takes the min
  over the *candidate bucket heads* -- found through small ``by_src`` /
  ``by_tag`` key indexes -- never touching non-matching messages.

Matching order is identical to the old linear scan: the winner is the
queued matching message minimising ``(arrival, src, seq)``. Within one
bucket ``src`` is constant, so the per-bucket ``(arrival, seq)`` heap
order and the cross-bucket ``(arrival, src, seq)`` comparison reproduce
the global minimum exactly (the existing simmpi test suite is the
oracle for this).

Fault-injected duplicate handling is preserved: messages whose twin
(original or injected copy) was already consumed are purged lazily when
they surface at a bucket head, using the per-rank ``consumed`` seq set.
"""

from __future__ import annotations

import heapq

from repro.simmpi.message import ANY_SOURCE, ANY_TAG, Message


class CommMailbox:
    """Messages of one communicator queued at one rank. Internal.

    All methods must be called holding the owning ``Proc``'s lock (the
    same discipline the old flat lists had).

    ``examined`` counts bucket heads inspected by matching calls; the
    perf smoke tests assert it does not scale with unrelated queued
    messages.
    """

    __slots__ = ("_buckets", "_by_src", "_by_tag", "_count", "examined")

    def __init__(self):
        # (src, tag) -> heap of (arrival, seq, Message)
        self._buckets: dict[tuple[int, int], list] = {}
        # src -> set of live (src, tag) keys; tag -> same, for wildcards
        self._by_src: dict[int, set] = {}
        self._by_tag: dict[int, set] = {}
        self._count = 0
        self.examined = 0

    def __len__(self) -> int:
        return self._count

    def push(self, msg: Message) -> None:
        """Enqueue ``msg`` into its ``(src, tag)`` bucket."""
        key = (msg.src, msg.tag)
        heap = self._buckets.get(key)
        if heap is None:
            heap = self._buckets[key] = []
            self._by_src.setdefault(msg.src, set()).add(key)
            self._by_tag.setdefault(msg.tag, set()).add(key)
        heapq.heappush(heap, (msg.arrival, msg.seq, msg))
        self._count += 1

    # -- internals -----------------------------------------------------------

    def _drop(self, key) -> None:
        """Remove an emptied bucket from every index."""
        del self._buckets[key]
        src, tag = key
        peers = self._by_src[src]
        peers.discard(key)
        if not peers:
            del self._by_src[src]
        tags = self._by_tag[tag]
        tags.discard(key)
        if not tags:
            del self._by_tag[tag]

    def _candidate_keys(self, source: int, tag: int):
        """Bucket keys that could hold a ``(source, tag)`` match."""
        if source != ANY_SOURCE and tag != ANY_TAG:
            key = (source, tag)
            return (key,) if key in self._buckets else ()
        if source != ANY_SOURCE:
            return tuple(self._by_src.get(source, ()))
        if tag != ANY_TAG:
            return tuple(self._by_tag.get(tag, ()))
        return tuple(self._buckets)

    def _live_head(self, key, consumed):
        """Head entry of ``key``'s bucket after purging dead twins.

        A message is dead when its own seq, or the seq of the original
        it duplicates, is in ``consumed`` -- its twin was already
        received, so protocols above must never see it.
        """
        heap = self._buckets.get(key)
        if heap is None:
            return None
        while heap:
            entry = heap[0]
            msg = entry[2]
            if (msg.seq in consumed
                    or (msg.dup_of is not None and msg.dup_of in consumed)):
                heapq.heappop(heap)
                self._count -= 1
                continue
            return entry
        self._drop(key)
        return None

    def _best_key(self, source: int, tag: int, consumed):
        """Bucket key holding the overall best match, or ``None``."""
        best_key = None
        best_rank = None
        for key in self._candidate_keys(source, tag):
            head = self._live_head(key, consumed)
            if head is None:
                continue
            self.examined += 1
            arrival, seq, msg = head
            rank = (arrival, msg.src, seq)
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best_key = key
        return best_key

    # -- matching ------------------------------------------------------------

    def pop_match(self, source: int, tag: int, consumed) -> Message | None:
        """Dequeue the best queued match for ``(source, tag)``."""
        key = self._best_key(source, tag, consumed)
        if key is None:
            return None
        heap = self._buckets[key]
        _, _, msg = heapq.heappop(heap)
        self._count -= 1
        if not heap:
            self._drop(key)
        return msg

    def peek_match(self, source: int, tag: int, consumed) -> Message | None:
        """Best queued match without consuming it (probe)."""
        key = self._best_key(source, tag, consumed)
        if key is None:
            return None
        return self._buckets[key][0][2]

    def match_candidates(self, source: int, tag: int,
                         consumed) -> list[Message]:
        """Live bucket heads matching ``(source, tag)`` -- the candidate
        set a wildcard match chooses from, snapshot for the schedule-race
        detector. Same heads :meth:`pop_match` compares."""
        out = []
        for key in self._candidate_keys(source, tag):
            head = self._live_head(key, consumed)
            if head is not None:
                out.append(head[2])
        return out

    def has_live(self, consumed) -> bool:
        """True when any non-dead message is queued (serve-loop wake
        predicate); purges dead bucket heads as a side effect."""
        for key in tuple(self._buckets):
            if self._live_head(key, consumed) is not None:
                return True
        return False
