"""Engine: launches ranks on threads and owns virtual clocks/mailboxes."""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import NamedTuple

from repro.obs import ObsContext
from repro.simmpi.errors import DeadlockError, RankFailure, WorkerAborted
from repro.simmpi.mailbox import CommMailbox
from repro.simmpi.message import ANY_SOURCE, ANY_TAG, Message
from repro.simmpi.netmodel import NetworkModel

_tls = threading.local()

#: Wait-spec sentinel: wake the rank on *any* arriving message (used by
#: serve loops whose wake predicate the engine cannot inspect).
WAKE_ANY = object()


class WaitDesc(NamedTuple):
    """What a blocked rank is waiting for (safety gate + deadlock explainer).

    ``kind`` is ``"recv"``, ``"probe"``, ``"serve"`` or ``"collective"``;
    ``source``/``tag`` are the local spec (``ANY_SOURCE``/``ANY_TAG`` for
    wildcards and serve loops); ``senders`` is the resolved set of world
    ranks whose action could wake this rank (``None`` = any rank). The
    attribute write is atomic under the GIL; readers that also need the
    rank's mailbox state take the rank's lock.
    """

    kind: str
    comm_id: int
    source: int
    tag: int
    senders: tuple | None
    detail: str = ""
    #: Optional lock-free probe: returns False once the wait's predicate
    #: turned true (the rank can proceed without a waker and must be
    #: treated as running even though it is still inside the wait).
    stuck: object = None
    #: The ``(comm_id, source, tag)`` specs this waiter matches messages
    #: against (one for a receive/probe, several for a serve loop; empty
    #: for collectives). The safety evaluator peeks these lanes under
    #: the rank's lock: a waiter whose best queued candidate arrives at
    #: or after the bound is classifiable as blocked -- every path by
    #: which it proceeds lands its clock at or past the bound -- so
    #: concurrent gated matches resolve in arrival order instead of
    #: deadlocking on each other.
    lanes: tuple = ()


def current_world_rank() -> int:
    """World rank of the calling thread (threads launched by an Engine)."""
    rank = getattr(_tls, "world_rank", None)
    if rank is None:
        raise RuntimeError("not inside a simmpi rank thread")
    return rank


class Proc:
    """Per-rank state: virtual clock and mailbox. Internal."""

    __slots__ = ("rank", "clock", "lock", "cond", "mailbox", "consumed",
                 "wait_spec", "wait_desc", "done", "msg_seq")

    def __init__(self, rank: int):
        self.rank = rank
        self.clock = 0.0
        # Per-sender message id stream: the next message this rank
        # posts gets id ``rank << 32 | msg_seq``. Single-writer (the
        # rank's own thread), so ids are identical across same-seed
        # runs regardless of thread interleaving or process history.
        self.msg_seq = 0
        self.lock = threading.Lock()
        self.cond = threading.Condition(self.lock)
        # comm_id -> CommMailbox, indexed by (src, tag)
        self.mailbox: dict[int, CommMailbox] = {}
        # seqs of consumed messages that have an injected duplicate in
        # flight; lets the matcher drop the copy (dedup).
        self.consumed: set[int] = set()
        # What this rank is blocked on, or None when it is not blocked
        # in a mailbox wait: WAKE_ANY, or a (comm_id, source, tag)
        # triple. Written and read under ``lock`` only; deliver uses it
        # to wake the rank only for messages it actually waits for.
        self.wait_spec = None
        # Rich wait descriptor (:class:`WaitDesc`) set for the duration
        # of any blocked wait -- mailbox, probe, serve loop or
        # collective. Input to the wildcard safety gate and the
        # deadlock explainer. Atomic attribute write; ``None`` while
        # the rank runs.
        self.wait_desc = None
        # True once the rank's main returned (it will never send again).
        self.done = False


@dataclass(frozen=True)
class TraceEvent:
    """One traced communication event (``Engine(trace=True)``).

    ``kind`` is ``"send"``, ``"recv"`` or ``"coll"``; ranks are world
    ranks (``peer`` is -1 for collectives); ``vtime`` is the acting
    rank's virtual clock when the event completed.
    """

    vtime: float
    kind: str
    rank: int
    peer: int
    tag: int
    nbytes: int
    label: str = ""


@dataclass
class WorldResult:
    """Result of :meth:`Engine.run`.

    Attributes
    ----------
    returns:
        Per-rank return values of ``main``.
    vtime:
        Simulated completion time: the maximum final virtual clock.
    clocks:
        Final virtual clock of every rank.
    messages, bytes_sent:
        Total point-to-point messages and payload bytes.
    obs:
        The engine's :class:`~repro.obs.ObsContext` (causal trace,
        metrics, spans) -- what :func:`repro.analyze.analyze_obs`
        consumes.
    """

    returns: list = field(default_factory=list)
    vtime: float = 0.0
    clocks: list = field(default_factory=list)
    messages: int = 0
    bytes_sent: int = 0
    obs: object = None


class Engine:
    """A simulated machine running ``nprocs`` ranks on threads.

    Parameters
    ----------
    nprocs:
        Number of simulated MPI ranks.
    model:
        Network cost model; defaults to Aries-like parameters.
    timeout:
        Real-time seconds a blocking operation may wait before the run is
        declared deadlocked.
    obs:
        Observability context collecting metrics, spans and the flight
        recorder; a fresh :class:`~repro.obs.ObsContext` by default.
    faults:
        Optional :class:`~repro.faults.FaultPlan`; when given, message
        deliveries and clock checkpoints consult it to inject seeded,
        deterministic faults (delays, duplicates, rank crashes).
    """

    #: Wake-and-recheck slice for waits whose predicate depends on
    #: global state (serve loops watching the machine's virtual clock);
    #: mailbox waits are purely event-driven and never poll.
    _POLL = 0.05

    def __init__(self, nprocs: int, model: NetworkModel | None = None,
                 timeout: float = 60.0, trace: bool = False,
                 obs: ObsContext | None = None, faults=None):
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        self.nprocs = nprocs
        self.model = model if model is not None else NetworkModel()
        self.timeout = timeout
        #: Fault-injection plan (``None`` = healthy machine).
        self.faults = faults
        #: When True, every send/recv/collective appends a TraceEvent.
        self.trace = trace
        #: Unified telemetry (always on; the flight recorder is bounded).
        self.obs = obs if obs is not None else ObsContext()
        self.trace_events: list[TraceEvent] = []
        self._trace_lock = threading.Lock()
        # (kind, rank) -> (count handle, bytes handle): pre-resolved
        # bound counters so the per-event hot path never rebuilds
        # metric keys (benign race: duplicate handles bind one slot).
        self._evt_counters: dict[tuple, tuple] = {}
        # rank -> bound series handle for mailbox-depth sampling at
        # delivery. Volatile: the depth seen at a given delivery depends
        # on real thread interleaving, so the series never feeds
        # deterministic run digests.
        self._mbox_series: dict[int, object] = {}
        self.procs = [Proc(i) for i in range(nprocs)]
        self.failure: BaseException | None = None
        self._failed = threading.Event()
        self._stats_lock = threading.Lock()
        self.n_messages = 0
        self.n_bytes = 0
        self._comm_counter = 0
        self._comm_lock = threading.Lock()
        self._coll_ctxs: dict[int, object] = {}
        # Wildcard-match safety gate state: the epoch counts blocked-wait
        # entries and rank exits (the transitions that can make a lagging
        # sender safe); gated waiters sleep until it moves. ``_safety_
        # waiters`` holds the Procs currently sleeping in a gated wait.
        self.safety_epoch = 0
        self._safety_lock = threading.Lock()
        self._safety_waiters: set[Proc] = set()

    def coll_ctx(self, comm_id: int, size: int):
        """Shared collective-rendezvous context for a communicator."""
        from repro.simmpi.comm import _CollectiveCtx

        with self._comm_lock:
            ctx = self._coll_ctxs.get(comm_id)
            if ctx is None:
                ctx = _CollectiveCtx(size)
                self._coll_ctxs[comm_id] = ctx
            elif ctx.size != size:
                raise ValueError(
                    f"collective context size mismatch for comm {comm_id}: "
                    f"{ctx.size} != {size}"
                )
            return ctx

    # -- identity ---------------------------------------------------------

    def next_comm_id(self) -> int:
        """Allocate a fresh communicator id."""
        with self._comm_lock:
            self._comm_counter += 1
            return self._comm_counter

    def proc(self, world_rank: int) -> Proc:
        """The Proc of ``world_rank``."""
        return self.procs[world_rank]

    def current_proc(self) -> Proc:
        """The calling thread's Proc."""
        return self.procs[current_world_rank()]

    # -- tracing ------------------------------------------------------------

    def record(self, vtime: float, kind: str, rank: int, peer: int,
               tag: int, nbytes: int, label: str = "") -> None:
        """Account one communication event.

        Always feeds the flight recorder and the byte/message counters
        in :attr:`obs`; the full :class:`TraceEvent` list is only
        appended when tracing is enabled. Counters are pre-resolved
        bound handles and the flight detail tuple is built in key
        order, so this path does no metric-key or sort work.
        """
        handles = self._evt_counters.get((kind, rank))
        if handles is None:
            metrics = self.obs.metrics
            handles = (metrics.counter(f"simmpi.{kind}.count", rank=rank),
                       metrics.counter(f"simmpi.{kind}.bytes", rank=rank))
            self._evt_counters[(kind, rank)] = handles
        handles[0].inc(1)
        if nbytes:
            handles[1].inc(nbytes)
        self.obs.flight.append(
            rank, vtime, kind, label or kind,
            (("nbytes", nbytes), ("peer", peer), ("tag", tag)),
        )
        if not self.trace:
            return
        with self._trace_lock:
            self.trace_events.append(
                TraceEvent(vtime, kind, rank, peer, tag, nbytes, label)
            )

    def sorted_trace(self) -> list:
        """Trace events ordered by virtual time (stable)."""
        with self._trace_lock:
            return sorted(self.trace_events,
                          key=lambda e: (e.vtime, e.rank))

    # -- failure handling ---------------------------------------------------

    def fail(self, exc: BaseException) -> None:
        """Record a failure and wake every sleeper.

        Mailbox waits are event-driven (no polling), so every sleeper
        -- per-rank mailbox conditions *and* collective rendezvous
        conditions -- must be notified explicitly.
        """
        if self.failure is None:
            self.failure = exc
        self._failed.set()
        for p in self.procs:
            with p.cond:
                p.cond.notify_all()
        with self._comm_lock:
            ctxs = list(self._coll_ctxs.values())
        for ctx in ctxs:
            with ctx.cond:
                ctx.cond.notify_all()

    def check_failed(self) -> None:
        """Raise WorkerAborted if any rank failed."""
        if self._failed.is_set():
            raise WorkerAborted("another rank failed") from self.failure

    def wait_on(self, cond: threading.Condition, predicate, what: str,
                poll: float | None = None):
        """Wait (holding ``cond``) until ``predicate()``; honor timeout/failure.

        The deadlock timeout is a single ``time.monotonic()`` deadline:
        frequently-notified waiters consume only the real time that
        actually passed, not a fixed slice per wakeup. With ``poll=None``
        (the default) the wait is purely event-driven -- whoever makes
        the predicate true must notify ``cond`` (message delivery,
        collective completion, engine failure all do). Waits whose
        predicate can turn true without a notification (serve loops
        watching global virtual time) pass a ``poll`` slice to recheck
        periodically.
        """
        deadline = time.monotonic() + self.timeout
        while not predicate():
            if self._failed.is_set():
                raise WorkerAborted("another rank failed") from self.failure
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DeadlockError(self._explain_deadlock(what))
            cond.wait(remaining if poll is None else min(poll, remaining))

    def _explain_deadlock(self, what: str) -> str:
        """Base watchdog message, enriched with the wait-for cycle when
        the analyzer can derive one (never let the explainer mask the
        deadlock itself)."""
        base = (
            f"rank {current_world_rank()} timed out after "
            f"{self.timeout:.0f}s real time waiting for {what}"
        )
        try:
            from repro.analyze.deadlock import explain_deadlock

            detail = explain_deadlock(self)
        except Exception:  # noqa: BLE001,ANL006 - explainer must never mask
            return base
        return f"{base}\n{detail}" if detail else base

    # -- wildcard-match safety gate ------------------------------------------

    def note_blocked(self) -> None:
        """A rank entered a blocked wait (or exited): bump the safety
        epoch and wake every gated waiter so it re-evaluates.

        Must be called with *no* Proc lock held by the caller: waking a
        waiter takes that waiter's lock, and gated waiters never hold
        their own lock while snapshotting peers, so the acquisition
        graph stays acyclic.
        """
        with self._safety_lock:
            self.safety_epoch += 1
            waiters = list(self._safety_waiters)
        for p in waiters:
            with p.cond:
                p.cond.notify_all()

    def add_safety_waiter(self, proc: Proc) -> None:
        """Register ``proc`` as sleeping in a gated wait: it will be
        woken on every safety-epoch change until discarded."""
        with self._safety_lock:
            self._safety_waiters.add(proc)

    def discard_safety_waiter(self, proc: Proc) -> None:
        """Remove ``proc`` from the gated-sleeper set (wait finished)."""
        with self._safety_lock:
            self._safety_waiters.discard(proc)

    def _rank_state(self, s: Proc, arrival: float):
        """Classify ``s`` against an arrival bound: ``("safe", None)``,
        ``("running", None)`` or ``("blocked", wakers)``.

        Taken under ``s.lock`` (one peer at a time, caller holds no
        lock) so the check "blocked with nothing queued that matches"
        cannot race a concurrent delivery: deliveries run synchronously
        inside ``send`` under the destination lock.
        """
        if s.done or s.clock >= arrival:
            return ("safe", None)
        with s.lock:
            if s.done or s.clock >= arrival:
                return ("safe", None)
            desc = s.wait_desc
            if desc is None:
                return ("running", None)
            if desc.kind == "collective":
                if desc.stuck is not None and not desc.stuck():
                    # Released (e.g. the collective completed) but not
                    # rescheduled yet: it can proceed without a waker.
                    return ("running", None)
                return ("blocked", desc.senders)
            # Mailbox wait: peek the waiter's lanes for its best queued
            # candidate. No candidate -> it proceeds only via a waker.
            # Best candidate at/after the bound -> still classifiable
            # as blocked: whichever way it proceeds (matching that
            # candidate, or an earlier one delivered by a safe sender)
            # its clock lands at or past the bound. Best candidate
            # before the bound -> it can act below the bound on its
            # own; treat as running.
            best = None
            for cid, src, tg in desc.lanes:
                mbox = s.mailbox.get(cid)
                if mbox is None:
                    continue
                m = mbox.peek_match(src, tg, s.consumed)
                if m is not None and (best is None or m.arrival < best):
                    best = m.arrival
            if best is not None and best < arrival:
                return ("running", None)
            return ("blocked", desc.senders)

    def wildcard_safe(self, me: int, arrival: float, senders) -> bool:
        """True when no potential sender can still produce a matching
        message with an earlier arrival than ``arrival``.

        A sender is *safe* when its clock already passed ``arrival``
        (clocks are monotone and every send arrives strictly after the
        sender's clock), when it exited, or when it is blocked and every
        rank that could wake it is itself safe -- a greatest fixed
        point, so a cycle of mutually-blocked ranks is safe (it can
        never send). Stale lock-free clock reads only underestimate,
        which is conservative. Safety is stable: once true it stays
        true, so the caller may commit the match after re-taking its
        own lock.
        """
        if senders is None:
            need = [r for r in range(self.nprocs) if r != me]
        else:
            need = [r for r in senders if r != me]
        procs = self.procs
        if all(procs[r].done or procs[r].clock >= arrival for r in need):
            return True
        # Closure: classify every rank the verdict can depend on.
        state: dict[int, tuple] = {me: ("safe", None)}
        stack = list(need)
        while stack:
            r = stack.pop()
            if r in state:
                continue
            st = self._rank_state(procs[r], arrival)
            state[r] = st
            if st[0] == "blocked":
                wakers = st[1]
                stack.extend(
                    range(self.nprocs) if wakers is None else wakers
                )
        # Greatest fixed point: start from "every blocked rank is safe"
        # and prune ranks reachable from a running one.
        unsafe = {r for r, st in state.items() if st[0] == "running"}
        changed = True
        while changed:
            changed = False
            for r, st in state.items():
                if r in unsafe or st[0] != "blocked":
                    continue
                wakers = st[1]
                ws = range(self.nprocs) if wakers is None else wakers
                if any(w in unsafe for w in ws if w != r):
                    unsafe.add(r)
                    changed = True
        return not any(r in unsafe for r in need)

    # -- fault injection -----------------------------------------------------

    def maybe_crash(self) -> None:
        """Crash the calling rank if its fault-plan time has come.

        Called at clock checkpoints (send/recv/collective/compute and
        RPC serve loops); raises :class:`RankFailure` on the crashing
        rank, which tears down every peer cleanly via the engine's
        failure path instead of leaving them hanging.
        """
        plan = self.faults
        if plan is None:
            return
        rank = current_world_rank()
        proc = self.procs[rank]
        t = plan.crash_vtime(rank)
        if t is None or proc.clock < t:
            return
        plan.note_crash(rank)
        self.obs.fault(rank, proc.clock, "crash")
        raise RankFailure(rank, proc.clock)

    def _inject_message_faults(self, msg: Message) -> Message | None:
        """Apply the fault plan to ``msg``; returns an injected
        duplicate copy to co-deliver, or ``None``."""
        decision = self.faults.message_decision(msg.src_world,
                                                msg.dst_world)
        if decision is None:
            return None
        obs = self.obs
        if decision.wire_factor != 1.0:
            msg.arrival = msg.sent_at + (
                (msg.arrival - msg.sent_at) * decision.wire_factor
            )
        if decision.extra_delay > 0.0:
            msg.arrival += decision.extra_delay
            obs.fault(msg.dst_world, msg.arrival, "msg_delay",
                      src=msg.src_world, delay=decision.extra_delay)
        if not decision.duplicate:
            return None
        msg.has_dup = True
        obs.fault(msg.dst_world, msg.arrival, "msg_duplicate",
                  src=msg.src_world)
        return Message(
            comm_id=msg.comm_id, src=msg.src, dst_world=msg.dst_world,
            tag=msg.tag, payload=msg.payload, nbytes=msg.nbytes,
            arrival=msg.arrival + decision.dup_delay,
            src_world=msg.src_world, sent_at=msg.sent_at,
            dup_of=msg.seq,
            seq=self.next_msg_seq(self.procs[msg.src_world]),
        )

    # -- delivery ------------------------------------------------------------

    def next_msg_seq(self, proc: Proc) -> int:
        """Deterministic message id from the sender's own stream.

        ``rank << 32 | n`` for the sender's ``n``-th post; assigned by
        the sending thread only, so same-seed runs label every message
        identically no matter how the OS interleaves rank threads.
        """
        seq = (proc.rank << 32) | proc.msg_seq
        proc.msg_seq += 1
        return seq

    def deliver(self, msg: Message) -> None:
        """Enqueue a message at its destination mailbox.

        When a fault plan is installed, the message may be delayed,
        carried over a slowed wire, or duplicated (the duplicate is
        deduped at match time, so protocols above never see it twice).
        """
        dup = None
        if self.faults is not None:
            dup = self._inject_message_faults(msg)
        # Pending-send table (message-leak analysis): the injected twin
        # is not re-posted -- consuming either copy satisfies this entry.
        self.obs.causal.post(
            msg.seq, msg.src_world, msg.dst_world, msg.tag, msg.comm_id,
            msg.nbytes, msg.sent_at, msg.arrival,
        )
        dst = self.procs[msg.dst_world]
        with dst.cond:
            mbox = dst.mailbox.get(msg.comm_id)
            if mbox is None:
                mbox = dst.mailbox[msg.comm_id] = CommMailbox()
            mbox.push(msg)
            if dup is not None:
                mbox.push(dup)
            # Targeted wakeup: only notify a rank that is blocked on a
            # wait this message (or its injected twin -- same envelope)
            # can satisfy; a rank waiting on a different (comm, source,
            # tag) or not waiting at all is left alone.
            spec = dst.wait_spec
            if spec is not None and (
                spec is WAKE_ANY
                or (spec[0] == msg.comm_id
                    and spec[1] in (ANY_SOURCE, msg.src)
                    and spec[2] in (ANY_TAG, msg.tag))
            ):
                dst.cond.notify_all()
            depth = sum(len(m) for m in dst.mailbox.values())
        series = self._mbox_series.get(msg.dst_world)
        if series is None:
            series = self.obs.series.bound(
                "simmpi.mailbox_depth", rank=msg.dst_world, volatile=True
            )
            self._mbox_series[msg.dst_world] = series
        series.record(msg.arrival, depth)
        # Delivery marker on the *destination* ring (written from the
        # sender's thread; FlightRecorder serializes appends).
        self.obs.flight.append(
            msg.dst_world, msg.arrival, "deliver", f"tag {msg.tag}",
            (("msg_id", msg.msg_id), ("nbytes", msg.nbytes),
             ("src", msg.src_world)),
        )
        with self._stats_lock:
            self.n_messages += 1
            self.n_bytes += msg.nbytes

    # -- running ----------------------------------------------------------

    def run(self, main, args: tuple = (), kwargs: dict | None = None) -> WorldResult:
        """Run ``main(world_comm, *args, **kwargs)`` on every rank.

        Raises the first exception raised by any rank. Returns a
        :class:`WorldResult` on success.
        """
        from repro.simmpi.comm import Comm

        kwargs = kwargs or {}
        world = Comm(self, list(range(self.nprocs)))
        returns = [None] * self.nprocs

        def runner(rank: int):
            _tls.world_rank = rank
            try:
                returns[rank] = main(world, *args, **kwargs)
            except WorkerAborted:
                pass  # secondary failure; the primary one is recorded
            except BaseException as exc:  # noqa: BLE001,ANL006 - re-raised from run()
                self.fail(exc)
            finally:
                # The rank will never send again: lagging wildcard
                # matches gated on its clock may now proceed.
                self.procs[rank].done = True
                self.note_blocked()

        threads = [
            threading.Thread(target=runner, args=(r,), name=f"simmpi-rank-{r}",
                             daemon=True)
            for r in range(self.nprocs)
        ]
        for t in threads:
            t.start()
        # One shared monotonic deadline for the whole shutdown: the old
        # per-thread join bound let total wait grow to nprocs x bound.
        deadline = time.monotonic() + self.timeout * 10
        for t in threads:
            t.join(max(0.0, deadline - time.monotonic()))
            if t.is_alive() and not self._failed.is_set():
                self.fail(DeadlockError(f"thread {t.name} did not finish"))
        if self.failure is not None:
            raise self.failure
        clocks = [p.clock for p in self.procs]
        return WorldResult(
            returns=returns,
            vtime=max(clocks),
            clocks=clocks,
            messages=self.n_messages,
            bytes_sent=self.n_bytes,
            obs=self.obs,
        )


def run_world(nprocs: int, main, *, model: NetworkModel | None = None,
              timeout: float = 60.0, faults=None, args: tuple = (),
              kwargs: dict | None = None) -> WorldResult:
    """Convenience wrapper: build an :class:`Engine` and run ``main``."""
    return Engine(nprocs, model=model, timeout=timeout, faults=faults).run(
        main, args=args, kwargs=kwargs
    )
