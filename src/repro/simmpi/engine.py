"""Engine: launches ranks on threads and owns virtual clocks/mailboxes."""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.obs import ObsContext
from repro.simmpi.errors import DeadlockError, RankFailure, WorkerAborted
from repro.simmpi.mailbox import CommMailbox
from repro.simmpi.message import ANY_SOURCE, ANY_TAG, Message
from repro.simmpi.netmodel import NetworkModel

_tls = threading.local()

#: Wait-spec sentinel: wake the rank on *any* arriving message (used by
#: serve loops whose wake predicate the engine cannot inspect).
WAKE_ANY = object()


def current_world_rank() -> int:
    """World rank of the calling thread (threads launched by an Engine)."""
    rank = getattr(_tls, "world_rank", None)
    if rank is None:
        raise RuntimeError("not inside a simmpi rank thread")
    return rank


class Proc:
    """Per-rank state: virtual clock and mailbox. Internal."""

    __slots__ = ("rank", "clock", "lock", "cond", "mailbox", "consumed",
                 "wait_spec")

    def __init__(self, rank: int):
        self.rank = rank
        self.clock = 0.0
        self.lock = threading.Lock()
        self.cond = threading.Condition(self.lock)
        # comm_id -> CommMailbox, indexed by (src, tag)
        self.mailbox: dict[int, CommMailbox] = {}
        # seqs of consumed messages that have an injected duplicate in
        # flight; lets the matcher drop the copy (dedup).
        self.consumed: set[int] = set()
        # What this rank is blocked on, or None when it is not blocked
        # in a mailbox wait: WAKE_ANY, or a (comm_id, source, tag)
        # triple. Written and read under ``lock`` only; deliver uses it
        # to wake the rank only for messages it actually waits for.
        self.wait_spec = None


@dataclass(frozen=True)
class TraceEvent:
    """One traced communication event (``Engine(trace=True)``).

    ``kind`` is ``"send"``, ``"recv"`` or ``"coll"``; ranks are world
    ranks (``peer`` is -1 for collectives); ``vtime`` is the acting
    rank's virtual clock when the event completed.
    """

    vtime: float
    kind: str
    rank: int
    peer: int
    tag: int
    nbytes: int
    label: str = ""


@dataclass
class WorldResult:
    """Result of :meth:`Engine.run`.

    Attributes
    ----------
    returns:
        Per-rank return values of ``main``.
    vtime:
        Simulated completion time: the maximum final virtual clock.
    clocks:
        Final virtual clock of every rank.
    messages, bytes_sent:
        Total point-to-point messages and payload bytes.
    """

    returns: list = field(default_factory=list)
    vtime: float = 0.0
    clocks: list = field(default_factory=list)
    messages: int = 0
    bytes_sent: int = 0


class Engine:
    """A simulated machine running ``nprocs`` ranks on threads.

    Parameters
    ----------
    nprocs:
        Number of simulated MPI ranks.
    model:
        Network cost model; defaults to Aries-like parameters.
    timeout:
        Real-time seconds a blocking operation may wait before the run is
        declared deadlocked.
    obs:
        Observability context collecting metrics, spans and the flight
        recorder; a fresh :class:`~repro.obs.ObsContext` by default.
    faults:
        Optional :class:`~repro.faults.FaultPlan`; when given, message
        deliveries and clock checkpoints consult it to inject seeded,
        deterministic faults (delays, duplicates, rank crashes).
    """

    #: Wake-and-recheck slice for waits whose predicate depends on
    #: global state (serve loops watching the machine's virtual clock);
    #: mailbox waits are purely event-driven and never poll.
    _POLL = 0.05

    def __init__(self, nprocs: int, model: NetworkModel | None = None,
                 timeout: float = 60.0, trace: bool = False,
                 obs: ObsContext | None = None, faults=None):
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        self.nprocs = nprocs
        self.model = model if model is not None else NetworkModel()
        self.timeout = timeout
        #: Fault-injection plan (``None`` = healthy machine).
        self.faults = faults
        #: When True, every send/recv/collective appends a TraceEvent.
        self.trace = trace
        #: Unified telemetry (always on; the flight recorder is bounded).
        self.obs = obs if obs is not None else ObsContext()
        self.trace_events: list[TraceEvent] = []
        self._trace_lock = threading.Lock()
        # (kind, rank) -> (count handle, bytes handle): pre-resolved
        # bound counters so the per-event hot path never rebuilds
        # metric keys (benign race: duplicate handles bind one slot).
        self._evt_counters: dict[tuple, tuple] = {}
        self.procs = [Proc(i) for i in range(nprocs)]
        self.failure: BaseException | None = None
        self._failed = threading.Event()
        self._stats_lock = threading.Lock()
        self.n_messages = 0
        self.n_bytes = 0
        self._comm_counter = 0
        self._comm_lock = threading.Lock()
        self._coll_ctxs: dict[int, object] = {}

    def coll_ctx(self, comm_id: int, size: int):
        """Shared collective-rendezvous context for a communicator."""
        from repro.simmpi.comm import _CollectiveCtx

        with self._comm_lock:
            ctx = self._coll_ctxs.get(comm_id)
            if ctx is None:
                ctx = _CollectiveCtx(size)
                self._coll_ctxs[comm_id] = ctx
            elif ctx.size != size:
                raise ValueError(
                    f"collective context size mismatch for comm {comm_id}: "
                    f"{ctx.size} != {size}"
                )
            return ctx

    # -- identity ---------------------------------------------------------

    def next_comm_id(self) -> int:
        """Allocate a fresh communicator id."""
        with self._comm_lock:
            self._comm_counter += 1
            return self._comm_counter

    def proc(self, world_rank: int) -> Proc:
        """The Proc of ``world_rank``."""
        return self.procs[world_rank]

    def current_proc(self) -> Proc:
        """The calling thread's Proc."""
        return self.procs[current_world_rank()]

    # -- tracing ------------------------------------------------------------

    def record(self, vtime: float, kind: str, rank: int, peer: int,
               tag: int, nbytes: int, label: str = "") -> None:
        """Account one communication event.

        Always feeds the flight recorder and the byte/message counters
        in :attr:`obs`; the full :class:`TraceEvent` list is only
        appended when tracing is enabled. Counters are pre-resolved
        bound handles and the flight detail tuple is built in key
        order, so this path does no metric-key or sort work.
        """
        handles = self._evt_counters.get((kind, rank))
        if handles is None:
            metrics = self.obs.metrics
            handles = (metrics.counter(f"simmpi.{kind}.count", rank=rank),
                       metrics.counter(f"simmpi.{kind}.bytes", rank=rank))
            self._evt_counters[(kind, rank)] = handles
        handles[0].inc(1)
        if nbytes:
            handles[1].inc(nbytes)
        self.obs.flight.append(
            rank, vtime, kind, label or kind,
            (("nbytes", nbytes), ("peer", peer), ("tag", tag)),
        )
        if not self.trace:
            return
        with self._trace_lock:
            self.trace_events.append(
                TraceEvent(vtime, kind, rank, peer, tag, nbytes, label)
            )

    def sorted_trace(self) -> list:
        """Trace events ordered by virtual time (stable)."""
        with self._trace_lock:
            return sorted(self.trace_events,
                          key=lambda e: (e.vtime, e.rank))

    # -- failure handling ---------------------------------------------------

    def fail(self, exc: BaseException) -> None:
        """Record a failure and wake every sleeper.

        Mailbox waits are event-driven (no polling), so every sleeper
        -- per-rank mailbox conditions *and* collective rendezvous
        conditions -- must be notified explicitly.
        """
        if self.failure is None:
            self.failure = exc
        self._failed.set()
        for p in self.procs:
            with p.cond:
                p.cond.notify_all()
        with self._comm_lock:
            ctxs = list(self._coll_ctxs.values())
        for ctx in ctxs:
            with ctx.cond:
                ctx.cond.notify_all()

    def check_failed(self) -> None:
        """Raise WorkerAborted if any rank failed."""
        if self._failed.is_set():
            raise WorkerAborted("another rank failed") from self.failure

    def wait_on(self, cond: threading.Condition, predicate, what: str,
                poll: float | None = None):
        """Wait (holding ``cond``) until ``predicate()``; honor timeout/failure.

        The deadlock timeout is a single ``time.monotonic()`` deadline:
        frequently-notified waiters consume only the real time that
        actually passed, not a fixed slice per wakeup. With ``poll=None``
        (the default) the wait is purely event-driven -- whoever makes
        the predicate true must notify ``cond`` (message delivery,
        collective completion, engine failure all do). Waits whose
        predicate can turn true without a notification (serve loops
        watching global virtual time) pass a ``poll`` slice to recheck
        periodically.
        """
        deadline = time.monotonic() + self.timeout
        while not predicate():
            if self._failed.is_set():
                raise WorkerAborted("another rank failed") from self.failure
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DeadlockError(
                    f"rank {current_world_rank()} timed out after "
                    f"{self.timeout:.0f}s real time waiting for {what}"
                )
            cond.wait(remaining if poll is None else min(poll, remaining))

    # -- fault injection -----------------------------------------------------

    def maybe_crash(self) -> None:
        """Crash the calling rank if its fault-plan time has come.

        Called at clock checkpoints (send/recv/collective/compute and
        RPC serve loops); raises :class:`RankFailure` on the crashing
        rank, which tears down every peer cleanly via the engine's
        failure path instead of leaving them hanging.
        """
        plan = self.faults
        if plan is None:
            return
        rank = current_world_rank()
        proc = self.procs[rank]
        t = plan.crash_vtime(rank)
        if t is None or proc.clock < t:
            return
        plan.note_crash(rank)
        self.obs.fault(rank, proc.clock, "crash")
        raise RankFailure(rank, proc.clock)

    def _inject_message_faults(self, msg: Message) -> Message | None:
        """Apply the fault plan to ``msg``; returns an injected
        duplicate copy to co-deliver, or ``None``."""
        decision = self.faults.message_decision(msg.src_world,
                                                msg.dst_world)
        if decision is None:
            return None
        obs = self.obs
        if decision.wire_factor != 1.0:
            msg.arrival = msg.sent_at + (
                (msg.arrival - msg.sent_at) * decision.wire_factor
            )
        if decision.extra_delay > 0.0:
            msg.arrival += decision.extra_delay
            obs.fault(msg.dst_world, msg.arrival, "msg_delay",
                      src=msg.src_world, delay=decision.extra_delay)
        if not decision.duplicate:
            return None
        msg.has_dup = True
        obs.fault(msg.dst_world, msg.arrival, "msg_duplicate",
                  src=msg.src_world)
        return Message(
            comm_id=msg.comm_id, src=msg.src, dst_world=msg.dst_world,
            tag=msg.tag, payload=msg.payload, nbytes=msg.nbytes,
            arrival=msg.arrival + decision.dup_delay,
            src_world=msg.src_world, sent_at=msg.sent_at,
            dup_of=msg.seq,
        )

    # -- delivery ------------------------------------------------------------

    def deliver(self, msg: Message) -> None:
        """Enqueue a message at its destination mailbox.

        When a fault plan is installed, the message may be delayed,
        carried over a slowed wire, or duplicated (the duplicate is
        deduped at match time, so protocols above never see it twice).
        """
        dup = None
        if self.faults is not None:
            dup = self._inject_message_faults(msg)
        dst = self.procs[msg.dst_world]
        with dst.cond:
            mbox = dst.mailbox.get(msg.comm_id)
            if mbox is None:
                mbox = dst.mailbox[msg.comm_id] = CommMailbox()
            mbox.push(msg)
            if dup is not None:
                mbox.push(dup)
            # Targeted wakeup: only notify a rank that is blocked on a
            # wait this message (or its injected twin -- same envelope)
            # can satisfy; a rank waiting on a different (comm, source,
            # tag) or not waiting at all is left alone.
            spec = dst.wait_spec
            if spec is not None and (
                spec is WAKE_ANY
                or (spec[0] == msg.comm_id
                    and spec[1] in (ANY_SOURCE, msg.src)
                    and spec[2] in (ANY_TAG, msg.tag))
            ):
                dst.cond.notify_all()
        # Delivery marker on the *destination* ring (written from the
        # sender's thread; FlightRecorder serializes appends).
        self.obs.flight.append(
            msg.dst_world, msg.arrival, "deliver", f"tag {msg.tag}",
            (("msg_id", msg.msg_id), ("nbytes", msg.nbytes),
             ("src", msg.src_world)),
        )
        with self._stats_lock:
            self.n_messages += 1
            self.n_bytes += msg.nbytes

    # -- running ----------------------------------------------------------

    def run(self, main, args: tuple = (), kwargs: dict | None = None) -> WorldResult:
        """Run ``main(world_comm, *args, **kwargs)`` on every rank.

        Raises the first exception raised by any rank. Returns a
        :class:`WorldResult` on success.
        """
        from repro.simmpi.comm import Comm

        kwargs = kwargs or {}
        world = Comm(self, list(range(self.nprocs)))
        returns = [None] * self.nprocs

        def runner(rank: int):
            _tls.world_rank = rank
            try:
                returns[rank] = main(world, *args, **kwargs)
            except WorkerAborted:
                pass  # secondary failure; the primary one is recorded
            except BaseException as exc:  # noqa: BLE001 - re-raised from run()
                self.fail(exc)

        threads = [
            threading.Thread(target=runner, args=(r,), name=f"simmpi-rank-{r}",
                             daemon=True)
            for r in range(self.nprocs)
        ]
        for t in threads:
            t.start()
        # One shared monotonic deadline for the whole shutdown: the old
        # per-thread join bound let total wait grow to nprocs x bound.
        deadline = time.monotonic() + self.timeout * 10
        for t in threads:
            t.join(max(0.0, deadline - time.monotonic()))
            if t.is_alive() and not self._failed.is_set():
                self.fail(DeadlockError(f"thread {t.name} did not finish"))
        if self.failure is not None:
            raise self.failure
        clocks = [p.clock for p in self.procs]
        return WorldResult(
            returns=returns,
            vtime=max(clocks),
            clocks=clocks,
            messages=self.n_messages,
            bytes_sent=self.n_bytes,
        )


def run_world(nprocs: int, main, *, model: NetworkModel | None = None,
              timeout: float = 60.0, faults=None, args: tuple = (),
              kwargs: dict | None = None) -> WorldResult:
    """Convenience wrapper: build an :class:`Engine` and run ``main``."""
    return Engine(nprocs, model=model, timeout=timeout, faults=faults).run(
        main, args=args, kwargs=kwargs
    )
