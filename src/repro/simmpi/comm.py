"""Communicators: point-to-point, collectives, split, intercommunicators."""

from __future__ import annotations

import threading

from repro.simmpi.errors import CommMismatchError
from repro.simmpi.message import ANY_SOURCE, ANY_TAG, Message, Status
from repro.simmpi.netmodel import payload_nbytes
from repro.simmpi.request import Request
from repro.simmpi import engine as _engine


class _CollectiveCtx:
    """Rendezvous for one communicator's collectives. Internal.

    Generation-based: ranks enter with a contribution; the last arriver
    runs the reducer once and publishes the result plus the post-
    collective clock; ranks drain before the next generation may begin.
    """

    def __init__(self, size: int):
        self.size = size
        self.lock = threading.Lock()
        self.cond = threading.Condition(self.lock)
        self.generation = 0
        self.complete = -1
        self.draining = False
        self.entries: dict[int, object] = {}
        # world rank -> clock at entry (straggler attribution)
        self.enter_clocks: dict[int, float] = {}
        # world rank -> collective kind at entry (mismatch detection:
        # the rendezvous completes even when ranks disagree, so the
        # analyzer needs the per-rank record to flag it).
        self.enter_kinds: dict[int, str] = {}
        self.max_clock = float("-inf")
        # Largest nbytes any participant passed: the rendezvous cost
        # must not depend on *which* rank happens to complete it.
        self.max_nbytes = 0
        self.result = None
        self.final_clock = 0.0
        self.nleft = 0


class Comm:
    """An intra-communicator over a subset of world ranks.

    A single ``Comm`` object is safely shared by all of its member
    threads; rank identity comes from thread-local state. All operations
    advance the calling rank's virtual clock per the engine's
    :class:`~repro.simmpi.netmodel.NetworkModel`.
    """

    is_inter = False

    def __init__(self, engine, members: list[int], comm_id: int | None = None):
        self.engine = engine
        self.members = list(members)
        self._world_to_local = {w: i for i, w in enumerate(self.members)}
        self.comm_id = engine.next_comm_id() if comm_id is None else comm_id

    # -- identity ----------------------------------------------------------

    @property
    def rank(self) -> int:
        """Local rank of the calling thread within this communicator."""
        w = _engine.current_world_rank()
        try:
            return self._world_to_local[w]
        except KeyError:
            raise CommMismatchError(
                f"world rank {w} is not a member of this communicator"
            ) from None

    @property
    def size(self) -> int:
        """Number of ranks in this communicator."""
        return len(self.members)

    @property
    def model(self):
        """The engine's network cost model."""
        return self.engine.model

    def world_rank(self, local_rank: int) -> int:
        """World rank of ``local_rank`` in this comm."""
        return self.members[local_rank]

    def _src_world(self, src_local: int) -> int:
        """World rank of a message sender (its rank in its group)."""
        return self.members[src_local]

    def _proc(self):
        return self.engine.current_proc()

    def _dest_world(self, dest: int) -> int:
        try:
            return self.members[dest]
        except IndexError:
            raise CommMismatchError(
                f"dest {dest} out of range for size {self.size}"
            ) from None

    # -- local virtual work -------------------------------------------------

    def compute(self, seconds: float) -> None:
        """Advance this rank's virtual clock by ``seconds`` of local work."""
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        proc = self._proc()
        plan = getattr(self.engine, "faults", None)
        if plan is not None:
            seconds = plan.scaled_compute(proc.rank, seconds)
        proc.clock += seconds
        self.engine.obs.causal.account(proc.rank).compute += seconds
        self.engine.maybe_crash()

    def charge_memcpy(self, nbytes: int) -> None:
        """Charge a bulk contiguous copy of ``nbytes`` to the clock."""
        proc = self._proc()
        dt = self.model.memcpy_time(nbytes)
        proc.clock += dt
        self.engine.obs.causal.account(proc.rank).compute += dt

    def charge_pack_elements(self, nelements: int) -> None:
        """Charge per-element (point-at-a-time) serialization work."""
        proc = self._proc()
        dt = self.model.pack_elements_time(nelements)
        proc.clock += dt
        self.engine.obs.causal.account(proc.rank).compute += dt

    @property
    def vtime(self) -> float:
        """Current virtual clock of the calling rank."""
        return self._proc().clock

    # -- point to point ------------------------------------------------------

    def send(self, payload, dest: int, tag: int = 0, nbytes: int | None = None):
        """Buffered send: completes locally once posted.

        ``nbytes`` overrides the payload size used by the cost model
        (modeled runs pass :class:`VirtualPayload` or an explicit size).
        """
        proc = self._proc()
        self.engine.check_failed()
        self.engine.maybe_crash()
        nb = payload_nbytes(payload) if nbytes is None else int(nbytes)
        model = self.model
        proc.clock += model.msg_overhead
        self.engine.obs.causal.account(proc.rank).transfer += \
            model.msg_overhead
        arrival = proc.clock + model.transfer_time(nb, self.engine.nprocs)
        dst_world = self._dest_world(dest)
        self.engine.deliver(
            Message(
                comm_id=self.comm_id,
                src=self.rank,
                dst_world=dst_world,
                tag=tag,
                payload=payload,
                nbytes=nb,
                arrival=arrival,
                src_world=proc.rank,
                sent_at=proc.clock,
                seq=self.engine.next_msg_seq(proc),
            )
        )
        self.engine.record(proc.clock, "send", proc.rank, dst_world,
                           tag, nb)

    def isend(self, payload, dest: int, tag: int = 0,
              nbytes: int | None = None) -> Request:
        """Nonblocking send (buffered, hence complete at once)."""
        self.send(payload, dest, tag, nbytes=nbytes)
        return Request(self, "send")

    def _sender_members(self):
        """World ranks that may post messages into this communicator."""
        return self.members

    def _spec_senders(self, source: int) -> tuple:
        """Resolved world ranks that could satisfy a ``source`` spec."""
        if source == ANY_SOURCE:
            return tuple(self._sender_members())
        return (self._src_world(source),)

    def _msg_src_world(self, msg) -> int:
        return (msg.src_world if msg.src_world >= 0
                else self._src_world(msg.src))

    def _pop_match(self, proc, source: int, tag: int):
        """Pop the best matching message while holding ``proc.lock``.

        Matching is an indexed bucket-head lookup (see
        :class:`~repro.simmpi.mailbox.CommMailbox`); non-matching
        queued messages are never touched. Injected duplicates are
        deduped here: consuming either twin records its seq so the
        other is purged before it can match. Wildcard matches snapshot
        the candidate heads for the schedule-race detector; every
        consumed message marks its pending-send entry satisfied.
        """
        mbox = proc.mailbox.get(self.comm_id)
        if not mbox:
            return None
        wildcard = source == ANY_SOURCE or tag == ANY_TAG
        cands = (mbox.match_candidates(source, tag, proc.consumed)
                 if wildcard else None)
        m = mbox.pop_match(source, tag, proc.consumed)
        if m is None:
            return None
        if m.has_dup:
            proc.consumed.add(m.seq)
        if m.dup_of is not None:
            proc.consumed.add(m.dup_of)
        causal = self.engine.obs.causal
        orig = m.dup_of if m.dup_of is not None else m.seq
        causal.consume(orig)
        if wildcard:
            causal.match(
                proc.rank, self.comm_id, source, tag, orig, proc.clock,
                tuple(sorted(
                    (c.dup_of if c.dup_of is not None else c.seq,
                     self._msg_src_world(c), c.sent_at, c.arrival)
                    for c in cands
                )),
            )
        return m

    def _finish_recv(self, proc, msg, t_start: float) -> int:
        """Complete a matched receive: advance the clock, charge the
        wait/transfer split to the rank's ledger and record the causal
        flow edge. Returns the sender's world rank.

        The blocked interval ``[t_start, arrival]`` is split at the
        sender's post time: idling before the post is *wait* (late
        sender), the remainder plus the receive overhead is *transfer*
        (wire time). Fault plans may rewrite ``arrival``, so both
        pieces are clamped to be non-negative.
        """
        arrival = msg.arrival
        overhead = self.model.msg_overhead
        proc.clock = max(t_start, arrival) + overhead
        blocked = max(0.0, arrival - t_start)
        wait = min(blocked, max(0.0, msg.sent_at - t_start))
        causal = self.engine.obs.causal
        acct = causal.account(proc.rank)
        acct.wait += wait
        acct.transfer += (blocked - wait) + overhead
        src_world = (msg.src_world if msg.src_world >= 0
                     else self._src_world(msg.src))
        causal.edge(
            msg_id=msg.msg_id, src=src_world, dst=proc.rank,
            tag=msg.tag, comm_id=self.comm_id, nbytes=msg.nbytes,
            t_post=msg.sent_at, t_arrival=arrival,
            t_recv_start=t_start, t_recv=proc.clock,
        )
        return src_world

    def _match_concrete(self, proc, source: int, tag: int, block: bool,
                        what: str):
        """Fully-qualified (no wildcard) match: one bucket, FIFO by
        ``(arrival, seq)`` -- deterministic without any gate."""
        engine = self.engine
        with proc.cond:
            msg = self._pop_match(proc, source, tag)
        if msg is not None or not block:
            return msg
        proc.wait_desc = _engine.WaitDesc(
            "recv", self.comm_id, source, tag, self._spec_senders(source),
            lanes=((self.comm_id, source, tag),),
        )
        engine.note_blocked()
        try:
            with proc.cond:
                holder = []

                def ready():
                    m = self._pop_match(proc, source, tag)
                    if m is not None:
                        holder.append(m)
                        return True
                    return False

                # Register what we are blocked on so deliveries that
                # cannot match do not wake this rank.
                proc.wait_spec = (self.comm_id, source, tag)
                try:
                    engine.wait_on(proc.cond, ready, what)
                finally:
                    proc.wait_spec = None
                return holder[0]
        finally:
            proc.wait_desc = None

    def _match_wildcard(self, proc, source: int, tag: int, block: bool,
                        what: str):
        """Wildcard match gated on sender safety.

        The queued minimum may not be the *global* minimum: a lagging
        sender could still post a message with an earlier arrival, and
        which side wins would then depend on real-thread scheduling --
        the PR-4 attribution nondeterminism. The match therefore
        commits only once :meth:`Engine.wildcard_safe` proves every
        potential sender is past the candidate's arrival, exited, or
        transitively blocked; at that point every earlier arrival is
        already queued (delivery is synchronous inside ``send``) and
        the heap minimum is the true one. Safety is stable, so the pop
        after re-taking the lock stays valid even if an even earlier
        message slipped in meanwhile.
        """
        engine = self.engine
        senders = self._spec_senders(source)
        desc = _engine.WaitDesc(
            "recv", self.comm_id, source, tag, senders,
            lanes=((self.comm_id, source, tag),),
        )
        while True:
            epoch0 = engine.safety_epoch
            with proc.cond:
                mbox = proc.mailbox.get(self.comm_id)
                head = (mbox.peek_match(source, tag, proc.consumed)
                        if mbox else None)
                hkey = ((head.arrival, head.src, head.seq)
                        if head is not None else None)
            if head is not None and engine.wildcard_safe(
                    proc.rank, head.arrival, senders):
                with proc.cond:
                    msg = self._pop_match(proc, source, tag)
                if msg is not None and msg.arrival <= head.arrival:
                    return msg
                continue
            if not block:
                return None
            # ``epoch0`` was read before the peek + safety evaluation,
            # so any blocked-transition after that point shows up as an
            # epoch change. Our own ``note_blocked`` below bumps the
            # epoch by exactly one; the predicate compares against
            # ``epoch0 + 1`` so we do not wake on our own transition.
            proc.wait_desc = desc
            engine.note_blocked()
            if head is not None:
                engine.add_safety_waiter(proc)
            try:
                with proc.cond:
                    def changed():
                        mb = proc.mailbox.get(self.comm_id)
                        h = (mb.peek_match(source, tag, proc.consumed)
                             if mb else None)
                        if h is None:
                            return hkey is not None
                        if (h.arrival, h.src, h.seq) != hkey:
                            return True
                        return engine.safety_epoch != epoch0 + 1

                    proc.wait_spec = (self.comm_id, source, tag)
                    try:
                        engine.wait_on(proc.cond, changed, what)
                    finally:
                        proc.wait_spec = None
            finally:
                if head is not None:
                    engine.discard_safety_waiter(proc)
                proc.wait_desc = None

    def _match(self, proc, source: int, tag: int, block: bool):
        what = (f"message (comm {self.comm_id}, source {source}, "
                f"tag {tag})")
        if source == ANY_SOURCE or tag == ANY_TAG:
            return self._match_wildcard(proc, source, tag, block, what)
        return self._match_concrete(proc, source, tag, block, what)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive; returns ``(payload, Status)``."""
        proc = self._proc()
        self.engine.maybe_crash()
        t_start = proc.clock
        msg = self._match(proc, source, tag, block=True)
        src_world = self._finish_recv(proc, msg, t_start)
        self.engine.maybe_crash()
        self.engine.record(proc.clock, "recv", proc.rank,
                           src_world, msg.tag, msg.nbytes)
        return msg.payload, Status(msg.src, msg.tag, msg.nbytes)

    def _try_recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Nonblocking receive; ``(payload, Status)`` or ``None``.

        A queued wildcard candidate that is not yet provably the global
        minimum is reported as "nothing there": consuming it early is
        exactly the schedule race the safety gate exists to close.
        """
        proc = self._proc()
        self.engine.maybe_crash()
        t_start = proc.clock
        msg = self._match(proc, source, tag, block=False)
        if msg is None:
            return None
        src_world = self._finish_recv(proc, msg, t_start)
        self.engine.record(proc.clock, "recv", proc.rank,
                           src_world, msg.tag, msg.nbytes)
        return msg.payload, Status(msg.src, msg.tag, msg.nbytes)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive returning a :class:`Request`."""
        return Request(self, "recv", source, tag)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              block: bool = True):
        """Check for a matching message without consuming it.

        Returns a :class:`Status`, or ``None`` when ``block=False`` and
        nothing matches. Wildcard probes honor the same safety gate as
        wildcard receives: the reported message is the deterministic
        winner, not whichever candidate happened to be queued first in
        real time.
        """
        proc = self._proc()
        engine = self.engine
        wildcard = source == ANY_SOURCE or tag == ANY_TAG

        def find():
            mbox = proc.mailbox.get(self.comm_id)
            if not mbox:
                return None
            return mbox.peek_match(source, tag, proc.consumed)

        while True:
            epoch0 = engine.safety_epoch
            with proc.cond:
                m = find()
                hkey = (m.arrival, m.src, m.seq) if m is not None else None
            if m is not None and (
                    not wildcard
                    or engine.wildcard_safe(proc.rank, m.arrival,
                                            self._spec_senders(source))):
                with proc.cond:
                    best = find()
                if best is not None and best.arrival <= m.arrival:
                    return Status(best.src, best.tag, best.nbytes)
                continue
            if not block:
                return None
            proc.wait_desc = _engine.WaitDesc(
                "probe", self.comm_id, source, tag,
                self._spec_senders(source),
                lanes=((self.comm_id, source, tag),),
            )
            engine.note_blocked()
            if m is not None:
                engine.add_safety_waiter(proc)
            try:
                with proc.cond:
                    def changed():
                        h = find()
                        if h is None:
                            return hkey is not None
                        if (h.arrival, h.src, h.seq) != hkey:
                            return True
                        return (wildcard
                                and engine.safety_epoch != epoch0 + 1)

                    proc.wait_spec = (self.comm_id, source, tag)
                    try:
                        engine.wait_on(proc.cond, changed, "probe")
                    finally:
                        proc.wait_spec = None
            finally:
                if m is not None:
                    engine.discard_safety_waiter(proc)
                proc.wait_desc = None

    # -- collectives -----------------------------------------------------------

    def _participants(self) -> int:
        return self.size

    def _participant_worlds(self) -> list[int]:
        """World ranks taking part in this comm's collectives."""
        return self.members

    def _my_coll_key(self) -> int:
        return self.rank

    _COST_ALIAS = {
        "allgather_split": "allgather",
        "dup": "barrier",
        "scan": "allreduce",
        "exscan": "allreduce",
        "reduce_scatter": "allreduce",
    }

    def _collective(self, kind: str, contribution, reducer, nbytes: int = 0):
        ctx = self.engine.coll_ctx(self.comm_id, self._participants())
        self.engine.maybe_crash()
        proc = self._proc()
        me = self._my_coll_key()
        cost_kind = self._COST_ALIAS.get(kind, kind)
        obs = self.engine.obs
        open_span = obs.spans.begin(
            proc.rank, f"mpi.{kind}", "simmpi", proc.clock,
            {"comm": self.comm_id, "nbytes": nbytes},
        )
        enter = proc.clock
        # Wait descriptor for the safety gate / deadlock explainer: a
        # collective waiter can only be released by another participant.
        # ``stuck`` probes the rendezvous state lock-free so a released-
        # but-unscheduled waiter is still classified as running.
        peers = tuple(w for w in self._participant_worlds()
                      if w != proc.rank)
        with ctx.cond:
            if ctx.draining:
                proc.wait_desc = _engine.WaitDesc(
                    "collective", self.comm_id, -1, -1, peers, kind,
                    stuck=lambda: ctx.draining,
                )
                self.engine.note_blocked()
                try:
                    self.engine.wait_on(
                        ctx.cond, lambda: not ctx.draining,
                        f"{kind} (drain)"
                    )
                finally:
                    proc.wait_desc = None
            gen = ctx.generation
            ctx.entries[me] = contribution
            ctx.enter_clocks[proc.rank] = proc.clock
            ctx.enter_kinds[proc.rank] = kind
            ctx.max_clock = max(ctx.max_clock, proc.clock)
            ctx.max_nbytes = max(ctx.max_nbytes, nbytes)
            if len(ctx.entries) == ctx.size:
                # Cost from the aggregate payload size, never from the
                # completing rank's own ``nbytes``: per-rank sizes can
                # differ (e.g. alltoall), and which rank completes the
                # rendezvous is a real-scheduling accident.
                ctx.result = reducer(dict(ctx.entries))
                ctx.final_clock = ctx.max_clock + self.model.collective_time(
                    cost_kind, ctx.size, ctx.max_nbytes
                )
                obs.causal.collective(
                    kind=kind, comm_id=self.comm_id,
                    nbytes=ctx.max_nbytes,
                    enter_clocks=ctx.enter_clocks, t_ready=ctx.max_clock,
                    t_end=ctx.final_clock, kinds=ctx.enter_kinds,
                )
                ctx.complete = gen
                ctx.draining = True
                ctx.cond.notify_all()
            else:
                proc.wait_desc = _engine.WaitDesc(
                    "collective", self.comm_id, -1, -1, peers, kind,
                    stuck=lambda: ctx.complete < gen,
                )
                self.engine.note_blocked()
                try:
                    self.engine.wait_on(
                        ctx.cond, lambda: ctx.complete >= gen,
                        f"{kind} (gen {gen})"
                    )
                finally:
                    proc.wait_desc = None
            result = ctx.result
            final = ctx.final_clock
            ready = ctx.max_clock
            ctx.nleft += 1
            if ctx.nleft == ctx.size:
                ctx.entries = {}
                ctx.enter_clocks = {}
                ctx.enter_kinds = {}
                ctx.nleft = 0
                ctx.draining = False
                ctx.generation += 1
                ctx.max_clock = float("-inf")
                ctx.max_nbytes = 0
                ctx.cond.notify_all()
        proc.clock = final
        acct = obs.causal.account(proc.rank)
        acct.wait += max(0.0, ready - enter)
        acct.transfer += final - ready
        obs.spans.end(open_span, proc.clock)
        self.engine.record(proc.clock, "coll", proc.rank, -1, 0,
                           nbytes, label=kind)
        return result

    def barrier(self) -> None:
        """Synchronize all ranks; clocks advance to a common time."""
        self._collective("barrier", None, lambda e: None)

    def epoch_barrier(self, epoch: int) -> None:
        """Barrier bounding one streaming epoch.

        Semantically a plain barrier; the surrounding span labels it
        with the epoch id, so traces and wait-state attribution can
        tell which timestep a straggler stalled.
        """
        obs = self.engine.obs
        proc = self._proc()
        h = obs.spans.begin(proc.rank, "mpi.epoch_barrier", "simmpi",
                            proc.clock, {"epoch": epoch})
        try:
            self._collective("barrier", None, lambda e: None)
        finally:
            obs.spans.end(h, self._proc().clock)

    def bcast(self, payload=None, root: int = 0):
        """Broadcast ``payload`` from ``root``; every rank returns it."""
        nb = payload_nbytes(payload) if self.rank == root else 0
        return self._collective(
            "bcast", payload if self.rank == root else None,
            lambda e: e[root], nbytes=nb,
        )

    def gather(self, payload, root: int = 0):
        """Gather; ``root`` returns the rank-ordered list, others ``None``."""
        res = self._collective(
            "gather", payload,
            lambda e: [e[i] for i in range(len(e))],
            nbytes=payload_nbytes(payload),
        )
        return res if self.rank == root else None

    def allgather(self, payload):
        """Gather-to-all; every rank returns the rank-ordered list."""
        return self._collective(
            "allgather", payload,
            lambda e: [e[i] for i in range(len(e))],
            nbytes=payload_nbytes(payload),
        )

    def scatter(self, payloads=None, root: int = 0):
        """Scatter a list from ``root``; each rank returns its element."""
        if self.rank == root:
            if payloads is None or len(payloads) != self.size:
                raise ValueError("scatter root must supply size-length list")
            nb = max(payload_nbytes(p) for p in payloads)
        else:
            nb = 0
        res = self._collective(
            "scatter", payloads if self.rank == root else None,
            lambda e: e[root], nbytes=nb,
        )
        return res[self.rank]

    def alltoall(self, payloads):
        """All-to-all: rank i sends ``payloads[j]`` to rank j."""
        if len(payloads) != self.size:
            raise ValueError("alltoall requires a size-length list")
        me = self.rank
        res = self._collective(
            "alltoall", list(payloads),
            lambda e: e,
            nbytes=max(payload_nbytes(p) for p in payloads),
        )
        return [res[j][me] for j in range(self.size)]

    def reduce(self, payload, op=None, root: int = 0):
        """Reduce with binary ``op`` (default ``+``); root gets the result."""
        import functools

        op = op or (lambda a, b: a + b)

        def reducer(entries):
            vals = [entries[i] for i in range(len(entries))]
            return functools.reduce(op, vals)

        res = self._collective(
            "reduce", payload, reducer, nbytes=payload_nbytes(payload)
        )
        return res if self.rank == root else None

    def allreduce(self, payload, op=None):
        """Reduce-to-all with binary ``op`` (default ``+``)."""
        import functools

        op = op or (lambda a, b: a + b)

        def reducer(entries):
            vals = [entries[i] for i in range(len(entries))]
            return functools.reduce(op, vals)

        return self._collective(
            "allreduce", payload, reducer, nbytes=payload_nbytes(payload)
        )

    def sendrecv(self, payload, dest: int, source: int = ANY_SOURCE,
                 sendtag: int = 0, recvtag: int = ANY_TAG,
                 nbytes: int | None = None):
        """Combined send+receive (deadlock-free shift patterns)."""
        self.send(payload, dest, sendtag, nbytes=nbytes)
        return self.recv(source, recvtag)

    def scan(self, payload, op=None):
        """Inclusive prefix reduction: rank i gets op-fold of ranks 0..i."""
        import functools

        op = op or (lambda a, b: a + b)
        me = self.rank

        def reducer(entries):
            vals = [entries[i] for i in range(len(entries))]
            out = [vals[0]]
            for v in vals[1:]:
                out.append(op(out[-1], v))
            return out

        res = self._collective(
            "scan", payload, reducer, nbytes=payload_nbytes(payload)
        )
        return res[me]

    def exscan(self, payload, op=None, initial=None):
        """Exclusive prefix reduction; rank 0 gets ``initial``."""
        import functools

        op = op or (lambda a, b: a + b)
        me = self.rank

        def reducer(entries):
            vals = [entries[i] for i in range(len(entries))]
            out = [initial]
            acc = None
            for i, v in enumerate(vals[:-1]):
                acc = v if acc is None else op(acc, v)
                out.append(acc)
            return out

        res = self._collective(
            "exscan", payload, reducer, nbytes=payload_nbytes(payload)
        )
        return res[me]

    def gatherv(self, payload, root: int = 0):
        """Gather variable-size contributions (list form of gather)."""
        return self.gather(payload, root)

    def scatterv(self, payloads=None, root: int = 0):
        """Scatter variable-size payloads (list form of scatter)."""
        return self.scatter(payloads, root)

    def alltoallv(self, payloads):
        """All-to-all with per-destination payloads of any size."""
        return self.alltoall(payloads)

    def reduce_scatter(self, payloads, op=None):
        """Reduce ``payloads[j]`` across ranks; rank j gets the result."""
        import functools

        op = op or (lambda a, b: a + b)
        if len(payloads) != self.size:
            raise ValueError("reduce_scatter requires a size-length list")
        me = self.rank

        def reducer(entries):
            out = []
            for j in range(len(entries)):
                vals = [entries[i][j] for i in range(len(entries))]
                out.append(functools.reduce(op, vals))
            return out

        res = self._collective(
            "reduce_scatter", list(payloads), reducer,
            nbytes=max(payload_nbytes(p) for p in payloads),
        )
        return res[me]

    # -- derived communicators ---------------------------------------------------

    def split(self, color, key: int | None = None):
        """Partition into sub-communicators by ``color`` (``None`` opts out).

        Ranks with equal ``color`` form a new communicator ordered by
        ``(key, old rank)``. Returns the new :class:`Comm` or ``None``.
        """
        me = self.rank
        k = me if key is None else key
        engine = self.engine

        def reducer(entries):
            groups: dict[object, list] = {}
            for r in range(len(entries)):
                c, kk = entries[r]
                if c is None:
                    continue
                groups.setdefault(c, []).append((kk, r))
            out = {}
            for c, lst in groups.items():
                lst.sort()
                out[c] = (engine.next_comm_id(), [r for _, r in lst])
            return out

        groups = self._collective("allgather_split", (color, k), reducer)
        if color is None:
            return None
        comm_id, local_ranks = groups[color]
        return Comm(engine, [self.members[r] for r in local_ranks], comm_id)

    def dup(self):
        """Duplicate: same group, fresh communication context."""
        def reducer(entries):
            return self.engine.next_comm_id()

        new_id = self._collective("dup", None, reducer)
        return Comm(self.engine, self.members, new_id)


class Intercomm(Comm):
    """An inter-communicator linking two disjoint groups.

    Point-to-point ``dest``/``source`` ranks are *remote group* ranks, as
    in MPI intercommunicator semantics. The same ``Intercomm`` object is
    shared by both sides; each side addresses the other. Collectives on
    an intercomm are limited to :meth:`barrier` (a rendezvous across both
    groups), which is all the transports in this package need.
    """

    is_inter = True

    def __init__(self, engine, local_members: list[int],
                 remote_members: list[int], comm_id: int | None = None):
        super().__init__(engine, local_members, comm_id)
        self.remote_members = list(remote_members)
        self._remote_w2l = {w: i for i, w in enumerate(self.remote_members)}
        overlap = set(local_members) & set(remote_members)
        if overlap:
            raise CommMismatchError(f"groups overlap: {sorted(overlap)}")

    @classmethod
    def create(cls, engine, group_a: list[int], group_b: list[int]):
        """Build the pair of views (a->b, b->a) sharing one context."""
        comm_id = engine.next_comm_id()
        ab = cls(engine, group_a, group_b, comm_id)
        ba = cls(engine, group_b, group_a, comm_id)
        return ab, ba

    @property
    def remote_size(self) -> int:
        """Number of ranks in the remote group."""
        return len(self.remote_members)

    def _dest_world(self, dest: int) -> int:
        try:
            return self.remote_members[dest]
        except IndexError:
            raise CommMismatchError(
                f"remote dest {dest} out of range for remote size "
                f"{self.remote_size}"
            ) from None

    def _src_world(self, src_local: int) -> int:
        """Senders on an intercomm live in the remote group."""
        return self.remote_members[src_local]

    def _sender_members(self):
        """Messages on an intercomm always come from the remote group."""
        return self.remote_members

    def _participants(self) -> int:
        return len(self.members) + len(self.remote_members)

    def _participant_worlds(self) -> list[int]:
        return self.members + self.remote_members

    def _my_coll_key(self) -> int:
        # Unique key across both groups: world rank.
        return _engine.current_world_rank()

    def barrier(self) -> None:
        """Rendezvous across both groups."""
        self._collective("barrier", None, lambda e: None)

    def notify_remote(self, payload, tag: int,
                      nbytes: int | None = None) -> None:
        """Send ``payload`` to every rank of the remote group.

        The epoch-notify primitive: a streaming producer announces
        published epochs (and end-of-stream) to all consumer ranks
        with one call.
        """
        for dest in range(self.remote_size):
            self.send(payload, dest, tag, nbytes=nbytes)

    def split(self, color, key=None):  # pragma: no cover - guard
        raise NotImplementedError("cannot split an intercommunicator")

    def dup(self):  # pragma: no cover - guard
        raise NotImplementedError("cannot dup an intercommunicator")
