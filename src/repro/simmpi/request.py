"""Nonblocking-operation request handles."""

from __future__ import annotations

from repro.simmpi.message import ANY_SOURCE, ANY_TAG


class Request:
    """Handle for a nonblocking send or receive.

    Sends in simmpi are buffered (they complete locally as soon as they
    are posted), so a send request is already complete at creation; its
    :meth:`wait` is a no-op returning ``None``. A receive request
    completes when a matching message is consumed from the mailbox.
    """

    __slots__ = ("_comm", "_kind", "_source", "_tag", "_done", "_result")

    def __init__(self, comm, kind: str, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        self._comm = comm
        self._kind = kind
        self._source = source
        self._tag = tag
        self._done = kind == "send"
        self._result = None

    @property
    def done(self) -> bool:
        """True once the operation has completed."""
        return self._done

    def test(self):
        """Nonblocking completion check.

        Returns ``(True, (payload, status))`` if complete (payload/status
        are ``None`` for sends), else ``(False, None)``.
        """
        if self._done:
            return True, self._result
        got = self._comm._try_recv(self._source, self._tag)
        if got is None:
            return False, None
        self._result = got
        self._done = True
        return True, got

    def wait(self):
        """Block until complete; return ``(payload, status)`` for recvs."""
        if self._done:
            return self._result
        self._result = self._comm.recv(self._source, self._tag)
        self._done = True
        return self._result


def wait_all(requests):
    """Wait on every request; return their results in order."""
    return [r.wait() for r in requests]
