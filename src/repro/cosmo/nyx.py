"""Nyx-like particle-mesh cosmology proxy.

A deliberately small but structurally faithful stand-in for Nyx: dark
matter particles evolve under a toy gravity kick and are deposited onto
a baryon-density mesh (nearest-grid-point), which is what Reeber
consumes to find halos. The I/O path matches Nyx's HDF5 option: "all the
simulation data are written into a single file", with the field at
``/native_fields/baryon_density``.

The writer reproduces the behaviour the paper calls out: "the AMReX
writer uses a separate procedure to *repack* the data into a layout more
amenable to disk I/O. Unfortunately, this undermines LowFive's zero-copy
ability ... As a result, we disable zero-copy in LowFive, and up to
three copies of the same data ... can exist in memory simultaneously."
``write_snapshot_h5`` therefore repacks each fab into a fresh buffer
before handing it to the h5 layer (and charges the copy).
"""

from __future__ import annotations

import numpy as np

import repro.h5 as h5
from repro.cosmo.amr import BoxArray, DistributionMapping, MultiFab

#: Dataset path used by Nyx's HDF5 writer.
DENSITY_PATH = "native_fields/baryon_density"


class NyxProxy:
    """A particle-mesh proxy simulation on one refinement level.

    Parameters
    ----------
    grid_size:
        Cells per side of the cubic domain (e.g. 256 for the paper's
        smallest run).
    comm:
        This task's communicator; each rank owns the boxes its
        distribution mapping assigns.
    particles_per_cell:
        Sampling density of the toy dark-matter phase.
    max_grid_size:
        AMReX box chop size.
    seed:
        Deterministic initial conditions.
    """

    def __init__(self, grid_size: int, comm, particles_per_cell: float = 0.25,
                 max_grid_size: int = 32, seed: int = 42):
        self.n = int(grid_size)
        self.comm = comm
        self.domain = (self.n, self.n, self.n)
        self.ba = BoxArray(self.domain, max_grid_size)
        nranks = 1 if comm is None else comm.size
        rank = 0 if comm is None else comm.rank
        self.dm = DistributionMapping(self.ba, nranks)
        self.rank = rank
        self.step = 0
        # Each rank owns the particles born in its boxes; they never
        # migrate in this proxy (the kick is sub-cell), which keeps the
        # deposit local -- fine for an I/O-focused experiment. Particles
        # are seeded *per box*, so the field is identical regardless of
        # how boxes are distributed over ranks (validated against a
        # serial run in the tests).
        self.particles_per_cell = particles_per_cell
        self._positions = {}
        for bid in self.dm.local_boxes(rank):
            rng = np.random.default_rng(seed * 1_000_003 + bid)
            box = self.ba[bid]
            k = max(1, int(box.size * particles_per_cell))
            lo = np.asarray(box.min, dtype=np.float64)
            ext = np.asarray(box.shape, dtype=np.float64)
            # Clustered ICs: a few gaussian blobs per box so halos exist.
            centers = lo + ext * rng.random((max(1, k // 64), 3))
            idx = rng.integers(0, len(centers), size=k)
            pos = centers[idx] + rng.normal(0.0, ext / 12.0, size=(k, 3))
            self._positions[bid] = np.clip(
                pos, lo, lo + ext - 1e-6
            )

    @property
    def n_local_particles(self) -> int:
        """Particles owned by this rank."""
        return sum(len(p) for p in self._positions.values())

    def advance(self) -> MultiFab:
        """Run one coarse time step; return the baryon-density multifab."""
        self.step += 1
        density = MultiFab(self.ba, self.dm, self.rank, ncomp=1)
        for bid, pos in self._positions.items():
            box = self.ba[bid]
            lo = np.asarray(box.min, dtype=np.float64)
            ext = np.asarray(box.shape, dtype=np.float64)
            # Toy gravity kick: particles drift toward their blob center
            # (small, deterministic, keeps them inside the box).
            center = pos.mean(axis=0, keepdims=True)
            pos += 0.05 * (center - pos)
            np.clip(pos, lo, lo + ext - 1e-6, out=pos)
            # NGP deposit.
            cells = (pos - lo).astype(np.int64)
            fab = density.fab(bid)
            np.add.at(fab, tuple(cells.T), 1.0)
        # Cosmological mean normalization: density contrast 1+delta,
        # against the global mean (a constant, so the field does not
        # depend on the process decomposition).
        for bid in density.local_box_ids:
            density.fab(bid)[...] /= max(1e-12, self.particles_per_cell)
        return density


def write_snapshot_h5(fname: str, density: MultiFab, comm, vol,
                      step: int, repack: bool = True) -> None:
    """Write one snapshot through the h5 API, Nyx-style.

    Every rank writes its boxes as hyperslabs of the single global
    dataset. With ``repack=True`` (Nyx's actual behaviour) each fab is
    first copied into a fresh packing buffer, which is why zero-copy
    must stay off for this workload.
    """
    from repro.h5.plist import TransferProps

    domain = density.boxarray.domain
    f = h5.File(fname, "w", comm=comm, vol=vol)
    dset = f.create_dataset(DENSITY_PATH, shape=domain, dtype=h5.FLOAT64)
    # Ranks own different numbers of boxes, so the per-box writes are
    # independent (non-collective) -- as in AMReX's HDF5 writer.
    dxpl = TransferProps(collective=False)
    for bid in density.local_box_ids:
        box = density.boxarray[bid]
        fab = density.fab(bid)
        if repack:
            packed = np.ascontiguousarray(fab).copy()
            if comm is not None:
                comm.charge_memcpy(int(packed.nbytes))
        else:
            packed = fab
        dset.write(
            packed,
            file_select=h5.hyperslab(tuple(box.min), box.shape),
            dxpl=dxpl,
        )
    f.attrs["step"] = step
    f.attrs["domain"] = np.asarray(domain, dtype=np.int64)
    f.close()
