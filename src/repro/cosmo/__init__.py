"""Nyx/Reeber-like cosmology use case (paper Sec. IV-C, Table II).

- :mod:`repro.cosmo.amr` -- an AMReX-like block-structured substrate
  (boxes, box arrays, distribution mappings, multifabs);
- :mod:`repro.cosmo.nyx` -- a particle-mesh cosmology proxy producing
  baryon-density snapshots through the h5 API, including the AMReX
  writer's *repack* behaviour that defeats LowFive's zero-copy;
- :mod:`repro.cosmo.reeber` -- a Reeber-like distributed halo finder
  (connected components above a density threshold, merged across ranks
  with a union-find, like Reeber's merge trees);
- :mod:`repro.cosmo.plotfile` -- an AMReX plotfile-style multi-file
  binary snapshot format, the second I/O baseline of Table II.
"""

from repro.cosmo.amr import Box, BoxArray, DistributionMapping, MultiFab
from repro.cosmo.amr_fields import derive_fields, write_amr_snapshot
from repro.cosmo.merge_tree import MergeTree, build_merge_tree, halos_at
from repro.cosmo.nyx import NyxProxy, write_snapshot_h5
from repro.cosmo.reeber import Halo, find_halos_distributed, find_halos_serial
from repro.cosmo.plotfile import write_plotfile, read_plotfile_header

__all__ = [
    "Box",
    "BoxArray",
    "DistributionMapping",
    "MultiFab",
    "derive_fields",
    "write_amr_snapshot",
    "MergeTree",
    "build_merge_tree",
    "halos_at",
    "NyxProxy",
    "write_snapshot_h5",
    "Halo",
    "find_halos_distributed",
    "find_halos_serial",
    "write_plotfile",
    "read_plotfile_header",
]
