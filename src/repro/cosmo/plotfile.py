"""AMReX plotfile-style snapshot format (Table II's second baseline).

AMReX plotfiles are "a binary format specifically designed ... to be
optimized for large-scale simulations. Here the data are split into
separate files among groups of simulation processes": an ASCII ``Header``
plus ``Cell_D_xxxxx`` binary files, each written by one group of ranks.
Splitting over many files avoids single-shared-file lock contention,
which is why plotfile writes beat single-file HDF5 at scale (Table II)
while still losing to in situ transport by an order of magnitude.
"""

from __future__ import annotations

import io

import numpy as np

from repro.cosmo.amr import MultiFab
from repro.pfs.lustre import LustreModel
from repro.pfs.store import PFSStore

#: Default number of binary data files (AMReX's nfiles knob).
DEFAULT_NFILES = 64


def _header_text(mf: MultiFab, step: int, nfiles: int,
                 file_of_box: list[int], offsets: list[int]) -> str:
    ba = mf.boxarray
    out = io.StringIO()
    out.write("HyperCLaw-V1.1\n")  # AMReX plotfile version string
    out.write("1\n")  # ncomp
    out.write("baryon_density\n")
    out.write(f"{len(ba.domain)}\n")
    out.write(f"{step}\n")
    out.write(" ".join(str(s) for s in ba.domain) + "\n")
    out.write(f"{len(ba)}\n")
    for i, box in enumerate(ba):
        mins = ",".join(str(v) for v in box.min)
        maxs = ",".join(str(v) for v in box.max)
        out.write(f"({mins})({maxs}) {file_of_box[i]} {offsets[i]}\n")
    out.write(f"{nfiles}\n")
    return out.getvalue()


def write_plotfile(store: PFSStore, prefix: str, mf: MultiFab, comm,
                   step: int, nfiles: int = DEFAULT_NFILES,
                   lustre: LustreModel | None = None) -> None:
    """Write ``mf`` as a plotfile tree of files under ``prefix``.

    Collective over ``comm``. Boxes land in ``min(nfiles, nranks)``
    binary files; ranks sharing a file append their boxes at computed
    offsets. Rank 0 writes the header.
    """
    lustre = lustre if lustre is not None else LustreModel()
    nranks = 1 if comm is None else comm.size
    rank = 0 if comm is None else comm.rank
    nfiles = max(1, min(nfiles, nranks))
    ba = mf.boxarray
    itemsize = mf.dtype.itemsize

    # Deterministic layout, computable by every rank without traffic:
    # box i goes to the file of its owning rank's group, at the offset
    # of the boxes before it in that file.
    file_of_box = [mf.dm.owner(i) % nfiles for i in range(len(ba))]
    offsets = [0] * len(ba)
    per_file_size = [0] * nfiles
    for i in range(len(ba)):
        f = file_of_box[i]
        offsets[i] = per_file_size[f]
        per_file_size[f] += ba[i].size * itemsize

    # Every rank writes its local boxes into its group's file.
    my_bytes = 0
    for bid in mf.local_box_ids:
        fname = f"{prefix}/Level_0/Cell_D_{file_of_box[bid]:05d}"
        handle = store.open_or_create(fname)
        blob = np.ascontiguousarray(mf.fab(bid)).tobytes()
        handle.pwrite(offsets[bid], blob)
        my_bytes += len(blob)

    if comm is not None:
        total = comm.allreduce(my_bytes)
        # File-per-group I/O: contention scales with ranks per file, not
        # with the whole job; charged via an effective "nprocs" equal to
        # the writers of the most loaded file.
        writers_per_file = max(1, nranks // nfiles)
        t = lustre.write_time(total, writers_per_file, collective=True)
        # Plus per-file creates against the MDS.
        t += lustre.metadata_op_time(nfiles) / nranks * nfiles
        comm.compute(t + lustre.open_base / 8)
        comm.barrier()
    if rank == 0:
        header = _header_text(mf, step, nfiles, file_of_box, offsets)
        store.create(f"{prefix}/Header").pwrite(0, header.encode("ascii"))
    if comm is not None:
        comm.barrier()


def read_plotfile_header(store: PFSStore, prefix: str) -> dict:
    """Parse a plotfile header; returns domain, step, box placements.

    (The paper intentionally omits plotfile *read* timings -- the
    cosmologists' reader was unoptimized -- so only the header reader is
    needed to validate what was written.)
    """
    handle = store.open(f"{prefix}/Header")
    text = handle.pread(0, handle.size).decode("ascii").splitlines()
    it = iter(text)
    version = next(it)
    ncomp = int(next(it))
    names = [next(it) for _ in range(ncomp)]
    ndim = int(next(it))
    step = int(next(it))
    domain = tuple(int(v) for v in next(it).split())
    nboxes = int(next(it))
    boxes = []
    for _ in range(nboxes):
        line = next(it)
        geom, fileno, offset = line.rsplit(" ", 2)
        mins_s, maxs_s = geom[1:-1].split(")(")
        mins = tuple(int(v) for v in mins_s.split(","))
        maxs = tuple(int(v) for v in maxs_s.split(","))
        boxes.append({
            "min": mins, "max": maxs,
            "file": int(fileno), "offset": int(offset),
        })
    nfiles = int(next(it))
    return {
        "version": version,
        "names": names,
        "ndim": ndim,
        "step": step,
        "domain": domain,
        "boxes": boxes,
        "nfiles": nfiles,
    }


def read_plotfile_box(store: PFSStore, prefix: str, header: dict,
                      box_id: int, dtype=np.float64) -> np.ndarray:
    """Read one box's data back (used by tests to validate the writer)."""
    info = header["boxes"][box_id]
    shape = tuple(h - l for l, h in zip(info["min"], info["max"]))
    n = int(np.prod(shape))
    handle = store.open(f"{prefix}/Level_0/Cell_D_{info['file']:05d}")
    raw = handle.pread(info["offset"], n * np.dtype(dtype).itemsize)
    return np.frombuffer(raw, dtype=dtype).reshape(shape)
