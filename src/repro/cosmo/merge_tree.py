"""Merge trees of scalar fields (Reeber's core data structure).

Reeber computes halos via merge trees (Smirnov & Morozov's triplet merge
trees; Nigmetov & Morozov's local-global computation). This module
implements the *superlevel-set* merge tree of a dense scalar field: the
tree tracking how connected components of ``{x : f(x) > t}`` appear (at
maxima) and merge (at saddles) as the threshold ``t`` sweeps downward.

From the tree one can read off, with no further passes over the field:

- the component count at any threshold,
- persistence pairs (birth, death) of all maxima -- used to prune
  spurious shallow peaks before calling something a halo,
- the halos at a threshold with a persistence filter
  (:func:`halos_at`).

Connectivity is face-adjacency (matching :mod:`scipy.ndimage`'s default
and the distributed component merge in :mod:`repro.cosmo.reeber`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TreeNode:
    """A maximum (component birth) in the merge tree."""

    cell: tuple        # grid coordinates of the maximum
    birth: float       # its field value
    death: float       # value where its component merges into an older
    #                    one (-inf for the root / global maximum)

    @property
    def persistence(self) -> float:
        """Birth minus death value of this maximum."""
        return self.birth - self.death


class MergeTree:
    """Superlevel-set merge tree of a dense scalar field."""

    def __init__(self, shape, nodes: list[TreeNode], merges):
        self.shape = tuple(shape)
        #: All maxima, sorted by decreasing birth (root first).
        self.nodes = nodes
        #: (value, surviving_node_idx, dying_node_idx) per saddle.
        self.merges = merges

    # -- queries ------------------------------------------------------------

    def n_components_at(self, threshold: float) -> int:
        """Number of connected components of ``{f > threshold}``."""
        births = sum(1 for n in self.nodes if n.birth > threshold)
        deaths = sum(1 for v, _s, _d in self.merges if v > threshold)
        return births - deaths

    def persistence_pairs(self) -> list[tuple[float, float]]:
        """(birth, death) of every maximum; the root dies at -inf."""
        return [(n.birth, n.death) for n in self.nodes]

    def maxima_at(self, threshold: float,
                  min_persistence: float = 0.0) -> list[TreeNode]:
        """Component representatives alive at ``threshold``.

        One node per component of the superlevel set: the highest
        maximum of the component whose persistence clears the filter.
        """
        return [
            n for n in self.nodes
            if n.birth > threshold
            and (n.death <= threshold)  # still its own component there
            and n.persistence >= min_persistence
        ]

    def __len__(self) -> int:
        return len(self.nodes)


def _neighbors_offsets(ndim: int) -> list[tuple]:
    out = []
    for d in range(ndim):
        for s in (-1, 1):
            off = [0] * ndim
            off[d] = s
            out.append(tuple(off))
    return out


def build_merge_tree(fieldv: np.ndarray) -> MergeTree:
    """Build the superlevel-set merge tree of ``fieldv``.

    Cells are processed in decreasing value (ties broken by flat index,
    making the tree deterministic); a union-find tracks components, and
    each component remembers the maximum that created it.
    """
    f = np.asarray(fieldv, dtype=np.float64)
    shape = f.shape
    n = f.size
    flat = f.ravel()
    order = np.lexsort((np.arange(n), -flat))  # desc value, asc index

    parent = np.full(n, -1, dtype=np.int64)  # union-find, -1 = inactive
    comp_max = np.empty(n, dtype=np.int64)   # root -> flat idx of its max

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    strides = np.array(
        [int(np.prod(shape[d + 1:])) for d in range(len(shape))],
        dtype=np.int64,
    )
    offsets = _neighbors_offsets(len(shape))

    births: dict[int, tuple] = {}  # max flat idx -> (value, cell)
    deaths: dict[int, float] = {}
    merges: list[tuple] = []

    coords_cache = np.array(np.unravel_index(np.arange(n), shape)).T

    for flat_idx in order:
        v = float(flat[flat_idx])
        cell = coords_cache[flat_idx]
        # Roots of already-active (higher-valued) neighbor components.
        roots = []
        for off in offsets:
            nb = cell + off
            if (nb < 0).any() or (nb >= shape).any():
                continue
            nb_flat = int((nb * strides).sum())
            if parent[nb_flat] < 0:  # not activated yet (lower value)
                continue
            r = find(nb_flat)
            if r not in roots:
                roots.append(r)
        if not roots:
            # A maximum: a new component is born here.
            parent[flat_idx] = flat_idx
            comp_max[flat_idx] = flat_idx
            births[flat_idx] = (v, tuple(int(c) for c in cell))
            continue
        # Join the component whose maximum is highest (tie: lowest
        # index); every other distinct component dies here (a saddle).
        def rank(r):
            m = comp_max[r]
            return (-flat[m], m)

        roots.sort(key=rank)
        survive = roots[0]
        parent[flat_idx] = survive
        for die in roots[1:]:
            dying_max = int(comp_max[die])
            deaths[dying_max] = v
            merges.append((v, int(comp_max[survive]), dying_max))
            parent[die] = survive

    node_list = [
        TreeNode(cell, bv, deaths.get(max_idx, float("-inf")))
        for max_idx, (bv, cell) in births.items()
    ]
    node_list.sort(key=lambda t: (-t.birth, t.cell))
    return MergeTree(shape, node_list, merges)


def halos_at(fieldv: np.ndarray, threshold: float,
             min_persistence: float = 0.0) -> list[TreeNode]:
    """Halos of ``fieldv`` at ``threshold`` with a persistence filter.

    Without the filter this agrees with plain connected components
    (:func:`repro.cosmo.reeber.find_halos_serial` counts); the filter
    additionally prunes shallow maxima, which is what merge trees buy
    over plain labeling.
    """
    tree = build_merge_tree(fieldv)
    return tree.maxima_at(threshold, min_persistence)
