"""Reeber-like distributed halo finder.

Reeber identifies regions of high density ("halos") in cosmological
simulations via distributed merge trees. The analysis the paper's
experiment actually performs -- find connected components of cells above
a density threshold and report their masses/positions -- is implemented
here with the same local-compute + global-merge structure as Reeber's
local-global merge trees:

1. each rank labels components within its local block
   (:func:`scipy.ndimage.label`),
2. ranks exchange the label strips on their block faces and unify
   touching components with a union-find over (rank, label) pairs
   (the "local exchanges" of Nigmetov & Morozov),
3. component statistics reduce to global halo mass / cell count / peak.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.diy import Bounds


@dataclass(frozen=True)
class Halo:
    """One halo: global statistics of a connected over-dense region."""

    n_cells: int
    mass: float
    peak_density: float
    peak_cell: tuple

    def round(self, digits: int = 6) -> "Halo":
        """Copy with rounded floats (for exact comparisons)."""
        return Halo(self.n_cells, round(self.mass, digits),
                    round(self.peak_density, digits), self.peak_cell)


class _UnionFind:
    """Union-find over hashable keys with path compression."""

    def __init__(self):
        self.parent: dict = {}

    def find(self, x):
        p = self.parent.setdefault(x, x)
        if p != x:
            p = self.parent[x] = self.find(p)
        return p

    def union(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Deterministic: smaller key becomes the root.
            lo, hi = (ra, rb) if ra <= rb else (rb, ra)
            self.parent[hi] = lo


def find_halos_serial(density: np.ndarray, threshold: float) -> list[Halo]:
    """Reference implementation on the full grid (for validation)."""
    mask = density > threshold
    labels, n = ndimage.label(mask)
    halos = []
    for comp in range(1, n + 1):
        sel = labels == comp
        cells = int(sel.sum())
        mass = float(density[sel].sum())
        flat_peak = np.argmax(np.where(sel, density, -np.inf))
        peak = np.unravel_index(flat_peak, density.shape)
        halos.append(Halo(cells, mass, float(density[peak]),
                          tuple(int(c) for c in peak)))
    return _sorted_halos(halos)


def _sorted_halos(halos: list[Halo]) -> list[Halo]:
    return sorted(halos, key=lambda h: (-h.mass, h.peak_cell))


def find_halos_distributed(comm, block: np.ndarray, block_bounds: Bounds,
                           domain_shape, threshold: float) -> list[Halo]:
    """Distributed halo finding over per-rank blocks.

    Every rank passes its local ``block`` (dense array) and the bounds of
    that block in the global ``domain_shape``; blocks must tile the
    domain (the usual consumer-side regular decomposition). Returns the
    same global halo list on every rank.
    """
    me = comm.rank
    mask = block > threshold
    labels, _nlocal = ndimage.label(mask)

    # Local component statistics keyed by (rank, label).
    stats: dict[tuple, list] = {}
    if mask.any():
        comps = np.unique(labels[labels > 0])
        sums = ndimage.sum_labels(block, labels, comps)
        counts = ndimage.sum_labels(mask.astype(np.int64), labels, comps)
        maxs = ndimage.maximum(block, labels, comps)
        lo = np.asarray(block_bounds.min)
        for c, s, n, mx in zip(comps, sums, counts, maxs):
            # Deterministic peak: lexicographically smallest coordinate
            # among the cells attaining the maximum (argwhere is
            # row-major sorted), matching the serial reference.
            pos = np.argwhere((labels == c) & (block == mx))[0]
            stats[(me, int(c))] = [
                int(n), float(s), float(mx),
                tuple(int(p + o) for p, o in zip(pos, lo)),
            ]

    # Face exchange: every rank publishes the label strips on each face
    # of its block, in global coordinates; touching cells with the same
    # over-density on both sides get their components unified.
    faces = []
    nd = block.ndim
    for axis in range(nd):
        for side, idx in ((0, 0), (1, block.shape[axis] - 1)):
            take = [slice(None)] * nd
            take[axis] = idx
            strip = labels[tuple(take)]
            gcoord = (block_bounds.min[axis] if side == 0
                      else block_bounds.max[axis] - 1)
            faces.append((axis, side, int(gcoord),
                          tuple(int(v) for v in block_bounds.min),
                          strip.copy()))
    all_faces = comm.allgather((me, tuple(block_bounds.min),
                                tuple(block_bounds.max), faces))

    uf = _UnionFind()
    for key in stats:
        uf.find(key)

    # For every pair of adjacent faces (my "high" face against a
    # neighbor's "low" face on the same plane), match overlapping cells.
    def face_cells(rank, bmin, bmax, axis, side, gplane, strip):
        """Global (d-1)-coordinates -> label for one face strip."""
        lo = list(bmin)
        hi = list(bmax)
        del lo[axis], hi[axis]
        return rank, axis, gplane, tuple(lo), tuple(hi), strip

    # Group faces by the *meeting plane* they touch: a high face at
    # plane g (side 1) meets low faces (side 0) of neighbors at plane
    # g+1; both are filed under meeting plane g+1 with their side.
    planes: dict[tuple, list] = {}
    for rank, bmin, bmax, rfaces in all_faces:
        for axis, side, gplane, _bmin, strip in rfaces:
            meet = gplane + 1 if side == 1 else gplane
            planes.setdefault((axis, meet, side), []).append(
                face_cells(rank, bmin, bmax, axis, side, gplane, strip)
            )

    done_planes = set()
    for axis, meet, _side in list(planes):
        if (axis, meet) in done_planes:
            continue
        done_planes.add((axis, meet))
        highs = planes.get((axis, meet, 1), [])
        lows = planes.get((axis, meet, 0), [])
        for rh, _ax1, _g1, lo1, hi1, s1 in highs:
            for rl, _ax0, _g0, lo0, hi0, s0 in lows:
                # Overlap of the (d-1)-dim footprints.
                olo = [max(a, b) for a, b in zip(lo0, lo1)]
                ohi = [min(a, b) for a, b in zip(hi0, hi1)]
                if any(l >= h for l, h in zip(olo, ohi)):
                    continue
                a = np.atleast_1d(s1)[tuple(
                    slice(l - o, h - o) for l, h, o in zip(olo, ohi, lo1)
                )]
                b = np.atleast_1d(s0)[tuple(
                    slice(l - o, h - o) for l, h, o in zip(olo, ohi, lo0)
                )]
                both = (a > 0) & (b > 0)
                for la, lb in zip(a[both].ravel(), b[both].ravel()):
                    uf.union((rh, int(la)), (rl, int(lb)))

    # Everyone knows every (rank, label) pair's stats: reduce per root.
    all_stats = comm.allgather(stats)
    merged: dict[tuple, list] = {}
    for rank_stats in all_stats:
        for key, (n, s, mx, pos) in rank_stats.items():
            root = uf.find(key)
            cur = merged.get(root)
            if cur is None:
                merged[root] = [n, s, mx, pos]
            else:
                cur[0] += n
                cur[1] += s
                if (mx, tuple(-p for p in pos)) > \
                        (cur[2], tuple(-p for p in cur[3])):
                    cur[2] = mx
                    cur[3] = pos
    halos = [Halo(n, s, mx, tuple(pos))
             for n, s, mx, pos in merged.values()]
    return _sorted_halos(halos)
