"""Multi-variable, multi-level AMR snapshots.

The paper's introduction motivates metadata-aware transport with "an
adaptive mesh refined (AMR) simulation that computes many datasets,
spanning a dozen variables at different resolutions, coupled to an
analysis task that consumes only a single variable at one resolution.
... only the required dataset would need to be sent ... The other
datasets not needed by the consumer would never actually have to be
written, i.e., sent."

This module produces such snapshots from the Nyx proxy: several derived
variables on level 0 plus a refined level-1 patch, all written through
the ordinary h5 API as separate datasets. LowFive's per-dataset
transport then moves only what the consumer reads --
``tests/cosmo/test_amr_fields.py`` measures exactly that.
"""

from __future__ import annotations

import numpy as np

import repro.h5 as h5
from repro.cosmo.amr import BoxArray, DistributionMapping, MultiFab
from repro.cosmo.nyx import NyxProxy
from repro.diy import Bounds
from repro.h5.plist import TransferProps

#: Refinement ratio of the level-1 patch.
REFINE_RATIO = 2


def derive_fields(density: MultiFab) -> dict[str, MultiFab]:
    """Derive the classic companion variables from the density field.

    All transforms are pointwise on the local fabs, so the result is
    decomposition-independent like the density itself.
    """
    out = {"baryon_density": density}
    specs = {
        "temperature": lambda d: 1.0e4 * np.sqrt(1.0 + d),
        "pressure": lambda d: (1.0 + d) ** 1.4,
        "velocity_x": lambda d: np.tanh(d - 1.0),
        "velocity_y": lambda d: -np.tanh(d - 1.0) / 2.0,
        "velocity_z": lambda d: d * 0.0,
    }
    for name, fn in specs.items():
        mf = MultiFab(density.boxarray, density.dm, density.rank)
        for bid in density.local_box_ids:
            mf.fab(bid)[...] = fn(density.fab(bid))
        out[name] = mf
    return out


def refined_region(domain) -> Bounds:
    """The level-1 patch: the central half-extent box of the domain."""
    lo = [s // 4 for s in domain]
    hi = [s - s // 4 for s in domain]
    return Bounds(lo, hi)


def make_level1_density(comm, domain, max_grid_size: int = 16) -> MultiFab:
    """A refined (2x) density patch over :func:`refined_region`.

    Values are a deterministic function of the *global* fine
    coordinates, so any decomposition produces the same dataset (the
    analysis can validate transport without reference data).
    """
    region = refined_region(domain)
    fine_shape = tuple(int(v) * REFINE_RATIO for v in region.shape)
    ba = BoxArray(fine_shape, max_grid_size)
    nranks = 1 if comm is None else comm.size
    rank = 0 if comm is None else comm.rank
    dm = DistributionMapping(ba, nranks)
    mf = MultiFab(ba, dm, rank)
    for bid in mf.local_box_ids:
        box = ba[bid]
        grids = np.meshgrid(
            *[np.arange(l, h) for l, h in zip(box.min, box.max)],
            indexing="ij",
        )
        val = np.zeros(box.shape)
        for d, g in enumerate(grids):
            val += np.sin((d + 1) * 0.37 * g)
        mf.fab(bid)[...] = 1.0 + val * val
    return mf


def level1_values(selection) -> np.ndarray:
    """Expected level-1 values for any selection (validation helper)."""
    coords = selection.coords()
    if coords.shape[0] == 0:
        return np.empty(0)
    val = np.zeros(coords.shape[0])
    for d in range(coords.shape[1]):
        val += np.sin((d + 1) * 0.37 * coords[:, d])
    return 1.0 + val * val


def write_amr_snapshot(fname: str, sim: NyxProxy, comm, vol,
                       step: int) -> dict[str, tuple]:
    """Write a full multi-variable, two-level snapshot.

    Level-0 variables land under ``native_fields/<var>``; the refined
    density under ``level_1/baryon_density``. Returns
    ``{dataset path: shape}`` for the caller's bookkeeping.
    """
    density = sim.advance()
    fields = derive_fields(density)
    level1 = make_level1_density(comm, sim.domain)
    written = {}
    dxpl = TransferProps(collective=False)  # per-box independent writes
    f = h5.File(fname, "w", comm=comm, vol=vol)
    for var, mf in fields.items():
        path = f"native_fields/{var}"
        dset = f.create_dataset(path, shape=mf.boxarray.domain,
                                dtype=h5.FLOAT64)
        for bid in mf.local_box_ids:
            box = mf.boxarray[bid]
            dset.write(mf.fab(bid),
                       file_select=h5.hyperslab(tuple(box.min), box.shape),
                       dxpl=dxpl)
        written[path] = mf.boxarray.domain
    path = "level_1/baryon_density"
    dset = f.create_dataset(path, shape=level1.boxarray.domain,
                            dtype=h5.FLOAT64)
    for bid in level1.local_box_ids:
        box = level1.boxarray[bid]
        dset.write(level1.fab(bid),
                   file_select=h5.hyperslab(tuple(box.min), box.shape),
                   dxpl=dxpl)
    written[path] = level1.boxarray.domain
    f.attrs["step"] = step
    f.attrs["refine_ratio"] = REFINE_RATIO
    f.close()
    return written
