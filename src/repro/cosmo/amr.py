"""AMReX-like block-structured mesh substrate.

Nyx delegates its mesh storage and I/O to AMReX, which manages the
domain as a *box array* (a set of rectangular boxes chopped at
``max_grid_size``), a *distribution mapping* (box -> MPI rank), and
*multifabs* (per-box field data with some number of components). This
module implements those pieces for a single refinement level, which is
all the paper's I/O experiment exercises (the analysis consumes one
resolution of one variable).
"""

from __future__ import annotations

import numpy as np

from repro.diy import Bounds

#: An AMReX box is an integer bounding box.
Box = Bounds


class BoxArray:
    """The domain chopped into boxes of at most ``max_grid_size`` per side."""

    def __init__(self, domain_shape, max_grid_size: int = 32):
        self.domain = tuple(int(s) for s in domain_shape)
        if any(s <= 0 for s in self.domain):
            raise ValueError(f"bad domain {self.domain}")
        if max_grid_size < 1:
            raise ValueError("max_grid_size must be >= 1")
        self.max_grid_size = max_grid_size
        per_dim = []
        for extent in self.domain:
            cuts = [
                (i * max_grid_size, min((i + 1) * max_grid_size, extent))
                for i in range((extent + max_grid_size - 1) // max_grid_size)
            ]
            per_dim.append(cuts)
        self.boxes: list[Box] = []
        grid = [len(c) for c in per_dim]
        for flat in range(int(np.prod(grid))):
            coords = np.unravel_index(flat, grid)
            lo = [per_dim[d][c][0] for d, c in enumerate(coords)]
            hi = [per_dim[d][c][1] for d, c in enumerate(coords)]
            self.boxes.append(Box(lo, hi))

    def __len__(self) -> int:
        return len(self.boxes)

    def __getitem__(self, i: int) -> Box:
        return self.boxes[i]

    def __iter__(self):
        return iter(self.boxes)

    @property
    def total_cells(self) -> int:
        """Total cell count of the domain."""
        return int(np.prod(self.domain))


class DistributionMapping:
    """Round-robin assignment of boxes to ranks (AMReX's default-ish)."""

    def __init__(self, boxarray: BoxArray, nranks: int):
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        self.boxarray = boxarray
        self.nranks = nranks
        self._owner = [i % nranks for i in range(len(boxarray))]

    def owner(self, box_id: int) -> int:
        """Owning rank of box ``box_id``."""
        return self._owner[box_id]

    def local_boxes(self, rank: int) -> list[int]:
        """Box ids owned by ``rank``."""
        return [i for i, o in enumerate(self._owner) if o == rank]


class MultiFab:
    """Field data over a box array: this rank's boxes, ``ncomp`` components.

    Data for box ``i`` is an array of shape ``box.shape + (ncomp,)``
    (squeezed to ``box.shape`` when ``ncomp == 1``).
    """

    def __init__(self, boxarray: BoxArray, dm: DistributionMapping,
                 rank: int, ncomp: int = 1, dtype=np.float64):
        self.boxarray = boxarray
        self.dm = dm
        self.rank = rank
        self.ncomp = ncomp
        self.dtype = np.dtype(dtype)
        self.fabs: dict[int, np.ndarray] = {}
        for bid in dm.local_boxes(rank):
            shape = boxarray[bid].shape
            if ncomp > 1:
                shape = shape + (ncomp,)
            self.fabs[bid] = np.zeros(shape, dtype=self.dtype)

    @property
    def local_box_ids(self) -> list[int]:
        """Sorted ids of the boxes this rank owns."""
        return sorted(self.fabs)

    def fab(self, box_id: int) -> np.ndarray:
        """This rank's data array for box ``box_id``."""
        return self.fabs[box_id]

    def set_val(self, value) -> None:
        """Fill every local fab with ``value``."""
        for arr in self.fabs.values():
            arr[...] = value

    def local_cells(self) -> int:
        """Cells stored locally on this rank."""
        return sum(self.boxarray[b].size for b in self.fabs)

    def local_min(self) -> float:
        """Minimum over this rank's fabs."""
        vals = [a.min() for a in self.fabs.values() if a.size]
        return float(min(vals)) if vals else float("inf")

    def local_max(self) -> float:
        """Maximum over this rank's fabs."""
        vals = [a.max() for a in self.fabs.values() if a.size]
        return float(max(vals)) if vals else float("-inf")

    def local_sum(self) -> float:
        """Sum over this rank's fabs."""
        return float(sum(a.sum() for a in self.fabs.values()))
