"""Analytic model of the Nyx-Reeber use case (paper Table II).

Configuration from the paper: 4096 Nyx processes, 1024 Reeber
processes, grids 256^3 ... 2048^3, the first two time steps (two
snapshots) written and read, on Cori KNL. Three I/O paths:

- **Baseline HDF5**: all data to one shared HDF5 file, Reeber reads it
  back (DNF at 2048^3: "the I/O did not finish in 1.5 hours");
- **Plotfiles**: AMReX's multi-file binary format (write time only --
  the paper omits the unoptimized plotfile read);
- **LowFive**: in situ, with zero-copy disabled because the AMReX
  writer repacks ("up to three copies of the same data ... can exist in
  memory simultaneously").

The speed-up columns follow the paper's arithmetic: the ratio of write
times (the plotfile-read time is excluded so the reported gain is a
lower bound).
"""

from __future__ import annotations

from repro.perfmodel.transports import Machine, THETA_KNL, _rtt

#: The paper's 1.5-hour cutoff after which runs were abandoned.
DNF_SECONDS = 5400.0


def nyx_reeber_times(grid_size: int, nprod: int = 4096, ncons: int = 1024,
                     machine: Machine = THETA_KNL, snapshots: int = 2,
                     nfiles: int = 64) -> dict:
    """Model Table II's row for ``grid_size``^3.

    Returns a dict with lowfive/hdf5/plotfile write/read times in
    seconds (``None`` marks DNF entries) and the two speed-up factors.
    """
    net, c, lu = machine.net, machine.lf, machine.lustre
    P = nprod + ncons
    total_bytes = grid_size ** 3 * 8
    cells_pp = grid_size ** 3 / nprod   # per Nyx rank
    cells_pc = grid_size ** 3 / ncons   # per Reeber rank
    bytes_pp = cells_pp * 8
    bytes_pc = cells_pc * 8

    # -- LowFive (memory mode, zero-copy disabled: 3 in-memory copies) --
    lf_write = snapshots * (
        3 * net.memcpy_time(bytes_pp)          # repack + deep copy + pack
        + c.per_element_handle * cells_pp
        + 8 * c.per_h5_op
        + 0.5 * c.sync_factor * net.epoch_jitter(P)
        + net.collective_time("alltoall", nprod, 256)
    )
    lf_read = snapshots * (
        c.per_element_handle * cells_pc
        + bytes_pc / (net.bandwidth / net.contention_factor(P))
        + bytes_pc / net.memcpy_bandwidth
        + 8 * _rtt(net)
        + 0.5 * c.sync_factor * net.epoch_jitter(P)
    )

    # -- Baseline HDF5: one shared file ---------------------------------
    hdf5_write = snapshots * (
        lu.open_time(nprod)
        + lu.metadata_op_time(4)
        + lu.write_time(total_bytes, nprod)
        + lu.close_time(nprod)
    )
    hdf5_read = snapshots * (
        lu.open_time(ncons)
        + lu.read_time(total_bytes, ncons)
        + lu.close_time(ncons)
    )
    dnf = hdf5_write + hdf5_read > DNF_SECONDS

    # -- Plotfiles: nfiles binary files + header ------------------------
    writers_per_file = max(1, nprod // nfiles)
    plot_write = snapshots * (
        lu.write_time(total_bytes, writers_per_file)
        + lu.metadata_op_time(nfiles)
        + lu.open_time(writers_per_file)
        + lu.close_time(writers_per_file)
    )

    out = {
        "grid": grid_size,
        "lowfive_write": lf_write,
        "lowfive_read": lf_read,
        "hdf5_write": None if dnf else hdf5_write,
        "hdf5_read": None if dnf else hdf5_read,
        "plotfile_write": plot_write,
        # Paper's speed-up arithmetic: ratio of write times.
        "speedup_vs_hdf5": None if dnf else hdf5_write / lf_write,
        "speedup_vs_plotfiles": plot_write / lf_write,
    }
    return out


def table2_rows(grid_sizes=(256, 512, 1024, 2048), **kw) -> list[dict]:
    """All of Table II."""
    return [nyx_reeber_times(n, **kw) for n in grid_sizes]
