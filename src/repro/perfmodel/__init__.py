"""Analytic large-scale performance model.

Executed simmpi runs use one OS thread per rank, which caps them at a
few hundred ranks. The paper's figures go to 16,384 ranks, so each
transport's completion time is also computed *analytically* here, from
the same decomposition geometry (:mod:`repro.diy`) and the same cost
constants (:class:`~repro.simmpi.NetworkModel`,
:class:`~repro.lowfive.CostConfig`, :class:`~repro.pfs.LustreModel`,
baseline cost dataclasses) that the executed runs charge. Tests verify
the two agree at overlapping scales.
"""

from repro.perfmodel.transports import (
    Machine,
    THETA_KNL,
    CORI_HASWELL,
    lowfive_memory_time,
    lowfive_file_time,
    pure_hdf5_time,
    pure_mpi_time,
    dataspaces_time,
    bredala_times,
)
from repro.perfmodel.nyx_reeber import nyx_reeber_times

__all__ = [
    "Machine",
    "THETA_KNL",
    "CORI_HASWELL",
    "lowfive_memory_time",
    "lowfive_file_time",
    "pure_hdf5_time",
    "pure_mpi_time",
    "dataspaces_time",
    "bredala_times",
    "nyx_reeber_times",
]
