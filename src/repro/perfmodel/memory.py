"""Memory-footprint model: how many copies of the data live where.

Paper Sec. IV-C: with the AMReX writer's repacking, "up to three copies
of the same data (one native, one repacked, and one in LowFive) can
exist in memory simultaneously" -- and zero-copy exists precisely to
avoid the third. This module makes those trade-offs quantitative per
producer rank, for LowFive configurations and for the baselines.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Footprint:
    """Per-producer-rank memory demand of one transport configuration."""

    copies: float          # simultaneous full copies of the local data
    bytes: int             # copies * bytes_per_rank
    breakdown: tuple       # (label, copies) pairs

    def __str__(self):
        parts = ", ".join(f"{label} x{c:g}" for label, c in self.breakdown)
        return f"{self.copies:g} copies ({parts})"


def _mk(bytes_per_rank: int, parts: list[tuple[str, float]]) -> Footprint:
    copies = sum(c for _, c in parts)
    return Footprint(copies, int(copies * bytes_per_rank), tuple(parts))


def lowfive_footprint(bytes_per_rank: int, zero_copy: bool = False,
                      repack: bool = False,
                      file_mode: bool = False) -> Footprint:
    """LowFive producer-side footprint.

    - the application's native buffer is always resident;
    - ``repack`` adds the writer's packing buffer (the Nyx/AMReX case);
    - deep-copy mode adds LowFive's own copy; ``zero_copy`` removes it
      (but is incompatible with ``repack``, which invalidates the
      reference -- the paper had to disable it);
    - file mode adds no extra producer copy (data streams to the PFS).
    """
    if zero_copy and repack:
        raise ValueError(
            "zero-copy requires the user buffer to stay valid; a "
            "repacking writer breaks that (paper Sec. IV-C)"
        )
    parts = [("native", 1.0)]
    if repack:
        parts.append(("repacked", 1.0))
    if not file_mode:
        if zero_copy:
            parts.append(("lowfive (reference)", 0.0))
        else:
            parts.append(("lowfive (deep copy)", 1.0))
    return _mk(bytes_per_rank, parts)


def pure_mpi_footprint(bytes_per_rank: int) -> Footprint:
    """Hand-written exchange: native buffer + staging send buffers."""
    return _mk(bytes_per_rank, [("native", 1.0), ("send staging", 1.0)])


def dataspaces_footprint(bytes_per_rank: int,
                         put_local: bool = True) -> Footprint:
    """DataSpaces producer footprint.

    ``put_local`` (the paper's configuration) registers the user's own
    buffer and ships only metadata; a plain ``put`` stages a full copy
    onto the servers.
    """
    parts = [("native", 1.0)]
    if put_local:
        parts.append(("registered (in place)", 0.0))
    else:
        parts.append(("staged on servers", 1.0))
    return _mk(bytes_per_rank, parts)


def bredala_footprint(bytes_per_rank: int, ndim: int = 3) -> Footprint:
    """Bredala bounding-box redistribution footprint.

    The container serializes items into per-destination buffers and
    ships coordinates alongside the data (8 bytes per dimension per
    8-byte item in our grid workload), so the send staging is larger
    than the data itself.
    """
    coord_overhead = ndim  # 8-byte coordinate per dim vs 8-byte value
    return _mk(bytes_per_rank, [
        ("native", 1.0),
        ("container staging (data+coords)", 1.0 + coord_overhead),
    ])


def footprint_table(bytes_per_rank: int) -> list[tuple[str, Footprint]]:
    """All configurations side by side (for the ablation bench)."""
    return [
        ("LowFive zero-copy", lowfive_footprint(bytes_per_rank,
                                                zero_copy=True)),
        ("LowFive deep copy", lowfive_footprint(bytes_per_rank)),
        ("LowFive + repacking writer (Nyx)",
         lowfive_footprint(bytes_per_rank, repack=True)),
        ("LowFive file mode", lowfive_footprint(bytes_per_rank,
                                                file_mode=True)),
        ("Pure MPI", pure_mpi_footprint(bytes_per_rank)),
        ("DataSpaces put_local", dataspaces_footprint(bytes_per_rank)),
        ("DataSpaces put (staged)",
         dataspaces_footprint(bytes_per_rank, put_local=False)),
        ("Bredala (bbox policy)", bredala_footprint(bytes_per_rank)),
    ]
