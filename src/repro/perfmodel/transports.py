"""Analytic completion-time models for every transport in the evaluation.

Each function mirrors the cost structure its executed counterpart
charges (same geometry, same constants), evaluated without threads so it
scales to the paper's 16,384 ranks. See ``tests/perfmodel`` for the
executed-vs-modeled agreement checks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.baselines.bredala import BredalaCosts
from repro.baselines.dataspaces import DSCosts
from repro.diy import RegularDecomposer
from repro.lowfive.config import CostConfig
from repro.pfs.lustre import LustreModel
from repro.simmpi import NetworkModel
from repro.synth import SyntheticWorkload


@dataclass(frozen=True)
class Machine:
    """A machine configuration: network + software cost constants."""

    name: str
    net: NetworkModel
    lf: CostConfig
    ds: DSCosts
    br: BredalaCosts
    lustre: LustreModel

    def cpu_scaled(self, factor: float, name: str | None = None) -> "Machine":
        """Scale CPU-bound constants by ``factor`` (e.g. Haswell cores
        are ~3x faster than KNL cores for this serial software stack)."""
        return Machine(
            name=name or f"{self.name} x{factor}",
            net=replace(
                self.net,
                msg_overhead=self.net.msg_overhead * factor,
                per_element_pack=self.net.per_element_pack * factor,
                epoch_jitter_per_log2p=(
                    self.net.epoch_jitter_per_log2p * factor
                ),
                memcpy_bandwidth=self.net.memcpy_bandwidth / factor,
            ),
            lf=replace(
                self.lf,
                per_h5_op=self.lf.per_h5_op * factor,
                per_element_handle=self.lf.per_element_handle * factor,
                per_box_test=self.lf.per_box_test * factor,
            ),
            ds=replace(
                self.ds,
                per_put=self.ds.per_put * factor,
                per_get=self.ds.per_get * factor,
                per_rdma_fetch=self.ds.per_rdma_fetch * factor,
                per_element_handle=self.ds.per_element_handle * factor,
            ),
            br=replace(
                self.br,
                per_item_contiguous=self.br.per_item_contiguous * factor,
                per_item_bbox=self.br.per_item_bbox * factor,
                per_pair_index=self.br.per_pair_index * factor,
            ),
            lustre=self.lustre,
        )


#: Theta: Intel Xeon Phi KNL nodes (slow serial cores), Aries network.
THETA_KNL = Machine(
    name="Theta (KNL)",
    net=NetworkModel(),
    lf=CostConfig(),
    ds=DSCosts(),
    br=BredalaCosts(),
    lustre=LustreModel(),
)

#: Cori Haswell partition: ~3x faster serial cores than KNL. On Haswell
#: the hand-written point-at-a-time loop is no longer the bottleneck it
#: is on KNL (out-of-order cores hide it), so its per-element cost
#: converges to LowFive's contiguous path -- which is why Fig. 11 sees
#: "LowFive remains as fast as MPI" while Fig. 7 (KNL) saw LowFive win.
_haswell = THETA_KNL.cpu_scaled(1.0 / 3.0, name="Cori (Haswell)")
CORI_HASWELL = replace(
    _haswell, net=replace(_haswell.net, per_element_pack=1.8e-8)
)


# -- geometry -----------------------------------------------------------------


def _even_offsets(total: int, parts: int) -> np.ndarray:
    base, rem = divmod(total, parts)
    sizes = np.full(parts, base, dtype=np.int64)
    sizes[:rem] += 1
    return np.concatenate([[0], np.cumsum(sizes)])


@dataclass
class _GridGeometry:
    """Per-consumer and per-producer traffic of the grid dataset."""

    cons_cells: np.ndarray      # cells read by each consumer
    cons_owners: np.ndarray     # producers supplying each consumer
    cons_common: np.ndarray     # common-decomp blocks each consumer asks
    prod_cells: np.ndarray      # cells served by each producer
    prod_reqs: np.ndarray       # data requests served by each producer


def grid_geometry(shape, nprod: int, ncons: int) -> _GridGeometry:
    """Traffic of row-slab producers -> block consumers for ``shape``."""
    shape = tuple(shape)
    prod_offs = _even_offsets(shape[0], nprod)
    cdec = RegularDecomposer(shape, ncons)
    common = RegularDecomposer(shape, nprod)
    ncb = cdec.ngrid_blocks
    cons_cells = np.zeros(ncons, dtype=np.int64)
    cons_owners = np.zeros(ncons, dtype=np.int64)
    cons_common = np.zeros(ncons, dtype=np.int64)
    prod_cells = np.zeros(nprod, dtype=np.int64)
    prod_reqs = np.zeros(nprod, dtype=np.int64)
    for c in range(ncb):
        b = cdec.block_bounds(c)
        cons_cells[c] = b.size
        x0, x1 = int(b.min[0]), int(b.max[0])
        first = int(np.searchsorted(prod_offs, x0, side="right")) - 1
        last = int(np.searchsorted(prod_offs, x1 - 1, side="right")) - 1
        cons_owners[c] = last - first + 1
        cross = b.size // max(1, x1 - x0)
        for p in range(first, last + 1):
            rows = min(x1, int(prod_offs[p + 1])) - max(x0, int(prod_offs[p]))
            prod_cells[p] += rows * cross
            prod_reqs[p] += 1
        # Step-1 intersect queries go to common-decomposition owners.
        cons_common[c] = len(common.blocks_intersecting(b))
    return _GridGeometry(cons_cells, cons_owners, cons_common,
                         prod_cells, prod_reqs)


@dataclass
class _ListGeometry:
    """Per-consumer/producer traffic of the contiguous particle list."""

    cons_items: np.ndarray
    cons_owners: np.ndarray
    cons_common: np.ndarray
    prod_items: np.ndarray
    prod_reqs: np.ndarray


def list_geometry(n_total: int, nprod: int, ncons: int) -> _ListGeometry:
    """Traffic of contiguous-range producers -> contiguous consumers."""
    prod_offs = _even_offsets(n_total, nprod)
    cons_offs = _even_offsets(n_total, ncons)
    cons_items = np.diff(cons_offs)
    cons_owners = np.zeros(ncons, dtype=np.int64)
    cons_common = np.zeros(ncons, dtype=np.int64)
    prod_items = np.zeros(nprod, dtype=np.int64)
    prod_reqs = np.zeros(nprod, dtype=np.int64)
    for c in range(ncons):
        lo, hi = int(cons_offs[c]), int(cons_offs[c + 1])
        if hi <= lo:
            continue
        first = int(np.searchsorted(prod_offs, lo, side="right")) - 1
        last = int(np.searchsorted(prod_offs, hi - 1, side="right")) - 1
        cons_owners[c] = last - first + 1
        cons_common[c] = cons_owners[c]  # 1-d: common decomp = producers
        for p in range(first, last + 1):
            got = min(hi, int(prod_offs[p + 1])) - max(lo, int(prod_offs[p]))
            prod_items[p] += got
            prod_reqs[p] += 1
    return _ListGeometry(cons_items, cons_owners, cons_common,
                         prod_items, prod_reqs)


def _rtt(net: NetworkModel) -> float:
    """One request/reply round trip's latency + software overheads."""
    return 2.0 * (net.latency + 2.0 * net.msg_overhead)


# -- in situ transports --------------------------------------------------------------


def lowfive_memory_time(nprod: int, ncons: int,
                        wl: SyntheticWorkload | None = None,
                        machine: Machine = THETA_KNL) -> float:
    """Completion time of LowFive memory mode (Figs. 5, 7, 8, 9, 11)."""
    wl = wl or SyntheticWorkload()
    net, c = machine.net, machine.lf
    P = nprod + ncons
    shape = wl.grid_shape(nprod)
    npart = wl.total_particles(nprod)
    gg = grid_geometry(shape, nprod, ncons)
    lg = list_geometry(npart, nprod, ncons)

    gpts_pp = int(np.prod(shape)) // nprod
    parts_pp = npart // nprod
    bytes_pp = gpts_pp * 8 + parts_pp * 12

    # Producer phase: creates + deep-copy writes + collective index.
    t_prod = (
        8 * c.per_h5_op
        + c.per_element_handle * (gpts_pp + 3 * parts_pp)
        + net.memcpy_time(bytes_pp)
        + 0.5 * c.sync_factor * net.epoch_jitter(P)
        + net.collective_time("alltoall", nprod, 256)
        + c.per_box_test * 8
    )

    # Consumer critical path (serial RPC rounds, as implemented).
    rtt = _rtt(net)
    grid_bytes = gg.cons_cells * 8
    part_bytes = lg.cons_items * 12
    t_cons = (
        rtt + net.memcpy_time(2048) + 2 * c.per_h5_op  # metadata open
        + 0.5 * c.sync_factor * net.epoch_jitter(P)
        + (gg.cons_common + lg.cons_common) * (rtt + c.per_box_test * 4)
        + (gg.cons_owners + lg.cons_owners) * rtt
        + (grid_bytes + part_bytes) * (
            1.0 / (net.bandwidth / net.contention_factor(P))
            + 1.0 / net.memcpy_bandwidth  # producer-side extract
        )
        + c.per_element_handle * (gg.cons_cells + 3 * lg.cons_items)
    )

    # Producer serve load (requests are answered serially per producer).
    t_serve = (
        (gg.prod_cells * 8 + lg.prod_items * 12) / net.memcpy_bandwidth
        + (gg.prod_reqs + lg.prod_reqs) * 3 * net.msg_overhead
    )
    return float(t_prod + max(float(t_cons.max()), float(t_serve.max()))
                 + rtt)


def pure_mpi_time(nprod: int, ncons: int,
                  wl: SyntheticWorkload | None = None,
                  machine: Machine = THETA_KNL) -> float:
    """Completion time of the hand-written MPI exchange (Figs. 7, 11)."""
    wl = wl or SyntheticWorkload()
    net = machine.net
    P = nprod + ncons
    shape = wl.grid_shape(nprod)
    npart = wl.total_particles(nprod)
    gg = grid_geometry(shape, nprod, ncons)
    lg = list_geometry(npart, nprod, ncons)
    gpts_pp = int(np.prod(shape)) // nprod
    parts_pp = npart // nprod

    # Producer: point-at-a-time packing of everything it sends, after
    # its half of the epoch's synchronization skew.
    t_prod = (
        0.5 * net.epoch_jitter(P)
        + net.pack_elements_time(gpts_pp + 3 * parts_pp)
        + (ncons * 2) * net.msg_overhead  # one message per consumer/dataset
    )
    # Consumer: per-point unpack plus wire time, then straggler skew
    # (post-receive, so it does not hide behind the producer's packing;
    # see pure_mpi_consumer).
    bytes_c = gg.cons_cells * 8 + lg.cons_items * 12
    t_cons = (
        net.pack_elements_time(gg.cons_cells + 3 * lg.cons_items)
        + bytes_c / (net.bandwidth / net.contention_factor(P))
        + (gg.cons_owners + lg.cons_owners) * net.msg_overhead
        + 0.65 * net.epoch_jitter(P)
    )
    return float(t_prod + t_cons.max())


def dataspaces_time(nprod: int, ncons: int,
                    wl: SyntheticWorkload | None = None,
                    machine: Machine = CORI_HASWELL,
                    nservers: int = 4) -> float:
    """Completion time of DataSpaces staging (Figs. 8, 11).

    Requires ``nservers`` extra staging ranks beyond ``nprod + ncons``
    (resource cost highlighted in the paper's discussion).
    """
    wl = wl or SyntheticWorkload()
    net, dsc = machine.net, machine.ds
    P = nprod + ncons + nservers
    shape = wl.grid_shape(nprod)
    npart = wl.total_particles(nprod)
    gg = grid_geometry(shape, nprod, ncons)
    lg = list_geometry(npart, nprod, ncons)
    rtt = _rtt(net)

    # Producer: metadata-only puts, asynchronous (no serve phase).
    t_prod = 2 * dsc.per_put + 2 * net.msg_overhead * min(nservers, 4)

    # Consumer: DHT queries + one-sided fetches.
    bytes_c = gg.cons_cells * 8 + lg.cons_items * 12
    nshards = min(nservers, 4)
    t_cons = (
        dsc.sync_factor * net.epoch_jitter(P)
        + 2 * dsc.per_get + 2 * nshards * rtt
        + (gg.cons_owners + lg.cons_owners) * dsc.per_rdma_fetch
        + bytes_c / (net.bandwidth / net.contention_factor(P))
        + dsc.per_element_handle * (gg.cons_cells + 3 * lg.cons_items)
    )
    return float(t_prod + t_cons.max())


def bredala_times(nprod: int, ncons: int,
                  wl: SyntheticWorkload | None = None,
                  machine: Machine = THETA_KNL) -> dict:
    """Bredala grid/particles/total times (Fig. 9)."""
    wl = wl or SyntheticWorkload()
    net, br = machine.net, machine.br
    P = nprod + ncons
    shape = wl.grid_shape(nprod)
    npart = wl.total_particles(nprod)
    gg = grid_geometry(shape, nprod, ncons)
    lg = list_geometry(npart, nprod, ncons)
    gpts_pp = int(np.prod(shape)) // nprod
    parts_pp = npart // nprod
    # One epoch's synchronization skew, charged once (the producer's
    # half; the consumer's half overlaps it -- see redistribute_*),
    # split evenly between the two decomposed curves.
    jitter = 0.25 * br.sync_factor * net.epoch_jitter(P)

    # Grid: bounding-box policy. Quadratic index computation/exchange,
    # per-item classification + reorder, coordinates on the wire.
    grid_wire = gg.cons_cells * (8 + 8 * len(shape))  # data + coords
    t_grid = (
        jitter
        + br.per_pair_index * nprod * ncons
        + br.per_item_bbox * gpts_pp  # producer classify/serialize
        + float((br.per_item_bbox * gg.cons_cells
                 + grid_wire / (net.bandwidth / net.contention_factor(P))
                 ).max())
    )
    # Particles: contiguous policy, bulk buffers.
    t_parts = (
        jitter
        + net.collective_time("allgather", nprod, 8)
        + br.per_item_contiguous * parts_pp
        + net.memcpy_time(parts_pp * 12)
        + float((br.per_item_contiguous * lg.cons_items
                 + (lg.cons_items * 12)
                 / (net.bandwidth / net.contention_factor(P))
                 + (lg.cons_items * 12) / net.memcpy_bandwidth
                 ).max())
    )
    return {"grid": t_grid, "particles": t_parts,
            "total": t_grid + t_parts}


# -- file-based transports ---------------------------------------------------------


def pure_hdf5_time(nprod: int, ncons: int,
                   wl: SyntheticWorkload | None = None,
                   machine: Machine = THETA_KNL) -> float:
    """Write + read through a shared HDF5 file, no LowFive (Fig. 6)."""
    wl = wl or SyntheticWorkload()
    lu = machine.lustre
    total_bytes = wl.total_bytes(nprod)
    t_write = (
        lu.open_time(nprod)
        + lu.metadata_op_time(8)
        + lu.write_time(total_bytes, nprod)
        + lu.close_time(nprod)
    )
    t_read = (
        lu.open_time(ncons)
        + lu.read_time(total_bytes, ncons)
        + lu.close_time(ncons)
    )
    return t_write + t_read


def lowfive_file_time(nprod: int, ncons: int,
                      wl: SyntheticWorkload | None = None,
                      machine: Machine = THETA_KNL) -> float:
    """LowFive file mode: pure HDF5 plus the VOL's overheads (Figs. 5-6).

    On top of the physical I/O, LowFive's close performs a second
    metadata epoch (object-metadata replay and readiness handshake
    against the MDS) plus the synchronization skew of coordinating with
    the consumers. Mirrors DistMetadataVOL.file_close.
    """
    wl = wl or SyntheticWorkload()
    net, c, lu = machine.net, machine.lf, machine.lustre
    overhead = (
        lu.open_time(nprod) + lu.close_time(nprod)
        + c.sync_factor * net.epoch_jitter(nprod + ncons)
        + 10 * c.per_h5_op
    )
    return pure_hdf5_time(nprod, ncons, wl, machine) + overhead
