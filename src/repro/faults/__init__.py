"""Deterministic fault injection for the simulated machine.

A :class:`FaultPlan` is built from a seed plus declarative rules and is
threaded through the whole stack (``Engine(faults=plan)``,
``Workflow.run(faults=plan)``). Every injection decision is a pure
function of ``(seed, event key, per-link ordinal)`` computed with a
keyed hash -- no wall clock, no global randomness -- so a seeded faulty
run is *bit-deterministic and replayable*: two runs with the same seed
(and fresh, identically-constructed plans) produce identical virtual
clocks, traces and redistributed bytes.

Fault taxonomy (see DESIGN.md "Fault injection & recovery"):

- **message faults** (:class:`MessageFaultRule`): per-link extra
  latency, wire-time slowdown, and duplicate delivery, applied in
  :meth:`~repro.simmpi.engine.Engine.deliver`;
- **rank crashes** (:class:`CrashRule`): a rank raises a typed
  :class:`~repro.simmpi.errors.RankFailure` once its virtual clock
  reaches the configured time -- peers are torn down cleanly instead of
  hanging;
- **degraded OSTs** (:class:`OstSlowRule`): per-OST bandwidth
  multipliers folded into :class:`~repro.pfs.lustre.LustreModel`;
- **RPC losses** (:class:`RpcFaultRule`): request attempts are dropped
  before reaching the network, exercising
  :class:`~repro.lowfive.rpc.RPCClient` timeout/retry/backoff;
- **compute slowdowns** (:class:`ComputeSlowRule`): a rank's local work
  is stretched by a constant factor -- the deterministic way to make a
  streaming consumer lag its producer and trigger backpressure.

Every injected fault is counted in ``repro.obs`` metrics
(``faults.injected{kind=...}``) and annotated as an instant event in
the exported Perfetto trace.
"""

from repro.faults.plan import (
    ComputeSlowRule,
    CrashRule,
    FaultPlan,
    MessageDecision,
    MessageFaultRule,
    OstSlowRule,
    RpcFaultRule,
)

__all__ = [
    "FaultPlan",
    "MessageFaultRule",
    "MessageDecision",
    "ComputeSlowRule",
    "CrashRule",
    "OstSlowRule",
    "RpcFaultRule",
]
