"""Seeded fault plans: declarative rules + a keyed-hash decision PRF.

Determinism contract
--------------------
Decisions never consult wall-clock time or any global RNG. Each one is
``PRF(seed, event key, ordinal)`` where the *ordinal* is a per-key
counter advanced in the calling rank's program order (per-link send
index, per-``(caller, dest, fn)`` RPC call index). Program order on a
simulated rank is deterministic, so the same seed replays the same
faults at the same virtual times regardless of host thread scheduling.

A plan instance *consumes* its ordinals (and crash occurrences) as the
run proceeds. Two independent runs must therefore each get a fresh plan
built from the same seed and rules; a single instance is deliberately
reused across :class:`~repro.workflow.runner.Workflow` restart attempts
so that a ``times=1`` crash fires once and the retry runs clean.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MessageFaultRule:
    """Message-level faults on point-to-point links.

    ``src``/``dst`` filter on world ranks (``None`` matches any). The
    first matching rule decides a message's fate.

    Attributes
    ----------
    p_delay, max_delay:
        With probability ``p_delay`` the message's virtual arrival is
        pushed back by a PRF-drawn amount in ``(0, max_delay]`` --
        bounded delay, which also reorders it against later traffic on
        other links.
    p_duplicate:
        Probability that a second copy of the message is enqueued at
        the receiver (the engine dedups duplicates at match time, so
        this fault is always recoverable).
    wire_factor:
        Multiplier on the message's wire time (a persistently slow or
        fast link); ``1.0`` leaves it untouched.
    """

    src: int | None = None
    dst: int | None = None
    p_delay: float = 0.0
    max_delay: float = 0.0
    p_duplicate: float = 0.0
    wire_factor: float = 1.0

    def matches(self, src: int, dst: int) -> bool:
        """True when the rule applies to the (src, dst) world-rank link."""
        return ((self.src is None or self.src == src)
                and (self.dst is None or self.dst == dst))


@dataclass(frozen=True)
class MessageDecision:
    """Outcome of consulting the plan for one delivered message."""

    extra_delay: float = 0.0
    duplicate: bool = False
    dup_delay: float = 0.0
    wire_factor: float = 1.0


@dataclass(frozen=True)
class CrashRule:
    """Crash ``rank`` once its virtual clock reaches ``at_vtime``.

    ``times`` bounds how often the crash fires across restart attempts
    of the same plan instance: the default ``1`` makes the fault
    transient (a workflow restart runs clean), a large value makes the
    rank persistently faulty.
    """

    rank: int
    at_vtime: float
    times: int = 1


@dataclass(frozen=True)
class ComputeSlowRule:
    """Stretch every ``compute`` of ``rank`` by ``factor``.

    A persistently slow rank: its local work takes ``factor`` times the
    nominal virtual seconds. The canonical way to make one streaming
    consumer lag its producer deterministically -- no user-code changes,
    the slowdown rides on the plan like every other fault.
    """

    rank: int
    factor: float

    def __post_init__(self):
        if self.factor <= 0:
            raise ValueError("factor must be > 0")


@dataclass(frozen=True)
class OstSlowRule:
    """Degrade OST ``ost`` to ``factor`` of its nominal bandwidth."""

    ost: int
    factor: float


@dataclass(frozen=True)
class RpcFaultRule:
    """Drop RPC request attempts before they reach the network.

    ``fn``/``dest``/``caller`` filter on the called function name, the
    server's remote-group rank and the caller's world rank (``None``
    matches any). ``lose_first`` deterministically drops the first that
    many attempts of every matching call (guaranteed-recoverable when
    below the client's ``max_retries``); ``p_lost`` additionally drops
    later attempts at random (per-attempt PRF draw).
    """

    fn: str | None = None
    dest: int | None = None
    caller: int | None = None
    lose_first: int = 0
    p_lost: float = 0.0

    def matches(self, caller: int, dest: int, fn: str) -> bool:
        """True when the rule applies to this (caller, dest, fn) call."""
        return ((self.fn is None or self.fn == fn)
                and (self.dest is None or self.dest == dest)
                and (self.caller is None or self.caller == caller))


class FaultPlan:
    """A seeded, deterministic schedule of injectable faults.

    Parameters
    ----------
    seed:
        Root of the decision PRF; equal seeds (with equal rules) replay
        identical faults.
    messages, crashes, osts, rpcs, slowdowns:
        Declarative rule lists (see the rule dataclasses).
    """

    def __init__(self, seed: int = 0, *,
                 messages: tuple | list = (),
                 crashes: tuple | list = (),
                 osts: tuple | list = (),
                 rpcs: tuple | list = (),
                 slowdowns: tuple | list = ()):
        self.seed = int(seed)
        self.message_rules = tuple(messages)
        self.crash_rules = tuple(crashes)
        self.ost_rules = tuple(osts)
        self.rpc_rules = tuple(rpcs)
        self.slowdown_rules = tuple(slowdowns)
        self._slow_factor = {r.rank: r.factor for r in self.slowdown_rules}
        self._lock = threading.Lock()
        self._link_counts: dict[tuple, int] = {}
        self._rpc_counts: dict[tuple, int] = {}
        self._crash_left = {r.rank: r.times for r in self.crash_rules}
        self._injected: dict[str, int] = {}

    # -- PRF ---------------------------------------------------------------

    def _u(self, *key) -> float:
        """Uniform [0, 1) draw that is a pure function of (seed, key)."""
        blob = repr((self.seed,) + key).encode()
        h = hashlib.blake2b(blob, digest_size=8).digest()
        return int.from_bytes(h, "big") / 2.0**64

    def _note(self, kind: str, n: int = 1) -> None:
        with self._lock:
            self._injected[kind] = self._injected.get(kind, 0) + n

    def injected_counts(self) -> dict:
        """Copy of the per-kind injected-fault counters so far."""
        with self._lock:
            return dict(self._injected)

    # -- message faults ----------------------------------------------------

    def message_decision(self, src_world: int,
                         dst_world: int) -> MessageDecision | None:
        """Decide the fate of the next message on the (src, dst) link.

        Advances the link's ordinal; returns ``None`` when no rule
        matches the link.
        """
        rule = None
        for r in self.message_rules:
            if r.matches(src_world, dst_world):
                rule = r
                break
        if rule is None:
            return None
        with self._lock:
            key = (src_world, dst_world)
            idx = self._link_counts.get(key, 0)
            self._link_counts[key] = idx + 1
        extra = 0.0
        if rule.p_delay > 0 and self._u("delay?", src_world, dst_world,
                                        idx) < rule.p_delay:
            extra = rule.max_delay * self._u("delay", src_world,
                                             dst_world, idx)
            self._note("msg_delay")
        duplicate = (rule.p_duplicate > 0
                     and self._u("dup?", src_world, dst_world,
                                 idx) < rule.p_duplicate)
        dup_delay = 0.0
        if duplicate:
            dup_delay = rule.max_delay * self._u("dup_delay", src_world,
                                                 dst_world, idx)
            self._note("msg_duplicate")
        if extra == 0.0 and not duplicate and rule.wire_factor == 1.0:
            return None
        if rule.wire_factor != 1.0:
            self._note("msg_slow_wire")
        return MessageDecision(extra, duplicate, dup_delay,
                               rule.wire_factor)

    # -- crashes -----------------------------------------------------------

    def crash_vtime(self, rank: int) -> float | None:
        """Pending crash time of ``rank``, or ``None`` when it has no
        (remaining) crash scheduled."""
        with self._lock:
            if self._crash_left.get(rank, 0) <= 0:
                return None
        for r in self.crash_rules:
            if r.rank == rank:
                return r.at_vtime
        return None

    def note_crash(self, rank: int) -> None:
        """Consume one crash occurrence of ``rank`` (engine callback)."""
        with self._lock:
            self._crash_left[rank] = self._crash_left.get(rank, 0) - 1
            self._injected["crash"] = self._injected.get("crash", 0) + 1

    # -- compute slowdowns -------------------------------------------------

    def scaled_compute(self, rank: int, seconds: float) -> float:
        """Virtual seconds ``rank``'s nominal ``seconds`` of work takes.

        Stateless (no ordinal): a slow rank is slow for the whole run,
        so the scaling is a pure per-rank factor.
        """
        factor = self._slow_factor.get(rank)
        if factor is None or factor == 1.0:
            return seconds
        return seconds * factor

    # -- storage faults ----------------------------------------------------

    def lustre_model(self, model):
        """A copy of ``model`` with this plan's OST slowdowns applied."""
        if not self.ost_rules:
            return model
        nost = model.stripe_count
        factors = [1.0] * nost
        for r in self.ost_rules:
            if 0 <= r.ost < nost:
                factors[r.ost] = r.factor
        self._note("ost_slow", sum(1 for f in factors if f != 1.0))
        return replace(model, ost_factors=tuple(factors))

    # -- RPC faults --------------------------------------------------------

    def rpc_lost(self, caller_world: int, dest: int, fn: str,
                 attempt: int) -> bool:
        """True when this attempt of the call should be dropped.

        ``attempt`` 0 advances the per-``(caller, dest, fn)`` call
        ordinal; retries of the same call share it.
        """
        rule = None
        for r in self.rpc_rules:
            if r.matches(caller_world, dest, fn):
                rule = r
                break
        if rule is None:
            return False
        key = (caller_world, dest, fn)
        with self._lock:
            if attempt == 0:
                self._rpc_counts[key] = self._rpc_counts.get(key, -1) + 1
            idx = self._rpc_counts.get(key, 0)
        lost = attempt < rule.lose_first or (
            rule.p_lost > 0
            and self._u("rpc", caller_world, dest, fn, idx,
                        attempt) < rule.p_lost
        )
        if lost:
            self._note("rpc_lost")
        return lost
