"""``python -m repro.tools critpath``: causal analysis of one run.

Runs a workflow (the built-in demo producer/consumer job, or any
example file exposing ``build_workflow()``), extracts the critical
path, classifies every blocked interval, checks the per-rank time
conservation invariant, and prints the result as a report: top-k
critical-path segments, per-category and per-phase shares, and the
wait-state table. ``--trace``/``--report`` write the Chrome trace and
the full JSON report; ``--strict`` turns any conservation, path
residual, or trace-validation violation into a nonzero exit.
"""

from __future__ import annotations

import json
import sys


def _load_example(path: str):
    """Import ``path`` as a module and return its ``build_workflow()``."""
    import importlib.util

    spec = importlib.util.spec_from_file_location("_critpath_example", path)
    if spec is None or spec.loader is None:
        raise SystemExit(f"cannot import example {path!r}")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    build = getattr(mod, "build_workflow", None)
    if build is None:
        raise SystemExit(
            f"example {path!r} defines no build_workflow() function"
        )
    return build()


def _run_workflow(args):
    """Execute the requested workload; returns its WorkflowResult."""
    if args.example:
        wf = _load_example(args.example)
        return wf.run(trace=True, timeout=args.timeout)
    from repro.bench.drivers import _lowfive_wf
    from repro.perfmodel.transports import THETA_KNL
    from repro.pfs import PFSStore
    from repro.synth import SyntheticWorkload

    wl = SyntheticWorkload(grid_points_per_proc=args.grid_points,
                           particles_per_proc=args.particles)
    wf = _lowfive_wf(args.nprod, args.ncons, wl, THETA_KNL, args.mode,
                     PFSStore())
    return wf.run(model=THETA_KNL.net, trace=True, timeout=args.timeout)


def _fmt_seconds(sec: float) -> str:
    return f"{sec * 1e3:10.4f} ms"


def _print_report(report, top: int, out=None) -> None:
    """Human-readable report: path table, shares, wait states."""
    out = out if out is not None else sys.stdout
    p = lambda *a: print(*a, file=out)  # noqa: E731

    path = report.path
    p(f"makespan          {_fmt_seconds(report.makespan)}")
    p(f"critical path     {len(path.segments)} segments, residual "
      f"{path.residual:.3e} s")
    p(f"compute imbalance {report.imbalance:.3f} (max/mean - 1)")
    p("")
    p(f"top {min(top, len(path.segments))} critical-path segments:")
    p(f"  {'duration':>13}  {'rank':>4}  {'kind':<10} {'category':<8} "
      f"detail")
    for s in path.top_segments(top):
        p(f"  {_fmt_seconds(s.duration)}  {s.rank:>4}  {s.kind:<10} "
          f"{s.category:<8} {s.detail}")
    p("")
    p("critical-path shares by category:")
    for cat, share in sorted(path.category_shares().items(),
                             key=lambda kv: -kv[1]):
        p(f"  {cat:<10} {share * 100:6.2f} %")
    phases = path.phase_breakdown()
    if phases:
        p("critical-path time by phase:")
        for ph, sec in sorted(phases.items(), key=lambda kv: -kv[1]):
            p(f"  {ph:<14} {_fmt_seconds(sec)}")
    p("")
    p("aggregate rank-second shares:")
    for k, v in report.shares.items():
        p(f"  {k:<10} {v * 100:6.2f} %")
    p("")
    waits = report.wait_by_category()
    if waits:
        p("wait states (idle rank-seconds by cause):")
        for cat, sec in sorted(waits.items(), key=lambda kv: -kv[1]):
            n = sum(1 for w in report.waits if w.category == cat)
            p(f"  {cat:<22} {_fmt_seconds(sec)}  ({n} intervals)")
        longest = sorted(report.waits, key=lambda w: -w.seconds)[:top]
        p(f"longest {len(longest)} wait intervals:")
        p(f"  {'duration':>13}  {'rank':>4}  {'category':<22} "
          f"{'cause':>5}  span")
        for w in longest:
            cause = "-" if w.cause_rank is None else str(w.cause_rank)
            p(f"  {_fmt_seconds(w.seconds)}  {w.rank:>4}  "
              f"{w.category:<22} {cause:>5}  {w.cause_span or '-'}")
    else:
        p("wait states: none (no rank ever blocked)")
    p("")
    cons = report.conservation
    status = "OK" if cons.ok else "VIOLATED"
    p(f"conservation      {status} (max residual "
      f"{cons.max_residual:.3e} s, wait residual "
      f"{cons.max_wait_residual:.3e} s)")


def run(args) -> int:
    """Entry point for the ``critpath`` subcommand."""
    res = _run_workflow(args)
    report = res.causal_report(tol=args.tol)
    _print_report(report, args.top)

    failures = []
    if not report.conservation.ok:
        failures.append(
            f"conservation violated: max residual "
            f"{report.conservation.max_residual:.3e} s"
        )
    if abs(report.path.residual) > args.tol:
        failures.append(
            f"critical path residual {report.path.residual:.3e} s "
            f"exceeds {args.tol:.1e}"
        )
    if args.report:
        with open(args.report, "w") as f:
            json.dump(report.to_dict(), f, indent=2, sort_keys=True)
        print(f"wrote report {args.report}")
    if args.trace:
        from repro.obs import validate_chrome_trace, write_chrome_trace

        doc = write_chrome_trace(args.trace, res.obs, res.trace)
        try:
            validate_chrome_trace(doc)
        except ValueError as exc:
            failures.append(f"trace validation failed: {exc}")
        else:
            flows = sum(1 for e in doc["traceEvents"]
                        if e.get("ph") == "s")
            print(f"wrote trace {args.trace} ({flows} flow edges)")
    if failures:
        for msg in failures:
            print(f"ERROR: {msg}", file=sys.stderr)
        return 1 if args.strict else 0
    return 0


def add_parser(sub) -> None:
    """Register the ``critpath`` subcommand on ``sub``."""
    p = sub.add_parser(
        "critpath",
        help="run a workflow and print its critical path, wait-state "
             "table and conservation check",
    )
    p.add_argument("--example", metavar="PATH", default=None,
                   help="python file exposing build_workflow(); default "
                        "is the built-in demo producer/consumer job")
    p.add_argument("--mode", choices=["memory", "file"], default="memory",
                   help="LowFive transport mode of the demo job")
    p.add_argument("--nprod", type=int, default=4,
                   help="demo producer ranks (default 4)")
    p.add_argument("--ncons", type=int, default=2,
                   help="demo consumer ranks (default 2)")
    p.add_argument("--grid-points", type=int, default=4096,
                   help="demo grid points per producer rank")
    p.add_argument("--particles", type=int, default=2048,
                   help="demo particles per producer rank")
    p.add_argument("--top", type=int, default=10,
                   help="rows in the segment/wait tables (default 10)")
    p.add_argument("--tol", type=float, default=1e-9,
                   help="conservation / path-residual tolerance in "
                        "virtual seconds (default 1e-9)")
    p.add_argument("--timeout", type=float, default=120.0,
                   help="real-time deadlock timeout (default 120 s)")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="also write the run's Chrome trace JSON here")
    p.add_argument("--report", metavar="PATH", default=None,
                   help="also write the full JSON report here")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero on conservation, path-residual or "
                        "trace-validation failure")
    p.set_defaults(run=run)
