"""Module entry point: ``python -m repro.tools h5dump <dir> <file>``
or ``python -m repro.tools trace <out.json>``."""

import sys

from repro.tools.transfer import main

if __name__ == "__main__":
    sys.exit(main())
