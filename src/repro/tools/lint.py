"""``python -m repro.tools lint`` -- the ANL00x virtual-time lint.

Thin CLI over :mod:`repro.analyze.lint`: lints the given files and
directory trees (default: the repo's ``src``, ``examples``,
``benchmarks`` and ``tests`` when run from a checkout) and prints one
``path:line:col: CODE message`` line per violation. Exit status 1
when anything is found.
"""

from __future__ import annotations

import os
import sys


def _default_paths() -> list[str]:
    """src/examples/benchmarks/tests relative to the checkout root."""
    here = os.getcwd()
    out = [p for p in ("src", "examples", "benchmarks", "tests")
           if os.path.isdir(os.path.join(here, p))]
    return out or ["."]


def run(args) -> int:
    """Entry point for the ``lint`` subcommand."""
    from repro.analyze.lint import RULES, lint_paths

    paths = args.paths or _default_paths()
    if args.list_rules:
        for code in sorted(RULES):
            print(f"{code}  {RULES[code]}")
        return 0
    violations = lint_paths(paths)
    for v in violations:
        print(v.render())
    if violations:
        print(f"{len(violations)} violation(s) in {len(paths)} path(s)",
              file=sys.stderr)
        return 1
    print(f"lint clean: {', '.join(paths)}")
    return 0


def add_parser(sub) -> None:
    """Register the ``lint`` subcommand on ``sub``."""
    p = sub.add_parser(
        "lint",
        help="run the ANL00x virtual-time lint rules over source trees",
    )
    p.add_argument("paths", nargs="*",
                   help="files or directories (default: src examples "
                        "benchmarks tests under the current "
                        "directory)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule table and exit")
    p.set_defaults(run=run)
