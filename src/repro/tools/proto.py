"""``python -m repro.tools proto`` -- the PRO00x static protocol check.

Thin CLI over :mod:`repro.analyze.proto`: verifies communication
protocols of rank-body code in the given files, directory trees, or
importable modules (default: the repo's ``src``, ``examples``,
``benchmarks`` and ``tests`` when run from a checkout) and prints one
finding per protocol violation, path witness indented below it.
``--strict`` exits 1 on any finding (the CI gate); ``--json`` emits
the findings as a machine-readable report instead.
"""

from __future__ import annotations

import json
import os
import sys


def _default_paths() -> list[str]:
    """src/examples/benchmarks/tests relative to the checkout root."""
    here = os.getcwd()
    out = [p for p in ("src", "examples", "benchmarks", "tests")
           if os.path.isdir(os.path.join(here, p))]
    return out or ["."]


def _module_path(name: str) -> str:
    """Filesystem path of an importable module, for ``-m`` targets."""
    import importlib.util

    spec = importlib.util.find_spec(name)
    if spec is None or spec.origin in (None, "namespace", "built-in"):
        raise SystemExit(f"proto: cannot locate module {name!r}")
    assert spec.origin is not None
    return spec.origin


def run(args) -> int:
    """Entry point for the ``proto`` subcommand."""
    from repro.analyze.proto import PROTO_RULES, check_paths

    if args.list_rules:
        for code in sorted(PROTO_RULES):
            print(f"{code}  {PROTO_RULES[code]}")
        return 0
    paths = list(args.paths) + [_module_path(m) for m in args.module]
    paths = paths or _default_paths()
    findings = check_paths(paths)
    if args.json:
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        for f in findings:
            print(f.render())
    if findings:
        if not args.json:
            print(f"{len(findings)} protocol finding(s) in "
                  f"{len(paths)} target(s)", file=sys.stderr)
        return 1 if args.strict else 0
    if not args.json:
        print(f"proto clean: {', '.join(paths)}")
    return 0


def add_parser(sub) -> None:
    """Register the ``proto`` subcommand on ``sub``."""
    p = sub.add_parser(
        "proto",
        help="statically verify communication protocols of rank-body "
             "code (PRO00x rules)",
    )
    p.add_argument("paths", nargs="*",
                   help="files or directories (default: src examples "
                        "benchmarks tests under the current "
                        "directory)")
    p.add_argument("-m", "--module", action="append", default=[],
                   metavar="MOD",
                   help="also check an importable module by dotted "
                        "name (repeatable)")
    p.add_argument("--strict", action="store_true",
                   help="exit 1 when any finding is reported")
    p.add_argument("--json", action="store_true",
                   help="emit findings as a JSON report")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule table and exit")
    p.set_defaults(run=run)
