"""Unified cross-run regression gate: ``python -m repro.tools regress``.

One comparator (:mod:`repro.obs.ledger`) replaces the three hand-rolled
``--check-ref`` implementations the bench scripts used to carry.
Compares any run document -- a bench JSON (``{"runs": [...]}``) or a
JSONL run ledger -- against a committed reference or another ledger:

- *exact* fields (default ``vtime``/``messages``/``bytes_sent``, plus
  the ``digest`` data fingerprints when both sides carry them) must be
  bit-identical;
- *toleranced* fields (``--tol wall_seconds=0.5``,
  ``--tol attribution.shares.wait=0.25``; dotted paths reach into
  nested dicts) may drift within a relative bound;
- parameters gate the comparison exactly like the bench gates did: the
  reference must agree on every parameter key both documents share
  (``--ignore-params`` skips this).

Exit status is the gate verdict: 0 clean, 1 on any drift (or, with
``--check-ref``, on a missing/non-covering reference).
"""

from __future__ import annotations

import json
import sys

from repro.obs.ledger import (
    EXACT_FIELDS,
    check_reference,
    load_runs_doc,
)


def parse_tol(specs) -> dict:
    """``["wall_seconds=0.5", ...]`` -> ``{"wall_seconds": 0.5}``."""
    out = {}
    for spec in specs or ():
        path, _, bound = spec.partition("=")
        if not bound:
            raise ValueError(
                f"tolerance {spec!r} must look like field.path=0.25"
            )
        out[path] = float(bound)
    return out


def shared_params(current: dict, ref_path: str) -> dict | None:
    """The current document's params restricted to keys the reference
    also declares (``None`` = skip the gate: either side has none).

    A reference with no ``params`` (e.g. a ledger) gates nothing; a key
    only one side declares cannot disagree, so it does not gate either.
    This reproduces each bench gate's fixed key list on the committed
    baselines -- the extra shared keys (``machine``, ``shape``) always
    matched there by construction.
    """
    cur = current.get("params")
    if not cur:
        return None
    try:
        ref = load_runs_doc(ref_path).get("params")
    except (OSError, json.JSONDecodeError):
        return None
    if not ref:
        return None
    keys = set(cur) & set(ref)
    return {k: cur[k] for k in sorted(keys)} or None


def run(args) -> int:
    """Entry point of the ``regress`` subcommand."""
    try:
        current = load_runs_doc(args.document)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"ERROR: cannot load {args.document}: {exc}",
              file=sys.stderr)
        return 1
    runs = current.get("runs", [])
    if not runs:
        print(f"ERROR: {args.document} contains no runs",
              file=sys.stderr)
        return 1

    exact = tuple(args.exact.split(",")) if args.exact else EXACT_FIELDS
    try:
        tolerances = parse_tol(args.tol)
    except ValueError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1

    our_params = None if args.ignore_params \
        else shared_params(current, args.ref)
    problems = check_reference(
        runs, args.ref, our_params=our_params,
        check_ref=args.check_ref, exact=exact,
        check_digest=not args.no_digest, tolerances=tolerances,
    )

    print(f"regress: {args.document} vs {args.ref}: "
          f"{len(runs)} runs, {len(problems)} problems")
    if args.verbose:
        try:
            ref_keys = {b.get("workload")
                        for b in load_runs_doc(args.ref).get("runs", [])}
        except (OSError, json.JSONDecodeError):
            ref_keys = set()
        for r in runs:
            mark = "=" if r.get("workload") in ref_keys else " "
            print(f"  [{mark}] {r.get('workload')}")
    for p in problems:
        print(f"ERROR: {p}", file=sys.stderr)
    if not problems:
        print("regress: no drift detected")
    return 1 if (problems and (args.check_ref or args.strict)) \
        else (1 if problems else 0)


def add_parser(sub) -> None:
    """Register the ``regress`` subcommand on ``sub``."""
    p = sub.add_parser(
        "regress",
        help="compare a run document or ledger against a committed "
             "reference (the unified drift gate)",
    )
    p.add_argument("document",
                   help="current run document: bench JSON or .jsonl "
                        "run ledger")
    p.add_argument("--ref", required=True,
                   help="reference to compare against (bench JSON or "
                        ".jsonl ledger)")
    p.add_argument("--check-ref", action="store_true",
                   help="treat a missing or non-covering reference as "
                        "a failure (the bench gates' semantics)")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero on drift even without "
                        "--check-ref")
    p.add_argument("--exact", default=None,
                   help="comma-separated exact fields (default "
                        "vtime,messages,bytes_sent)")
    p.add_argument("--tol", action="append", metavar="PATH=BOUND",
                   help="relative tolerance on a (possibly dotted) "
                        "field path, e.g. wall_seconds=0.5 or "
                        "attribution.shares.wait=0.25; repeatable")
    p.add_argument("--no-digest", action="store_true",
                   help="skip the data-digest comparison")
    p.add_argument("--ignore-params", action="store_true",
                   help="compare even when the documents' parameters "
                        "disagree")
    p.add_argument("--verbose", action="store_true",
                   help="list per-run comparison detail")
    p.set_defaults(run=run)
