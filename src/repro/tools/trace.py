"""Export a demo LowFive run as a Chrome/Perfetto trace.

``python -m repro.tools trace out.json`` runs the paper's
producer/consumer workflow in LowFive memory mode on a shrunk workload
and writes the run's full observability record -- spans from every
instrumented layer (simmpi collectives, lowfive index/serve/query, pfs
I/O, workflow tasks), point communication events, and the metrics dump
-- as ``trace_event`` JSON. Open the file at https://ui.perfetto.dev
or ``chrome://tracing``.
"""

from __future__ import annotations

from repro.obs import write_chrome_trace
from repro.pfs import PFSStore
from repro.perfmodel.transports import THETA_KNL
from repro.synth import SyntheticWorkload


def run_demo_workflow(nprod: int = 4, ncons: int = 2,
                      mode: str = "memory", grid_points: int = 4096,
                      particles: int = 2048):
    """Run the synthetic producer/consumer workflow with tracing on.

    Returns the :class:`~repro.workflow.runner.WorkflowResult`; its
    ``obs`` and ``trace`` fields feed :func:`repro.obs.chrome_trace`.
    """
    from repro.bench.drivers import _lowfive_wf

    wl = SyntheticWorkload(grid_points_per_proc=grid_points,
                           particles_per_proc=particles)
    wf = _lowfive_wf(nprod, ncons, wl, THETA_KNL, mode, PFSStore())
    res = wf.run(model=THETA_KNL.net, trace=True)
    if not all(bool(r) for r in res.returns["consumer"]):
        raise AssertionError("consumer-side validation failed")
    return res


def export_demo_trace(path: str, nprod: int = 4, ncons: int = 2,
                      mode: str = "memory", metrics: bool = False) -> dict:
    """Run the demo workflow and write its Chrome trace to ``path``.

    Returns the trace document (also written to disk), so callers and
    tests can inspect it without re-reading the file. With
    ``metrics=True`` the metrics snapshot and virtual-time series are
    additionally dumped as ``<path>.metrics.json``.
    """
    res = run_demo_workflow(nprod, ncons, mode)
    doc = write_chrome_trace(path, res.obs, res.trace)
    if metrics:
        import json

        from repro.obs import metrics_dump, series_dump

        side = {"metrics": metrics_dump(res.obs.metrics),
                "series": series_dump(res.obs.series)}
        with open(path + ".metrics.json", "w") as f:
            json.dump(side, f, indent=2, sort_keys=True)
            f.write("\n")
    return doc


def trace_summary(doc: dict) -> str:
    """One-paragraph human summary of a trace document."""
    evs = doc["traceEvents"]
    spans = [e for e in evs if e["ph"] == "X"]
    cats = sorted({e.get("cat", "") for e in spans})
    instants = sum(1 for e in evs if e["ph"] == "i")
    return (f"{len(spans)} spans ({', '.join(c for c in cats if c)}), "
            f"{instants} instant events, "
            f"{len(doc['otherData']['metrics'])} metric series")
