"""``python -m repro.tools analyze`` -- schedule analysis CLI.

Runs one of the paper's benchmark workloads (or any python file
exposing ``build_workflow()``) under the simulator, then feeds the
recorded causal trace to every :mod:`repro.analyze` dynamic check --
wildcard races, collective mismatches, message leaks -- and renders
the findings. Exit status is the number of findings capped at 1, so
CI can gate on a silent schedule; ``--no-strict`` always exits 0.

A fault plan can be layered on (``--delay-src/--delay-dst/--delay``)
to demonstrate the detector: delaying one sender's messages past a
concurrent rival's arrival turns a clean many-to-one exchange into a
reported wildcard race, deterministically.
"""

from __future__ import annotations

import json
import sys

from repro.perfmodel.transports import THETA_KNL
from repro.synth import SyntheticWorkload


def _build_workflow(args):
    """The workflow + timeout selected by the CLI arguments."""
    wl = SyntheticWorkload(grid_points_per_proc=args.grid_points,
                           particles_per_proc=args.particles)
    if args.example == "fig7":
        from repro.bench.drivers import _pure_mpi_wf

        return _pure_mpi_wf(args.nprod, args.ncons, wl, THETA_KNL), 120.0
    if args.example == "fig5":
        from repro.bench.drivers import _lowfive_wf
        from repro.pfs import PFSStore

        timeout = 240.0 if args.mode == "file" else 120.0
        return _lowfive_wf(args.nprod, args.ncons, wl, THETA_KNL,
                           args.mode, PFSStore()), timeout
    # A user file exposing build_workflow(), same contract as critpath.
    import importlib.util

    spec = importlib.util.spec_from_file_location("analyze_example",
                                                  args.example)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod.build_workflow(), args.timeout


def _fault_plan(args):
    if args.delay <= 0.0:
        return None
    from repro.faults import FaultPlan, MessageFaultRule

    rule = MessageFaultRule(src=args.delay_src, dst=args.delay_dst,
                            p_delay=1.0, max_delay=args.delay)
    return FaultPlan(args.seed, messages=[rule])


def run(args) -> int:
    """Entry point for the ``analyze`` subcommand."""
    from repro.analyze import analyze_obs

    wf, timeout = _build_workflow(args)
    if args.timeout is not None:
        timeout = args.timeout
    res = wf.run(model=THETA_KNL.net, timeout=timeout,
                 faults=_fault_plan(args))
    findings = analyze_obs(res.obs)

    n = len(res.obs.causal.matches())
    print(f"analyzed {args.example}: {res.messages} messages, "
          f"{n} wildcard matches, vtime {res.vtime:.6f} s")
    if not findings:
        print("no findings: schedule is race-free, collectives agree, "
              "no message leaks")
    for f in findings:
        print(f"FINDING [{f.kind}] rank {f.rank}: {f.summary}")
    if args.report:
        with open(args.report, "w") as fh:
            json.dump([f.to_dict() for f in findings], fh, indent=2,
                      sort_keys=True)
        print(f"wrote report {args.report}")
    if findings and args.strict:
        print(f"ERROR: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


def add_parser(sub) -> None:
    """Register the ``analyze`` subcommand on ``sub``."""
    p = sub.add_parser(
        "analyze",
        help="run a workload and check its schedule for wildcard "
             "races, collective mismatches and message leaks",
    )
    p.add_argument("--example", default="fig5",
                   help="fig5 (LowFive), fig7 (pure MPI), or a python "
                        "file exposing build_workflow() (default fig5)")
    p.add_argument("--mode", choices=["memory", "file"], default="memory",
                   help="LowFive transport mode for fig5")
    p.add_argument("--nprod", type=int, default=4,
                   help="producer ranks (default 4)")
    p.add_argument("--ncons", type=int, default=2,
                   help="consumer ranks (default 2)")
    p.add_argument("--grid-points", type=int, default=4096,
                   help="grid points per producer rank")
    p.add_argument("--particles", type=int, default=2048,
                   help="particles per producer rank")
    p.add_argument("--timeout", type=float, default=None,
                   help="real-time deadlock timeout (default per mode)")
    p.add_argument("--delay", type=float, default=0.0,
                   help="inject a deterministic message delay of up to "
                        "this many virtual seconds (0 disables)")
    p.add_argument("--delay-src", type=int, default=None,
                   help="world rank whose sends the delay applies to")
    p.add_argument("--delay-dst", type=int, default=None,
                   help="destination world rank the delay applies to")
    p.add_argument("--seed", type=int, default=0,
                   help="fault-plan PRF seed (default 0)")
    p.add_argument("--report", metavar="PATH", default=None,
                   help="also write the findings as JSON here")
    p.add_argument("--no-strict", dest="strict", action="store_false",
                   help="exit 0 even when there are findings")
    p.set_defaults(run=run, strict=True)
