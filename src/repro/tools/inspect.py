"""Inspection of native-format files (h5ls / h5dump equivalents)."""

from __future__ import annotations

import io

import numpy as np

from repro.h5 import format as h5format
from repro.h5.objects import DatasetNode, GroupNode
from repro.h5.selection import AllSelection


def _load(blob: bytes, name: str = ""):
    return h5format.decode_file(blob, name)


def h5ls(blob: bytes, name: str = "") -> str:
    """One line per object, like ``h5ls -r``: path, kind, shape/type."""
    root = _load(blob, name)
    out = io.StringIO()
    for node in root.walk():
        if isinstance(node, DatasetNode):
            out.write(
                f"{node.path:<40} Dataset {node.space.shape} "
                f"{node.dtype.np}\n"
            )
        elif isinstance(node, GroupNode):
            out.write(f"{node.path:<40} Group\n")
    return out.getvalue()


def _dump_attrs(node, out, indent):
    for aname in sorted(node.attributes):
        attr = node.attributes[aname]
        val = "<unwritten>"
        if attr.value is not None:
            val = np.array2string(np.asarray(attr.value), threshold=8)
        out.write(f"{indent}@{aname} = {val}\n")


def h5dump(blob: bytes, name: str = "", max_elements: int = 16) -> str:
    """Tree + attributes + data preview, like a compact ``h5dump``."""
    root = _load(blob, name)
    out = io.StringIO()
    out.write(f"FILE {root.name or '<unnamed>'}\n")
    _dump_attrs(root, out, "  ")

    def walk(group, depth):
        indent = "  " * (depth + 1)
        for cname in sorted(group.children):
            node = group.children[cname]
            if isinstance(node, DatasetNode):
                out.write(
                    f"{indent}DATASET {cname} shape={node.space.shape} "
                    f"dtype={node.dtype.np} pieces={len(node.pieces)}\n"
                )
                _dump_attrs(node, out, indent + "  ")
                if node.space.npoints and node.pieces:
                    data = node.read(AllSelection(node.space.shape))
                    preview = np.array2string(
                        data[:max_elements], threshold=max_elements
                    )
                    suffix = " ..." if data.size > max_elements else ""
                    out.write(f"{indent}  data: {preview}{suffix}\n")
            else:
                out.write(f"{indent}GROUP {cname}\n")
                _dump_attrs(node, out, indent + "  ")
                walk(node, depth + 1)

    walk(root, 0)
    return out.getvalue()
