"""Self-contained HTML run report: ``python -m repro.tools report``.

Runs the demo producer/consumer workflow (same job ``repro.tools
trace`` exports) and renders everything the observability layer knows
about it into one dependency-free HTML file:

- the run manifest (workload, mode, ranks, virtual results, cost-model
  digest, git revision, stable record digest);
- a span/phase table with count, total seconds and bucket-interpolated
  p50/p95/p99 span durations (:meth:`HistogramValue.quantile`);
- the critical path: category shares plus the longest segments;
- the wait-state taxonomy with causes;
- inline SVG sparklines of every recorded virtual-time series (queue
  depth, PFS bytes, mailbox depth, ...);
- fault annotations, when the run injected any.

A terminal summary prints alongside, and ``--ledger`` appends the
run's :class:`~repro.obs.ledger.RunRecord` to a JSONL ledger so the
report run also feeds the cross-run regression gate.
"""

from __future__ import annotations

import html

from repro.obs.metrics import HistogramValue, key_str

#: Sparkline viewport (px).
_SPARK_W, _SPARK_H = 220, 36


def span_stats(obs) -> list[dict]:
    """Per-span-name duration statistics with quantile estimates.

    Folds every completed span into one base-2
    :class:`HistogramValue` per ``(name, cat)``, then reads p50/p95/p99
    through bucket interpolation -- the same estimator the metrics
    layer exposes, exercised here on real span populations.
    """
    hists: dict[tuple, HistogramValue] = {}
    for s in obs.spans.spans():
        h = hists.get((s.name, s.cat))
        if h is None:
            h = hists[(s.name, s.cat)] = HistogramValue()
        h.observe(s.t1 - s.t0)
    out = []
    for (name, cat), h in sorted(hists.items()):
        out.append({
            "name": name, "cat": cat, "count": h.count,
            "total": h.total, "mean": h.mean,
            "p50": h.quantile(0.50), "p95": h.quantile(0.95),
            "p99": h.quantile(0.99), "max": h.vmax,
        })
    out.sort(key=lambda r: -r["total"])
    return out


def sparkline(series_value) -> str:
    """Inline SVG sparkline of one series (mean per window + band).

    The filled band spans the per-window min/max; the line tracks the
    window means. Returns an ``<svg>`` fragment.
    """
    pts = series_value.points()
    if not pts:
        return ""
    w, h = _SPARK_W, _SPARK_H
    t0 = pts[0][0]
    t1 = pts[-1][0] + series_value.interval
    tspan = max(t1 - t0, 1e-12)
    vmax = max(win.vmax for _, win in pts)
    vmin = min(win.vmin for _, win in pts)
    vspan = max(vmax - vmin, 1e-12)

    def x(t):
        return round((t - t0) / tspan * (w - 2) + 1, 1)

    def y(v):
        return round(h - 2 - (v - vmin) / vspan * (h - 4), 1)

    mean_pts, band_hi, band_lo = [], [], []
    for t, win in pts:
        tx = x(t + series_value.interval / 2)
        mean_pts.append(f"{tx},{y(win.mean)}")
        band_hi.append(f"{tx},{y(win.vmax)}")
        band_lo.append(f"{tx},{y(win.vmin)}")
    band = " ".join(band_hi + list(reversed(band_lo)))
    line = " ".join(mean_pts)
    return (
        f'<svg width="{w}" height="{h}" viewBox="0 0 {w} {h}">'
        f'<polygon points="{band}" fill="#cfe3f7" stroke="none"/>'
        f'<polyline points="{line}" fill="none" stroke="#1f6fb2" '
        f'stroke-width="1.2"/></svg>'
    )


def _esc(v) -> str:
    return html.escape(str(v))


def _sec(v) -> str:
    return "-" if v is None else f"{v:.6g}"


def _table(headers, rows) -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{c}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return (f'<table><thead><tr>{head}</tr></thead>'
            f'<tbody>{body}</tbody></table>')


_CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto;
       max-width: 72em; color: #1a1a2e; padding: 0 1em; }
h1 { font-size: 1.5em; } h2 { font-size: 1.15em; margin-top: 2em;
border-bottom: 1px solid #ddd; padding-bottom: .2em; }
table { border-collapse: collapse; margin: .8em 0; }
th, td { border: 1px solid #ddd; padding: .25em .6em;
         text-align: left; font-variant-numeric: tabular-nums; }
th { background: #f4f6fa; }
td svg { vertical-align: middle; }
.kv td:first-child { font-weight: 600; background: #f4f6fa; }
.muted { color: #777; }
"""


def build_report(res, record, report) -> str:
    """Render the HTML document for one finished run.

    ``res`` is the :class:`~repro.workflow.runner.WorkflowResult`,
    ``record`` its ledger :class:`~repro.obs.ledger.RunRecord` and
    ``report`` the :class:`~repro.obs.critpath.CausalReport`.
    """
    obs = res.obs
    parts = [f"<style>{_CSS}</style>",
             f"<h1>Run report: {_esc(record.workload)}</h1>"]

    # -- manifest ----------------------------------------------------------
    manifest = [
        ("workload", record.workload), ("mode", record.mode or "-"),
        ("ranks", record.nprocs), ("attempts", record.attempts),
        ("virtual makespan (s)", _sec(record.vtime)),
        ("messages", record.messages),
        ("bytes on wire", record.bytes_sent),
        ("cost-model digest", record.cost_digest or "-"),
        ("git revision", record.git_rev or "-"),
        ("stable record digest", record.digest()),
    ]
    if record.failed_tasks:
        manifest.append(("dropped tasks", ", ".join(record.failed_tasks)))
    parts.append("<h2>Manifest</h2>")
    parts.append(_table(
        ("", ""), [(_esc(k), _esc(v)) for k, v in manifest]
    ).replace("<table>", '<table class="kv">'))

    # -- span/phase table --------------------------------------------------
    parts.append("<h2>Spans and phases</h2>")
    rows = [
        (_esc(r["name"]), _esc(r["cat"]), r["count"],
         _sec(r["total"]), _sec(r["mean"]), _sec(r["p50"]),
         _sec(r["p95"]), _sec(r["p99"]), _sec(r["max"]))
        for r in span_stats(obs)
    ]
    parts.append(_table(
        ("span", "layer", "count", "total s", "mean s", "p50 s",
         "p95 s", "p99 s", "max s"), rows,
    ))
    phases = report.path.phase_breakdown()
    if phases:
        parts.append("<h3>Critical-path phases</h3>")
        parts.append(_table(
            ("phase", "seconds", "share of path"),
            [(_esc(ph), _sec(sec),
              f"{sec / max(report.path.total, 1e-12):.1%}")
             for ph, sec in sorted(phases.items(),
                                   key=lambda kv: -kv[1])],
        ))

    # -- critical path -----------------------------------------------------
    parts.append("<h2>Critical path</h2>")
    shares = report.path.category_shares()
    parts.append(_table(
        ("category", "share"),
        [(_esc(c), f"{s:.1%}") for c, s in sorted(
            shares.items(), key=lambda kv: -kv[1])],
    ))
    parts.append("<h3>Longest segments</h3>")
    parts.append(_table(
        ("rank", "kind", "t0", "t1", "seconds"),
        [(s.rank, _esc(s.kind), _sec(s.t0), _sec(s.t1),
          _sec(s.duration)) for s in report.path.top_segments(10)],
    ))
    parts.append(
        f'<p class="muted">path residual '
        f'{report.path.residual:.3e} s over {len(report.path.segments)} '
        f'segments; conservation '
        f'{"ok" if report.conservation.ok else "VIOLATED"} '
        f'(max residual {report.conservation.max_residual:.3e} s)</p>'
    )

    # -- wait taxonomy -----------------------------------------------------
    parts.append("<h2>Wait taxonomy</h2>")
    by_cat = report.wait_by_category()
    if by_cat:
        parts.append(_table(
            ("category", "idle seconds", "intervals"),
            [(_esc(cat), _sec(sec),
              sum(1 for w in report.waits if w.category == cat))
             for cat, sec in sorted(by_cat.items(),
                                    key=lambda kv: -kv[1])],
        ))
        worst = sorted(report.waits, key=lambda w: -w.seconds)[:10]
        parts.append("<h3>Longest waits</h3>")
        parts.append(_table(
            ("rank", "category", "seconds", "cause rank", "cause span"),
            [(w.rank, _esc(w.category), _sec(w.seconds), w.cause_rank,
              _esc(w.cause_span or "-")) for w in worst],
        ))
    else:
        parts.append('<p class="muted">no classified waits</p>')

    # -- series sparklines -------------------------------------------------
    snap = obs.series.snapshot()
    if snap.data:
        parts.append("<h2>Virtual-time series</h2>")
        rows = []
        for key in sorted(snap.data):
            sv = snap.data[key]
            label = key_str(key)
            note = " (volatile)" if sv.volatile else ""
            rows.append((_esc(label) + note, sv.count,
                         f"{sv.interval:.4g}", sparkline(sv)))
        parts.append(_table(
            ("series", "samples", "window s", "sparkline"), rows,
        ))

    # -- faults ------------------------------------------------------------
    faults = [i for i in obs.spans.instants() if i.cat == "faults"]
    if faults:
        parts.append("<h2>Injected faults</h2>")
        parts.append(_table(
            ("vtime", "rank", "kind", "detail"),
            [(_sec(i.t), i.rank, _esc(i.name),
              _esc(i.labels or "")) for i in
             sorted(faults, key=lambda i: i.t)],
        ))

    return "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">" \
        f"<title>{_esc(record.workload)}</title></head><body>" \
        + "\n".join(parts) + "</body></html>\n"


def terminal_summary(record, report) -> str:
    """A few lines for the terminal alongside the HTML."""
    shares = report.path.category_shares()
    top = sorted(shares.items(), key=lambda kv: -kv[1])[:3]
    share_s = ", ".join(f"{c} {s:.0%}" for c, s in top)
    waits = report.wait_by_category()
    wait_s = ", ".join(
        f"{c} {sec:.4g}s" for c, sec in
        sorted(waits.items(), key=lambda kv: -kv[1])[:3]
    ) or "none"
    return (
        f"{record.workload}: vtime={record.vtime:.6g}s "
        f"messages={record.messages} bytes={record.bytes_sent} "
        f"attempts={record.attempts}\n"
        f"  critical path: {share_s} "
        f"(residual {report.path.residual:.1e}s)\n"
        f"  waits: {wait_s}\n"
        f"  stable record digest: {record.digest()}"
    )


def run(args) -> int:
    """Entry point of the ``report`` subcommand."""
    from repro.perfmodel.transports import THETA_KNL
    from repro.tools.trace import run_demo_workflow

    res = run_demo_workflow(args.nprod, args.ncons, args.mode,
                            grid_points=args.grid_points,
                            particles=args.particles)
    nprocs = args.nprod + args.ncons
    workload = args.workload or f"report/lowfive_{args.mode}/P{nprocs}"
    record = res.run_record(
        workload, mode=args.mode,
        params={"nprod": args.nprod, "ncons": args.ncons,
                "grid_points": args.grid_points,
                "particles": args.particles},
        costs=THETA_KNL.lf,
    )
    report = res.causal_report()
    doc = build_report(res, record, report)
    with open(args.output, "w") as f:
        f.write(doc)
    if args.ledger:
        from repro.obs.ledger import Ledger

        Ledger(args.ledger).append(record)
        print(f"appended {workload} to {args.ledger}")
    print(f"wrote {args.output} ({len(doc)} bytes)")
    print(terminal_summary(record, report))
    return 0


def add_parser(sub) -> None:
    """Register the ``report`` subcommand on ``sub``."""
    p = sub.add_parser(
        "report",
        help="run the demo workflow and write a self-contained HTML "
             "run report (spans, critical path, waits, series)",
    )
    p.add_argument("output", help="output .html path")
    p.add_argument("--mode", choices=["memory", "file", "both"],
                   default="memory", help="LowFive transport mode")
    p.add_argument("--nprod", type=int, default=4,
                   help="producer ranks (default 4)")
    p.add_argument("--ncons", type=int, default=2,
                   help="consumer ranks (default 2)")
    p.add_argument("--grid-points", type=int, default=4096,
                   help="grid points per producer rank")
    p.add_argument("--particles", type=int, default=2048,
                   help="particles per producer rank")
    p.add_argument("--workload", default=None,
                   help="workload key recorded in the ledger (default "
                        "report/lowfive_<mode>/P<n>)")
    p.add_argument("--ledger", default=None, metavar="PATH",
                   help="append the run's RunRecord to this JSONL "
                        "ledger")
    p.set_defaults(run=run)
