"""Move simulated-PFS contents to/from a real directory."""

from __future__ import annotations

import os

from repro.pfs.store import PFSStore


def _safe_path(base: str, name: str) -> str:
    """Resolve a store name under ``base``, refusing path escapes."""
    path = os.path.normpath(os.path.join(base, name))
    if not path.startswith(os.path.abspath(base) + os.sep) \
            and path != os.path.abspath(base):
        raise ValueError(f"unsafe store name {name!r}")
    return path


def export_store(store: PFSStore, directory: str) -> list[str]:
    """Write every stored file to ``directory`` (subdirs as needed).

    Returns the exported file names.
    """
    base = os.path.abspath(directory)
    os.makedirs(base, exist_ok=True)
    exported = []
    for name in store.listdir():
        path = _safe_path(base, name)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        handle = store.open(name)
        with open(path, "wb") as f:
            f.write(handle.pread(0, handle.size))
        exported.append(name)
    return exported


def import_store(directory: str, store: PFSStore | None = None) -> PFSStore:
    """Load a directory tree (written by :func:`export_store`) into a
    store, preserving relative names."""
    base = os.path.abspath(directory)
    store = store if store is not None else PFSStore()
    for root, _dirs, files in os.walk(base):
        for fname in sorted(files):
            path = os.path.join(root, fname)
            name = os.path.relpath(path, base).replace(os.sep, "/")
            with open(path, "rb") as f:
                store.create(name).pwrite(0, f.read())
    return store


def main(argv=None) -> int:
    """``python -m repro.tools h5dump|h5ls <dir> <file>``"""
    import argparse

    from repro.tools.inspect import h5dump, h5ls

    ap = argparse.ArgumentParser(
        prog="repro.tools",
        description="Inspect native-format files exported from a "
                    "simulated PFS.",
    )
    ap.add_argument("command", choices=["h5ls", "h5dump"])
    ap.add_argument("directory", help="directory written by export_store")
    ap.add_argument("file", help="file name within the directory")
    args = ap.parse_args(argv)
    store = import_store(args.directory)
    handle = store.open(args.file)
    blob = handle.pread(0, handle.size)
    fn = h5ls if args.command == "h5ls" else h5dump
    print(fn(blob, args.file), end="")
    return 0
