"""Move simulated-PFS contents to/from a real directory."""

from __future__ import annotations

import os

from repro.pfs.store import PFSStore


def _safe_path(base: str, name: str) -> str:
    """Resolve a store name under ``base``, refusing path escapes."""
    path = os.path.normpath(os.path.join(base, name))
    if not path.startswith(os.path.abspath(base) + os.sep) \
            and path != os.path.abspath(base):
        raise ValueError(f"unsafe store name {name!r}")
    return path


def export_store(store: PFSStore, directory: str) -> list[str]:
    """Write every stored file to ``directory`` (subdirs as needed).

    Returns the exported file names.
    """
    base = os.path.abspath(directory)
    os.makedirs(base, exist_ok=True)
    exported = []
    for name in store.listdir():
        path = _safe_path(base, name)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        handle = store.open(name)
        with open(path, "wb") as f:
            f.write(handle.pread(0, handle.size))
        exported.append(name)
    return exported


def import_store(directory: str, store: PFSStore | None = None) -> PFSStore:
    """Load a directory tree (written by :func:`export_store`) into a
    store, preserving relative names."""
    base = os.path.abspath(directory)
    store = store if store is not None else PFSStore()
    for root, _dirs, files in os.walk(base):
        for fname in sorted(files):
            path = os.path.join(root, fname)
            name = os.path.relpath(path, base).replace(os.sep, "/")
            with open(path, "rb") as f:
                store.create(name).pwrite(0, f.read())
    return store


def main(argv=None) -> int:
    """``python -m repro.tools h5dump|h5ls <dir> <file>``,
    ``python -m repro.tools trace <out.json>``,
    ``python -m repro.tools critpath [--strict ...]``,
    ``python -m repro.tools analyze [--example fig5 ...]``,
    ``python -m repro.tools lint [paths ...]``,
    ``python -m repro.tools proto [paths ...] [--strict]``,
    ``python -m repro.tools regress <doc> --ref <ref>`` or
    ``python -m repro.tools report <out.html>``."""
    import argparse

    from repro.tools.analyze import add_parser as add_analyze
    from repro.tools.critpath import add_parser as add_critpath
    from repro.tools.inspect import h5dump, h5ls
    from repro.tools.lint import add_parser as add_lint
    from repro.tools.proto import add_parser as add_proto
    from repro.tools.regress import add_parser as add_regress
    from repro.tools.report import add_parser as add_report

    ap = argparse.ArgumentParser(
        prog="repro.tools",
        description="Inspect native-format files exported from a "
                    "simulated PFS, export a demo run as a Chrome "
                    "trace, run the causal critical-path analysis, "
                    "check a schedule for races, lint virtual-time "
                    "code, gate a run against a reference, or render "
                    "an HTML run report.",
    )
    sub = ap.add_subparsers(dest="command", required=True)
    for cmd, fn in (("h5ls", h5ls), ("h5dump", h5dump)):
        p = sub.add_parser(cmd, help=f"{cmd} a file from an exported "
                                     "store directory")
        p.add_argument("directory", help="directory written by export_store")
        p.add_argument("file", help="file name within the directory")
        p.set_defaults(inspect=fn)
    pt = sub.add_parser(
        "trace",
        help="run the demo LowFive workflow and write a Chrome/Perfetto "
             "trace_event JSON file",
    )
    pt.add_argument("output", help="output .json path")
    pt.add_argument("--nprod", type=int, default=4,
                    help="producer ranks (default 4)")
    pt.add_argument("--ncons", type=int, default=2,
                    help="consumer ranks (default 2)")
    pt.add_argument("--mode", choices=["memory", "file", "both"],
                    default="memory", help="LowFive transport mode")
    pt.add_argument("--metrics", action="store_true",
                    help="also dump the metrics snapshot (and series) "
                         "as <output>.metrics.json next to the trace")
    add_critpath(sub)
    add_analyze(sub)
    add_lint(sub)
    add_proto(sub)
    add_regress(sub)
    add_report(sub)
    args = ap.parse_args(argv)

    if args.command in ("critpath", "analyze", "lint", "proto",
                        "regress", "report"):
        return args.run(args)

    if args.command == "trace":
        from repro.tools.trace import export_demo_trace, trace_summary

        doc = export_demo_trace(args.output, nprod=args.nprod,
                                ncons=args.ncons, mode=args.mode,
                                metrics=args.metrics)
        print(f"wrote {args.output}: {trace_summary(doc)}")
        if args.metrics:
            print(f"wrote {args.output}.metrics.json")
        return 0

    store = import_store(args.directory)
    handle = store.open(args.file)
    blob = handle.pread(0, handle.size)
    print(args.inspect(blob, args.file), end="")
    return 0
