"""ASCII timelines and communication matrices from simmpi traces.

Enable tracing with ``Engine(nprocs, trace=True)`` (or
``Workflow.run(trace=True)``), then render:

- :func:`render_timeline` -- one lane per rank over virtual time, with
  ``s`` = send, ``r`` = receive, ``C`` = collective (like a coarse
  Jumpshot view);
- :func:`communication_matrix` -- rank-to-rank payload bytes;
- :func:`render_matrix` -- the matrix as a heat table.
"""

from __future__ import annotations

import io

import numpy as np


def render_timeline(events, nprocs: int, width: int = 72,
                    title: str = "") -> str:
    """One character lane per rank; columns are virtual-time buckets."""
    if not events:
        return "(no events traced)\n"
    t_end = max(e.vtime for e in events)
    t_end = t_end if t_end > 0 else 1.0
    lanes = [[" "] * width for _ in range(nprocs)]
    marks = {"send": "s", "recv": "r", "coll": "C"}
    for e in events:
        col = min(width - 1, int(e.vtime / t_end * (width - 1)))
        mark = marks.get(e.kind, "?")
        cur = lanes[e.rank][col]
        if cur == " ":
            lanes[e.rank][col] = mark
        elif cur != mark:
            lanes[e.rank][col] = "*"
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    for r in range(nprocs):
        out.write(f"rank {r:>3} |" + "".join(lanes[r]) + "|\n")
    out.write(" " * 9 + f"0{'virtual time'.center(width - 10)}"
              f"{t_end:.2e}s\n")
    out.write("         s=send r=recv C=collective *=mixed\n")
    return out.getvalue()


def communication_matrix(events, nprocs: int) -> np.ndarray:
    """Bytes sent from rank i to rank j (point-to-point only)."""
    m = np.zeros((nprocs, nprocs), dtype=np.int64)
    for e in events:
        if e.kind == "send" and 0 <= e.peer < nprocs:
            m[e.rank, e.peer] += e.nbytes
    return m


def render_matrix(matrix: np.ndarray, title: str = "") -> str:
    """The communication matrix as a fixed-width table with totals."""
    n = matrix.shape[0]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    colw = max(8, len(str(int(matrix.max()))) + 1) if matrix.size else 8
    out.write("from\\to |" + "".join(str(j).rjust(colw)
                                     for j in range(n)) + "   total\n")
    for i in range(n):
        row = "".join(str(int(v)).rjust(colw) for v in matrix[i])
        out.write(f"{i:>7} |{row}{int(matrix[i].sum()):>8}\n")
    out.write(f"{'total':>7} |" + "".join(
        str(int(matrix[:, j].sum())).rjust(colw) for j in range(n)
    ) + f"{int(matrix.sum()):>8}\n")
    return out.getvalue()
