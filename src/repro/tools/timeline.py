"""ASCII timelines and communication matrices from simmpi traces.

Enable tracing with ``Engine(nprocs, trace=True)`` (or
``Workflow.run(trace=True)``), then render:

- :func:`render_timeline` -- one lane per rank over virtual time, with
  ``s`` = send, ``r`` = receive, ``C`` = collective (like a coarse
  Jumpshot view). Also accepts obs
  :class:`~repro.obs.spans.SpanEvent` intervals (mixed freely with
  point events): spans paint their whole ``[t0, t1]`` extent with a
  per-category mark (``C`` simmpi, ``L`` lowfive, ``P`` pfs, ``W``
  workflow);
- :func:`communication_matrix` -- rank-to-rank payload bytes;
- :func:`render_matrix` -- the matrix as a heat table.

For interactive viewers (Perfetto, ``chrome://tracing``) export the
same run with :func:`repro.obs.write_chrome_trace` instead.
"""

from __future__ import annotations

import io

import numpy as np

#: Lane mark per span category (anything unknown renders as ``=``).
_SPAN_MARKS = {
    "simmpi": "C",
    "lowfive": "L",
    "pfs": "P",
    "workflow": "W",
}


def _is_span(e) -> bool:
    """Interval events carry ``t0``/``t1``; point events carry ``vtime``."""
    return hasattr(e, "t1")


def render_timeline(events, nprocs: int, width: int = 72,
                    title: str = "") -> str:
    """One character lane per rank; columns are virtual-time buckets.

    ``events`` may mix point :class:`~repro.simmpi.TraceEvent`\\ s and obs
    :class:`~repro.obs.spans.SpanEvent`\\ s. Events whose rank is
    ``>= nprocs`` (e.g. a trace captured on a larger world than the
    caller expected) grow the lane table instead of crashing.
    """
    if not events:
        return "(no events traced)\n"
    points = [e for e in events if not _is_span(e)]
    spans = [e for e in events if _is_span(e)]
    t_end = max([e.vtime for e in points] + [e.t1 for e in spans])
    t_end = t_end if t_end > 0 else 1.0
    nlanes = max(nprocs, max(e.rank for e in events) + 1)
    lanes = [[" "] * width for _ in range(nlanes)]

    def col(t: float) -> int:
        return min(width - 1, int(t / t_end * (width - 1)))

    def put(rank: int, c: int, mark: str, over=()) -> None:
        cur = lanes[rank][c]
        if cur == " " or cur in over:
            lanes[rank][c] = mark
        elif cur != mark:
            lanes[rank][c] = "*"

    # Spans paint the background; point events draw over them.
    span_bg = set(_SPAN_MARKS.values()) | {"="}
    for e in spans:
        mark = _SPAN_MARKS.get(e.cat, "=")
        for c in range(col(e.t0), col(e.t1) + 1):
            put(e.rank, c, mark)
    marks = {"send": "s", "recv": "r", "coll": "C"}
    for e in points:
        put(e.rank, col(e.vtime), marks.get(e.kind, "?"), over=span_bg)

    out = io.StringIO()
    if title:
        out.write(title + "\n")
    for r in range(nlanes):
        out.write(f"rank {r:>3} |" + "".join(lanes[r]) + "|\n")
    out.write(" " * 9 + f"0{'virtual time'.center(width - 10)}"
              f"{t_end:.2e}s\n")
    legend = "         s=send r=recv C=collective *=mixed"
    if spans:
        legend += " L=lowfive P=pfs W=workflow"
    out.write(legend + "\n")
    return out.getvalue()


def communication_matrix(events, nprocs: int) -> np.ndarray:
    """Bytes sent from rank i to rank j (point-to-point only).

    The matrix grows beyond ``nprocs`` when send events carry ranks or
    peers outside ``[0, nprocs)``.
    """
    sends = [e for e in events if not _is_span(e) and e.kind == "send"
             and e.peer >= 0]
    n = nprocs
    for e in sends:
        n = max(n, e.rank + 1, e.peer + 1)
    m = np.zeros((n, n), dtype=np.int64)
    for e in sends:
        m[e.rank, e.peer] += e.nbytes
    return m


def render_matrix(matrix: np.ndarray, title: str = "") -> str:
    """The communication matrix as a fixed-width table with totals."""
    n = matrix.shape[0]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    colw = max(8, len(str(int(matrix.max()))) + 1) if matrix.size else 8
    out.write("from\\to |" + "".join(str(j).rjust(colw)
                                     for j in range(n)) + "   total\n")
    for i in range(n):
        row = "".join(str(int(v)).rjust(colw) for v in matrix[i])
        out.write(f"{i:>7} |{row}{int(matrix[i].sum()):>8}\n")
    out.write(f"{'total':>7} |" + "".join(
        str(int(matrix[:, j].sum())).rjust(colw) for j in range(n)
    ) + f"{int(matrix.sum()):>8}\n")
    return out.getvalue()
