"""Command-line style utilities for the native file format and PFS.

- :func:`h5ls` / :func:`h5dump` -- inspect files in the native binary
  format (like the HDF5 tools of the same names);
- :func:`export_store` / :func:`import_store` -- move a simulated PFS's
  contents to and from a real directory on disk, so simulated runs can
  leave artifacts that other tooling can read back;
- :func:`export_demo_trace` -- run the demo LowFive workflow and write
  a Chrome/Perfetto ``trace_event`` JSON file.

Also usable as a module: ``python -m repro.tools h5dump <dir> <file>``
or ``python -m repro.tools trace <out.json>``.
"""

from repro.tools.inspect import h5dump, h5ls
from repro.tools.timeline import (
    communication_matrix,
    render_matrix,
    render_timeline,
)
from repro.tools.trace import export_demo_trace, run_demo_workflow
from repro.tools.transfer import export_store, import_store

__all__ = [
    "h5ls",
    "h5dump",
    "export_store",
    "import_store",
    "render_timeline",
    "communication_matrix",
    "render_matrix",
    "export_demo_trace",
    "run_demo_workflow",
]
