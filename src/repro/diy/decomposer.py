"""Regular decomposition: the paper's *common decomposition*.

Given a d-dimensional domain and ``n`` blocks, factor ``n`` into ``d``
near-equal factors ``n1, ..., nd`` and cut the domain into an
``n1 x ... x nd`` grid (paper Sec. III-B). Block ``i`` (row-major grid
id) is owned by producer process ``i``.
"""

from __future__ import annotations

import numpy as np

from repro.diy.bounds import Bounds


def _prime_factors(n: int) -> list[int]:
    out = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            out.append(d)
            n //= d
        d += 1
    if n > 1:
        out.append(n)
    return out


def balanced_factors(n: int, ndim: int) -> tuple[int, ...]:
    """Factor ``n`` into ``ndim`` factors as close to each other as
    possible (largest prime factors assigned to the currently smallest
    slot, DIY-style)."""
    if n < 1 or ndim < 1:
        raise ValueError("n and ndim must be >= 1")
    factors = [1] * ndim
    for p in sorted(_prime_factors(n), reverse=True):
        i = int(np.argmin(factors))
        factors[i] *= p
    return tuple(sorted(factors, reverse=True))


class RegularDecomposer:
    """Cut ``shape`` into a regular grid of ``nblocks`` blocks.

    Per dimension, extents divide as evenly as possible: with extent
    ``L`` over ``k`` slots, the first ``L % k`` slots get ``L//k + 1``
    points. Block ids are row-major over the grid of slots.

    Both the producer and the consumer construct this object
    independently from ``(shape, nblocks)`` and agree on it without
    communication -- that implicit agreement is what makes the paper's
    index-serve-query protocol work.
    """

    def __init__(self, shape, nblocks: int):
        self.shape = tuple(int(s) for s in shape)
        if any(s <= 0 for s in self.shape):
            raise ValueError(f"degenerate domain shape {self.shape}")
        self.nblocks = int(nblocks)
        if self.nblocks < 1:
            raise ValueError("nblocks must be >= 1")
        self.grid = balanced_factors(self.nblocks, len(self.shape))
        # Don't cut a dimension finer than its extent when avoidable:
        # clamp factors to extents and fold the excess into other dims.
        self.grid = self._clamp_grid(self.grid, self.shape)
        # Per-dim slot boundaries (k+1 offsets per dim).
        self._offsets = []
        for extent, k in zip(self.shape, self.grid):
            base, rem = divmod(extent, k)
            sizes = np.full(k, base, dtype=np.int64)
            sizes[:rem] += 1
            self._offsets.append(
                np.concatenate([[0], np.cumsum(sizes)])
            )

    @staticmethod
    def _clamp_grid(grid, shape) -> tuple[int, ...]:
        grid = list(grid)
        for d, (g, s) in enumerate(zip(grid, shape)):
            if g > s:
                grid[d] = s
        return tuple(grid)

    @property
    def ngrid_blocks(self) -> int:
        """Number of grid cells (= min(nblocks, prod(clamped grid)))."""
        return int(np.prod(self.grid))

    # -- gid <-> grid coords -------------------------------------------------

    def gid_to_coords(self, gid: int) -> tuple[int, ...]:
        """Grid coordinates of block ``gid``."""
        if not 0 <= gid < self.ngrid_blocks:
            raise IndexError(f"gid {gid} out of range")
        return tuple(
            int(c) for c in np.unravel_index(gid, self.grid)
        )

    def coords_to_gid(self, coords) -> int:
        """Row-major gid of grid ``coords``."""
        return int(np.ravel_multi_index(tuple(coords), self.grid))

    # -- geometry ----------------------------------------------------------------

    def block_bounds(self, gid: int) -> Bounds:
        """The box ``[min, max)`` of block ``gid``."""
        coords = self.gid_to_coords(gid)
        mins = [int(self._offsets[d][c]) for d, c in enumerate(coords)]
        maxs = [int(self._offsets[d][c + 1]) for d, c in enumerate(coords)]
        return Bounds(mins, maxs)

    def point_gid(self, pt) -> int:
        """gid of the block containing point ``pt``."""
        coords = []
        for d, x in enumerate(pt):
            offs = self._offsets[d]
            if not 0 <= x < offs[-1]:
                raise IndexError(f"point coordinate {x} outside dim {d}")
            coords.append(int(np.searchsorted(offs, x, side="right")) - 1)
        return self.coords_to_gid(coords)

    def point_gids(self, coords) -> np.ndarray:
        """Vectorized :meth:`point_gid` for an (n, d) coordinate array."""
        coords = np.asarray(coords, dtype=np.int64)
        if coords.ndim != 2 or coords.shape[1] != len(self.shape):
            raise ValueError(f"coords must be (n, {len(self.shape)})")
        slot = np.empty_like(coords)
        for d in range(len(self.shape)):
            c = coords[:, d]
            if c.size and (c.min() < 0 or c.max() >= self.shape[d]):
                raise IndexError(f"coordinates outside dim {d}")
            slot[:, d] = np.searchsorted(
                self._offsets[d], c, side="right"
            ) - 1
        if coords.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        return np.ravel_multi_index(tuple(slot.T), self.grid)

    def blocks_intersecting(self, bounds: Bounds) -> list[int]:
        """gids of all blocks overlapping ``bounds`` (vectorized per dim)."""
        if bounds.ndim != len(self.shape):
            raise ValueError("bounds dimensionality mismatch")
        if bounds.empty:
            return []
        ranges = []
        for d in range(len(self.shape)):
            offs = self._offsets[d]
            lo = int(np.clip(bounds.min[d], 0, self.shape[d] - 1))
            hi = int(np.clip(bounds.max[d] - 1, 0, self.shape[d] - 1))
            first = int(np.searchsorted(offs, lo, side="right")) - 1
            last = int(np.searchsorted(offs, hi, side="right")) - 1
            ranges.append(np.arange(first, last + 1))
        grids = np.meshgrid(*ranges, indexing="ij")
        coords = np.stack([g.ravel() for g in grids], axis=1)
        return [int(np.ravel_multi_index(tuple(c), self.grid))
                for c in coords]

    def all_bounds(self) -> list[Bounds]:
        """Bounds of every block, ordered by gid."""
        return [self.block_bounds(g) for g in range(self.ngrid_blocks)]

    def __repr__(self):
        return (
            f"RegularDecomposer(shape={self.shape}, nblocks={self.nblocks}, "
            f"grid={self.grid})"
        )
