"""DIY-like block-parallel decomposition substrate.

LowFive depends on the DIY block-parallel model "to perform efficient
data redistribution" (paper Fig. 2). The parts it actually uses are
implemented here:

- :class:`~repro.diy.bounds.Bounds` -- integer bounding boxes,
- :class:`~repro.diy.decomposer.RegularDecomposer` -- the *common
  decomposition*: factor ``n`` processes into ``d`` near-equal factors
  and cut the domain into an ``n1 x ... x nd`` grid of blocks
  (paper Sec. III-B, Fig. 4),
- :class:`~repro.diy.assigner.ContiguousAssigner` /
  :class:`~repro.diy.assigner.RoundRobinAssigner` -- block->rank maps.
"""

from repro.diy.bounds import Bounds
from repro.diy.decomposer import RegularDecomposer, balanced_factors
from repro.diy.assigner import ContiguousAssigner, RoundRobinAssigner

__all__ = [
    "Bounds",
    "RegularDecomposer",
    "balanced_factors",
    "ContiguousAssigner",
    "RoundRobinAssigner",
]
