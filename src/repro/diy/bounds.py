"""Integer bounding boxes (half-open: ``min`` inclusive, ``max`` exclusive)."""

from __future__ import annotations

import numpy as np


class Bounds:
    """An axis-aligned integer box ``[min, max)`` in N dimensions.

    Empty boxes (any ``max <= min``) are normalized to zero extent so
    ``size == 0`` and intersections behave.
    """

    __slots__ = ("min", "max")

    def __init__(self, mins, maxs):
        self.min = np.asarray(mins, dtype=np.int64).copy()
        self.max = np.asarray(maxs, dtype=np.int64).copy()
        if self.min.shape != self.max.shape or self.min.ndim != 1:
            raise ValueError("min/max must be 1-d and the same length")
        collapsed = self.max < self.min
        self.max[collapsed] = self.min[collapsed]

    @classmethod
    def from_shape(cls, shape) -> "Bounds":
        """The full box of a dataspace shape."""
        shape = tuple(int(s) for s in shape)
        return cls([0] * len(shape), list(shape))

    @classmethod
    def from_selection(cls, sel) -> "Bounds":
        """Bounding box of any :class:`~repro.h5.selection.Selection`."""
        lo, hi = sel.bounds()
        return cls(lo, hi)

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.min)

    @property
    def shape(self) -> tuple[int, ...]:
        """Per-dimension extent of the box."""
        return tuple(int(v) for v in (self.max - self.min))

    @property
    def size(self) -> int:
        """Number of integer points inside the box."""
        ext = self.max - self.min
        return int(np.prod(np.maximum(ext, 0))) if self.ndim else 1

    @property
    def empty(self) -> bool:
        """True when the box contains no points."""
        return self.size == 0

    def intersect(self, other: "Bounds") -> "Bounds":
        """The overlapping box (possibly empty)."""
        self._check(other)
        return Bounds(
            np.maximum(self.min, other.min), np.minimum(self.max, other.max)
        )

    def intersects(self, other: "Bounds") -> bool:
        """True when the boxes overlap."""
        self._check(other)
        return bool(
            ((np.minimum(self.max, other.max)
              - np.maximum(self.min, other.min)) > 0).all()
        )

    def contains_point(self, pt) -> bool:
        """True when ``pt`` lies inside the box."""
        pt = np.asarray(pt, dtype=np.int64)
        return bool(((pt >= self.min) & (pt < self.max)).all())

    def contains(self, other: "Bounds") -> bool:
        """True when ``other`` lies entirely inside this box."""
        self._check(other)
        if other.empty:
            return True
        return bool((other.min >= self.min).all()
                    and (other.max <= self.max).all())

    def union_bound(self, other: "Bounds") -> "Bounds":
        """Smallest box covering both."""
        self._check(other)
        if self.empty:
            return Bounds(other.min, other.max)
        if other.empty:
            return Bounds(self.min, self.max)
        return Bounds(
            np.minimum(self.min, other.min), np.maximum(self.max, other.max)
        )

    def to_selection(self, shape):
        """As a contiguous hyperslab over a dataspace of ``shape``."""
        from repro.h5.selection import HyperslabSelection, NoneSelection

        if self.empty:
            return NoneSelection(tuple(shape))
        return HyperslabSelection(
            tuple(shape), tuple(self.min), tuple(self.max - self.min)
        )

    def _check(self, other: "Bounds") -> None:
        if self.ndim != other.ndim:
            raise ValueError(
                f"dimension mismatch: {self.ndim} vs {other.ndim}"
            )

    def __eq__(self, other):
        if isinstance(other, Bounds):
            return (self.min == other.min).all() and \
                (self.max == other.max).all()
        return NotImplemented

    def __hash__(self):
        return hash((tuple(self.min), tuple(self.max)))

    def __repr__(self):
        return f"Bounds(min={list(self.min)}, max={list(self.max)})"
