"""Block-to-rank assignment policies (DIY-style)."""

from __future__ import annotations


class ContiguousAssigner:
    """Blocks are dealt out in contiguous runs: with ``nblocks`` over
    ``nranks``, the first ``nblocks % nranks`` ranks get one extra."""

    def __init__(self, nranks: int, nblocks: int):
        if nranks < 1 or nblocks < 0:
            raise ValueError("need nranks >= 1 and nblocks >= 0")
        self.nranks = nranks
        self.nblocks = nblocks
        base, rem = divmod(nblocks, nranks)
        self._counts = [base + (1 if r < rem else 0) for r in range(nranks)]
        self._starts = [0] * nranks
        for r in range(1, nranks):
            self._starts[r] = self._starts[r - 1] + self._counts[r - 1]

    def rank(self, gid: int) -> int:
        """Owning rank of block ``gid``."""
        if not 0 <= gid < self.nblocks:
            raise IndexError(f"gid {gid} out of range")
        for r in range(self.nranks):
            if gid < self._starts[r] + self._counts[r]:
                return r
        raise AssertionError("unreachable")

    def gids(self, rank: int) -> list[int]:
        """Blocks owned by ``rank``."""
        if not 0 <= rank < self.nranks:
            raise IndexError(f"rank {rank} out of range")
        s = self._starts[rank]
        return list(range(s, s + self._counts[rank]))


class RoundRobinAssigner:
    """Block ``gid`` is owned by rank ``gid % nranks``."""

    def __init__(self, nranks: int, nblocks: int):
        if nranks < 1 or nblocks < 0:
            raise ValueError("need nranks >= 1 and nblocks >= 0")
        self.nranks = nranks
        self.nblocks = nblocks

    def rank(self, gid: int) -> int:
        """Owning rank of block ``gid``."""
        if not 0 <= gid < self.nblocks:
            raise IndexError(f"gid {gid} out of range")
        return gid % self.nranks

    def gids(self, rank: int) -> list[int]:
        """Blocks owned by ``rank``."""
        if not 0 <= rank < self.nranks:
            raise IndexError(f"rank {rank} out of range")
        return list(range(rank, self.nblocks, self.nranks))
