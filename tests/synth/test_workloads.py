"""Synthetic-workload generator tests (paper Sec. IV-B semantics)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.synth import (
    GRID_DTYPE,
    PARTICLE_DTYPE,
    SyntheticWorkload,
    consumer_grid_selection,
    consumer_particle_selection,
    grid_shape_for,
    grid_values,
    particle_values,
    producer_grid_selection,
    producer_particle_selection,
    validate_grid,
    validate_particles,
)


class TestShapes:
    def test_grid_shape_scales_with_producers(self):
        s3 = grid_shape_for(10**6, 3)
        s6 = grid_shape_for(10**6, 6)
        assert s6[0] == 2 * s3[0]
        assert s3[1:] == s6[1:]

    def test_grid_shape_near_requested_volume(self):
        for n in (10**4, 10**5, 10**6):
            shape = grid_shape_for(n, 4)
            per_proc = np.prod(shape) / 4
            assert 0.5 * n <= per_proc <= 1.5 * n

    def test_dtypes(self):
        assert GRID_DTYPE.itemsize == 8
        assert PARTICLE_DTYPE.itemsize == 4


class TestPartitioning:
    def test_producer_slabs_tile_grid(self):
        shape = (13, 4, 4)
        cover = np.zeros(shape, dtype=int)
        for r in range(5):
            sel = producer_grid_selection(shape, r, 5)
            sel.scatter(np.ones(sel.npoints), cover)
        assert (cover == 1).all()

    def test_consumer_blocks_tile_grid(self):
        shape = (12, 6, 3)
        cover = np.zeros(shape, dtype=int)
        for r in range(4):
            sel = consumer_grid_selection(shape, r, 4)
            if sel.npoints:
                sel.scatter(np.ones(sel.npoints), cover)
        assert (cover == 1).all()

    def test_particle_ranges_tile(self):
        total = 103
        seen = np.zeros(total, dtype=int)
        for r in range(7):
            sel = producer_particle_selection(total, r, 7)
            rows = np.unique(sel.coords()[:, 0])
            seen[rows] += 1
        assert (seen == 1).all()

    def test_producer_consumer_decompositions_differ(self):
        """The benchmark must exercise real n-to-m redistribution."""
        shape = (12, 8, 4)
        p = producer_grid_selection(shape, 0, 6)
        c = consumer_grid_selection(shape, 0, 4)
        assert not p.same_elements(c)


class TestEncoding:
    def test_grid_values_encode_position(self):
        shape = (4, 5)
        sel = producer_grid_selection(shape, 1, 2)
        vals = grid_values(sel, shape)
        coords = sel.coords()
        expected = coords[:, 0] * 5 + coords[:, 1]
        np.testing.assert_array_equal(vals, expected.astype(np.uint64))

    def test_validate_grid_detects_corruption(self):
        shape = (4, 4)
        sel = producer_grid_selection(shape, 0, 2)
        vals = grid_values(sel, shape)
        assert validate_grid(sel, shape, vals)
        bad = vals.copy()
        bad[0] += 1
        assert not validate_grid(sel, shape, bad)

    def test_particle_values_float32_exact(self):
        sel = producer_particle_selection(50, 1, 3)
        vals = particle_values(sel)
        assert vals.dtype == np.float32
        assert validate_particles(sel, vals)

    def test_validate_particles_detects_swap(self):
        sel = producer_particle_selection(30, 0, 1)
        vals = particle_values(sel).copy()
        vals[0], vals[1] = vals[1], vals[0]
        assert not validate_particles(sel, vals)

    def test_empty_selection_values(self):
        from repro.h5.selection import NoneSelection

        assert grid_values(NoneSelection((3, 3)), (3, 3)).size == 0
        assert particle_values(NoneSelection((9, 3))).size == 0


class TestWorkloadAccounting:
    def test_split_procs_three_to_one(self):
        wl = SyntheticWorkload()
        assert wl.split_procs(4) == (3, 1)
        assert wl.split_procs(16) == (12, 4)
        assert wl.split_procs(16384) == (12288, 4096)

    def test_total_bytes_paper_table1(self):
        wl = SyntheticWorkload()
        # 1024 procs -> 768 producers -> 14.34 GiB in the paper.
        gib = wl.total_bytes(768) / 2**30
        assert abs(gib - 14.34) / 14.34 < 0.02

    def test_bytes_formula(self):
        wl = SyntheticWorkload(grid_points_per_proc=1000,
                               particles_per_proc=500)
        nprod = 2
        expected = (wl.total_grid_points(nprod) * 8
                    + wl.total_particles(nprod) * 12)
        assert wl.total_bytes(nprod) == expected


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 20), st.integers(1, 20), st.integers(2, 30))
def test_prop_grid_redistribution_identity(nprod, ncons, rows):
    """Writing producer slabs then reading consumer blocks through a
    dense mirror reproduces the encoded positions exactly."""
    shape = (rows, 5, 3)
    mirror = np.zeros(shape, dtype=np.uint64)
    for r in range(nprod):
        sel = producer_grid_selection(shape, r, nprod)
        sel.scatter(grid_values(sel, shape), mirror)
    for r in range(ncons):
        sel = consumer_grid_selection(shape, r, ncons)
        if sel.npoints:
            assert validate_grid(sel, shape, sel.extract(mirror))


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 10), st.integers(1, 10), st.integers(1, 200))
def test_prop_particle_redistribution_identity(nprod, ncons, total):
    mirror = np.zeros((total, 3), dtype=np.float32)
    for r in range(nprod):
        sel = producer_particle_selection(total, r, nprod)
        if sel.npoints:
            sel.scatter(particle_values(sel), mirror)
    for r in range(ncons):
        sel = consumer_particle_selection(total, r, ncons)
        if sel.npoints:
            assert validate_particles(sel, sel.extract(mirror))
