"""Metrics registry: counters, gauges, histograms, snapshot merging."""

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.metrics import (
    CounterValue,
    GaugeValue,
    HistogramValue,
    MetricsRegistry,
    MetricsSnapshot,
    bucket_index,
    key_str,
    merge_snapshots,
    metric_key,
)


class TestKeys:
    def test_metric_key_sorts_labels(self):
        assert metric_key("m", {"b": 2, "a": 1}) == \
            metric_key("m", {"a": 1, "b": 2})

    def test_key_str(self):
        assert key_str(metric_key("m", {})) == "m"
        assert key_str(metric_key("m", {"rank": 3, "file": "f"})) == \
            "m{file=f,rank=3}"


class TestCounters:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("bytes", 100)
        reg.inc("bytes", 50)
        v = reg.snapshot().get("bytes")
        assert v.total == 150 and v.count == 2

    def test_default_increment_is_one(self):
        reg = MetricsRegistry()
        reg.inc("calls")
        reg.inc("calls")
        assert reg.snapshot().get("calls").total == 2

    def test_labels_separate_series(self):
        reg = MetricsRegistry()
        reg.inc("bytes", 10, rank=0)
        reg.inc("bytes", 20, rank=1)
        snap = reg.snapshot()
        assert snap.get("bytes", rank=0).total == 10
        assert snap.get("bytes", rank=1).total == 20
        assert snap.get("bytes") is None  # unlabeled series distinct

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.inc("x", 1)
        with pytest.raises(TypeError):
            reg.set("x", 2)
        with pytest.raises(TypeError):
            reg.observe("x", 3)


class TestBoundCounters:
    def test_bound_inc_lands_in_same_slot_as_plain_inc(self):
        reg = MetricsRegistry()
        reg.inc("msgs", 2, rank=3, kind="send")
        handle = reg.counter("msgs", rank=3, kind="send")
        handle.inc()
        handle.inc(5)
        v = reg.snapshot().get("msgs", rank=3, kind="send")
        assert v.total == 8 and v.count == 3

    def test_handles_to_different_labels_stay_separate(self):
        reg = MetricsRegistry()
        a = reg.counter("msgs", rank=0)
        b = reg.counter("msgs", rank=1)
        a.inc(10)
        b.inc(20)
        snap = reg.snapshot()
        assert snap.get("msgs", rank=0).total == 10
        assert snap.get("msgs", rank=1).total == 20

    def test_bound_counter_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.set("g", 1)
        with pytest.raises(TypeError):
            reg.counter("g")

    def test_merge_semantics_unchanged(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n", rank=0).inc(3)
        b.inc("n", 4, rank=0)
        merged = a.snapshot().merge(b.snapshot())
        assert merged.get("n", rank=0).total == 7


class TestGauges:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set("depth", 5)
        reg.set("depth", 2)
        assert reg.snapshot().get("depth").value == 2

    def test_merge_keeps_latest_write(self):
        reg = MetricsRegistry()
        reg.set("g", 10, rank=0)
        early = reg.snapshot()
        reg.set("g", 3, rank=0)
        late = reg.snapshot()
        # Later write wins regardless of value or merge order.
        for merged in (early.merge(late), late.merge(early)):
            assert merged.get("g", rank=0).value == 3


class TestHistograms:
    @pytest.mark.parametrize("value,bucket", [
        (-1, None), (0, None), (0.5, 0), (1, 0), (1.5, 1), (2, 1),
        (3, 2), (4, 2), (5, 3), (1024, 10),
    ])
    def test_bucket_index(self, value, bucket):
        assert bucket_index(value) == bucket

    def test_observe_tracks_moments(self):
        reg = MetricsRegistry()
        for v in (1, 10, 100):
            reg.observe("lat", v)
        h = reg.snapshot().get("lat")
        assert h.count == 3 and h.total == 111
        assert h.vmin == 1 and h.vmax == 100
        assert h.mean == pytest.approx(37.0)

    def test_empty_mean_is_zero(self):
        assert HistogramValue().mean == 0.0

    def test_merge_never_rebins(self):
        a, b = HistogramValue(), HistogramValue()
        a.observe(3)
        b.observe(3)
        b.observe(1000)
        m = a.merge(b)
        assert m.buckets[bucket_index(3)] == 2
        assert m.buckets[bucket_index(1000)] == 1
        assert m.count == 3


class TestQuantiles:
    def test_empty_and_bad_q(self):
        assert HistogramValue().quantile(0.5) is None
        h = HistogramValue()
        h.observe(1)
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)

    def test_single_sample_is_exact(self):
        h = HistogramValue()
        h.observe(7.0)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert h.quantile(q) == 7.0  # clamped to [min, max]

    def test_extremes_hit_min_and_max(self):
        h = HistogramValue()
        for v in (1.0, 3.0, 100.0):
            h.observe(v)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 100.0

    def test_nonpositive_bucket_uses_observed_range(self):
        h = HistogramValue()
        h.observe(-4.0)
        h.observe(-2.0)
        est = h.quantile(0.5)
        assert -4.0 <= est <= 0.0

    # The factor-of-two guarantee holds for samples >= 1: bucket 0
    # spans (0, 1], which is wider than a factor of two, so the bound
    # cannot apply below 1.
    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(min_value=1.0, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=40),
           st.floats(min_value=0.01, max_value=1.0))
    def test_estimate_within_factor_two_of_order_statistic(
            self, values, q):
        h = HistogramValue()
        for v in values:
            h.observe(v)
        est = h.quantile(q)
        ordered = sorted(values)
        true = ordered[min(len(ordered) - 1,
                           max(0, math.ceil(q * len(ordered)) - 1))]
        assert true / 2 <= est <= 2 * true

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(min_value=1.0, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=30),
           st.lists(st.floats(min_value=1.0, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=30),
           st.floats(min_value=0.01, max_value=1.0))
    def test_merge_preserves_quantile_bounds(self, xs, ys, q):
        # Merging never re-bins, so the merged estimate obeys the same
        # factor-of-two bound as a histogram built from the union.
        a, b, u = HistogramValue(), HistogramValue(), HistogramValue()
        for v in xs:
            a.observe(v)
            u.observe(v)
        for v in ys:
            b.observe(v)
            u.observe(v)
        m = a.merge(b)
        assert m.quantile(q) == u.quantile(q)
        both = sorted(xs + ys)
        true = both[min(len(both) - 1,
                        max(0, math.ceil(q * len(both)) - 1))]
        assert true / 2 <= m.quantile(q) <= 2 * true


class TestSnapshots:
    def test_snapshot_is_isolated(self):
        reg = MetricsRegistry()
        reg.inc("c", 1)
        snap = reg.snapshot()
        reg.inc("c", 100)
        assert snap.get("c").total == 1
        assert reg.snapshot().get("c").total == 101

    def test_merge_disjoint(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.inc("a", 1)
        r2.inc("b", 2)
        m = r1.snapshot().merge(r2.snapshot())
        assert m.get("a").total == 1 and m.get("b").total == 2

    def test_merge_snapshots_empty(self):
        assert merge_snapshots().data == {}

    def test_to_dict_is_json_able(self):
        reg = MetricsRegistry()
        reg.inc("bytes", 7, rank=0)
        reg.set("depth", 2)
        reg.observe("lat", 0.5)
        reg.observe("lat", -1)  # non-positive -> bucket None
        d = reg.to_dict()
        json.dumps(d)  # must not raise
        assert d["counter"]["bytes{rank=0}"] == {"total": 7, "count": 1}
        assert d["gauge"]["depth"]["value"] == 2
        assert d["histogram"]["lat"]["count"] == 2
        assert "None" in d["histogram"]["lat"]["buckets"]


# -- associativity (hypothesis) ---------------------------------------------

_names = st.sampled_from(["a", "b", "c"])
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("inc"), _names, st.integers(0, 1000)),
        st.tuples(st.just("observe"), _names, st.integers(-5, 1000)),
    ),
    max_size=20,
)


def _registry(ops, seq_base):
    """Registry from an op list; gauge seqs offset so they never tie."""
    reg = MetricsRegistry()
    reg._seq = seq_base
    for op, name, value in ops:
        if op == "inc":
            reg.inc(f"c.{name}", value)
        else:
            reg.observe(f"h.{name}", value)
    return reg.snapshot()


@given(_ops, _ops, _ops)
def test_merge_associative(ops1, ops2, ops3):
    # Integer-valued ops make float sums exact, so equality is exact.
    a, b, c = _registry(ops1, 0), _registry(ops2, 100), _registry(ops3, 200)
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    assert left.to_dict() == right.to_dict()


@given(st.lists(st.tuples(st.integers(0, 2), st.integers(-100, 100)),
                max_size=12))
def test_gauge_merge_associative(writes):
    # One registry per write gives each gauge a distinct global seq
    # ordering; merged in any grouping the latest write must win.
    snaps = []
    for i, (series, value) in enumerate(writes):
        reg = MetricsRegistry()
        reg._seq = i * 10
        reg.set("g", value, series=series)
        snaps.append(reg.snapshot())
    if not snaps:
        return
    left = merge_snapshots(*snaps)
    right = snaps[0]
    for s in snaps[1:]:
        right = right.merge(s)
    assert left.to_dict() == right.to_dict()
    # Spot-check: the highest-seq write per series survives.
    last = {}
    for i, (series, value) in enumerate(writes):
        last[series] = value
    for series, value in last.items():
        assert left.get("g", series=series).value == value


def test_histogram_merge_commutes():
    a, b = HistogramValue(), HistogramValue()
    a.observe(1)
    a.observe(7)
    b.observe(200)
    assert a.merge(b) == b.merge(a)
    assert math.isinf(HistogramValue().vmin)
