"""Causal layer: flow edges, wait classification, conservation."""

import pytest

from repro.obs import ObsContext
from repro.obs.causal import (
    COLLECTIVE_STRAGGLER,
    EARLY_SENDER,
    FlowEdge,
    LATE_SENDER,
    PFS_CONTENTION,
    RPC_SERVER_BUSY,
    RankAccount,
    classify_waits,
    conservation,
    dominant_span,
)
from repro.simmpi import Engine


def _edge(obs, **kw):
    """Record a FlowEdge with boring defaults for unspecified fields."""
    base = dict(msg_id=1, src=0, dst=1, tag=5, comm_id=1, nbytes=8,
                t_post=0.0, t_arrival=0.0, t_recv_start=0.0, t_recv=0.0)
    base.update(kw)
    return obs.causal.edge(**base)


class TestFlowEdgeMath:
    def test_late_sender_split(self):
        # Receiver posted at 0; sender posted at 2, delivery at 3.
        e = FlowEdge(1, 0, 1, 5, 1, 8, t_post=2.0, t_arrival=3.0,
                     t_recv_start=0.0, t_recv=3.1)
        assert e.blocked == 3.0
        assert e.wait == 2.0        # idle until the sender posted
        assert e.in_flight == 1.0   # then on the wire
        assert e.wire == 1.0
        assert e.buffered == 0.0

    def test_early_sender_buffers(self):
        # Message delivered at 1; receiver only asked at 5.
        e = FlowEdge(1, 0, 1, 5, 1, 8, t_post=0.0, t_arrival=1.0,
                     t_recv_start=5.0, t_recv=5.1)
        assert e.blocked == 0.0 and e.wait == 0.0 and e.in_flight == 0.0
        assert e.buffered == 4.0

    def test_fault_rewritten_arrival_clamps(self):
        # A wire_factor fault can pull arrival before the post time;
        # the split must stay non-negative and conserve blocked time.
        e = FlowEdge(1, 0, 1, 5, 1, 8, t_post=2.0, t_arrival=1.0,
                     t_recv_start=0.0, t_recv=1.0)
        assert e.blocked == 1.0
        assert e.wait == 1.0        # capped at blocked
        assert e.in_flight == 0.0
        assert e.wait + e.in_flight == e.blocked


class TestClassification:
    def test_late_sender_default(self):
        obs = ObsContext()
        _edge(obs, t_post=2.0, t_arrival=2.5, t_recv=2.5)
        ws, = classify_waits(obs)
        assert ws.category == LATE_SENDER
        assert (ws.rank, ws.cause_rank) == (1, 0)
        assert ws.seconds == pytest.approx(2.0)

    def test_pfs_span_on_sender_means_contention(self):
        obs = ObsContext()
        obs.spans.add("pfs.write", "pfs", 0, 0.0, 2.0)
        _edge(obs, t_post=2.0, t_arrival=2.5, t_recv=2.5)
        ws, = classify_waits(obs)
        assert ws.category == PFS_CONTENTION
        assert ws.cause_span == "pfs.write"

    def test_serving_span_means_rpc_server_busy(self):
        obs = ObsContext()
        obs.spans.add("rpc.handle", "rpc", 0, 0.0, 2.0)
        _edge(obs, t_post=2.0, t_arrival=2.5, t_recv=2.5)
        ws, = classify_waits(obs)
        assert ws.category == RPC_SERVER_BUSY

    def test_reply_tag_fallback_means_rpc_server_busy(self):
        obs = ObsContext()
        _edge(obs, tag=702, t_post=2.0, t_arrival=2.5, t_recv=2.5)
        ws, = classify_waits(obs)
        assert ws.category == RPC_SERVER_BUSY

    def test_innermost_span_wins(self):
        # The sender's wait-covering activity is the *deepest* span:
        # pfs.write inside task.producer.
        obs = ObsContext()
        obs.spans.add("task.producer", "workflow", 0, 0.0, 10.0)
        obs.spans.add("pfs.write", "pfs", 0, 0.0, 2.0)
        _edge(obs, t_post=2.0, t_arrival=2.5, t_recv=2.5)
        ws, = classify_waits(obs)
        assert ws.category == PFS_CONTENTION

    def test_buffered_message_is_informational_early_sender(self):
        obs = ObsContext()
        _edge(obs, t_post=0.0, t_arrival=1.0, t_recv_start=5.0,
              t_recv=5.1)
        ws, = classify_waits(obs)
        assert ws.category == EARLY_SENDER
        assert (ws.t0, ws.t1) == (1.0, 5.0)

    def test_collective_straggler(self):
        obs = ObsContext()
        obs.spans.add("lowfive.index", "lowfive", 2, 0.0, 3.0,
                      {"phase": "index"})
        obs.causal.collective("barrier", 1, 0,
                              {0: 1.0, 1: 2.0, 2: 3.0}, 3.0, 3.5)
        waits = classify_waits(obs)
        assert [w.rank for w in waits] == [0, 1]  # straggler never waits
        assert all(w.category == COLLECTIVE_STRAGGLER for w in waits)
        assert all(w.cause_rank == 2 for w in waits)
        assert waits[0].cause_span == "lowfive.index"
        assert waits[0].seconds == pytest.approx(2.0)


class TestDominantSpan:
    def test_no_spans_is_none(self):
        assert dominant_span([], 0.0, 1.0) is None

    def test_deepest_covering_span_wins_per_slice(self):
        rec = ObsContext().spans
        rec.add("outer", "", 0, 0.0, 10.0)
        inner = rec.add("inner", "", 0, 2.0, 4.0)
        spans = rec.spans()
        assert dominant_span(spans, 2.0, 4.0).name == "inner"
        # Over the full interval the outer span covers 8 of 10 seconds.
        assert dominant_span(spans, 0.0, 10.0).name == "outer"
        assert dominant_span(spans, 2.5, 3.5).span_id == inner.span_id

    def test_empty_interval_is_none(self):
        rec = ObsContext().spans
        rec.add("s", "", 0, 0.0, 1.0)
        assert dominant_span(rec.spans(), 0.5, 0.5) is None


class TestRecorderFilters:
    def _obs(self):
        obs = ObsContext()
        _edge(obs, msg_id=1, src=0, dst=1, tag=5)
        _edge(obs, msg_id=2, src=1, dst=0, tag=6)
        _edge(obs, msg_id=3, src=0, dst=1, tag=6)
        return obs

    def test_filters(self):
        c = self._obs().causal
        assert len(c.edges()) == 3
        assert [e.msg_id for e in c.edges(src=0)] == [1, 3]
        assert [e.msg_id for e in c.edges(dst=0)] == [2]
        assert [e.msg_id for e in c.edges(tag=6)] == [2, 3]
        assert [e.msg_id for e in c.edges(src=0, tag=6)] == [3]

    def test_account_is_per_rank_singleton(self):
        c = ObsContext().causal
        a = c.account(3)
        a.compute += 1.5
        assert c.account(3) is a
        assert c.accounts()[3].compute == 1.5


class TestEngineIntegration:
    def test_late_sender_recorded_and_conserved(self):
        eng = Engine(2)

        def main(world):
            if world.rank == 0:
                world.compute(1.0)
                world.send(b"payload", 1, tag=5)
            else:
                world.recv(source=0, tag=5)

        res = eng.run(main)
        e, = eng.obs.causal.edges()
        assert (e.src, e.dst, e.tag) == (0, 1, 5)
        # Posted at 1.0 plus the model's tiny per-message overhead.
        assert e.t_post == pytest.approx(1.0, abs=1e-4)
        assert e.wait == pytest.approx(1.0, abs=1e-4)
        ws = [w for w in classify_waits(eng.obs)
              if w.category == LATE_SENDER]
        assert ws and ws[0].rank == 1 and ws[0].cause_rank == 0
        conservation(eng.obs, res.clocks).raise_if_violated()

    def test_early_sender_recorded_and_conserved(self):
        eng = Engine(2)

        def main(world):
            if world.rank == 0:
                world.send(b"payload", 1, tag=5)
            else:
                world.compute(1.0)
                world.recv(source=0, tag=5)

        res = eng.run(main)
        e, = eng.obs.causal.edges()
        assert e.wait == 0.0
        assert e.buffered > 0.0
        cats = {w.category for w in classify_waits(eng.obs)}
        assert cats == {EARLY_SENDER}
        rep = conservation(eng.obs, res.clocks)
        rep.raise_if_violated()
        # The receiver never idled: its wait ledger is zero.
        assert rep.rows[1].wait == 0.0

    def test_collective_straggler_recorded_and_conserved(self):
        eng = Engine(3)

        def main(world):
            if world.rank == 2:
                world.compute(1.0)
            world.barrier()

        res = eng.run(main)
        rec, = eng.obs.causal.collectives()
        assert rec.kind == "barrier"
        assert rec.straggler == 2
        assert rec.wait_of(0) == pytest.approx(1.0)
        assert rec.wait_of(2) == 0.0
        waits = classify_waits(eng.obs)
        assert {w.rank for w in waits} == {0, 1}
        assert all(w.cause_rank == 2 for w in waits)
        conservation(eng.obs, res.clocks).raise_if_violated()

    def test_mixed_program_conserves(self):
        eng = Engine(3)

        def main(world):
            world.compute(0.1 * (world.rank + 1))
            world.barrier()
            if world.rank == 0:
                for dst in (1, 2):
                    world.send(b"x" * 1000, dst, tag=7)
            else:
                world.recv(source=0, tag=7)
            world.allreduce(world.rank)

        res = eng.run(main)
        rep = conservation(eng.obs, res.clocks)
        rep.raise_if_violated()
        assert rep.max_residual <= 1e-9
        assert rep.max_wait_residual <= 1e-9

    def test_msg_ids_are_unique(self):
        eng = Engine(2)

        def main(world):
            if world.rank == 0:
                for i in range(5):
                    world.send(i, 1, tag=i)
            else:
                for i in range(5):
                    world.recv(source=0, tag=i)

        eng.run(main)
        ids = [e.msg_id for e in eng.obs.causal.edges()]
        assert len(ids) == 5 and len(set(ids)) == 5


class TestConservationReport:
    def test_violation_raises_with_worst_rank(self):
        eng = Engine(2)

        def main(world):
            world.compute(0.5)
            world.barrier()

        res = eng.run(main)
        # Tamper with a ledger: conservation must notice.
        eng.obs.causal.account(1).compute += 1.0
        rep = conservation(eng.obs, res.clocks)
        assert not rep.ok
        with pytest.raises(AssertionError, match="rank 1"):
            rep.raise_if_violated()

    def test_missing_account_counts_as_zero(self):
        obs = ObsContext()
        rep = conservation(obs, [0.0, 1.0])
        assert rep.rows[0].residual == 0.0
        assert rep.rows[1].residual == 1.0
        assert not rep.ok

    def test_to_dict_is_json_shape(self):
        import json

        obs = ObsContext()
        obs.causal.account(0).compute = 1.0
        rep = conservation(obs, [1.0])
        assert rep.ok
        d = json.loads(json.dumps(rep.to_dict()))
        assert d["ok"] is True
        assert d["ranks"][0]["compute"] == 1.0

    def test_rank_account_total(self):
        a = RankAccount(0)
        a.compute, a.transfer, a.wait = 1.0, 2.0, 3.0
        assert a.total == 6.0
        assert a.to_dict() == {"rank": 0, "compute": 1.0,
                               "transfer": 2.0, "wait": 3.0}
