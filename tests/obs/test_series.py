"""Bounded virtual-time series: windows, coarsening, exact merges."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.series import (
    DEFAULT_INTERVAL,
    DEFAULT_WINDOWS,
    SeriesRecorder,
    SeriesSnapshot,
    SeriesValue,
    Window,
    series_dump,
)


class TestWindow:
    def test_add_tracks_all_aggregates(self):
        w = Window()
        w.add(3.0)
        w.add(1.0)
        w.add(2.0)
        assert w.count == 3
        assert w.total == 6.0
        assert w.vmin == 1.0 and w.vmax == 3.0
        assert w.mean == 2.0

    def test_merge_is_componentwise(self):
        a, b = Window(), Window()
        a.add(1.0)
        b.add(5.0)
        m = a.merge(b)
        assert (m.count, m.total, m.vmin, m.vmax) == (2, 6.0, 1.0, 5.0)

    def test_empty_mean_is_zero(self):
        assert Window().mean == 0.0


class TestSeriesValue:
    def test_samples_fold_into_time_windows(self):
        s = SeriesValue(base_interval=1.0, max_windows=8)
        s.record(0.2, 10.0)
        s.record(0.9, 20.0)   # same window as 0.2
        s.record(2.5, 30.0)
        pts = s.points()
        assert [t for t, _ in pts] == [0.0, 2.0]
        assert pts[0][1].count == 2 and pts[0][1].total == 30.0
        assert pts[1][1].count == 1

    def test_coarsens_when_span_exceeds_budget(self):
        s = SeriesValue(base_interval=1.0, max_windows=4)
        for t in range(16):
            s.record(float(t), 1.0)
        assert s.interval > 1.0
        assert len(s.windows) <= 4
        assert s.count == 16  # no samples lost to coarsening

    def test_memory_stays_bounded_on_long_runs(self):
        s = SeriesValue(base_interval=DEFAULT_INTERVAL, max_windows=16)
        for i in range(5000):
            s.record(i * 0.01, float(i))
        assert len(s.windows) <= 16
        assert s.count == 5000

    def test_coarsening_is_exact(self):
        # floor(t / 2i) == floor(t / i) // 2: the coarse series equals
        # what recording at the coarse width would have produced.
        fine = SeriesValue(base_interval=1.0, max_windows=64)
        coarse = SeriesValue(base_interval=2.0, max_windows=64)
        samples = [(0.1, 1.0), (1.9, 2.0), (2.0, 3.0), (3.5, 4.0),
                   (7.7, 5.0)]
        for t, v in samples:
            fine.record(t, v)
            coarse.record(t, v)
        fine._coarsen()
        assert fine.interval == coarse.interval
        assert {i: w.to_json() for i, w in fine.windows.items()} == \
            {i: w.to_json() for i, w in coarse.windows.items()}

    def test_merge_of_split_equals_full_record(self):
        full = SeriesValue(base_interval=1.0, max_windows=64)
        a = SeriesValue(base_interval=1.0, max_windows=64)
        b = SeriesValue(base_interval=1.0, max_windows=64)
        for i, (t, v) in enumerate([(0.5, 1.0), (1.5, 2.0), (2.5, 3.0),
                                    (3.5, 4.0)]):
            full.record(t, v)
            (a if i % 2 == 0 else b).record(t, v)
        merged = a.merge(b)
        assert merged.to_json() == full.to_json()
        assert merged.digest() == full.digest()

    def test_merge_aligns_mixed_intervals(self):
        a = SeriesValue(base_interval=1.0, max_windows=4)
        b = SeriesValue(base_interval=1.0, max_windows=64)
        for t in range(16):  # forces a to coarsen to interval 4
            a.record(float(t), 1.0)
        b.record(0.5, 7.0)
        m = a.merge(b)
        assert m.interval == a.interval
        assert m.count == 17

    def test_merge_rejects_mismatched_bases(self):
        a = SeriesValue(base_interval=1.0)
        b = SeriesValue(base_interval=0.5)
        with pytest.raises(ValueError, match="base interval"):
            a.merge(b)

    def test_merge_ors_volatility(self):
        a = SeriesValue(base_interval=1.0)
        b = SeriesValue(base_interval=1.0, volatile=True)
        assert a.merge(b).volatile
        assert not a.merge(a).volatile

    def test_copy_is_independent(self):
        s = SeriesValue(base_interval=1.0)
        s.record(0.0, 1.0)
        c = s.copy()
        c.record(0.0, 2.0)
        assert s.count == 1 and c.count == 2

    def test_digest_depends_on_content_only(self):
        a = SeriesValue(base_interval=1.0)
        b = SeriesValue(base_interval=1.0, volatile=True)
        a.record(1.5, 2.0)
        b.record(1.5, 2.0)
        assert a.digest() == b.digest()  # volatility flag not hashed
        b.record(1.5, 2.0)
        assert a.digest() != b.digest()

    def test_validates_constructor_args(self):
        with pytest.raises(ValueError):
            SeriesValue(base_interval=0.0)
        with pytest.raises(ValueError):
            SeriesValue(max_windows=1)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(
        st.floats(min_value=0.0, max_value=1000.0,
                  allow_nan=False, allow_infinity=False),
        st.floats(min_value=-100.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False)),
        max_size=60),
        st.integers(min_value=0, max_value=60))
    def test_merge_preserves_count_and_total(self, samples, cut):
        full = SeriesValue(base_interval=1.0, max_windows=8)
        a = SeriesValue(base_interval=1.0, max_windows=8)
        b = SeriesValue(base_interval=1.0, max_windows=8)
        for i, (t, v) in enumerate(samples):
            full.record(t, v)
            (a if i < cut else b).record(t, v)
        m = a.merge(b)
        assert m.count == full.count == len(samples)
        assert sum(w.total for w in m.windows.values()) == pytest.approx(
            sum(v for _, v in samples), abs=1e-6)


class TestRecorderAndSnapshot:
    def test_record_separates_label_sets(self):
        rec = SeriesRecorder(base_interval=1.0)
        rec.record("depth", 0.0, 1.0, rank=0)
        rec.record("depth", 0.0, 5.0, rank=1)
        snap = rec.snapshot()
        assert snap.get("depth", rank=0).count == 1
        assert snap.get("depth", rank=1).points()[0][1].vmax == 5.0
        assert snap.get("depth") is None

    def test_bound_handle_hits_same_slot(self):
        rec = SeriesRecorder(base_interval=1.0)
        h = rec.bound("q", stream="s")
        h.record(0.0, 1.0)
        h.record(0.5, 2.0)
        assert rec.snapshot().get("q", stream="s").count == 2

    def test_snapshot_is_isolated_from_recorder(self):
        rec = SeriesRecorder(base_interval=1.0)
        rec.record("x", 0.0, 1.0)
        snap = rec.snapshot()
        rec.record("x", 0.0, 2.0)
        assert snap.get("x").count == 1

    def test_snapshot_merge_unions_keys(self):
        ra, rb = SeriesRecorder(base_interval=1.0), \
            SeriesRecorder(base_interval=1.0)
        ra.record("a", 0.0, 1.0)
        rb.record("a", 0.0, 1.0)
        rb.record("b", 0.0, 1.0)
        m = ra.snapshot().merge(rb.snapshot())
        assert m.get("a").count == 2
        assert m.get("b").count == 1

    def test_digests_exclude_volatile_series(self):
        rec = SeriesRecorder(base_interval=1.0)
        rec.record("stable", 0.0, 1.0)
        rec.record("jitter", 0.0, 1.0, volatile=True)
        digs = rec.snapshot().digests()
        assert "stable" in digs and "jitter" not in digs
        assert "jitter" in rec.snapshot().digests(include_volatile=True)

    def test_dump_shapes(self):
        rec = SeriesRecorder(base_interval=1.0)
        rec.record("x", 0.5, 3.0, rank=2)
        doc = series_dump(rec)
        assert doc == series_dump(rec.snapshot())
        assert doc["x{rank=2}"]["windows"] == [[0, 1, 3.0, 3.0, 3.0]]
        with pytest.raises(TypeError):
            series_dump({"not": "a recorder"})

    def test_defaults_are_power_of_two(self):
        # The merge-exactness argument needs the base width to be a
        # power of two; guard the constant.
        import math

        assert DEFAULT_INTERVAL == 2.0 ** -10
        assert math.log2(DEFAULT_WINDOWS).is_integer()
        assert SeriesSnapshot().to_dict() == {}
