"""End-to-end observability: a LowFive memory-mode workflow produces
spans from every instrumented layer, and the legacy ``phase_stats()``
shim agrees exactly with the obs spans."""

import pytest

import repro.h5 as h5
from repro.h5.native import NativeVOL
from repro.lowfive import DistMetadataVOL
from repro.obs import metrics_dump, validate_chrome_trace
from repro.pfs import PFSStore
from repro.synth import (
    consumer_grid_selection,
    grid_values,
    producer_grid_selection,
    validate_grid,
)
from repro.workflow import Workflow

GRID = (8, 4, 2)
NPROD, NCONS = 2, 2


def run_workflow(trace=True):
    """Producer/consumer LowFive memory-mode run at test scale.

    Returns ``(result, stats)`` where ``stats`` maps
    ``(role, local rank)`` -> ``(world rank, PhaseStats)`` captured via
    the legacy ``phase_stats()`` accessor inside each task.
    """
    stats = {}

    def make_vol(ctx, role, peer):
        def factory():
            vol = DistMetadataVOL(comm=ctx.comm,
                                  under=NativeVOL(PFSStore()))
            vol.set_memory("out.h5")
            if role == "producer":
                vol.serve_on_close("out.h5", ctx.intercomm(peer))
            else:
                vol.set_consumer("out.h5", ctx.intercomm(peer))
            return vol

        return ctx.singleton("vol", factory)

    def producer(ctx):
        vol = make_vol(ctx, "producer", "consumer")
        f = h5.File("out.h5", "w", comm=ctx.comm, vol=vol)
        d = f.create_dataset("g/d", shape=GRID, dtype=h5.UINT64)
        sel = producer_grid_selection(GRID, ctx.rank, ctx.size)
        d.write(grid_values(sel, GRID), file_select=sel)
        f.close()  # indexes, then serves until consumers detach
        stats[("producer", ctx.rank)] = (
            ctx.comm.world_rank(ctx.rank), vol.phase_stats(ctx.comm)
        )
        return True

    def consumer(ctx):
        vol = make_vol(ctx, "consumer", "producer")
        f = h5.File("out.h5", "r", comm=ctx.comm, vol=vol)
        sel = consumer_grid_selection(GRID, ctx.rank, ctx.size)
        vals = f["g/d"].read(sel, reshape=False)
        f.close()
        stats[("consumer", ctx.rank)] = (
            ctx.comm.world_rank(ctx.rank), vol.phase_stats(ctx.comm)
        )
        return validate_grid(sel, GRID, vals)

    wf = Workflow()
    wf.add_task("producer", NPROD, producer)
    wf.add_task("consumer", NCONS, consumer)
    wf.add_link("producer", "consumer")
    res = wf.run(trace=trace)
    assert all(res.returns["consumer"])
    return res, stats


@pytest.fixture(scope="module")
def run():
    return run_workflow()


class TestSpans:
    def test_lowfive_phases_present(self, run):
        res, _ = run
        names = {s.name for s in res.obs.spans.spans(cat="lowfive")}
        assert {"lowfive.index", "lowfive.serve",
                "lowfive.query"} <= names

    def test_index_on_producers_query_on_consumers(self, run):
        res, _ = run
        index_ranks = {s.rank for s in
                       res.obs.spans.spans(name="lowfive.index")}
        query_ranks = {s.rank for s in
                       res.obs.spans.spans(name="lowfive.query")}
        assert index_ranks == set(range(NPROD))
        assert query_ranks == set(range(NPROD, NPROD + NCONS))

    def test_query_spans_carry_dataset_labels(self, run):
        res, _ = run
        q = res.obs.spans.spans(name="lowfive.query")
        assert q and all(s.labels.get("dataset") == "/g/d" for s in q)

    def test_index_alltoall_nests_under_lowfive_phase(self, run):
        # The docstring case: the index phase's metadata exchange is a
        # child of lowfive.index, itself a child of the task span.
        res, _ = run
        by_id = {s.span_id: s for s in res.obs.spans.spans()}
        a2a = [s for s in res.obs.spans.spans(cat="simmpi")
               if s.name == "mpi.alltoall"]
        assert len(a2a) == NPROD
        for c in a2a:
            phase = by_id[c.parent_id]
            assert phase.name == "lowfive.index"
            task = by_id[phase.parent_id]
            assert task.cat == "workflow" and task.rank == c.rank
            # Parent intervals contain the child's.
            assert phase.t0 <= c.t0 and c.t1 <= phase.t1
            assert task.t0 <= phase.t0

    def test_wiring_collectives_precede_task_spans(self, run):
        res, _ = run
        task_start = {s.rank: s.t0
                      for s in res.obs.spans.spans(cat="workflow")}
        top_level = [s for s in res.obs.spans.spans(cat="simmpi")
                     if s.parent_id is None]
        assert top_level  # intercomm wiring + context barrier
        for c in top_level:
            assert c.t1 <= task_start[c.rank] + 1e-12


class TestPhaseStatsShim:
    def test_totals_match_spans(self, run):
        res, stats = run
        assert stats  # every task rank reported
        for (role, local), (world, ps) in stats.items():
            assert ps.seconds, f"{role}:{local} profiled nothing"
            for phase, secs in ps.seconds.items():
                span_total = res.obs.spans.total(
                    cat="lowfive", rank=world, phase=phase
                )
                assert span_total == pytest.approx(secs, abs=1e-9), \
                    f"{role}:{local} phase {phase}"

    def test_counts_match_span_counts(self, run):
        res, stats = run
        for (_role, _local), (world, ps) in stats.items():
            for phase, n in ps.counts.items():
                spans = res.obs.spans.spans(cat="lowfive", rank=world,
                                            phase=phase)
                assert len(spans) == n


class TestExportAndMetrics:
    def test_trace_has_three_layers(self, run):
        res, _ = run
        doc = res.obs.chrome_trace(res.trace)
        validate_chrome_trace(doc)
        cats = {e["cat"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"simmpi", "lowfive", "workflow"} <= cats
        # Legacy point events ride along as instants.
        assert any(e["ph"] == "i" and e["cat"] == "simmpi"
                   for e in doc["traceEvents"])

    def test_task_pids_separate_producer_consumer(self, run):
        res, _ = run
        doc = res.obs.chrome_trace()
        procs = {e["args"]["name"]: e["pid"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert procs["producer"] != procs["consumer"]

    def test_message_metrics_counted(self, run):
        res, _ = run
        dump = metrics_dump(res.obs.metrics)
        sends = [k for k in dump["counter"]
                 if k.startswith("simmpi.send.count")]
        assert sends
        assert sum(dump["counter"][k]["count"] for k in sends) \
            == res.messages

    def test_flight_recorder_always_on(self, run):
        res, _ = run
        evs = res.obs.flight.events()
        assert evs
        kinds = {e.kind for e in evs}
        assert "span_begin" in kinds and "send" in kinds


class TestWithoutTraceFlag:
    def test_spans_recorded_without_trace(self):
        res, _ = run_workflow(trace=False)
        assert res.trace == []
        assert res.obs.spans.spans(cat="simmpi")
        assert res.obs.spans.spans(cat="lowfive")
        doc = res.obs.chrome_trace()
        validate_chrome_trace(doc)
