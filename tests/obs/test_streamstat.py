"""Stream ledger snapshot/merge semantics, including a staged run."""

from repro.obs.streamstat import StreamEvent, StreamLedger


def _filled():
    led = StreamLedger()
    led.publish("s", 0, 0, 0.1, 1)
    led.acquire("s", 0, 2, 0.2)
    led.release("s", 0, 2, 0.3)
    led.drop("s", 0, 0, 0.4, 0)
    return led


class TestSnapshot:
    def test_snapshot_is_a_frozen_copy(self):
        led = _filled()
        snap = led.snapshot()
        led.publish("s", 1, 0, 0.5, 1)
        assert len(snap.events()) == 4
        assert len(led.events()) == 5

    def test_snapshot_preserves_queries(self):
        led = _filled()
        snap = led.snapshot()
        assert snap.streams() == ["s"]
        assert snap.max_depth("s") == 1
        assert snap.open_acquisitions() == []


class TestMerge:
    def test_merge_unions_disjoint_events(self):
        a, b = StreamLedger(), StreamLedger()
        a.publish("s", 0, 0, 0.1, 1)
        b.acquire("s", 0, 2, 0.2)
        m = a.merge(b)
        assert [e.kind for e in m.events()] == ["publish", "acquire"]

    def test_merge_dedups_shared_events(self):
        # Two snapshots of the same ledger overlap completely; the
        # merge must not double-count (events are frozen + hashable).
        led = _filled()
        a, b = led.snapshot(), led.snapshot()
        led.publish("s", 1, 0, 0.5, 2)
        c = led.snapshot()
        assert len(a.merge(b).events()) == 4
        assert len(a.merge(c).events()) == 5

    def test_merge_order_does_not_matter(self):
        a, b = StreamLedger(), StreamLedger()
        a.publish("s", 0, 0, 0.1, 1)
        a.publish("s", 1, 0, 0.3, 2)
        b.publish("s", 1, 0, 0.3, 2)  # shared
        b.drop("s", 0, 0, 0.6, 1)
        ab = [e.to_dict() for e in a.merge(b).events()]
        ba = [e.to_dict() for e in b.merge(a).events()]
        assert ab == ba
        assert len(ab) == 3

    def test_identical_events_are_equal(self):
        x = StreamEvent("publish", "s", 0, 0, 0.1, 1)
        y = StreamEvent("publish", "s", 0, 0, 0.1, 1)
        assert x == y and hash(x) == hash(y)


def _run_staged(nsteps=3):
    """Minimal 1 producer -> 1 stager -> 1 consumer staged pipeline."""
    import repro.h5 as h5
    from repro.h5.native import NativeVOL
    from repro.lowfive.rpc import RPCClient
    from repro.lowfive.vol_staged import StagedMetadataVOL, staging_main
    from repro.pfs import PFSStore
    from repro.stream import epoch_fname, stream_pattern
    from repro.workflow import Workflow

    pattern = stream_pattern("sim")
    shape = (8, 4)

    def make_vol(ctx, role):
        def factory():
            vol = StagedMetadataVOL(comm=ctx.comm,
                                    under=NativeVOL(PFSStore()))
            vol.set_memory(pattern)
            if role == "producer":
                vol.stage_on_close(pattern, ctx.intercomm("staging"))
            else:
                vol.set_staged_consumer(pattern,
                                        ctx.intercomm("staging"))
            return vol

        return ctx.singleton("vol", factory)

    def producer(ctx):
        vol = make_vol(ctx, "producer")
        for e in range(nsteps):
            f = h5.File(epoch_fname("sim", e), "w", comm=ctx.comm,
                        vol=vol)
            d = f.create_dataset("grid", shape=shape, dtype=h5.UINT64)
            d.write([[e] * shape[1]] * shape[0])
            f.close()
        StagedMetadataVOL.finalize_staging(ctx.intercomm("staging"))
        return True

    def consumer(ctx):
        vol = make_vol(ctx, "consumer")
        inter = ctx.intercomm("staging")
        world = ctx.comm.world_rank(ctx.rank)
        for e in range(nsteps):
            f = h5.File(epoch_fname("sim", e), "r", comm=ctx.comm,
                        vol=vol)
            f["grid"].read()
            f.close()
            RPCClient(inter).notify_all("__release__", "sim", e, world)
        StagedMetadataVOL.finalize_staging(inter)
        return True

    def staging(ctx):
        return staging_main(
            [ctx.intercomm("producer"), ctx.intercomm("consumer")]
        )

    wf = Workflow()
    wf.add_task("producer", 1, producer)
    wf.add_task("consumer", 1, consumer)
    wf.add_task("staging", 1, staging)
    wf.add_link("producer", "staging")
    wf.add_link("consumer", "staging")
    return wf.run(timeout=120.0)


class TestStagedRun:
    def test_staged_ledger_snapshot_and_merge(self):
        """A staged-mode pipeline records epoch drops; snapshots merge
        cleanly with the final ledger (pure dedup, nothing
        double-counted)."""
        res = _run_staged()
        led = res.obs.stream
        drops = led.events("sim", "drop")
        assert sorted(ev.epoch for ev in drops) == [0, 1, 2]
        snap = led.snapshot()
        merged = snap.merge(led)
        assert [e.to_dict() for e in merged.events()] == \
            [e.to_dict() for e in led.events()]
        assert merged.open_acquisitions() == led.open_acquisitions()

    def test_staged_retention_series_recorded(self):
        # vol_staged samples the stagers' live-epoch count into the
        # virtual-time series on every drop.
        res = _run_staged()
        snap = res.obs.series.snapshot()
        live = [v for k, v in snap.data.items()
                if k[0] == "stream.staged_live"]
        assert live and sum(s.count for s in live) == 3
