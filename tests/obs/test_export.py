"""Chrome trace export: schema, roundtrip, validation, CLI verb."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    ObsContext,
    chrome_trace,
    metrics_dump,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.export import WORLD_PID
from repro.simmpi import TraceEvent


def _demo_obs():
    obs = ObsContext()
    obs.set_task("sim", [0, 1])
    obs.set_task("ana", [2])
    obs.spans.add("lowfive.index", "lowfive", 0, 0.0, 1.5, {"file": "a.h5"})
    obs.spans.add("task.ana", "workflow", 2, 0.0, 3.0)
    obs.spans.instant("stage.done", "lowfive", 1, 2.0)
    obs.metrics.inc("simmpi.send.bytes", 512, rank=0)
    return obs


class TestChromeTrace:
    def test_pid_per_task_tid_per_rank(self):
        doc = chrome_trace(_demo_obs())
        procs = {e["args"]["name"]: e["pid"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert procs["sim"] == 1 and procs["ana"] == 2
        assert procs["world"] == WORLD_PID
        span = [e for e in doc["traceEvents"]
                if e["ph"] == "X" and e["name"] == "lowfive.index"][0]
        assert span["pid"] == procs["sim"] and span["tid"] == 0

    def test_unknown_rank_maps_to_world(self):
        obs = ObsContext()
        obs.spans.add("s", "", 5, 0.0, 1.0)
        doc = chrome_trace(obs)
        span = [e for e in doc["traceEvents"] if e["ph"] == "X"][0]
        assert span["pid"] == WORLD_PID

    def test_virtual_seconds_become_microseconds(self):
        doc = chrome_trace(_demo_obs())
        span = [e for e in doc["traceEvents"]
                if e["ph"] == "X" and e["name"] == "lowfive.index"][0]
        assert span["ts"] == 0.0 and span["dur"] == pytest.approx(1.5e6)

    def test_span_args_carry_ids_and_labels(self):
        obs = ObsContext()
        parent = obs.spans.begin(0, "outer", "c", 0.0)
        obs.spans.end(obs.spans.begin(0, "inner", "c", 0.5), 1.0)
        obs.spans.end(parent, 2.0)
        doc = chrome_trace(obs)
        by_name = {e["name"]: e for e in doc["traceEvents"]
                   if e["ph"] == "X"}
        assert by_name["inner"]["args"]["parent_id"] == \
            by_name["outer"]["args"]["span_id"]

    def test_legacy_events_become_instants(self):
        doc = chrome_trace(_demo_obs(),
                           [TraceEvent(0.25, "send", 0, 1, 7, 64)])
        inst = [e for e in doc["traceEvents"]
                if e["ph"] == "i" and e.get("cat") == "simmpi"][0]
        assert inst["args"] == {"kind": "send", "peer": 1, "tag": 7,
                                "nbytes": 64}
        assert inst["ts"] == pytest.approx(0.25e6)

    def test_metrics_ride_in_other_data(self):
        doc = chrome_trace(_demo_obs())
        m = doc["otherData"]["metrics"]
        assert m["counter"]["simmpi.send.bytes{rank=0}"]["total"] == 512

    def test_json_roundtrip_validates(self):
        doc = chrome_trace(_demo_obs(), [TraceEvent(0.1, "coll", 1, -1, 0, 0)])
        validate_chrome_trace(doc)
        reloaded = json.loads(json.dumps(doc))
        validate_chrome_trace(reloaded)
        assert reloaded["displayTimeUnit"] == "ms"


class TestValidate:
    def test_rejects_bad_envelope(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"events": []})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": {}})

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [
                {"ph": "B", "name": "x", "pid": 0, "tid": 0, "ts": 0}
            ]})

    def test_rejects_incomplete_x_event(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": 0}
            ]})

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "name": "x", "pid": 0, "tid": 0,
                 "ts": 0, "dur": -1}
            ]})


class TestEdgeCases:
    def test_empty_obs_validates(self):
        doc = chrome_trace(ObsContext())
        validate_chrome_trace(doc)
        # Only the world process-name metadata event remains.
        assert all(e["ph"] == "M" for e in doc["traceEvents"])

    def test_instants_only_validates(self):
        obs = ObsContext()
        obs.spans.instant("tick", "c", 0, 0.5)
        doc = chrome_trace(obs)
        validate_chrome_trace(doc)
        phases = sorted(e["ph"] for e in doc["traceEvents"])
        assert "i" in phases and "X" not in phases


class TestFlowEvents:
    def _obs_with_edge(self):
        obs = ObsContext()
        obs.set_task("sim", [0])
        obs.set_task("ana", [1])
        obs.causal.edge(msg_id=42, src=0, dst=1, tag=7, comm_id=1,
                        nbytes=64, t_post=1.0, t_arrival=1.5,
                        t_recv_start=0.5, t_recv=1.5)
        return obs

    def test_edge_becomes_s_f_pair(self):
        doc = chrome_trace(self._obs_with_edge())
        validate_chrome_trace(doc)
        s, = [e for e in doc["traceEvents"] if e["ph"] == "s"]
        f, = [e for e in doc["traceEvents"] if e["ph"] == "f"]
        assert s["id"] == f["id"] == 42
        assert s["tid"] == 0 and f["tid"] == 1
        assert s["pid"] != f["pid"]  # sender and receiver tasks differ
        assert s["ts"] == pytest.approx(1.0e6)
        assert f["ts"] == pytest.approx(1.5e6)
        assert f["bp"] == "e"
        assert s["args"]["nbytes"] == 64

    def test_obs_without_causal_attr_still_exports(self):
        # Duck-typed contexts (older pickles, test doubles) may lack
        # .causal; the exporter must degrade gracefully.
        class Minimal:
            def __init__(self, obs):
                self.spans = obs.spans
                self.metrics = obs.metrics

            def rank_tasks(self):
                return {}

        doc = chrome_trace(Minimal(_demo_obs()))
        validate_chrome_trace(doc)

    def test_validator_rejects_flow_without_id(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [
                {"ph": "s", "name": "m", "pid": 0, "tid": 0, "ts": 0}
            ]})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [
                {"ph": "f", "name": "m", "pid": 0, "tid": 0, "id": 1}
            ]})


class TestFlowEndpointsInsideSpans:
    """Property: every flow arrow starts and ends inside the enclosing
    task spans of its sender and receiver ranks."""

    @given(
        computes=st.lists(
            st.tuples(st.floats(0.0, 0.01), st.floats(0.0, 0.01)),
            min_size=1, max_size=4,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_flow_endpoints_inside_task_spans(self, computes):
        from repro.obs import span
        from repro.simmpi import Engine

        eng = Engine(2)

        def main(world):
            with span(world, f"task.r{world.rank}", cat="workflow"):
                for pre, post in computes:
                    if world.rank == 0:
                        world.compute(pre)
                        world.send(b"x" * 256, 1, tag=3)
                    else:
                        world.compute(post)
                        world.recv(source=0, tag=3)

        eng.run(main)
        doc = chrome_trace(eng.obs)
        validate_chrome_trace(doc)
        spans_by_tid = {}
        for e in doc["traceEvents"]:
            if e["ph"] == "X":
                lo, hi = spans_by_tid.get(
                    e["tid"], (float("inf"), float("-inf")))
                spans_by_tid[e["tid"]] = (min(lo, e["ts"]),
                                          max(hi, e["ts"] + e["dur"]))
        flows = [e for e in doc["traceEvents"] if e["ph"] in ("s", "f")]
        assert len(flows) == 2 * len(computes)
        eps = 1e-6  # float µs conversion slack
        for e in flows:
            lo, hi = spans_by_tid[e["tid"]]
            assert lo - eps <= e["ts"] <= hi + eps


class TestMetricsDump:
    def test_accepts_registry_and_snapshot(self):
        obs = _demo_obs()
        assert metrics_dump(obs.metrics) == \
            metrics_dump(obs.metrics.snapshot())

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            metrics_dump({"not": "a registry"})


class TestWrite:
    def test_write_chrome_trace(self, tmp_path):
        path = tmp_path / "t.json"
        doc = write_chrome_trace(str(path), _demo_obs())
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(doc))
        validate_chrome_trace(on_disk)


class TestCLITraceVerb:
    def test_cli_exports_multilayer_trace(self, tmp_path, capsys):
        from repro.tools.transfer import main

        path = tmp_path / "demo.json"
        assert main(["trace", str(path), "--nprod", "2",
                     "--ncons", "1"]) == 0
        assert "wrote" in capsys.readouterr().out
        doc = json.loads(path.read_text())
        validate_chrome_trace(doc)
        cats = {e["cat"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"simmpi", "lowfive", "workflow"} <= cats
