"""Chrome trace export: schema, roundtrip, validation, CLI verb."""

import json

import pytest

from repro.obs import (
    ObsContext,
    chrome_trace,
    metrics_dump,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.export import WORLD_PID
from repro.simmpi import TraceEvent


def _demo_obs():
    obs = ObsContext()
    obs.set_task("sim", [0, 1])
    obs.set_task("ana", [2])
    obs.spans.add("lowfive.index", "lowfive", 0, 0.0, 1.5, {"file": "a.h5"})
    obs.spans.add("task.ana", "workflow", 2, 0.0, 3.0)
    obs.spans.instant("stage.done", "lowfive", 1, 2.0)
    obs.metrics.inc("simmpi.send.bytes", 512, rank=0)
    return obs


class TestChromeTrace:
    def test_pid_per_task_tid_per_rank(self):
        doc = chrome_trace(_demo_obs())
        procs = {e["args"]["name"]: e["pid"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert procs["sim"] == 1 and procs["ana"] == 2
        assert procs["world"] == WORLD_PID
        span = [e for e in doc["traceEvents"]
                if e["ph"] == "X" and e["name"] == "lowfive.index"][0]
        assert span["pid"] == procs["sim"] and span["tid"] == 0

    def test_unknown_rank_maps_to_world(self):
        obs = ObsContext()
        obs.spans.add("s", "", 5, 0.0, 1.0)
        doc = chrome_trace(obs)
        span = [e for e in doc["traceEvents"] if e["ph"] == "X"][0]
        assert span["pid"] == WORLD_PID

    def test_virtual_seconds_become_microseconds(self):
        doc = chrome_trace(_demo_obs())
        span = [e for e in doc["traceEvents"]
                if e["ph"] == "X" and e["name"] == "lowfive.index"][0]
        assert span["ts"] == 0.0 and span["dur"] == pytest.approx(1.5e6)

    def test_span_args_carry_ids_and_labels(self):
        obs = ObsContext()
        parent = obs.spans.begin(0, "outer", "c", 0.0)
        obs.spans.end(obs.spans.begin(0, "inner", "c", 0.5), 1.0)
        obs.spans.end(parent, 2.0)
        doc = chrome_trace(obs)
        by_name = {e["name"]: e for e in doc["traceEvents"]
                   if e["ph"] == "X"}
        assert by_name["inner"]["args"]["parent_id"] == \
            by_name["outer"]["args"]["span_id"]

    def test_legacy_events_become_instants(self):
        doc = chrome_trace(_demo_obs(),
                           [TraceEvent(0.25, "send", 0, 1, 7, 64)])
        inst = [e for e in doc["traceEvents"]
                if e["ph"] == "i" and e.get("cat") == "simmpi"][0]
        assert inst["args"] == {"kind": "send", "peer": 1, "tag": 7,
                                "nbytes": 64}
        assert inst["ts"] == pytest.approx(0.25e6)

    def test_metrics_ride_in_other_data(self):
        doc = chrome_trace(_demo_obs())
        m = doc["otherData"]["metrics"]
        assert m["counter"]["simmpi.send.bytes{rank=0}"]["total"] == 512

    def test_json_roundtrip_validates(self):
        doc = chrome_trace(_demo_obs(), [TraceEvent(0.1, "coll", 1, -1, 0, 0)])
        validate_chrome_trace(doc)
        reloaded = json.loads(json.dumps(doc))
        validate_chrome_trace(reloaded)
        assert reloaded["displayTimeUnit"] == "ms"


class TestValidate:
    def test_rejects_bad_envelope(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"events": []})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": {}})

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [
                {"ph": "B", "name": "x", "pid": 0, "tid": 0, "ts": 0}
            ]})

    def test_rejects_incomplete_x_event(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": 0}
            ]})

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "name": "x", "pid": 0, "tid": 0,
                 "ts": 0, "dur": -1}
            ]})


class TestMetricsDump:
    def test_accepts_registry_and_snapshot(self):
        obs = _demo_obs()
        assert metrics_dump(obs.metrics) == \
            metrics_dump(obs.metrics.snapshot())

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            metrics_dump({"not": "a registry"})


class TestWrite:
    def test_write_chrome_trace(self, tmp_path):
        path = tmp_path / "t.json"
        doc = write_chrome_trace(str(path), _demo_obs())
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(doc))
        validate_chrome_trace(on_disk)


class TestCLITraceVerb:
    def test_cli_exports_multilayer_trace(self, tmp_path, capsys):
        from repro.tools.transfer import main

        path = tmp_path / "demo.json"
        assert main(["trace", str(path), "--nprod", "2",
                     "--ncons", "1"]) == 0
        assert "wrote" in capsys.readouterr().out
        doc = json.loads(path.read_text())
        validate_chrome_trace(doc)
        cats = {e["cat"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"simmpi", "lowfive", "workflow"} <= cats
