"""Span recorder: nesting, parent links, per-thread stacks."""

import threading

from repro.obs.spans import SpanRecorder


class TestBasics:
    def test_begin_end_records_span(self):
        rec = SpanRecorder()
        h = rec.begin(0, "work", "test", 1.0, {"k": "v"})
        ev = rec.end(h, 3.5)
        assert ev.name == "work" and ev.cat == "test"
        assert ev.rank == 0
        assert ev.duration == 2.5
        assert ev.labels == {"k": "v"}
        assert ev.parent_id is None
        assert rec.spans() == [ev]

    def test_span_ids_unique(self):
        rec = SpanRecorder()
        ids = set()
        for _ in range(10):
            h = rec.begin(0, "s", "", 0.0)
            ids.add(rec.end(h, 1.0).span_id)
        assert len(ids) == 10

    def test_add_and_instant(self):
        rec = SpanRecorder()
        ev = rec.add("direct", "cat", 2, 0.0, 1.0)
        i = rec.instant("tick", "cat", 2, 0.5, {"n": 1})
        assert rec.spans() == [ev]
        assert rec.instants() == [i]
        assert i.t == 0.5 and i.labels == {"n": 1}


class TestNesting:
    def test_child_links_to_parent(self):
        rec = SpanRecorder()
        outer = rec.begin(0, "outer", "", 0.0)
        inner = rec.begin(0, "inner", "", 1.0)
        in_ev = rec.end(inner, 2.0)
        out_ev = rec.end(outer, 3.0)
        assert in_ev.parent_id == out_ev.span_id
        assert out_ev.parent_id is None
        assert rec.children_of(out_ev.span_id) == [in_ev]

    def test_three_levels(self):
        rec = SpanRecorder()
        a = rec.begin(0, "a", "", 0.0)
        b = rec.begin(0, "b", "", 0.0)
        c = rec.begin(0, "c", "", 0.0)
        ce = rec.end(c, 1.0)
        be = rec.end(b, 1.0)
        ae = rec.end(a, 1.0)
        assert ce.parent_id == be.span_id
        assert be.parent_id == ae.span_id

    def test_siblings_share_parent(self):
        rec = SpanRecorder()
        p = rec.begin(0, "p", "", 0.0)
        s1 = rec.end(rec.begin(0, "s1", "", 0.0), 1.0)
        s2 = rec.end(rec.begin(0, "s2", "", 1.0), 2.0)
        pe = rec.end(p, 2.0)
        assert s1.parent_id == pe.span_id == s2.parent_id
        assert {s.name for s in rec.children_of(pe.span_id)} == {"s1", "s2"}

    def test_add_parent_is_explicit(self):
        # add() must NOT adopt the calling thread's open span: a helper
        # thread recording on behalf of another rank would otherwise
        # get a bogus cross-rank parent. The link is opt-in.
        rec = SpanRecorder()
        p = rec.begin(0, "p", "", 0.0)
        orphan = rec.add("measured", "", 0, 0.2, 0.8)
        child = rec.add("measured2", "", 0, 0.2, 0.8,
                        parent_id=p.span_id)
        rec.end(p, 1.0)
        assert orphan.parent_id is None
        assert child.parent_id == p.span_id

    def test_end_pops_unclosed_children(self):
        rec = SpanRecorder()
        outer = rec.begin(0, "outer", "", 0.0)
        rec.begin(0, "leaked", "", 0.5)  # never ended
        rec.end(outer, 1.0)
        after = rec.end(rec.begin(0, "next", "", 2.0), 3.0)
        assert after.parent_id is None  # stack fully unwound


class TestThreads:
    def test_stacks_are_per_thread(self):
        rec = SpanRecorder()
        barrier = threading.Barrier(2)  # noqa: ANL003 - thread-safety stress test

        def worker(rank):
            outer = rec.begin(rank, "outer", "", 0.0)
            barrier.wait()  # both threads have an open span
            inner = rec.begin(rank, "inner", "", 1.0)
            rec.end(inner, 2.0)
            barrier.wait()
            rec.end(outer, 3.0)

        threads = [threading.Thread(target=worker, args=(r,))  # noqa: ANL003
                   for r in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for rank in range(2):
            inner, = rec.spans(name="inner", rank=rank)
            outer, = rec.spans(name="outer", rank=rank)
            # Parent is this thread's outer span, not the other's.
            assert inner.parent_id == outer.span_id


class TestQueries:
    def _populated(self):
        rec = SpanRecorder()
        rec.add("lowfive.index", "lowfive", 0, 0.0, 1.0, {"file": "a.h5"})
        rec.add("lowfive.query", "lowfive", 1, 0.0, 2.0, {"file": "a.h5"})
        rec.add("pfs.write", "pfs", 0, 0.0, 4.0, {"file": "b.h5"})
        return rec

    def test_filter_by_cat_name_rank(self):
        rec = self._populated()
        assert len(rec.spans(cat="lowfive")) == 2
        assert len(rec.spans(name="pfs.write")) == 1
        assert len(rec.spans(rank=0)) == 2
        assert len(rec.spans(cat="lowfive", rank=1)) == 1

    def test_filter_by_labels(self):
        rec = self._populated()
        assert len(rec.spans(file="a.h5")) == 2
        assert rec.spans(file="nope") == []

    def test_total_sums_durations(self):
        rec = self._populated()
        assert rec.total(cat="lowfive") == 3.0
        assert rec.total() == 7.0
        assert rec.total(name="missing") == 0.0
