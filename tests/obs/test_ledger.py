"""Run ledger: records, digests, JSONL persistence, the comparator."""

import json

import pytest

from repro.obs.ledger import (
    EXACT_FIELDS,
    Ledger,
    RunRecord,
    check_reference,
    compare_runs,
    cost_digest,
    counter_totals,
    load_runs_doc,
    record_from_result,
)


def _record(**kw):
    base = dict(workload="fig5/lowfive_memory/P4", vtime=1.25,
                messages=100, bytes_sent=4096)
    base.update(kw)
    return RunRecord(**base)


class TestRunRecord:
    def test_round_trips_through_json(self):
        rec = _record(params={"elems": 10}, counters={"pfs.bytes": 7.0},
                      failed_tasks=("t1",))
        back = RunRecord.from_json(json.loads(json.dumps(rec.to_json())))
        assert back == rec

    def test_unknown_keys_land_in_extra(self):
        doc = _record().to_json()
        doc["levels"] = 3
        back = RunRecord.from_json(doc)
        assert back.extra["levels"] == 3

    def test_digest_ignores_volatile_fields(self):
        a = _record(wall_seconds=1.0, created_at="2026-01-01",
                    git_rev="abc")
        b = _record(wall_seconds=9.0, created_at="2026-12-31",
                    git_rev="def")
        assert a.digest() == b.digest()

    def test_digest_tracks_stable_fields(self):
        assert _record().digest() != _record(vtime=1.26).digest()
        assert _record().digest() != \
            _record(counters={"x": 1.0}).digest()

    def test_stable_json_drops_every_volatile_field(self):
        doc = _record(wall_seconds=1.0).stable_json()
        assert "wall_seconds" not in doc
        assert "created_at" not in doc
        assert doc["vtime"] == 1.25


class TestHelpers:
    def test_cost_digest_stable_and_none_safe(self):
        from repro.lowfive.config import CostConfig

        assert cost_digest(None) is None
        assert cost_digest(CostConfig()) == cost_digest(CostConfig())
        assert cost_digest(CostConfig()) != \
            cost_digest(CostConfig(flight_capacity=8))

    def test_counter_totals_folds_labels(self):
        doc = {"counter": {
            "pfs.bytes{rank=0}": {"total": 10.0},
            "pfs.bytes{rank=1}": {"total": 5.0},
            "msgs": {"total": 2.0},
        }}
        assert counter_totals(doc) == {"pfs.bytes": 15.0, "msgs": 2.0}
        assert counter_totals(None) == {}


class TestLedgerFile:
    def test_append_and_read_back(self, tmp_path):
        path = str(tmp_path / "sub" / "ledger.jsonl")
        led = Ledger(path)
        led.append(_record())
        led.append(_record(workload="fig7/pure_mpi/P4"))
        recs = led.records()
        assert [r.workload for r in recs] == \
            ["fig5/lowfive_memory/P4", "fig7/pure_mpi/P4"]

    def test_latest_returns_newest_of_workload(self, tmp_path):
        led = Ledger(str(tmp_path / "l.jsonl"))
        led.append(_record(vtime=1.0))
        led.append(_record(vtime=2.0))
        assert led.latest("fig5/lowfive_memory/P4").vtime == 2.0  # noqa: ANL004
        assert led.latest("nope") is None

    def test_missing_file_is_empty(self, tmp_path):
        assert Ledger(str(tmp_path / "absent.jsonl")).records() == []

    def test_runs_doc_keeps_newest_per_workload(self, tmp_path):
        led = Ledger(str(tmp_path / "l.jsonl"))
        led.append(_record(vtime=1.0))
        led.append(_record(workload="b", vtime=5.0))
        led.append(_record(vtime=2.0))
        doc = led.runs_doc()
        assert [r["workload"] for r in doc["runs"]] == \
            ["b", "fig5/lowfive_memory/P4"]
        assert doc["runs"][1]["vtime"] == 2.0

    def test_append_doc_maps_bench_runs(self, tmp_path):
        led = Ledger(str(tmp_path / "l.jsonl"))
        doc = {"params": {"elems": 4},
               "runs": [{"workload": "w", "vtime": 1.0, "messages": 2,
                         "bytes_sent": 3, "nprocs": 4,
                         "digest": "cafe", "levels": 1}]}
        assert led.append_doc(doc) == 1
        rec = led.records()[0]
        assert rec.params == {"elems": 4}
        assert rec.extra["digest"] == "cafe"
        assert rec.extra["levels"] == 1

    def test_load_runs_doc_both_formats(self, tmp_path):
        led = Ledger(str(tmp_path / "l.jsonl"))
        led.append(_record())
        assert load_runs_doc(led.path)["runs"][0]["vtime"] == 1.25
        plain = tmp_path / "doc.json"
        plain.write_text(json.dumps({"runs": [{"workload": "w"}]}))
        assert load_runs_doc(str(plain))["runs"] == [{"workload": "w"}]


def _runs():
    return [{"workload": "w1", "vtime": 1.0, "messages": 10,
             "bytes_sent": 100, "wall_seconds": 2.0, "digest": "aa"},
            {"workload": "w2", "vtime": 2.0, "messages": 20,
             "bytes_sent": 200, "wall_seconds": 4.0, "digest": "bb"}]


class TestCompareRuns:
    def test_identical_runs_have_no_drift(self):
        problems, compared = compare_runs(_runs(), {"runs": _runs()})
        assert compared and problems == []

    def test_exact_field_drift_message_matches_legacy_format(self):
        runs = _runs()
        runs[0]["vtime"] = 1.5
        problems, _ = compare_runs(runs, {"runs": _runs()})
        assert problems == ["w1: vtime drifted 1.0 -> 1.5"]

    def test_digest_drift_detected_in_both_layouts(self):
        runs = _runs()
        runs[1]["digest"] = "xx"
        problems, _ = compare_runs(runs, {"runs": _runs()})
        assert problems == ["w2: data digest drifted"]
        # Ledger records carry the digest under "extra".
        nested = [{"workload": "w2", "vtime": 2.0, "messages": 20,
                   "bytes_sent": 200, "extra": {"digest": "xx"}}]
        problems, _ = compare_runs(nested, {"runs": _runs()})
        assert problems == ["w2: data digest drifted"]
        problems, _ = compare_runs(nested, {"runs": _runs()},
                                   check_digest=False)
        assert problems == []

    def test_unmatched_workloads_are_skipped(self):
        problems, compared = compare_runs(
            [{"workload": "other", "vtime": 9.9}], {"runs": _runs()})
        assert not compared and problems == []

    def test_tolerances_use_relative_drift(self):
        runs = _runs()
        runs[0]["wall_seconds"] = 2.2  # 10% off the reference 2.0
        problems, _ = compare_runs(runs, {"runs": _runs()},
                                   tolerances={"wall_seconds": 0.5})
        assert problems == []
        problems, _ = compare_runs(runs, {"runs": _runs()},
                                   tolerances={"wall_seconds": 0.05})
        assert len(problems) == 1 and "tolerance" in problems[0]

    def test_annotate_wall_writes_speedups(self):
        runs = _runs()
        runs[0]["wall_seconds"] = 1.0
        compare_runs(runs, {"runs": _runs()}, annotate_wall=True)
        assert runs[0]["ref_wall_seconds"] == 2.0
        assert runs[0]["speedup_vs_reference"] == 2.0


class TestCheckReference:
    def test_missing_reference_gated_by_check_ref(self, tmp_path):
        path = str(tmp_path / "absent.json")
        assert check_reference(_runs(), path) == []
        assert check_reference(_runs(), path, check_ref=True) == \
            [f"reference {path} not found"]

    def test_params_mismatch_gated_by_check_ref(self, tmp_path):
        ref = tmp_path / "ref.json"
        ref.write_text(json.dumps({"params": {"elems": 100},
                                   "runs": _runs()}))
        ours = {"elems": 5}
        assert check_reference(_runs(), str(ref), our_params=ours) == []
        probs = check_reference(_runs(), str(ref), our_params=ours,
                                check_ref=True)
        assert len(probs) == 1 and "do not cover this run" in probs[0]

    def test_empty_intersection_is_a_problem_under_check_ref(
            self, tmp_path):
        ref = tmp_path / "ref.json"
        ref.write_text(json.dumps({"runs": _runs()}))
        probs = check_reference([{"workload": "other"}], str(ref),
                                check_ref=True)
        assert probs == ["reference matched no workloads"]

    def test_matching_reference_passes(self, tmp_path):
        ref = tmp_path / "ref.json"
        ref.write_text(json.dumps({"params": {"elems": 5},
                                   "runs": _runs()}))
        assert check_reference(_runs(), str(ref),
                               our_params={"elems": 5},
                               check_ref=True) == []


class TestRecordFromResult:
    @pytest.fixture(scope="class")
    def res(self):
        from repro.tools.trace import run_demo_workflow

        return run_demo_workflow(nprod=2, ncons=1, grid_points=512,
                                 particles=256)

    def test_distills_workflow_result(self, res):
        rec = record_from_result(res, "demo", mode="memory",
                                 params={"nprod": 2}, seed=0)
        assert rec.workload == "demo"
        assert rec.vtime == res.vtime  # noqa: ANL004
        assert rec.nprocs == 3
        assert rec.counters  # PFS / transport counters present
        assert rec.series    # stable series digests present
        assert rec.attribution["conservation_ok"]

    def test_same_seed_records_are_byte_identical(self, res):
        # The acceptance criterion: same-seed runs differ only in the
        # volatile fields, so the stable digest must agree exactly.
        from repro.tools.trace import run_demo_workflow

        res2 = run_demo_workflow(nprod=2, ncons=1, grid_points=512,
                                 particles=256)
        a = record_from_result(res, "demo", mode="memory",
                               wall_seconds=1.0)
        b = record_from_result(res2, "demo", mode="memory",
                               wall_seconds=2.0)
        assert a.digest() == b.digest()
        assert json.dumps(a.stable_json(), sort_keys=True) == \
            json.dumps(b.stable_json(), sort_keys=True)

    def test_workflow_result_shortcut(self, res):
        rec = res.run_record("demo", mode="memory")
        assert rec.workload == "demo"
        assert rec.vtime == res.vtime  # noqa: ANL004
        assert rec.digest() == record_from_result(
            res, "demo", mode="memory").digest()

    def test_exact_fields_constant_matches_bench_contract(self):
        assert EXACT_FIELDS == ("vtime", "messages", "bytes_sent")
