"""Disabled observability: the null context must be a perfect no-op."""

import pytest

from repro.obs.noop import NullObsContext


class TestNullSurface:
    """Every producer-side call the instrumented layers make must be
    accepted silently."""

    def test_metrics_calls_are_noops(self):
        obs = NullObsContext()
        obs.metrics.inc("x", 5, rank=0)
        obs.metrics.set("g", 1.0)
        obs.metrics.observe("h", 2.0)
        obs.metrics.counter("x", rank=0).inc(3)
        assert obs.metrics.to_dict() == {}
        assert obs.metrics.snapshot().data == {}

    def test_series_calls_are_noops(self):
        obs = NullObsContext()
        obs.series.record("q", 0.5, 1.0, rank=0)
        obs.series.bound("q", rank=1, volatile=True).record(0.0, 2.0)
        assert obs.series.snapshot().data == {}
        obs.sample("q", 0.5, 1.0, rank=0, volatile=True)

    def test_span_yields_none(self):
        obs = NullObsContext()
        with obs.span("phase", "cat", rank=0) as sp:
            assert sp is None

    def test_flight_and_stream_and_causal(self):
        obs = NullObsContext()
        obs.flight.record(0, 0.0, "send", "m", peer=1)
        obs.flight.set_capacity(4)
        acct = obs.causal.account(0)
        acct.compute += 1.0  # comm.py mutates accounts directly
        acct.wait += 0.5
        obs.stream.publish("s", 0, 0, 0.0, 1)
        assert obs.stream.snapshot() is obs.stream

    def test_task_tracking_is_noop(self):
        obs = NullObsContext()
        obs.set_task(0, "producer")
        assert obs.task_of(0) is None
        assert obs.rank_tasks() == {}

    def test_trace_export_refuses(self):
        obs = NullObsContext()
        with pytest.raises(ValueError, match="disabled"):
            obs.chrome_trace()


class TestSimulationUnperturbed:
    """Telemetry must never change virtual results: the same workflow
    with obs disabled produces identical vtime/messages/bytes."""

    def test_workflow_results_identical(self):
        from repro.bench.drivers import _lowfive_wf
        from repro.perfmodel.transports import THETA_KNL
        from repro.pfs import PFSStore
        from repro.synth import SyntheticWorkload

        wl = SyntheticWorkload(grid_points_per_proc=512,
                               particles_per_proc=256)

        def run(obs):
            wf = _lowfive_wf(2, 1, wl, THETA_KNL, "memory", PFSStore())
            return wf.run(model=THETA_KNL.net, obs=obs)

        on, off = run(None), run(NullObsContext())
        assert all(off.returns["consumer"])
        assert on.vtime == off.vtime  # noqa: ANL004 - exact determinism is the contract
        assert on.messages == off.messages
        assert on.bytes_sent == off.bytes_sent

    def test_record_from_result_with_disabled_obs(self):
        from repro.bench.drivers import _lowfive_wf
        from repro.obs.ledger import record_from_result
        from repro.perfmodel.transports import THETA_KNL
        from repro.pfs import PFSStore
        from repro.synth import SyntheticWorkload

        wl = SyntheticWorkload(grid_points_per_proc=512,
                               particles_per_proc=256)
        wf = _lowfive_wf(2, 1, wl, THETA_KNL, "memory", PFSStore())
        res = wf.run(model=THETA_KNL.net, obs=NullObsContext())
        rec = record_from_result(res, "demo")
        assert rec.counters == {}
        assert rec.series == {}
        assert rec.vtime == res.vtime  # noqa: ANL004
