"""Critical path: exact telescoping walk, breakdowns, full reports."""

import pytest

from repro.obs import ObsContext
from repro.obs.causal import RankAccount
from repro.obs.critpath import (
    CATEGORIES,
    analyze,
    critical_path,
    imbalance,
)
from repro.simmpi import Engine


def _edge(obs, **kw):
    base = dict(msg_id=1, src=0, dst=1, tag=5, comm_id=1, nbytes=8,
                t_post=0.0, t_arrival=0.0, t_recv_start=0.0, t_recv=0.0)
    base.update(kw)
    return obs.causal.edge(**base)


class TestSyntheticWalks:
    def test_single_rank_pure_compute(self):
        cp = critical_path(ObsContext(), [5.0])
        assert cp.makespan == 5.0
        seg, = cp.segments
        assert (seg.t0, seg.t1, seg.rank) == (0.0, 5.0, 0)
        assert seg.category == "compute"
        assert cp.residual == 0.0

    def test_empty_run(self):
        cp = critical_path(ObsContext(), [])
        assert cp.makespan == 0.0 and cp.segments == ()
        assert critical_path(ObsContext(), [0.0]).segments == ()

    def test_late_recv_hops_to_sender(self):
        obs = ObsContext()
        # Sender (rank 0) works until 3.0, message lands at 4.0.
        _edge(obs, t_post=3.0, t_arrival=4.0, t_recv_start=0.0,
              t_recv=4.0)
        cp = critical_path(obs, [3.0, 4.0])
        kinds = [s.kind for s in cp.segments]
        assert kinds == ["local", "wire", "recv"]
        wire = cp.segments[1]
        assert wire.rank == 0  # wire time is resident on the sender
        assert (wire.t0, wire.t1) == (3.0, 4.0)
        assert cp.segments[0].rank == 0
        assert cp.residual == 0.0
        # Path seconds by rank: 3 on the sender + 1 wire; the receiver
        # contributes only the zero-width delivery point.
        assert cp.rank_residence() == {0: 4.0, 1: 0.0}

    def test_early_recv_stays_on_receiver(self):
        obs = ObsContext()
        _edge(obs, t_post=0.0, t_arrival=1.0, t_recv_start=2.0,
              t_recv=2.5)
        cp = critical_path(obs, [0.5, 2.5])
        assert [s.kind for s in cp.segments] == ["local", "recv"]
        assert all(s.rank == 1 for s in cp.segments)
        assert cp.residual == 0.0

    def test_collective_hops_to_straggler(self):
        obs = ObsContext()
        obs.causal.collective("barrier", 1, 0, {0: 1.0, 1: 3.0},
                              3.0, 3.5)
        cp = critical_path(obs, [3.5, 3.5])
        assert [s.kind for s in cp.segments] == ["local", "collective"]
        local, coll = cp.segments
        assert local.rank == 1  # the straggler's work is on the path
        assert (local.t0, local.t1) == (0.0, 3.0)
        assert "straggler rank 1" in coll.detail
        assert cp.residual == 0.0

    def test_chain_recv_then_collective(self):
        obs = ObsContext()
        obs.causal.collective("barrier", 1, 0, {0: 1.0, 1: 2.0},
                              2.0, 2.2)
        # After the barrier, rank 1 sends to rank 0; rank 0 blocked.
        _edge(obs, src=1, dst=0, t_post=3.2, t_arrival=3.4,
              t_recv_start=2.2, t_recv=3.4)
        cp = critical_path(obs, [3.4, 3.2])
        assert [s.kind for s in cp.segments] == \
            ["local", "collective", "local", "wire", "recv"]
        assert cp.residual == 0.0
        assert cp.total == pytest.approx(3.4)

    def test_category_split_by_deepest_span(self):
        obs = ObsContext()
        obs.spans.add("task.sim", "workflow", 0, 0.0, 5.0)
        obs.spans.add("pfs.write", "pfs", 0, 1.0, 2.0)
        obs.spans.add("lowfive.index", "lowfive", 0, 3.0, 4.5,
                      {"phase": "index"})
        cp = critical_path(obs, [5.0])
        bd = cp.category_breakdown()
        assert set(bd) == set(CATEGORIES)
        assert bd["pfs"] == pytest.approx(1.0)
        assert bd["lowfive"] == pytest.approx(1.5)
        assert bd["compute"] == pytest.approx(2.5)
        assert sum(bd.values()) == pytest.approx(cp.makespan)
        assert cp.phase_breakdown() == {"index": pytest.approx(1.5)}
        shares = cp.category_shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_top_segments_sorted_descending(self):
        obs = ObsContext()
        _edge(obs, t_post=3.0, t_arrival=4.0, t_recv_start=0.0,
              t_recv=4.0)
        cp = critical_path(obs, [3.0, 4.0])
        top = cp.top_segments(2)
        assert len(top) == 2
        assert top[0].duration >= top[1].duration


class TestImbalance:
    def test_balanced_is_zero(self):
        a, b = RankAccount(0), RankAccount(1)
        a.compute = b.compute = 2.0
        assert imbalance({0: a, 1: b}, 2) == pytest.approx(0.0)

    def test_skew(self):
        a, b = RankAccount(0), RankAccount(1)
        a.compute, b.compute = 3.0, 1.0
        assert imbalance({0: a, 1: b}, 2) == pytest.approx(0.5)

    def test_degenerate(self):
        assert imbalance({}, 0) == 0.0
        assert imbalance({}, 4) == 0.0


class TestEngineExactness:
    def _run(self, nprocs, main):
        eng = Engine(nprocs)
        res = eng.run(main)
        return eng, res

    def test_residual_zero_on_mixed_program(self):
        def main(world):
            world.compute(0.05 * (world.rank + 1))
            world.barrier()
            if world.rank == 0:
                world.send(b"x" * 4096, 1, tag=9)
            elif world.rank == 1:
                world.recv(source=0, tag=9)
            world.allgather(world.rank)

        eng, res = self._run(3, main)
        cp = critical_path(eng.obs, res.clocks)
        assert abs(cp.residual) <= 1e-9
        # Segments telescope: each starts where the previous ended.
        for a, b in zip(cp.segments, cp.segments[1:]):
            assert a.t1 == pytest.approx(b.t0, abs=1e-12) or \
                a.t1 >= b.t0  # wire hop lands at the sender's post time

    def test_analyze_bundles_everything(self):
        def main(world):
            world.compute(0.1 if world.rank else 0.3)
            world.barrier()

        eng, res = self._run(2, main)
        rep = analyze(eng.obs, res.clocks)
        assert rep.conservation.ok
        assert abs(rep.path.residual) <= 1e-9
        assert rep.makespan == max(res.clocks)
        assert sum(rep.shares.values()) == pytest.approx(1.0)
        assert rep.wait_by_category()  # rank 1 waited on the straggler
        s = rep.summary()
        assert s["conservation_ok"] is True
        d = rep.to_dict()
        assert len(d["segments"]) == len(rep.path.segments)
        import json

        json.dumps(d)  # JSON-able end to end


class TestWorkflowReport:
    def test_causal_report_via_workflow(self):
        from repro.workflow import Workflow

        def producer(ctx):
            ctx.comm.compute(0.01)
            ctx.intercomm("ana").send(b"data", 0, tag=1)
            return True

        def ana(ctx):
            ctx.intercomm("sim").recv(source=0, tag=1)
            return True

        wf = Workflow()
        wf.add_task("sim", 1, producer)
        wf.add_task("ana", 1, ana)
        wf.add_link("sim", "ana")
        res = wf.run()
        rep = res.causal_report()
        assert rep.conservation.ok
        assert abs(rep.path.residual) <= 1e-9

    def test_causal_report_needs_obs(self):
        from repro.workflow.runner import WorkflowResult

        with pytest.raises(ValueError):
            WorkflowResult(vtime=0.0).causal_report()


class TestFig5Attribution:
    """The acceptance criterion: fig5-shaped workloads, both modes."""

    @pytest.fixture(scope="class")
    def reports(self):
        from repro.bench.drivers import _lowfive_wf
        from repro.perfmodel.transports import THETA_KNL
        from repro.pfs import PFSStore
        from repro.synth import SyntheticWorkload

        wl = SyntheticWorkload(grid_points_per_proc=3000,
                               particles_per_proc=3000)
        out = {}
        for mode in ("memory", "file"):
            wf = _lowfive_wf(2, 1, wl, THETA_KNL, mode, PFSStore())
            res = wf.run(model=THETA_KNL.net, timeout=120.0)
            out[mode] = res.causal_report()
        return out

    def test_exact_and_conserved_in_both_modes(self, reports):
        for rep in reports.values():
            assert abs(rep.path.residual) <= 1e-9
            rep.conservation.raise_if_violated()

    def test_file_mode_is_pfs_dominated(self, reports):
        rep = reports["file"]
        assert rep.path.category_shares()["pfs"] > 0.5
        assert rep.wait_by_category().get("pfs-contention", 0.0) > 0.0

    def test_memory_mode_never_touches_the_pfs(self, reports):
        rep = reports["memory"]
        shares = rep.path.category_shares()
        assert shares["pfs"] < 0.05
        assert shares["lowfive"] + shares["simmpi"] > 0.5
        assert "pfs-contention" not in rep.wait_by_category()

    def test_phase_attribution_present(self, reports):
        phases = reports["memory"].path.phase_breakdown()
        assert phases  # index/serve/query time shows up on the path
