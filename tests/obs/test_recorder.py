"""Flight recorder: bounded per-rank rings, eviction, dumps."""

import threading

import pytest

from repro.obs.recorder import FlightRecorder


class TestRecording:
    def test_records_in_order(self):
        fr = FlightRecorder(capacity=8)
        fr.record(0, 0.1, "send", "msg", peer=1)
        fr.record(0, 0.2, "recv", "msg", peer=1)
        evs = fr.events(0)
        assert [e.kind for e in evs] == ["send", "recv"]
        assert evs[0].detail == (("peer", 1),)

    def test_eviction_keeps_newest(self):
        fr = FlightRecorder(capacity=3)
        for i in range(10):
            fr.record(0, float(i), "tick", str(i))
        evs = fr.events(0)
        assert len(evs) == 3
        assert [e.name for e in evs] == ["7", "8", "9"]

    def test_rings_are_per_rank(self):
        fr = FlightRecorder(capacity=2)
        for i in range(5):
            fr.record(0, float(i), "a", "x")
        fr.record(1, 99.0, "b", "y")
        assert len(fr.events(0)) == 2
        assert len(fr.events(1)) == 1
        assert fr.ranks() == [0, 1]

    def test_all_events_time_sorted(self):
        fr = FlightRecorder()
        fr.record(1, 2.0, "b", "later")
        fr.record(0, 1.0, "a", "earlier")
        names = [e.name for e in fr.events()]
        assert names == ["earlier", "later"]

    def test_unknown_rank_empty(self):
        assert FlightRecorder().events(7) == []

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestThreadSafety:
    def test_concurrent_writes_and_reads(self):
        # Engine threads append (e.g. a sender recording a delivery on
        # the receiver's ring) while others read; events() must
        # snapshot under the lock instead of iterating live deques.
        fr = FlightRecorder(capacity=64)
        stop = threading.Event()  # noqa: ANL003 - thread-safety stress test
        errors = []

        def writer(rank):
            i = 0
            while not stop.is_set():
                fr.record(rank, float(i), "tick", str(i), seq=i)
                i += 1

        def reader():
            while not stop.is_set():
                try:
                    for e in fr.events():
                        assert e.name is not None
                    fr.dump()
                except (RuntimeError, AssertionError) as exc:
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=writer, args=(r,))  # noqa: ANL003
                   for r in range(3)]
        threads += [threading.Thread(target=reader) for _ in range(2)]  # noqa: ANL003
        for t in threads:
            t.start()
        stop_timer = threading.Timer(0.3, stop.set)  # noqa: ANL003
        stop_timer.start()
        for t in threads:
            t.join(10.0)
        stop_timer.cancel()
        stop.set()
        assert not errors


class TestDump:
    def test_dump_is_json_shape(self):
        import json

        fr = FlightRecorder(capacity=4)
        fr.record(2, 0.5, "coll", "mpi.barrier", nbytes=0)
        d = fr.dump()
        json.dumps(d)
        assert list(d) == [2]
        assert d[2][0] == {"vtime": 0.5, "rank": 2, "kind": "coll",
                           "name": "mpi.barrier", "nbytes": 0}


class TestSetCapacity:
    def test_shrink_keeps_newest_per_rank(self):
        fr = FlightRecorder(capacity=8)
        for i in range(8):
            fr.record(0, float(i), "tick", str(i))
        fr.record(1, 100.0, "tick", "other")
        fr.set_capacity(3)
        assert fr.capacity == 3
        assert [e.name for e in fr.events(0)] == ["5", "6", "7"]
        assert [e.name for e in fr.events(1)] == ["other"]

    def test_grow_keeps_everything_and_raises_bound(self):
        fr = FlightRecorder(capacity=2)
        for i in range(5):
            fr.record(0, float(i), "tick", str(i))
        fr.set_capacity(4)
        assert [e.name for e in fr.events(0)] == ["3", "4"]
        for i in range(5, 8):
            fr.record(0, float(i), "tick", str(i))
        assert len(fr.events(0)) == 4  # new bound in force

    def test_same_capacity_is_a_noop(self):
        fr = FlightRecorder(capacity=4)
        fr.record(0, 0.0, "tick", "a")
        fr.set_capacity(4)
        assert [e.name for e in fr.events(0)] == ["a"]

    def test_rejects_nonpositive(self):
        fr = FlightRecorder()
        with pytest.raises(ValueError):
            fr.set_capacity(0)

    def test_overflow_ordering_survives_resize(self):
        # Events stay time-ordered across shrink + continued appends.
        fr = FlightRecorder(capacity=6)
        for i in range(6):
            fr.record(0, float(i), "tick", str(i))
        fr.set_capacity(2)
        fr.record(0, 6.0, "tick", "6")
        times = [e.vtime for e in fr.events(0)]
        assert times == sorted(times) == [5.0, 6.0]


class TestCostConfigWiring:
    def test_flight_capacity_flows_from_cost_config(self):
        from dataclasses import replace

        from repro.bench.drivers import _lowfive_wf
        from repro.perfmodel.transports import THETA_KNL
        from repro.pfs import PFSStore
        from repro.synth import SyntheticWorkload

        machine = replace(
            THETA_KNL, lf=replace(THETA_KNL.lf, flight_capacity=7))
        wl = SyntheticWorkload(grid_points_per_proc=256,
                               particles_per_proc=128)
        wf = _lowfive_wf(2, 1, wl, machine, "memory", PFSStore())
        res = wf.run(model=machine.net)
        assert all(res.returns["consumer"])
        assert res.obs.flight.capacity == 7
        assert all(len(res.obs.flight.events(r)) <= 7
                   for r in res.obs.flight.ranks())

    def test_cost_config_validates_flight_capacity(self):
        from repro.lowfive.config import CostConfig

        with pytest.raises(ValueError):
            CostConfig(flight_capacity=0)
