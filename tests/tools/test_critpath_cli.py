"""``python -m repro.tools critpath``: report, artifacts, strict mode."""

import json
import os

import pytest

from repro.obs import validate_chrome_trace
from repro.tools.transfer import main

_REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
QUICKSTART = os.path.join(_REPO, "examples", "quickstart.py")

_SMALL = ["--grid-points", "512", "--particles", "256",
          "--nprod", "2", "--ncons", "1"]


class TestDemoWorkload:
    def test_prints_report_and_exits_zero(self, capsys):
        assert main(["critpath", *_SMALL, "--strict"]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "conservation      OK" in out
        assert "wait states" in out
        assert "critical-path shares by category:" in out

    def test_writes_trace_and_report_artifacts(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        report = tmp_path / "r.json"
        assert main(["critpath", *_SMALL, "--strict",
                     "--trace", str(trace),
                     "--report", str(report)]) == 0
        doc = json.loads(trace.read_text())
        validate_chrome_trace(doc)
        assert any(e["ph"] == "s" for e in doc["traceEvents"])
        rep = json.loads(report.read_text())
        assert rep["conservation_ok"] is True
        assert abs(rep["critpath_residual"]) <= 1e-9
        assert rep["segments"] and rep["waits"]
        assert set(rep["critpath"]) == \
            {"simmpi", "lowfive", "pfs", "compute", "wait"}

    def test_file_mode_reports_pfs(self, capsys):
        assert main(["critpath", *_SMALL, "--mode", "file",
                     "--strict"]) == 0
        out = capsys.readouterr().out
        assert "pfs" in out


class TestExampleWorkload:
    def test_quickstart_example(self, capsys):
        assert main(["critpath", "--example", QUICKSTART,
                     "--strict", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "top 3 critical-path segments" in out
        assert "conservation      OK" in out

    def test_missing_build_workflow_errors(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("x = 1\n")
        with pytest.raises(SystemExit, match="build_workflow"):
            main(["critpath", "--example", str(bad)])
