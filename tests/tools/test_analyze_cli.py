"""``python -m repro.tools analyze`` and ``... lint`` CLIs."""

import json
import os

from repro.tools.transfer import main

_REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
RACE_DEMO = os.path.join(_REPO, "examples", "race_demo.py")

_SMALL = ["--grid-points", "512", "--particles", "256",
          "--nprod", "2", "--ncons", "2"]


class TestAnalyze:
    def test_fig5_memory_is_silent(self, capsys):
        rc = main(["analyze", "--example", "fig5", "--mode", "memory",
                   *_SMALL])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no findings" in out

    def test_race_demo_clean_run_is_silent(self, capsys):
        rc = main(["analyze", "--example", RACE_DEMO, "--timeout", "30"])
        assert rc == 0
        assert "no findings" in capsys.readouterr().out

    def test_injected_delay_reports_race_and_exits_nonzero(
            self, capsys, tmp_path):
        report = str(tmp_path / "findings.json")
        rc = main(["analyze", "--example", RACE_DEMO, "--timeout", "30",
                   "--delay", "0.01", "--delay-src", "1",
                   "--delay-dst", "0", "--report", report])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FINDING [wildcard-race]" in out
        findings = json.loads(open(report).read())
        assert len(findings) == 1
        assert len(findings[0]["candidates"]) == 2

    def test_no_strict_exits_zero_on_findings(self, capsys):
        rc = main(["analyze", "--example", RACE_DEMO, "--timeout", "30",
                   "--delay", "0.01", "--delay-src", "1",
                   "--delay-dst", "0", "--no-strict"])
        assert rc == 0
        assert "FINDING" in capsys.readouterr().out


class TestLint:
    def test_list_rules(self, capsys):
        rc = main(["lint", "--list-rules"])
        out = capsys.readouterr().out
        assert rc == 0
        for code in ("ANL001", "ANL002", "ANL003", "ANL004"):
            assert code in out

    def test_repo_tree_is_clean(self, capsys):
        rc = main(["lint",
                   os.path.join(_REPO, "src"),
                   os.path.join(_REPO, "examples"),
                   os.path.join(_REPO, "benchmarks")])
        assert rc == 0
        assert "lint clean" in capsys.readouterr().out

    def test_violating_file_fails(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\n"
                       "def f():\n"
                       "    return time.sleep(1)\n")
        rc = main(["lint", str(bad)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "ANL001" in out
