"""Tracing + timeline/communication-matrix tests."""

import numpy as np
import pytest

from repro.simmpi import Engine, TraceEvent
from repro.tools import communication_matrix, render_matrix, render_timeline
from repro.workflow import Workflow


def traced_run():
    eng = Engine(3, trace=True)

    def main(comm):
        if comm.rank == 0:
            comm.send(b"x" * 100, dest=1, tag=1)
            comm.send(b"y" * 50, dest=2, tag=2)
        elif comm.rank == 1:
            comm.recv(source=0)
        else:
            comm.recv(source=0)
        comm.barrier()

    eng.run(main)
    return eng


class TestTracing:
    def test_events_recorded(self):
        eng = traced_run()
        kinds = [e.kind for e in eng.sorted_trace()]
        assert kinds.count("send") == 2
        assert kinds.count("recv") == 2
        assert kinds.count("coll") == 3  # barrier on each rank

    def test_events_carry_world_ranks_and_bytes(self):
        eng = traced_run()
        sends = [e for e in eng.sorted_trace() if e.kind == "send"]
        assert {(e.rank, e.peer, e.nbytes) for e in sends} == {
            (0, 1, 100), (0, 2, 50)
        }
        recvs = [e for e in eng.sorted_trace() if e.kind == "recv"]
        assert all(e.peer == 0 for e in recvs)

    def test_trace_off_by_default(self):
        eng = Engine(2)

        def main(comm):
            if comm.rank == 0:
                comm.send(b"a", dest=1)
            else:
                comm.recv(source=0)

        eng.run(main)
        assert eng.trace_events == []

    def test_sorted_by_vtime(self):
        eng = traced_run()
        times = [e.vtime for e in eng.sorted_trace()]
        assert times == sorted(times)

    def test_workflow_trace_passthrough(self):
        def a(ctx):
            ctx.intercomm("b").send(b"hello", dest=0)

        def b(ctx):
            ctx.intercomm("a").recv()

        wf = Workflow()
        wf.add_task("a", 1, a)
        wf.add_task("b", 1, b)
        wf.add_link("a", "b")
        res = wf.run(trace=True)
        assert any(e.kind == "send" for e in res.trace)
        # Intercomm recv resolves the sender's *world* rank.
        recv = [e for e in res.trace if e.kind == "recv"][0]
        assert (recv.rank, recv.peer) == (1, 0)

    def test_workflow_trace_off(self):
        wf = Workflow()
        wf.add_task("solo", 1, lambda ctx: None)
        assert wf.run().trace == []


class TestTimeline:
    def test_render_contains_lanes_and_marks(self):
        eng = traced_run()
        out = render_timeline(eng.sorted_trace(), 3, width=40, title="T")
        assert out.startswith("T\n")
        assert "rank   0 |" in out and "rank   2 |" in out
        assert "s" in out and "r" in out and "C" in out

    def test_render_empty(self):
        assert "no events" in render_timeline([], 2)

    def test_mixed_marker(self):
        events = [
            TraceEvent(0.5, "send", 0, 1, 0, 10),
            TraceEvent(0.5, "recv", 0, 1, 0, 10),
            TraceEvent(1.0, "coll", 0, -1, 0, 0),
        ]
        out = render_timeline(events, 1, width=10)
        assert "*" in out

    def test_rank_beyond_nprocs_grows_lanes(self):
        # Regression: events from a larger world than the caller's
        # nprocs used to crash (IndexError) or mislabel lanes.
        events = [
            TraceEvent(0.5, "send", 5, 1, 0, 10),
            TraceEvent(1.0, "coll", 0, -1, 0, 0),
        ]
        out = render_timeline(events, 2, width=20)
        assert "rank   5 |" in out
        lane5 = [ln for ln in out.splitlines()
                 if ln.startswith("rank   5")][0]
        assert "s" in lane5

    def test_spans_render_as_intervals(self):
        from repro.obs.spans import SpanRecorder

        rec = SpanRecorder()
        rec.add("lowfive.index", "lowfive", 0, 0.0, 0.5)
        rec.add("pfs.write", "pfs", 1, 0.5, 1.0)
        events = rec.spans() + [TraceEvent(1.0, "coll", 0, -1, 0, 0)]
        out = render_timeline(events, 2, width=20)
        assert "LLL" in out and "PPP" in out  # painted extents
        assert "C" in out                     # points drawn on top
        assert "L=lowfive" in out             # legend extended

    def test_unknown_span_category_mark(self):
        from repro.obs.spans import SpanRecorder

        rec = SpanRecorder()
        rec.add("custom", "mystery", 0, 0.0, 1.0)
        assert "=" in render_timeline(rec.spans(), 1, width=12)


class TestMatrix:
    def test_matrix_counts_bytes(self):
        eng = traced_run()
        m = communication_matrix(eng.sorted_trace(), 3)
        assert m[0, 1] == 100 and m[0, 2] == 50
        assert m.sum() == 150

    def test_collectives_excluded(self):
        events = [TraceEvent(0.1, "coll", 0, -1, 0, 999)]
        m = communication_matrix(events, 2)
        assert m.sum() == 0

    def test_matrix_grows_beyond_nprocs(self):
        events = [TraceEvent(0.1, "send", 4, 1, 0, 10)]
        m = communication_matrix(events, 2)
        assert m.shape == (5, 5)
        assert m[4, 1] == 10

    def test_render_matrix_totals(self):
        m = np.array([[0, 100], [25, 0]])
        out = render_matrix(m, title="bytes")
        assert out.startswith("bytes")
        assert "125" in out  # grand total
        assert "100" in out and "25" in out
