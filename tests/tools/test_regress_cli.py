"""``repro.tools regress``: the unified cross-run regression gate.

The acceptance bar: on the committed benchmark baselines the CLI must
reproduce the exact pass/fail verdicts (and error strings) of the
pre-existing per-bench ``--check-ref`` gates it replaced.
"""

import json
import os

import pytest

from repro.tools.regress import parse_tol, shared_params
from repro.tools.transfer import main

_BENCH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))),
    "benchmarks",
)
WALLCLOCK_REF = os.path.join(_BENCH, "BENCH_wallclock_ref.json")
STREAM_REF = os.path.join(_BENCH, "BENCH_stream_ref.json")


def _mutate(ref_path, tmp_path, **changes):
    """Copy a committed ref, applying ``changes`` to its first run."""
    doc = json.load(open(ref_path))
    doc["runs"][0].update(changes)
    out = tmp_path / "mutated.json"
    out.write_text(json.dumps(doc))
    return str(out)


class TestVerdictsOnCommittedBaselines:
    def test_wallclock_ref_vs_itself_passes(self, capsys):
        rc = main(["regress", WALLCLOCK_REF, "--ref", WALLCLOCK_REF,
                   "--check-ref", "--no-digest"])
        assert rc == 0
        assert "no drift detected" in capsys.readouterr().out

    def test_stream_ref_vs_itself_passes(self):
        assert main(["regress", STREAM_REF, "--ref", STREAM_REF,
                     "--check-ref"]) == 0

    def test_virtual_drift_fails_with_legacy_message(self, tmp_path,
                                                     capsys):
        doc = json.load(open(WALLCLOCK_REF))
        old = doc["runs"][0]["vtime"]
        bad = _mutate(WALLCLOCK_REF, tmp_path, vtime=old * 2)
        rc = main(["regress", bad, "--ref", WALLCLOCK_REF,
                   "--check-ref", "--no-digest"])
        assert rc == 1
        err = capsys.readouterr().err
        assert f"vtime drifted {old!r} -> {old * 2!r}" in err

    def test_stream_digest_drift_fails(self, tmp_path, capsys):
        bad = _mutate(STREAM_REF, tmp_path, digest="0000000000000000")
        rc = main(["regress", bad, "--ref", STREAM_REF, "--check-ref"])
        assert rc == 1
        assert "data digest drifted" in capsys.readouterr().err

    def test_params_mismatch_is_the_legacy_guard(self, tmp_path,
                                                 capsys):
        doc = json.load(open(WALLCLOCK_REF))
        doc["params"]["elems_per_proc"] = 1
        cur = tmp_path / "cur.json"
        cur.write_text(json.dumps(doc))
        rc = main(["regress", str(cur), "--ref", WALLCLOCK_REF,
                   "--check-ref", "--no-digest"])
        assert rc == 1
        assert "do not cover this run" in capsys.readouterr().err
        # Without --check-ref the guard downgrades to a skip.
        assert main(["regress", str(cur), "--ref", WALLCLOCK_REF,
                     "--no-digest"]) == 0

    def test_ignore_params_bypasses_the_guard(self, tmp_path):
        doc = json.load(open(WALLCLOCK_REF))
        doc["params"]["elems_per_proc"] = 1
        cur = tmp_path / "cur.json"
        cur.write_text(json.dumps(doc))
        assert main(["regress", str(cur), "--ref", WALLCLOCK_REF,
                     "--check-ref", "--no-digest",
                     "--ignore-params"]) == 0

    def test_missing_reference(self, tmp_path, capsys):
        rc = main(["regress", WALLCLOCK_REF, "--ref",
                   str(tmp_path / "absent.json"), "--check-ref"])
        assert rc == 1
        assert "not found" in capsys.readouterr().err


class TestTolerancesAndLedgers:
    def test_wall_clock_tolerance(self, tmp_path):
        old = json.load(open(WALLCLOCK_REF))["runs"][0]["wall_seconds"]
        cur = _mutate(WALLCLOCK_REF, tmp_path, wall_seconds=old * 1.2)
        assert main(["regress", cur, "--ref", WALLCLOCK_REF,
                     "--check-ref", "--no-digest",
                     "--tol", "wall_seconds=0.5"]) == 0
        assert main(["regress", cur, "--ref", WALLCLOCK_REF,
                     "--check-ref", "--no-digest",
                     "--tol", "wall_seconds=0.01"]) == 1

    def test_jsonl_ledger_as_current_document(self, tmp_path):
        from repro.obs.ledger import Ledger

        led = Ledger(str(tmp_path / "runs.jsonl"))
        assert led.append_doc(json.load(open(STREAM_REF))) > 0
        assert main(["regress", led.path, "--ref", STREAM_REF]) == 0

    def test_empty_document_is_an_error(self, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"runs": []}))
        assert main(["regress", str(empty), "--ref",
                     WALLCLOCK_REF]) == 1


class TestHelpers:
    def test_parse_tol(self):
        assert parse_tol(["wall_seconds=0.5", "a.b=0.1"]) == \
            {"wall_seconds": 0.5, "a.b": 0.1}
        with pytest.raises(ValueError):
            parse_tol(["nonsense"])

    def test_shared_params_intersection(self, tmp_path):
        ref = tmp_path / "ref.json"
        ref.write_text(json.dumps(
            {"params": {"a": 1, "b": 2}, "runs": []}))
        cur = {"params": {"a": 9, "c": 3}}
        assert shared_params(cur, str(ref)) == {"a": 9}
        assert shared_params({"params": {}}, str(ref)) is None
