"""Tests for the inspection/transfer utilities."""

import os

import numpy as np
import pytest

import repro.h5 as h5
from repro.h5.native import NativeVOL
from repro.pfs import PFSStore
from repro.tools import export_store, h5dump, h5ls, import_store
from repro.tools.transfer import _safe_path, main


@pytest.fixture
def store_with_file():
    store = PFSStore()
    vol = NativeVOL(store)
    with h5.File("run/out.h5", "w", vol=vol) as f:
        f.attrs["step"] = 7
        d = f.create_dataset("fields/density", data=np.arange(6.0))
        d.attrs["units"] = 1.5
        f.create_group("empty")
    return store


def _blob(store, name):
    handle = store.open(name)
    return handle.pread(0, handle.size)


class TestInspect:
    def test_h5ls_lists_objects(self, store_with_file):
        out = h5ls(_blob(store_with_file, "run/out.h5"), "run/out.h5")
        assert "/fields" in out and "Group" in out
        assert "/fields/density" in out and "Dataset" in out
        assert "(6,)" in out and "float64" in out

    def test_h5dump_shows_attrs_and_data(self, store_with_file):
        out = h5dump(_blob(store_with_file, "run/out.h5"))
        assert "@step = 7" in out
        assert "@units = 1.5" in out
        assert "DATASET density" in out
        assert "data: [0. 1. 2. 3. 4. 5.]" in out
        assert "GROUP empty" in out

    def test_h5dump_truncates_large_data(self):
        store = PFSStore()
        with h5.File("big.h5", "w", vol=NativeVOL(store)) as f:
            f.create_dataset("d", data=np.arange(100))
        out = h5dump(_blob(store, "big.h5"), max_elements=4)
        assert "..." in out

    def test_bad_blob_raises(self):
        with pytest.raises(Exception):
            h5ls(b"not a file")


class TestTransfer:
    def test_export_import_roundtrip(self, store_with_file, tmp_path):
        exported = export_store(store_with_file, str(tmp_path))
        assert exported == ["run/out.h5"]
        assert (tmp_path / "run" / "out.h5").exists()

        store2 = import_store(str(tmp_path))
        assert store2.listdir() == ["run/out.h5"]
        with h5.File("run/out.h5", "r", vol=NativeVOL(store2)) as f:
            np.testing.assert_array_equal(
                f["fields/density"].read(), np.arange(6.0)
            )
            assert f.attrs["step"] == 7

    def test_safe_path_rejects_escape(self, tmp_path):
        with pytest.raises(ValueError):
            _safe_path(str(tmp_path), "../evil")

    def test_cli_h5ls(self, store_with_file, tmp_path, capsys):
        export_store(store_with_file, str(tmp_path))
        assert main(["h5ls", str(tmp_path), "run/out.h5"]) == 0
        out = capsys.readouterr().out
        assert "/fields/density" in out

    def test_cli_h5dump(self, store_with_file, tmp_path, capsys):
        export_store(store_with_file, str(tmp_path))
        assert main(["h5dump", str(tmp_path), "run/out.h5"]) == 0
        assert "@step = 7" in capsys.readouterr().out
