"""``repro.tools report`` HTML run reports and ``trace --metrics``."""

import json

import pytest

from repro.tools.transfer import main


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    """One small report run shared by the assertions below."""
    tmp = tmp_path_factory.mktemp("report")
    out = tmp / "run.html"
    ledger = tmp / "ledger.jsonl"
    rc = main(["report", str(out), "--nprod", "2", "--ncons", "1",
               "--grid-points", "512", "--particles", "256",
               "--ledger", str(ledger)])
    assert rc == 0
    return out, ledger


class TestReport:
    def test_html_is_self_contained(self, report):
        html = report[0].read_text()
        assert html.lstrip().startswith("<!DOCTYPE html>")
        assert "<script" not in html  # static: no JS needed
        assert "http" not in html.split("</style>")[1]  # no ext assets

    def test_html_has_every_section(self, report):
        html = report[0].read_text()
        for heading in ("Manifest", "Spans and phases",
                        "Critical path", "Wait taxonomy",
                        "Virtual-time series"):
            assert heading in html, f"missing section {heading!r}"
        assert "report/lowfive_memory/P3" in html

    def test_series_render_as_inline_svg(self, report):
        html = report[0].read_text()
        assert "<svg" in html and "polyline" in html
        assert "simmpi.mailbox_depth" in html
        assert "(volatile)" in html

    def test_span_quantile_columns_present(self, report):
        html = report[0].read_text()
        for col in ("p50", "p95", "p99"):
            assert f"<th>{col} s</th>" in html

    def test_ledger_side_effect(self, report):
        from repro.obs.ledger import Ledger

        recs = Ledger(str(report[1])).records()
        assert len(recs) == 1
        assert recs[0].workload == "report/lowfive_memory/P3"
        assert recs[0].attribution["conservation_ok"]
        assert recs[0].series  # stable series digests present

    def test_terminal_summary(self, report, capsys):
        rc = main(["report", str(report[0]), "--nprod", "2",
                   "--ncons", "1", "--grid-points", "512",
                   "--particles", "256"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "critical path:" in out
        assert "waits:" in out
        assert "stable record digest:" in out


class TestTraceMetrics:
    def test_metrics_flag_writes_sidecar(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = main(["trace", str(out), "--nprod", "2", "--ncons", "1",
                   "--metrics"])
        assert rc == 0
        assert "trace.json.metrics.json" in capsys.readouterr().out
        side = json.loads((tmp_path / "trace.json.metrics.json")
                          .read_text())
        assert side.keys() == {"metrics", "series"}
        assert "workflow.attempt" in side["series"]
        assert any(k.startswith("simmpi.mailbox_depth")
                   for k in side["series"])

    def test_no_sidecar_without_flag(self, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["trace", str(out), "--nprod", "2",
                     "--ncons", "1"]) == 0
        assert not (tmp_path / "trace.json.metrics.json").exists()
