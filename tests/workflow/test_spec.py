"""Declarative workflow-spec tests."""

import pytest

from repro.workflow import Workflow


def _producer(ctx):
    """Send a greeting to the sink task."""
    ctx.intercomm("sink").send(f"hi-{ctx.rank}", dest=0)
    return "sent"


def _sink(ctx):
    """Collect greetings from both producer ranks."""
    inter = ctx.intercomm("src")
    return sorted(inter.recv(source=i)[0] for i in range(2))


def test_from_spec_with_callables():
    wf = Workflow.from_spec({
        "tasks": [
            {"name": "src", "nprocs": 2, "main": _producer},
            {"name": "sink", "nprocs": 1, "main": _sink},
        ],
        "links": [["src", "sink"]],
    })
    assert wf.total_procs == 3
    res = wf.run()
    assert res.returns["sink"] == [["hi-0", "hi-1"]]


def test_from_spec_with_entry_point_strings():
    wf = Workflow.from_spec({
        "tasks": [
            {"name": "src", "nprocs": 2,
             "main": "tests.workflow.test_spec:_producer"},
            {"name": "sink", "nprocs": 1,
             "main": "tests.workflow.test_spec:_sink"},
        ],
        "links": [["src", "sink"]],
    })
    res = wf.run()
    assert res.returns["sink"] == [["hi-0", "hi-1"]]


def test_from_spec_validation():
    with pytest.raises(ValueError, match="tasks"):
        Workflow.from_spec({})
    with pytest.raises(ValueError, match="name/nprocs/main"):
        Workflow.from_spec({"tasks": [{"name": "x"}]})
    with pytest.raises(ValueError, match="module:attr"):
        Workflow.from_spec({
            "tasks": [{"name": "x", "nprocs": 1, "main": "no_colon"}],
        })
    with pytest.raises(ValueError, match="not callable"):
        Workflow.from_spec({
            "tasks": [{"name": "x", "nprocs": 1, "main": 42}],
        })
    with pytest.raises(ValueError, match="unknown task"):
        Workflow.from_spec({
            "tasks": [{"name": "x", "nprocs": 1, "main": _producer}],
            "links": [["x", "missing"]],
        })


def test_from_spec_no_links_ok():
    wf = Workflow.from_spec({
        "tasks": [{"name": "solo", "nprocs": 2,
                   "main": lambda ctx: ctx.rank}],
    })
    assert wf.run().returns["solo"] == [0, 1]
