"""Workflow runner tests."""

import pytest

from repro.workflow import Workflow


def test_single_task():
    wf = Workflow()
    wf.add_task("solo", 3, lambda ctx: ctx.rank * 10)
    res = wf.run()
    assert res.returns == {"solo": [0, 10, 20]}


def test_task_sees_own_comm_and_name():
    def main(ctx):
        return (ctx.name, ctx.rank, ctx.size, ctx.comm.allgather(ctx.rank))

    wf = Workflow()
    wf.add_task("a", 2, main)
    wf.add_task("b", 3, main)
    res = wf.run()
    assert res.returns["a"] == [("a", 0, 2, [0, 1]), ("a", 1, 2, [0, 1])]
    assert res.returns["b"][0] == ("b", 0, 3, [0, 1, 2])


def test_link_intercomm_exchange():
    def left(ctx):
        ctx.intercomm("right").send(f"hi-{ctx.rank}", dest=0)

    def right(ctx):
        if ctx.rank == 0:
            inter = ctx.intercomm("left")
            got = sorted(inter.recv(source=i)[0] for i in range(2))
            assert got == ["hi-0", "hi-1"]

    wf = Workflow()
    wf.add_task("left", 2, left)
    wf.add_task("right", 2, right)
    wf.add_link("left", "right")
    wf.run()


def test_links_property_and_missing_link():
    def main(ctx):
        assert sorted(ctx.links) == ["b"] if ctx.name == "a" else ["a"]
        with pytest.raises(KeyError):
            ctx.intercomm("nope")
        return True

    wf = Workflow()
    wf.add_task("a", 1, main)
    wf.add_task("b", 1, main)
    wf.add_link("a", "b")
    res = wf.run()
    assert res.returns == {"a": [True], "b": [True]}


def test_singleton_shared_per_task():
    created = []

    def main(ctx):
        obj = ctx.singleton("thing", lambda: created.append(ctx.name) or
                            {"owner": ctx.name})
        return id(obj)

    wf = Workflow()
    wf.add_task("a", 3, main)
    wf.add_task("b", 2, main)
    res = wf.run()
    assert len(set(res.returns["a"])) == 1
    assert len(set(res.returns["b"])) == 1
    assert res.returns["a"][0] != res.returns["b"][0]
    assert sorted(created) == ["a", "b"]


def test_validation_errors():
    wf = Workflow()
    wf.add_task("a", 1, lambda ctx: None)
    with pytest.raises(ValueError):
        wf.add_task("a", 1, lambda ctx: None)
    with pytest.raises(ValueError):
        wf.add_link("a", "missing")
    with pytest.raises(ValueError):
        wf.add_link("a", "a")
    with pytest.raises(ValueError):
        wf.add_task("bad", 0, lambda ctx: None)
    with pytest.raises(ValueError):
        Workflow().run()


def test_total_procs_and_traffic_stats():
    def chatty(ctx):
        ctx.intercomm("sink").send(b"x" * 100, dest=0)

    def sink(ctx):
        for _ in range(4):
            ctx.intercomm("src").recv()

    wf = Workflow()
    wf.add_task("src", 4, chatty)
    wf.add_task("sink", 1, sink)
    wf.add_link("src", "sink")
    assert wf.total_procs == 5
    res = wf.run()
    assert res.messages == 4
    assert res.bytes_sent == 400
    assert res.vtime > 0


def test_three_stage_pipeline():
    def stage1(ctx):
        ctx.intercomm("stage2").send(ctx.rank + 1, dest=0)

    def stage2(ctx):
        total = sum(
            ctx.intercomm("stage1").recv(source=i)[0] for i in range(2)
        )
        ctx.intercomm("stage3").send(total * 2, dest=0)

    def stage3(ctx):
        val, _ = ctx.intercomm("stage2").recv(source=0)
        return val

    wf = Workflow()
    wf.add_task("stage1", 2, stage1)
    wf.add_task("stage2", 1, stage2)
    wf.add_task("stage3", 1, stage3)
    wf.add_link("stage1", "stage2")
    wf.add_link("stage2", "stage3")
    res = wf.run()
    assert res.returns["stage3"] == [6]
