"""Workflow restart policies: retry after a crash, or amputate and
continue with the independent part of the task graph."""

import pytest

from repro.faults import CrashRule, FaultPlan
from repro.simmpi import RankFailure
from repro.workflow import RestartPolicy, Workflow


def compute_body(seconds=1.0, ret="ok"):
    def body(ctx):
        ctx.comm.compute(seconds)
        return f"{ctx.name}:{ret}"

    return body


def pipe_pair(wf, prod, cons):
    """Producer sends one message to consumer over their link."""
    def p_body(ctx):
        ctx.comm.compute(1.0)
        ctx.intercomm(cons).send({"from": ctx.name}, dest=0, tag=1)
        return "sent"

    def c_body(ctx):
        msg, _ = ctx.intercomm(prod).recv(source=0, tag=1)
        return msg["from"]

    wf.add_task(prod, 1, p_body)
    wf.add_task(cons, 1, c_body)
    wf.add_link(prod, cons)


def test_default_policy_reraises_rank_failure():
    wf = Workflow()
    wf.add_task("t", 2, compute_body())
    plan = FaultPlan(0, crashes=[CrashRule(rank=1, at_vtime=0.5)])
    with pytest.raises(RankFailure) as exc_info:
        wf.run(faults=plan)
    assert exc_info.value.rank == 1


def test_retry_recovers_from_transient_crash():
    # times=1: the crash fires on attempt 1 and the retry runs clean
    # (the plan instance is carried across attempts on purpose).
    wf = Workflow()
    wf.add_task("t", 2, compute_body())
    plan = FaultPlan(0, crashes=[CrashRule(rank=1, at_vtime=0.5,
                                           times=1)])
    res = wf.run(faults=plan, restart=RestartPolicy(max_retries=2))
    assert res.attempts == 2
    assert res.failed_tasks == ()
    assert res.returns["t"] == ["t:ok", "t:ok"]
    assert plan.injected_counts()["crash"] == 1
    gauge = res.obs.metrics.snapshot().get("workflow.attempt")
    assert gauge is not None and gauge.value == 2


def test_retries_exhausted_reraises():
    wf = Workflow()
    wf.add_task("t", 2, compute_body())
    plan = FaultPlan(0, crashes=[CrashRule(rank=1, at_vtime=0.5,
                                           times=100)])
    with pytest.raises(RankFailure):
        wf.run(faults=plan, restart=RestartPolicy(max_retries=2))
    # Each of the 3 attempts (first + 2 retries) crashed.
    assert plan.injected_counts()["crash"] == 3


def test_continue_drops_failed_component_and_runs_rest():
    # Tasks p1,c1,p2,c2 get world ranks 0..3; rank 2 (p2) is
    # persistently faulty. The p2->c2 chain is amputated and the
    # independent p1->c1 chain still completes.
    wf = Workflow()
    pipe_pair(wf, "p1", "c1")
    pipe_pair(wf, "p2", "c2")
    plan = FaultPlan(0, crashes=[CrashRule(rank=2, at_vtime=0.5,
                                           times=100)])
    res = wf.run(faults=plan,
                 restart=RestartPolicy(on_exhausted="continue"))
    assert res.failed_tasks == ("c2", "p2")
    assert res.attempts == 2
    assert res.returns == {"p1": ["sent"], "c1": ["p1"]}


def test_continue_with_all_tasks_connected_reraises():
    # One connected graph: amputating the failed component leaves
    # nothing, so the failure propagates.
    wf = Workflow()
    pipe_pair(wf, "p1", "c1")
    plan = FaultPlan(0, crashes=[CrashRule(rank=0, at_vtime=0.5,
                                           times=100)])
    with pytest.raises(RankFailure):
        wf.run(faults=plan,
               restart=RestartPolicy(on_exhausted="continue"))


def test_continue_also_retries_the_survivors():
    # Retries apply per task subset: the survivor subset gets its own
    # retry budget after amputation.
    wf = Workflow()
    pipe_pair(wf, "p1", "c1")
    pipe_pair(wf, "p2", "c2")
    plan = FaultPlan(0, crashes=[
        CrashRule(rank=2, at_vtime=0.5, times=1),   # p2, transient
    ])
    res = wf.run(faults=plan, restart=RestartPolicy(max_retries=1))
    # The transient crash is retried before any amputation is needed.
    assert res.attempts == 2
    assert res.failed_tasks == ()
    assert res.returns["c2"] == ["p2"]


def test_restart_policy_validates_on_exhausted():
    with pytest.raises(ValueError, match="on_exhausted"):
        RestartPolicy(on_exhausted="explode")


def test_crashed_consumer_does_not_hang_blocked_producer():
    # The consumer dies while the producer sits in send/recv: the
    # producer must be torn down, not deadlocked, and the typed error
    # must identify the consumer.
    wf = Workflow()
    pipe_pair(wf, "p1", "c1")
    plan = FaultPlan(0, crashes=[CrashRule(rank=1, at_vtime=0.0,
                                           times=100)])
    with pytest.raises(RankFailure) as exc_info:
        wf.run(faults=plan, timeout=10.0)
    assert exc_info.value.rank == 1
